/**
 * @file
 * Quickstart: validate one Instruction Selection run end-to-end.
 *
 * Reproduces the paper's running example (Figures 1-3): the arithmetic
 * sequence sum function is lowered from LLVM IR to Virtual x86 by the
 * ISel pass, the VC generator derives the synchronization points, and KEQ
 * proves the translation is a cut-bisimulation.
 */

#include <iostream>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/vcgen/vcgen.h"

namespace {

// Figure 1 / Figure 2(a): sum of the first n elements of an arithmetic
// sequence with first element a0 and step d.
const char *const kArithmSeqSum = R"(
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond

for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end

for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc

for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond

for.end:
  ret i32 %s.0
}
)";

} // namespace

int
main()
{
    using namespace keq;

    // 1. Parse and verify the input program.
    llvmir::Module module = llvmir::parseModule(kArithmSeqSum);
    llvmir::verifyModuleOrThrow(module);
    const llvmir::Function &fn = module.functions.front();
    std::cout << "=== LLVM IR (input) ===\n" << fn.toString() << "\n";

    // 2. Run Instruction Selection with hint generation.
    isel::IselOptions isel_options;
    isel::FunctionHints hints;
    vx86::MFunction mfn =
        isel::lowerFunction(module, fn, isel_options, hints);
    std::cout << "=== Virtual x86 (ISel output) ===\n"
              << mfn.toString() << "\n";

    // 3. Generate the synchronization points (the Figure 3 table).
    vcgen::VcResult vc = vcgen::generateSyncPoints(fn, mfn, hints);
    std::cout << "=== Synchronization points ===\n"
              << vc.points.render() << "\n";

    // 4. Run KEQ through the full pipeline.
    driver::PipelineOptions options;
    driver::FunctionReport report =
        driver::validateFunction(module, fn, options);

    std::cout << "=== KEQ verdict ===\n";
    std::cout << "outcome:        " << driver::outcomeName(report.outcome)
              << "\n";
    std::cout << "verdict:        "
              << checker::verdictKindName(report.verdict.kind) << "\n";
    if (!report.detail.empty())
        std::cout << "detail:         " << report.detail << "\n";
    std::cout << "sync points:    " << report.syncPointCount << "\n";
    std::cout << "symbolic steps: " << report.verdict.stats.symbolicSteps
              << "\n";
    std::cout << "solver queries: " << report.verdict.stats.solverQueries
              << "\n";
    std::cout << "time:           " << report.seconds << " s\n";
    return report.outcome == driver::Outcome::Succeeded ? 0 : 1;
}
