/**
 * @file
 * Validating register allocation with the unchanged KEQ checker.
 *
 * The paper (Section 1) reports ongoing work applying KEQ — unchanged —
 * to LLVM's register allocation, with a VC generator that treats the
 * allocator as a black box. This example reproduces that experiment on
 * our stack: the loop function is lowered by ISel, registers are
 * allocated (phi elimination + graph coloring, src/regalloc), and the
 * very same checker proves the pre-RA and post-RA Virtual x86 programs
 * cut-bisimilar. Note that *both* sides now run the same language
 * semantics — language-parametricity covers same-language pairs too.
 */

#include <iostream>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/regalloc/regalloc.h"
#include "src/vcgen/regalloc_vcgen.h"

namespace {

const char *const kSwapSum = R"(
define i32 @swapsum(i32 %n) {
entry:
  br label %head
head:
  %x = phi i32 [ 1, %entry ], [ %y, %body ]
  %y = phi i32 [ 2, %entry ], [ %x, %body ]
  %i = phi i32 [ 0, %entry ], [ %inc, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %inc = add i32 %i, 1
  br label %head
done:
  %r = add i32 %x, %y
  ret i32 %r
}
)";

} // namespace

int
main()
{
    using namespace keq;

    llvmir::Module module = llvmir::parseModule(kSwapSum);
    llvmir::verifyModuleOrThrow(module);
    const llvmir::Function &fn = module.functions.front();

    isel::FunctionHints hints;
    vx86::MFunction pre = isel::lowerFunction(module, fn, {}, hints);
    std::cout << "=== Pre-RA (virtual registers, PHIs) ===\n"
              << pre.toString() << "\n";

    regalloc::AllocationResult allocation =
        regalloc::allocateRegisters(pre);
    std::cout << "=== Post-RA (physical registers, copies) ===\n"
              << allocation.fn.toString() << "\n";

    std::cout << "=== Assignment (the black-box hint) ===\n";
    for (const auto &[vreg, phys] : allocation.assignment)
        std::cout << "  " << vreg << " -> " << phys << "\n";
    std::cout << "\n";

    vcgen::VcResult vc =
        vcgen::generateRegAllocSyncPoints(pre, allocation);
    std::cout << "=== Synchronization points ===\n"
              << vc.points.render() << "\n";

    driver::FunctionReport report =
        driver::validateRegAlloc(module, fn, {});
    std::cout << "=== KEQ verdict ===\n";
    std::cout << "outcome: " << driver::outcomeName(report.outcome)
              << " (" << checker::verdictKindName(report.verdict.kind)
              << ", " << report.verdict.stats.solverQueries
              << " solver queries)\n";
    if (!report.detail.empty())
        std::cout << "detail:  " << report.detail << "\n";
    return report.outcome == driver::Outcome::Succeeded ? 0 : 1;
}
