/**
 * @file
 * Language-parametricity showcase: KEQ checking two *toy* languages.
 *
 * The paper's headline claim is that KEQ is the first equivalence checker
 * parameterized by the input and output language semantics (Sections 1
 * and 3). This example demonstrates exactly that: neither language below
 * is LLVM IR or Virtual x86 — both are defined right here, by
 * implementing the sem::Semantics interface — yet the very same checker
 * proves their programs cut-bisimilar.
 *
 *  - "While": a structured counting loop,
 *        s := 0; while (x != 0) { s := s + x; x := x - 1 }; return s
 *  - "Acc": an accumulator machine executing an instruction list with a
 *    different state layout (registers ACC/CNT) and a different step
 *    granularity (three micro-instructions per loop iteration).
 *
 * The synchronization points relate the loop heads with x = CNT and
 * s = ACC; KEQ proves the relation is a cut-bisimulation.
 */

#include <iostream>

#include "src/keq/checker.h"
#include "src/sem/semantics.h"
#include "src/smt/z3_solver.h"

namespace {

using keq::sem::Status;
using keq::sem::SymbolicState;
using keq::smt::Sort;
using keq::smt::Term;

/** The "While" language: blocks {entry, loop, done} over vars x, s. */
class WhileSemantics : public keq::sem::Semantics
{
  public:
    explicit WhileSemantics(keq::smt::TermFactory &factory)
        : factory_(factory)
    {}

    std::string name() const override { return "While"; }

    std::vector<SymbolicState>
    step(const SymbolicState &state) override
    {
        keq::smt::TermFactory &tf = factory_;
        SymbolicState next = state;
        Term x = readRegister(next, "main", "x");
        Term s = readRegister(next, "main", "s");
        Term zero = tf.bvConst(32, 0);

        if (state.block == "entry") {
            // s := 0; fall into the loop head.
            next.env["s"] = zero;
            next.cameFrom = "entry";
            next.block = "loop";
            return {next};
        }
        if (state.block == "loop") {
            // One whole iteration (or exit) per step: While is "fast".
            Term continue_cond = tf.mkNot(tf.mkEq(x, zero));
            SymbolicState iterate = next;
            iterate.pathCond = tf.mkAnd(state.pathCond, continue_cond);
            iterate.env["s"] = tf.bvAdd(s, x);
            iterate.env["x"] = tf.bvSub(x, tf.bvConst(32, 1));
            iterate.cameFrom = "loop";
            iterate.block = "loop";

            SymbolicState leave = next;
            leave.pathCond =
                tf.mkAnd(state.pathCond, tf.mkNot(continue_cond));
            leave.status = Status::Exited;
            leave.result = s;
            std::vector<SymbolicState> successors;
            if (!iterate.pathCond.isFalse())
                successors.push_back(std::move(iterate));
            if (!leave.pathCond.isFalse())
                successors.push_back(std::move(leave));
            return successors;
        }
        return {};
    }

    SymbolicState
    makeState(const keq::sem::StateSeed &seed,
              std::map<std::string, Term> env, Term memory,
              Term path_cond) override
    {
        SymbolicState state;
        state.function = seed.function;
        state.block = seed.block.empty() ? "entry" : seed.block;
        state.cameFrom = seed.cameFrom;
        state.env = std::move(env);
        state.memory = memory;
        state.pathCond = path_cond;
        return state;
    }

    unsigned
    registerWidth(const std::string &, const std::string &) const override
    {
        return 32;
    }

    void
    bindRegister(SymbolicState &state, const std::string &,
                 const std::string &reg, Term value) override
    {
        state.env[reg] = value;
    }

    Term
    readRegister(SymbolicState &state, const std::string &,
                 const std::string &reg) override
    {
        if (reg == keq::sem::kReturnValueName)
            return state.result;
        auto it = state.env.find(reg);
        if (it != state.env.end())
            return it->second;
        Term fresh = factory_.freshVar("havoc." + reg, Sort::bitVec(32));
        state.env[reg] = fresh;
        return fresh;
    }

    keq::smt::TermFactory &factory() override { return factory_; }

  private:
    keq::smt::TermFactory &factory_;
};

/**
 * The "Acc" machine: CLR ACC; L: JZ CNT, end; ADD ACC, CNT; DEC CNT;
 * JMP L; end: HALT ACC. One micro-instruction per step: Acc is "slow"
 * (three steps per While iteration) — precisely the speed difference
 * cut-bisimulation exists to absorb.
 */
class AccSemantics : public keq::sem::Semantics
{
  public:
    explicit AccSemantics(keq::smt::TermFactory &factory)
        : factory_(factory)
    {}

    std::string name() const override { return "Acc"; }

    std::vector<SymbolicState>
    step(const SymbolicState &state) override
    {
        keq::smt::TermFactory &tf = factory_;
        SymbolicState next = state;
        Term acc = readRegister(next, "main", "ACC");
        Term cnt = readRegister(next, "main", "CNT");
        Term zero = tf.bvConst(32, 0);

        // Blocks: "init" (CLR), "L" (JZ at index 0, ADD at 1, DEC at 2,
        // JMP at 3), "halt".
        if (state.block == "init") {
            next.env["ACC"] = zero;
            next.cameFrom = "init";
            next.block = "L";
            next.instIndex = 0;
            return {next};
        }
        if (state.block == "L") {
            switch (state.instIndex) {
              case 0: { // JZ CNT, halt
                Term is_zero = tf.mkEq(cnt, zero);
                SymbolicState taken = next;
                taken.pathCond = tf.mkAnd(state.pathCond, is_zero);
                taken.status = Status::Exited;
                taken.result = acc;
                SymbolicState fall = next;
                fall.pathCond =
                    tf.mkAnd(state.pathCond, tf.mkNot(is_zero));
                fall.instIndex = 1;
                std::vector<SymbolicState> successors;
                if (!taken.pathCond.isFalse())
                    successors.push_back(std::move(taken));
                if (!fall.pathCond.isFalse())
                    successors.push_back(std::move(fall));
                return successors;
              }
              case 1: // ADD ACC, CNT
                next.env["ACC"] = tf.bvAdd(acc, cnt);
                next.instIndex = 2;
                return {next};
              case 2: // DEC CNT
                next.env["CNT"] = tf.bvSub(cnt, tf.bvConst(32, 1));
                next.instIndex = 3;
                return {next};
              case 3: // JMP L
                next.cameFrom = "L";
                next.block = "L";
                next.instIndex = 0;
                return {next};
              default:
                return {};
            }
        }
        return {};
    }

    SymbolicState
    makeState(const keq::sem::StateSeed &seed,
              std::map<std::string, Term> env, Term memory,
              Term path_cond) override
    {
        SymbolicState state;
        state.function = seed.function;
        state.block = seed.block.empty() ? "init" : seed.block;
        state.cameFrom = seed.cameFrom;
        state.env = std::move(env);
        state.memory = memory;
        state.pathCond = path_cond;
        return state;
    }

    unsigned
    registerWidth(const std::string &, const std::string &) const override
    {
        return 32;
    }

    void
    bindRegister(SymbolicState &state, const std::string &,
                 const std::string &reg, Term value) override
    {
        state.env[reg] = value;
    }

    Term
    readRegister(SymbolicState &state, const std::string &,
                 const std::string &reg) override
    {
        if (reg == keq::sem::kReturnValueName)
            return state.result;
        auto it = state.env.find(reg);
        if (it != state.env.end())
            return it->second;
        Term fresh = factory_.freshVar("havoc." + reg, Sort::bitVec(32));
        state.env[reg] = fresh;
        return fresh;
    }

    keq::smt::TermFactory &factory() override { return factory_; }

  private:
    keq::smt::TermFactory &factory_;
};

/** Toy acceptability: no memory, no error states. */
class ToyAcceptability : public keq::sem::Acceptability
{
  public:
    bool errorAcceptsAnyOutput(keq::sem::ErrorKind) const override
    {
        return false;
    }
    bool
    errorsRelated(keq::sem::ErrorKind, keq::sem::ErrorKind) const override
    {
        return false;
    }
    bool requiresMemoryEquality() const override { return false; }
};

} // namespace

int
main()
{
    using namespace keq;

    smt::TermFactory factory;
    WhileSemantics lang_a(factory);
    AccSemantics lang_b(factory);
    smt::Z3Solver solver(factory);
    ToyAcceptability acceptability;

    // The verification condition: entry point (x = CNT), loop heads
    // (x = CNT, s = ACC), exit (equal results).
    sem::SyncPointSet points;
    {
        sem::SyncPoint entry;
        entry.id = "p0";
        entry.kind = sem::SyncKind::Entry;
        entry.a = {"main", "entry", "", ""};
        entry.b = {"main", "init", "", ""};
        entry.constraints = {sem::SyncConstraint::aEqB("x", "CNT")};
        points.points.push_back(entry);

        sem::SyncPoint loop;
        loop.id = "p1";
        loop.kind = sem::SyncKind::BlockEntry;
        loop.a = {"main", "loop", "", ""};
        loop.b = {"main", "L", "", ""};
        loop.constraints = {sem::SyncConstraint::aEqB("x", "CNT"),
                            sem::SyncConstraint::aEqB("s", "ACC")};
        points.points.push_back(loop);

        sem::SyncPoint exit_point;
        exit_point.id = "p2";
        exit_point.kind = sem::SyncKind::Exit;
        exit_point.a = {"main", "", "", ""};
        exit_point.b = {"main", "", "", ""};
        exit_point.constraints = {sem::SyncConstraint::aEqB(
            sem::kReturnValueName, sem::kReturnValueName)};
        points.points.push_back(exit_point);
    }

    std::cout << "Checking While-program ~ Acc-program with KEQ...\n";
    std::cout << points.render() << "\n";

    checker::Checker keq_checker(lang_a, lang_b, acceptability, solver);
    checker::Verdict verdict = keq_checker.check("main", "main", points);
    std::cout << "verdict: " << checker::verdictKindName(verdict.kind)
              << "\n";
    if (!verdict.reason.empty())
        std::cout << "reason:  " << verdict.reason << "\n";
    std::cout << "symbolic steps: " << verdict.stats.symbolicSteps
              << ", solver queries: " << verdict.stats.solverQueries
              << "\n";

    // Negative control: claim s = CNT at the loop head instead; the
    // checker must refuse.
    points.points[1].constraints = {
        sem::SyncConstraint::aEqB("x", "CNT"),
        sem::SyncConstraint::aEqB("s", "CNT")};
    checker::Verdict bogus = keq_checker.check("main", "main", points);
    std::cout << "\nnegative control (wrong constraint): "
              << checker::verdictKindName(bogus.kind) << "\n";

    return verdict.kind == checker::VerdictKind::Equivalent &&
                   bogus.kind == checker::VerdictKind::NotValidated
               ? 0
               : 1;
}
