/**
 * @file
 * Undefined behaviour and refinement (paper Section 4.6).
 *
 * When the input program can reach undefined behaviour, the compiler is
 * allowed to produce anything on those inputs, so the right correctness
 * statement is refinement rather than equivalence. KEQ discovers this
 * automatically: LLVM error states are acceptable against any output
 * state, and the verdict degrades from "equivalent" to "refines".
 */

#include <iostream>

#include "src/driver/pipeline.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace {

struct Case
{
    const char *title;
    const char *source;
    keq::checker::VerdictKind expected;
};

const Case kCases[] = {
    {"no UB reachable: full equivalence",
     R"(
define i32 @plain(i32 %a) {
entry:
  %r = add i32 %a, 1
  ret i32 %r
}
)",
     keq::checker::VerdictKind::Equivalent},

    {"add nsw: signed overflow is UB, so only refinement holds",
     R"(
define i32 @bump(i32 %a) {
entry:
  %r = add nsw i32 %a, 1
  ret i32 %r
}
)",
     keq::checker::VerdictKind::Refines},

    {"masked add nsw: overflow provably unreachable, equivalence again",
     R"(
define i32 @safe(i32 %a) {
entry:
  %m = and i32 %a, 65535
  %r = add nsw i32 %m, 1
  ret i32 %r
}
)",
     keq::checker::VerdictKind::Equivalent},

    {"division by a register: #DE matches LLVM's division UB",
     R"(
define i32 @div(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  ret i32 %q
}
)",
     keq::checker::VerdictKind::Refines},

    {"possible out-of-bounds store: refinement (x86 traps identically)",
     R"(
@buf = external global [16 x i8]
define void @poke(i64 %i, i8 %v) {
entry:
  %p = getelementptr [16 x i8], [16 x i8]* @buf, i64 0, i64 %i
  store i8 %v, i8* %p
  ret void
}
)",
     keq::checker::VerdictKind::Refines},
};

} // namespace

int
main()
{
    using namespace keq;
    int failures = 0;
    for (const Case &test_case : kCases) {
        llvmir::Module module = llvmir::parseModule(test_case.source);
        llvmir::verifyModuleOrThrow(module);
        driver::FunctionReport report = driver::validateFunction(
            module, module.functions.front(), {});
        bool ok = report.verdict.kind == test_case.expected;
        std::cout << test_case.title << "\n  verdict: "
                  << checker::verdictKindName(report.verdict.kind)
                  << " (expected "
                  << checker::verdictKindName(test_case.expected) << ") "
                  << (ok ? "OK" : "MISMATCH") << "\n";
        if (!report.verdict.reason.empty())
            std::cout << "  note:    " << report.verdict.reason << "\n";
        std::cout << "\n";
        failures += ok ? 0 : 1;
    }
    return failures;
}
