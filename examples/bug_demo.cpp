/**
 * @file
 * Reintroducing two real Instruction Selection bugs (paper Section 5.2).
 *
 * Both miscompilations were once shipped in clang releases:
 *  - PR25154: merging overlapping constant stores reorders a
 *    write-after-write dependency (Figures 8/9).
 *  - PR4737: narrowing a zext(load) folds into a *wider* load, reading
 *    out of bounds (Figures 10/11).
 *
 * For each bug the demo validates the translation with the correct
 * optimization (KEQ accepts) and with the bug reintroduced (KEQ rejects).
 */

#include <iostream>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"

namespace {

// Figure 8, with the constant-expression GEPs written as explicit
// instructions (our parser's only divergence from LLVM assembly).
const char *const kWawProgram = R"(
@b = external global [8 x i8]

define void @foo() {
entry:
  %p2 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 0, i16* %p2w
  %p3 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 3
  %p3w = bitcast i8* %p3 to i16*
  store i16 2, i16* %p3w
  %p0 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  ret void
}
)";

// Figure 10, with the i96 global modelled as a 12-byte array (our type
// system stops at i64; the out-of-bounds behaviour is byte-identical).
const char *const kLoadNarrowProgram = R"(
@a = external global [12 x i8]
@b = external global i64

define void @narrow() {
entry:
  %p = getelementptr inbounds [12 x i8], [12 x i8]* @a, i64 0, i64 8
  %pw = bitcast i8* %p to i32*
  %v = load i32, i32* %pw
  %w = zext i32 %v to i64
  store i64 %w, i64* @b
  ret void
}
)";

int
runCase(const char *title, const char *source, keq::isel::Bug bug,
        bool enable_merge, bool enable_fold, bool expect_valid)
{
    using namespace keq;
    llvmir::Module module = llvmir::parseModule(source);
    llvmir::verifyModuleOrThrow(module);

    driver::PipelineOptions options;
    options.isel.bug = bug;
    options.isel.mergeStores = enable_merge;
    options.isel.foldExtLoad = enable_fold;

    driver::FunctionReport report =
        driver::validateFunction(module, module.functions.front(),
                                 options);
    bool valid = report.outcome == driver::Outcome::Succeeded;
    std::cout << title << "\n  verdict: "
              << checker::verdictKindName(report.verdict.kind);
    if (!report.detail.empty())
        std::cout << "\n  detail:  " << report.detail;
    std::cout << "\n  expected " << (expect_valid ? "ACCEPT" : "REJECT")
              << " -> " << (valid == expect_valid ? "OK" : "MISMATCH")
              << "\n\n";
    return valid == expect_valid ? 0 : 1;
}

} // namespace

int
main()
{
    using keq::isel::Bug;
    int failures = 0;

    std::cout << "== Write-after-write store-merge bug (PR25154) ==\n\n";
    failures += runCase("store merging disabled", kWawProgram, Bug::None,
                        false, false, true);
    failures += runCase("correct store merging", kWawProgram, Bug::None,
                        true, false, true);
    failures += runCase("BUGGY store merging (reorders WAW dependency)",
                        kWawProgram, Bug::StoreMergeWAW, true, false,
                        false);

    std::cout << "== Load-narrowing bug (PR4737) ==\n\n";
    failures += runCase("correct zext(load) folding", kLoadNarrowProgram,
                        Bug::None, false, true, true);
    failures += runCase("BUGGY load widening (out-of-bounds read)",
                        kLoadNarrowProgram, Bug::LoadWidening, false,
                        true, false);

    if (failures == 0)
        std::cout << "All bug-study cases behaved as the paper reports.\n";
    return failures;
}
