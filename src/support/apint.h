#ifndef KEQ_SUPPORT_APINT_H
#define KEQ_SUPPORT_APINT_H

/**
 * @file
 * Arbitrary-width (1..64 bit) two's-complement integers.
 *
 * Both language semantics in this repository (LLVM IR and Virtual x86)
 * operate on integer values of width 1, 8, 16, 32 and 64 bits. ApInt is the
 * shared concrete value representation: a width tag plus a value that is
 * always kept masked to the width. All arithmetic wraps modulo 2^width,
 * matching LLVM IR semantics; explicit predicates report the overflow
 * conditions needed for undefined-behaviour detection (nsw/nuw) and for
 * x86 flag computation.
 */

#include <cstdint>
#include <string>

namespace keq::support {

/**
 * A fixed-width integer value of 1 to 64 bits, value kept masked.
 *
 * ApInt is a small value type (16 bytes); pass by value.
 */
class ApInt
{
  public:
    /** Default-constructs the 1-bit value 0. */
    constexpr ApInt() : width_(1), value_(0) {}

    /**
     * Constructs a value of the given width; excess high bits of @p value
     * are discarded.
     *
     * @param width Bit width, must be in [1, 64].
     * @param value Raw bits; masked to @p width.
     */
    constexpr ApInt(unsigned width, uint64_t value)
        : width_(static_cast<uint8_t>(width)), value_(value & mask(width))
    {}

    /** Returns the all-ones value of the given width (i.e. -1). */
    static constexpr ApInt allOnes(unsigned width)
    {
        return ApInt(width, ~uint64_t{0});
    }

    /** Returns the minimum signed value of the given width (100...0). */
    static constexpr ApInt signedMin(unsigned width)
    {
        return ApInt(width, uint64_t{1} << (width - 1));
    }

    /** Returns the maximum signed value of the given width (011...1). */
    static constexpr ApInt signedMax(unsigned width)
    {
        return ApInt(width, (uint64_t{1} << (width - 1)) - 1);
    }

    /** Bit width in [1, 64]. */
    constexpr unsigned width() const { return width_; }

    /** Value zero-extended to 64 bits. */
    constexpr uint64_t zext() const { return value_; }

    /** Value sign-extended to 64 bits. */
    constexpr int64_t
    sext() const
    {
        if (width_ == 64)
            return static_cast<int64_t>(value_);
        uint64_t sign_bit = uint64_t{1} << (width_ - 1);
        return static_cast<int64_t>((value_ ^ sign_bit) - sign_bit);
    }

    constexpr bool isZero() const { return value_ == 0; }
    constexpr bool isAllOnes() const { return value_ == mask(width_); }
    constexpr bool isNegative() const { return sext() < 0; }

    /** Extracts the byte at @p index (0 = least significant). */
    constexpr uint8_t
    byte(unsigned index) const
    {
        return static_cast<uint8_t>(value_ >> (8 * index));
    }

    // Wrapping arithmetic. Operands must have equal widths.
    ApInt add(ApInt rhs) const;
    ApInt sub(ApInt rhs) const;
    ApInt mul(ApInt rhs) const;
    /** Unsigned division; @p rhs must be nonzero. */
    ApInt udiv(ApInt rhs) const;
    /** Signed division (truncating); @p rhs must be nonzero. */
    ApInt sdiv(ApInt rhs) const;
    /** Unsigned remainder; @p rhs must be nonzero. */
    ApInt urem(ApInt rhs) const;
    /** Signed remainder (sign of dividend); @p rhs must be nonzero. */
    ApInt srem(ApInt rhs) const;

    // Bitwise operations.
    ApInt and_(ApInt rhs) const;
    ApInt or_(ApInt rhs) const;
    ApInt xor_(ApInt rhs) const;
    ApInt not_() const;
    ApInt neg() const;

    /**
     * Shifts. Shift amounts >= width yield 0 (or all sign bits for ashr),
     * mirroring the *defined* fallback our semantics give oversize shifts.
     */
    ApInt shl(ApInt amount) const;
    ApInt lshr(ApInt amount) const;
    ApInt ashr(ApInt amount) const;

    // Comparisons (operands must have equal widths).
    bool eq(ApInt rhs) const { return value_ == rhs.value_; }
    bool ne(ApInt rhs) const { return value_ != rhs.value_; }
    bool ult(ApInt rhs) const { return value_ < rhs.value_; }
    bool ule(ApInt rhs) const { return value_ <= rhs.value_; }
    bool ugt(ApInt rhs) const { return value_ > rhs.value_; }
    bool uge(ApInt rhs) const { return value_ >= rhs.value_; }
    bool slt(ApInt rhs) const { return sext() < rhs.sext(); }
    bool sle(ApInt rhs) const { return sext() <= rhs.sext(); }
    bool sgt(ApInt rhs) const { return sext() > rhs.sext(); }
    bool sge(ApInt rhs) const { return sext() >= rhs.sext(); }

    // Width changes.
    ApInt zextTo(unsigned new_width) const;
    ApInt sextTo(unsigned new_width) const;
    ApInt truncTo(unsigned new_width) const;

    // Overflow predicates (used for UB detection and eflags).
    bool addOverflowSigned(ApInt rhs) const;
    bool addOverflowUnsigned(ApInt rhs) const;
    bool subOverflowSigned(ApInt rhs) const;
    bool subOverflowUnsigned(ApInt rhs) const;
    bool mulOverflowSigned(ApInt rhs) const;
    bool mulOverflowUnsigned(ApInt rhs) const;

    /** Decimal rendering of the unsigned value. */
    std::string toString() const;
    /** Decimal rendering of the signed value. */
    std::string toSignedString() const;
    /** Hexadecimal rendering, zero padded to the width. */
    std::string toHexString() const;

    /** Structural equality: same width and same bits. */
    bool operator==(const ApInt &rhs) const = default;

  private:
    static constexpr uint64_t
    mask(unsigned width)
    {
        return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
    }

    uint8_t width_;
    uint64_t value_;
};

} // namespace keq::support

#endif // KEQ_SUPPORT_APINT_H
