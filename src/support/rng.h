#ifndef KEQ_SUPPORT_RNG_H
#define KEQ_SUPPORT_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generator (SplitMix64).
 *
 * The synthetic workload corpus (src/driver) and the property-based tests
 * must be reproducible across runs and platforms, so we avoid
 * std::mt19937's distribution nondeterminism and use our own generator and
 * range reduction.
 */

#include <cstdint>

namespace keq::support {

/** SplitMix64 generator: tiny, fast, and high quality for this use. */
class Rng
{
  public:
    explicit constexpr Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    constexpr uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); @p bound must be nonzero. */
    constexpr uint64_t
    below(uint64_t bound)
    {
        // Debiased modulo is unnecessary at our scales; keep it simple and
        // deterministic.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    constexpr uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    constexpr bool chancePercent(unsigned percent)
    {
        return below(100) < percent;
    }

  private:
    uint64_t state_;
};

} // namespace keq::support

#endif // KEQ_SUPPORT_RNG_H
