#ifndef KEQ_SUPPORT_RNG_H
#define KEQ_SUPPORT_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generator (SplitMix64).
 *
 * The synthetic workload corpus (src/driver), the fuzzing subsystem
 * (src/fuzz) and the property-based tests must be reproducible across
 * runs and platforms, so we avoid std::mt19937's distribution
 * nondeterminism and use our own generator and range reduction.
 *
 * Streams are *splittable*: split() forks an independent child stream
 * and stream() derives the i-th of a family of streams directly from a
 * (seed, index) pair. Consumers that must not perturb each other — the
 * fuzz generator, mutator, and oracle of one campaign iteration — each
 * draw from their own split, so adding draws to one never shifts the
 * values another sees. stream() is also what makes parallel campaigns
 * byte-identical across worker counts: iteration i's randomness depends
 * only on (seed, i), never on scheduling order.
 */

#include <cstdint>
#include <utility>
#include <vector>

namespace keq::support {

/** SplitMix64 generator: tiny, fast, and high quality for this use. */
class Rng
{
  public:
    explicit constexpr Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    constexpr uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); @p bound must be nonzero. */
    constexpr uint64_t
    below(uint64_t bound)
    {
        // Debiased modulo is unnecessary at our scales; keep it simple and
        // deterministic.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    constexpr uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    constexpr bool chancePercent(unsigned percent)
    {
        return below(100) < percent;
    }

    /**
     * Forks an independent child stream, advancing this stream by one
     * draw. The child's values do not overlap this stream's: its seed is
     * a full SplitMix64 output remixed with a distinct constant, so
     * parent and child walk unrelated orbits.
     */
    constexpr Rng
    split()
    {
        return Rng(next() ^ 0x3c79ac492ba7b653ull);
    }

    /**
     * The @p index-th member of the stream family rooted at @p seed.
     * Pure in (seed, index): any party can reconstruct any member
     * without drawing from — or even holding — any other stream.
     */
    static constexpr Rng
    stream(uint64_t seed, uint64_t index)
    {
        Rng mixer(seed ^ (index * 0xd1342543de82ef95ull));
        return mixer.split();
    }

    /** Uniform choice from a nonempty vector. */
    template <typename T>
    const T &
    choice(const std::vector<T> &pool)
    {
        return pool[below(pool.size())];
    }

    /** In-place Fisher–Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (size_t i = values.size(); i > 1; --i) {
            size_t j = below(i);
            std::swap(values[i - 1], values[j]);
        }
    }

  private:
    uint64_t state_;
};

} // namespace keq::support

#endif // KEQ_SUPPORT_RNG_H
