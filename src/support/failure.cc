#include "src/support/failure.h"

#include <cstring>

#include "src/support/diagnostics.h"

namespace keq {

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
    case FailureKind::None:
        return "none";
    case FailureKind::Timeout:
        return "timeout";
    case FailureKind::MemoryBudget:
        return "memory-budget";
    case FailureKind::SolverUnknown:
        return "solver-unknown";
    case FailureKind::SolverCrash:
        return "solver-crash";
    case FailureKind::Cancelled:
        return "cancelled";
    case FailureKind::WorkerKilled:
        return "worker-killed";
    case FailureKind::WorkerOom:
        return "worker-oom";
    case FailureKind::PortfolioDisagreement:
        return "portfolio-disagreement";
    case FailureKind::AuditMismatch:
        return "audit-mismatch";
    }
    KEQ_ASSERT(false, "bad FailureKind");
    return "?";
}

bool
failureKindFromName(const char *name, FailureKind &out)
{
    static constexpr FailureKind kAll[] = {
        FailureKind::None,          FailureKind::Timeout,
        FailureKind::MemoryBudget,  FailureKind::SolverUnknown,
        FailureKind::SolverCrash,   FailureKind::Cancelled,
        FailureKind::WorkerKilled,  FailureKind::WorkerOom,
        FailureKind::PortfolioDisagreement,
        FailureKind::AuditMismatch,
    };
    for (FailureKind kind : kAll) {
        if (std::strcmp(name, failureKindName(kind)) == 0) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // namespace keq
