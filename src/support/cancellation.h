#ifndef KEQ_SUPPORT_CANCELLATION_H
#define KEQ_SUPPORT_CANCELLATION_H

/**
 * @file
 * Cooperative cancellation token for long-running validation work.
 *
 * A copyable handle onto one shared flag. The producer (keqc's SIGINT
 * handler, a test harness, the fuzz driver's --max-seconds cap) calls
 * cancel(); consumers (the checker's budget polls, the guarded solver's
 * watchdog, pipeline loops) poll cancelled() at natural yield points and
 * wind down with FailureKind::Cancelled. Copies alias the same flag, so
 * one token can fan out across every worker of a pipeline run.
 *
 * A default-constructed token is *null*: cancelled() is always false and
 * cancel() is a no-op, so call sites need no "is there a token?" guard.
 */

#include <atomic>
#include <memory>

namespace keq::support {

/** Copyable, thread-safe, possibly-null cancellation handle. */
class CancellationToken
{
  public:
    /** Null token: never cancelled. */
    CancellationToken() = default;

    /** Live token backed by a fresh flag. */
    static CancellationToken create()
    {
        CancellationToken token;
        token.flag_ = std::make_shared<std::atomic<bool>>(false);
        return token;
    }

    /** Sets the flag; safe from any thread and from signal-ish contexts. */
    void cancel() const
    {
        if (flag_)
            flag_->store(true, std::memory_order_relaxed);
    }

    bool cancelled() const
    {
        return flag_ && flag_->load(std::memory_order_relaxed);
    }

    /** True when this token can ever report cancellation. */
    bool valid() const { return flag_ != nullptr; }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

} // namespace keq::support

#endif // KEQ_SUPPORT_CANCELLATION_H
