#include "src/support/histogram.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::support {

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)), counts_(boundaries_.size(), 0)
{
    KEQ_ASSERT(!boundaries_.empty(), "histogram needs at least one bucket");
    KEQ_ASSERT(std::is_sorted(boundaries_.begin(), boundaries_.end()),
               "histogram boundaries must ascend");
}

Histogram
Histogram::logSpaced(double lo, double step, unsigned count)
{
    std::vector<double> bounds;
    double b = lo;
    for (unsigned i = 0; i < count; ++i) {
        bounds.push_back(b);
        b *= step;
    }
    return Histogram(std::move(bounds));
}

void
Histogram::add(double value)
{
    auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                               value);
    size_t index = it == boundaries_.begin()
                       ? 0
                       : static_cast<size_t>(it - boundaries_.begin()) - 1;
    ++counts_[index];
    ++total_;
    samples_.push_back(value);
}

double
Histogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
Histogram::median() const
{
    return percentile(50.0);
}

double
Histogram::min() const
{
    return samples_.empty()
               ? 0.0
               : *std::min_element(samples_.begin(), samples_.end());
}

double
Histogram::max() const
{
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
}

double
Histogram::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = static_cast<size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string
Histogram::render(const std::string &unit) const
{
    std::ostringstream os;
    uint64_t peak = counts_.empty()
                        ? 0
                        : *std::max_element(counts_.begin(), counts_.end());
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os.setf(std::ios::fixed);
        os.precision(3);
        os << "[" << boundaries_[i] << unit << ", ";
        if (i + 1 < boundaries_.size())
            os << boundaries_[i + 1] << unit << ")";
        else
            os << "inf)";
        os << "\t" << counts_[i] << "\t";
        unsigned bar = peak == 0
                           ? 0
                           : static_cast<unsigned>(
                                 60.0 * static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak));
        for (unsigned j = 0; j < std::max(1u, bar); ++j)
            os << '#';
        os << "\n";
    }
    return os.str();
}

} // namespace keq::support
