#include "src/support/strings.h"

#include <cctype>

namespace keq::support {

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    while (begin < text.size() &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    size_t end = text.size();
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::vector<std::string>
split(std::string_view text, char separator)
{
    std::vector<std::string> pieces;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(separator, start);
        if (pos == std::string_view::npos) {
            pieces.emplace_back(text.substr(start));
            return pieces;
        }
        pieces.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> pieces;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
        }
        if (i > start)
            pieces.emplace_back(text.substr(start, i - start));
    }
    return pieces;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view separator)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            out += separator;
        out += pieces[i];
    }
    return out;
}

} // namespace keq::support
