#include "src/support/thread_pool.h"

#include <atomic>
#include <memory>

#include "src/support/diagnostics.h"

namespace keq::support {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
ThreadPool::submit(std::function<void()> task)
{
    KEQ_ASSERT(task != nullptr, "ThreadPool::submit: null task");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        KEQ_ASSERT(!stopping_, "ThreadPool::submit: pool is stopping");
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
    if (taskError_) {
        std::exception_ptr error = taskError_;
        taskError_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            // A throwing task must fail only its own unit of work — never
            // std::terminate the process. The first exception (in
            // completion order) is surfaced to the next wait() caller.
            std::unique_lock<std::mutex> lock(mutex_);
            if (!taskError_)
                taskError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, size_t count,
            const std::function<void(size_t)> &body)
{
    if (count == 0)
        return;
    // One claiming task per worker; indices are handed out dynamically so
    // a slow function (the Figure 7 tail) does not serialize its batch.
    struct Shared
    {
        std::atomic<size_t> next{0};
        std::mutex errorMutex;
        std::exception_ptr error;
    };
    auto shared = std::make_shared<Shared>();
    size_t tasks = std::min<size_t>(pool.threadCount(), count);
    for (size_t t = 0; t < tasks; ++t) {
        pool.submit([shared, count, &body] {
            for (;;) {
                size_t index =
                    shared->next.fetch_add(1, std::memory_order_relaxed);
                if (index >= count)
                    return;
                try {
                    body(index);
                } catch (...) {
                    std::unique_lock<std::mutex> lock(
                        shared->errorMutex);
                    if (!shared->error)
                        shared->error = std::current_exception();
                }
            }
        });
    }
    pool.wait();
    if (shared->error)
        std::rethrow_exception(shared->error);
}

} // namespace keq::support
