#ifndef KEQ_SUPPORT_STOPWATCH_H
#define KEQ_SUPPORT_STOPWATCH_H

/**
 * @file
 * Monotonic wall-clock stopwatch for budgets and reporting.
 */

#include <chrono>

namespace keq::support {

/** Measures elapsed wall time from construction or the last reset. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace keq::support

#endif // KEQ_SUPPORT_STOPWATCH_H
