#ifndef KEQ_SUPPORT_THREAD_POOL_H
#define KEQ_SUPPORT_THREAD_POOL_H

/**
 * @file
 * Fixed-size thread pool for the parallel validation pipeline.
 *
 * Function-granularity validation (paper Section 4.5) is embarrassingly
 * parallel: every function pair is an independent equivalence instance, so
 * the driver only needs a plain fixed pool — no work stealing, no task
 * dependencies. Workers pull tasks from one locked deque; the per-task
 * unit of work (a whole function validation) is far too coarse for queue
 * contention to matter.
 *
 * Ownership rule for users (see DESIGN.md §4): anything that is not
 * thread safe — TermFactory, Z3Solver, symbolic semantics — must be
 * created *inside* the task so each worker owns its own instance. The
 * pool itself shares nothing between tasks.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace keq::support {

/** Plain fixed pool of worker threads over one task queue. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers after draining the queue. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueues @p task for execution on some worker. A throwing task
     * fails only its own unit of work: the worker survives, remaining
     * tasks still run, and the first exception is rethrown from the
     * next wait(). parallelFor layers its own first-exception capture
     * on top for loop bodies.
     */
    void submit(std::function<void()> task);

    /**
     * Blocks until every submitted task has finished. Rethrows the
     * first exception thrown by a directly-submitted task since the
     * previous wait(), then clears it.
     */
    void wait();

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_; ///< Signals workers: work or shutdown.
    std::condition_variable idle_; ///< Signals waiters: everything done.
    size_t inFlight_ = 0;          ///< Queued + currently running tasks.
    std::exception_ptr taskError_; ///< First uncaught task exception.
    bool stopping_ = false;
};

/**
 * Runs body(0) .. body(count - 1) on the pool and blocks until all are
 * done. Indices are claimed dynamically, so uneven task costs balance
 * across workers. If any invocation throws, the first exception (in
 * completion order) is rethrown in the caller after the loop drains;
 * remaining indices still run.
 */
void parallelFor(ThreadPool &pool, size_t count,
                 const std::function<void(size_t)> &body);

} // namespace keq::support

#endif // KEQ_SUPPORT_THREAD_POOL_H
