#ifndef KEQ_SUPPORT_SUBPROCESS_H
#define KEQ_SUPPORT_SUBPROCESS_H

/**
 * @file
 * Minimal POSIX subprocess primitive for the solver sandbox.
 *
 * The out-of-process solver workers (smt::WorkerSupervisor) need exactly
 * four things from the OS: spawn a child with its stdin/stdout replaced
 * by pipes, exchange bytes on those pipes with a deadline, deliver
 * signals, and classify how the child died. Subprocess wraps that and
 * nothing more — no shell, no pty, no environment surgery — so the
 * sandbox layer stays portable across the POSIX systems we build on.
 *
 * Reads are deadline-aware (poll + read loop): the supervisor's
 * heartbeat protocol turns "no bytes for too long" into a contained,
 * classified worker failure instead of a hung parent. Writes are
 * blocking but EPIPE-safe: SIGPIPE must be ignored process-wide (the
 * supervisor arranges this) so writing to a crashed worker surfaces as
 * an error return, never a parent death.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace keq::support {

/** How a child process terminated (decoded waitpid status). */
struct ExitStatus
{
    bool exited = false;   ///< normal exit; exitCode is valid
    int exitCode = 0;
    bool signaled = false; ///< killed by a signal; signal is valid
    int signal = 0;

    /** "exit code N" / "signal N (SIGxxx)" for diagnostics. */
    std::string describe() const;
};

/** Result of a deadline-aware read. */
enum class IoStatus {
    Ok,      ///< the requested bytes arrived
    Eof,     ///< the peer closed the pipe (worker died)
    Timeout, ///< deadline expired with bytes still missing
    Error,   ///< errno-level failure
};

/**
 * One spawned child connected by a stdin/stdout pipe pair.
 *
 * Movable, not copyable. The destructor closes the pipes and, if the
 * child is still running, SIGKILLs and reaps it — a Subprocess never
 * outlives its owner as a zombie.
 */
class Subprocess
{
  public:
    Subprocess() = default;
    ~Subprocess();

    Subprocess(Subprocess &&rhs) noexcept;
    Subprocess &operator=(Subprocess &&rhs) noexcept;
    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    /**
     * Forks and execs @p argv (argv[0] is the binary path; PATH is not
     * searched). The child's stdin/stdout become the pipe ends; stderr
     * is inherited so worker diagnostics reach the operator.
     *
     * @return false with @p error set when the pipes or fork fail, or
     *         when the exec fails inside the child (detected by the
     *         close-on-exec status pipe, so a bad binary path reports
     *         here rather than as a dead worker later).
     */
    bool spawn(const std::vector<std::string> &argv, std::string &error);

    bool running() const { return pid_ > 0 && !reaped_; }
    int pid() const { return pid_; }

    /**
     * Appends to @p out until @p bytes more bytes arrived or
     * @p deadline_ms expired (0 = wait forever). Partial data stays in
     * @p out on Timeout/Eof so callers can diagnose torn frames.
     */
    IoStatus readExact(std::string &out, size_t bytes,
                       unsigned deadline_ms);

    /** Writes all of @p bytes; false on any error (e.g. dead peer). */
    bool writeAll(const std::string &bytes);

    /** Sends @p signo; false when the child is already gone. */
    bool kill(int signo);

    /**
     * Non-blocking reap. Returns true once the child has been waited
     * for (then @p status is valid); repeated calls keep returning the
     * cached status.
     */
    bool tryWait(ExitStatus &status);

    /**
     * Blocking reap with an escalation fuse: waits up to @p grace_ms
     * for a voluntary exit, then SIGKILLs and waits for real.
     */
    ExitStatus waitOrKill(unsigned grace_ms);

  private:
    void closePipes();
    void reset();

    int pid_ = -1;
    int inFd_ = -1;  ///< parent write end (child stdin)
    int outFd_ = -1; ///< parent read end (child stdout)
    bool reaped_ = false;
    ExitStatus status_;
};

/** Directory of the running executable ("" when undeterminable). */
std::string currentExecutableDir();

/** True when @p path names an executable regular file. */
bool isExecutableFile(const std::string &path);

} // namespace keq::support

#endif // KEQ_SUPPORT_SUBPROCESS_H
