#ifndef KEQ_SUPPORT_HISTOGRAM_H
#define KEQ_SUPPORT_HISTOGRAM_H

/**
 * @file
 * Bucketed histograms for the evaluation harness (Figure 7 reproductions).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace keq::support {

/**
 * A histogram over explicit bucket boundaries.
 *
 * Buckets are [b0, b1), [b1, b2), ..., [b_{n-1}, +inf). Values below b0
 * fall in the first bucket.
 */
class Histogram
{
  public:
    /** @param boundaries Ascending bucket lower bounds; must be nonempty. */
    explicit Histogram(std::vector<double> boundaries);

    /** Returns log-spaced boundaries: lo, lo*step, lo*step^2, ... (count). */
    static Histogram logSpaced(double lo, double step, unsigned count);

    void add(double value);

    size_t bucketCount() const { return counts_.size(); }
    uint64_t bucketCountAt(size_t index) const { return counts_[index]; }
    uint64_t total() const { return total_; }

    double mean() const;
    double median() const;
    double min() const;
    double max() const;
    /** p in [0, 100]. */
    double percentile(double p) const;

    /**
     * Renders an ASCII table with one row per nonempty bucket:
     * "[lo, hi)  count  bar".
     *
     * @param unit Label appended to bucket bounds (e.g. "s", "insts").
     */
    std::string render(const std::string &unit) const;

  private:
    std::vector<double> boundaries_;
    std::vector<uint64_t> counts_;
    std::vector<double> samples_; // kept for exact percentiles
    uint64_t total_ = 0;
};

} // namespace keq::support

#endif // KEQ_SUPPORT_HISTOGRAM_H
