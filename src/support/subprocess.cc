#include "src/support/subprocess.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace keq::support {

using Clock = std::chrono::steady_clock;

std::string
ExitStatus::describe() const
{
    if (exited)
        return "exit code " + std::to_string(exitCode);
    if (signaled) {
        std::string name;
#ifdef _GNU_SOURCE
        const char *abbrev = sigabbrev_np(signal);
        if (abbrev != nullptr)
            name = std::string(" (SIG") + abbrev + ")";
#endif
        return "signal " + std::to_string(signal) + name;
    }
    return "still running";
}

Subprocess::~Subprocess()
{
    if (running()) {
        ::kill(pid_, SIGKILL);
        int raw = 0;
        ::waitpid(pid_, &raw, 0);
    }
    closePipes();
}

Subprocess::Subprocess(Subprocess &&rhs) noexcept
{
    *this = std::move(rhs);
}

Subprocess &
Subprocess::operator=(Subprocess &&rhs) noexcept
{
    if (this != &rhs) {
        this->~Subprocess();
        pid_ = rhs.pid_;
        inFd_ = rhs.inFd_;
        outFd_ = rhs.outFd_;
        reaped_ = rhs.reaped_;
        status_ = rhs.status_;
        rhs.reset();
    }
    return *this;
}

void
Subprocess::reset()
{
    pid_ = -1;
    inFd_ = -1;
    outFd_ = -1;
    reaped_ = false;
    status_ = ExitStatus{};
}

void
Subprocess::closePipes()
{
    if (inFd_ >= 0)
        ::close(inFd_);
    if (outFd_ >= 0)
        ::close(outFd_);
    inFd_ = -1;
    outFd_ = -1;
}

bool
Subprocess::spawn(const std::vector<std::string> &argv,
                  std::string &error)
{
    if (argv.empty()) {
        error = "empty argv";
        return false;
    }
    int toChild[2];   // parent writes -> child stdin
    int fromChild[2]; // child stdout -> parent reads
    int execStatus[2]; // close-on-exec: reports exec failure
    if (::pipe(toChild) != 0) {
        error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    if (::pipe(fromChild) != 0) {
        error = std::string("pipe: ") + std::strerror(errno);
        ::close(toChild[0]);
        ::close(toChild[1]);
        return false;
    }
    if (::pipe(execStatus) != 0 ||
        ::fcntl(execStatus[1], F_SETFD, FD_CLOEXEC) != 0) {
        error = std::string("pipe: ") + std::strerror(errno);
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        return false;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        error = std::string("fork: ") + std::strerror(errno);
        for (int fd : {toChild[0], toChild[1], fromChild[0],
                       fromChild[1], execStatus[0], execStatus[1]})
            ::close(fd);
        return false;
    }

    if (pid == 0) {
        // Child. Only async-signal-safe calls until exec.
        ::dup2(toChild[0], STDIN_FILENO);
        ::dup2(fromChild[1], STDOUT_FILENO);
        for (int fd : {toChild[0], toChild[1], fromChild[0],
                       fromChild[1], execStatus[0]})
            ::close(fd);
        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &arg : argv)
            args.push_back(const_cast<char *>(arg.c_str()));
        args.push_back(nullptr);
        ::execv(args[0], args.data());
        // exec failed: report errno through the status pipe, then die.
        int err = errno;
        ssize_t ignored = ::write(execStatus[1], &err, sizeof err);
        (void)ignored;
        ::_exit(127);
    }

    // Parent.
    ::close(toChild[0]);
    ::close(fromChild[1]);
    ::close(execStatus[1]);
    int execErrno = 0;
    ssize_t got = ::read(execStatus[0], &execErrno, sizeof execErrno);
    ::close(execStatus[0]);
    if (got > 0) {
        // exec failed inside the child; reap it now.
        int raw = 0;
        ::waitpid(pid, &raw, 0);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        error = argv[0] + ": exec failed: " + std::strerror(execErrno);
        return false;
    }

    pid_ = pid;
    inFd_ = toChild[1];
    outFd_ = fromChild[0];
    reaped_ = false;
    status_ = ExitStatus{};
    return true;
}

IoStatus
Subprocess::readExact(std::string &out, size_t bytes,
                      unsigned deadline_ms)
{
    if (outFd_ < 0)
        return IoStatus::Error;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms);
    size_t remaining = bytes;
    char buffer[4096];
    while (remaining > 0) {
        int wait_ms = -1;
        if (deadline_ms > 0) {
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - Clock::now());
            if (left.count() <= 0)
                return IoStatus::Timeout;
            wait_ms = static_cast<int>(left.count());
        }
        struct pollfd pfd = {outFd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (ready == 0)
            return IoStatus::Timeout;
        size_t chunk = remaining < sizeof buffer ? remaining
                                                 : sizeof buffer;
        ssize_t got = ::read(outFd_, buffer, chunk);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (got == 0)
            return IoStatus::Eof;
        out.append(buffer, static_cast<size_t>(got));
        remaining -= static_cast<size_t>(got);
    }
    return IoStatus::Ok;
}

bool
Subprocess::writeAll(const std::string &bytes)
{
    if (inFd_ < 0)
        return false;
    size_t offset = 0;
    while (offset < bytes.size()) {
        ssize_t wrote =
            ::write(inFd_, bytes.data() + offset, bytes.size() - offset);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false; // EPIPE: dead worker (SIGPIPE is ignored)
        }
        offset += static_cast<size_t>(wrote);
    }
    return true;
}

bool
Subprocess::kill(int signo)
{
    if (pid_ <= 0 || reaped_)
        return false;
    return ::kill(pid_, signo) == 0;
}

bool
Subprocess::tryWait(ExitStatus &status)
{
    if (pid_ <= 0)
        return false;
    if (reaped_) {
        status = status_;
        return true;
    }
    int raw = 0;
    pid_t got = ::waitpid(pid_, &raw, WNOHANG);
    if (got != pid_)
        return false;
    reaped_ = true;
    if (WIFEXITED(raw)) {
        status_.exited = true;
        status_.exitCode = WEXITSTATUS(raw);
    } else if (WIFSIGNALED(raw)) {
        status_.signaled = true;
        status_.signal = WTERMSIG(raw);
    }
    status = status_;
    return true;
}

ExitStatus
Subprocess::waitOrKill(unsigned grace_ms)
{
    ExitStatus status;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(grace_ms);
    while (!tryWait(status)) {
        if (Clock::now() >= deadline) {
            kill(SIGKILL);
            int raw = 0;
            if (::waitpid(pid_, &raw, 0) == pid_) {
                reaped_ = true;
                if (WIFEXITED(raw)) {
                    status_.exited = true;
                    status_.exitCode = WEXITSTATUS(raw);
                } else if (WIFSIGNALED(raw)) {
                    status_.signaled = true;
                    status_.signal = WTERMSIG(raw);
                }
            }
            return status_;
        }
        ::usleep(2000);
    }
    return status;
}

std::string
currentExecutableDir()
{
    char buffer[4096];
    ssize_t got =
        ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
    if (got <= 0)
        return {};
    buffer[got] = '\0';
    std::string path(buffer);
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash);
}

bool
isExecutableFile(const std::string &path)
{
    struct stat st;
    return !path.empty() && ::stat(path.c_str(), &st) == 0 &&
           S_ISREG(st.st_mode) && ::access(path.c_str(), X_OK) == 0;
}

} // namespace keq::support
