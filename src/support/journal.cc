#include "src/support/journal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "src/support/diagnostics.h"

namespace keq::support {

const char *
fsyncPolicyName(FsyncPolicy policy)
{
    switch (policy) {
    case FsyncPolicy::Record:
        return "record";
    case FsyncPolicy::Batch:
        return "batch";
    case FsyncPolicy::Off:
        return "off";
    }
    KEQ_ASSERT(false, "bad FsyncPolicy");
    return "?";
}

bool
fsyncPolicyFromName(const char *name, FsyncPolicy &out)
{
    static constexpr FsyncPolicy kAll[] = {
        FsyncPolicy::Record,
        FsyncPolicy::Batch,
        FsyncPolicy::Off,
    };
    for (FsyncPolicy policy : kAll) {
        if (std::strcmp(name, fsyncPolicyName(policy)) == 0) {
            out = policy;
            return true;
        }
    }
    return false;
}

uint64_t
fnv1a64(const std::string &bytes)
{
    uint64_t hash = 1469598103934665603ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
escapeLine(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out += c;
        }
    }
    return out;
}

bool
unescapeLine(const std::string &line, std::string &out)
{
    out.clear();
    out.reserve(line.size());
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++i == line.size())
            return false; // trailing backslash: torn record
        switch (line[i]) {
        case '\\':
            out += '\\';
            break;
        case 'n':
            out += '\n';
            break;
        case 't':
            out += '\t';
            break;
        case 'r':
            out += '\r';
            break;
        default:
            return false;
        }
    }
    return true;
}

namespace {

std::string
headerLine(const std::string &kind)
{
    return "keq-journal v1 " + kind;
}

std::string
checksumHex(uint64_t hash)
{
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(hash));
    return buffer;
}

} // namespace

namespace {

void
writeFully(int fd, const std::string &bytes, const std::string &path)
{
    size_t offset = 0;
    while (offset < bytes.size()) {
        ssize_t wrote =
            ::write(fd, bytes.data() + offset, bytes.size() - offset);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            fatal("failed writing checkpoint journal: " + path + ": " +
                  std::strerror(errno));
        }
        offset += static_cast<size_t>(wrote);
    }
}

} // namespace

JournalWriter::JournalWriter(std::string path, std::string kind,
                             FsyncPolicy policy, unsigned batchInterval)
    : path_(std::move(path)), kind_(std::move(kind)), policy_(policy),
      batchInterval_(batchInterval == 0 ? 1 : batchInterval)
{}

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
JournalWriter::append(const std::string &payload)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (fd_ < 0) {
        // O_APPEND keeps every record atomic against concurrent
        // writers of the same file; the header is stamped only when
        // the file is empty — a journal being resumed carries one.
        fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                     0644);
        if (fd_ < 0)
            fatal("cannot open checkpoint journal for append: " +
                  path_ + ": " + std::strerror(errno));
        off_t end = ::lseek(fd_, 0, SEEK_END);
        if (end == 0)
            writeFully(fd_, headerLine(kind_) + "\n", path_);
    }
    writeFully(fd_,
               checksumHex(fnv1a64(payload)) + ' ' +
                   escapeLine(payload) + "\n",
               path_);
    ++unsynced_;
    switch (policy_) {
    case FsyncPolicy::Record:
        syncLocked();
        break;
    case FsyncPolicy::Batch:
        if (unsynced_ >= batchInterval_)
            syncLocked();
        break;
    case FsyncPolicy::Off:
        break;
    }
}

void
JournalWriter::sync()
{
    std::unique_lock<std::mutex> lock(mutex_);
    syncLocked();
}

void
JournalWriter::syncLocked()
{
    if (fd_ < 0)
        return;
    if (::fsync(fd_) != 0)
        fatal("fsync failed on checkpoint journal: " + path_ + ": " +
              std::strerror(errno));
    unsynced_ = 0;
}

size_t
JournalWriter::unsyncedRecords() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return unsynced_;
}

JournalLoad
loadJournal(const std::string &path, const std::string &kind,
            JournalScan scan)
{
    JournalLoad result;
    std::ifstream file(path);
    if (!file)
        return result; // no journal yet: a fresh run
    std::string line;
    if (!std::getline(file, line))
        return result; // empty file (torn before the header)
    if (line != headerLine(kind)) {
        result.ok = false;
        result.error = path + ": not a keq '" + kind +
                       "' journal (header: '" + line + "')";
        return result;
    }
    while (std::getline(file, line)) {
        // "<16 hex> <escaped payload>"; the payload may be empty, so
        // 17 chars (checksum + separator) is already a whole record.
        bool intact = line.size() >= 17 && line[16] == ' ';
        std::string payload;
        uint64_t expected = 0;
        if (intact) {
            std::istringstream hex(line.substr(0, 16));
            hex >> std::hex >> expected;
            intact = !hex.fail() &&
                     unescapeLine(line.substr(17), payload) &&
                     fnv1a64(payload) == expected;
        }
        if (!intact) {
            ++result.truncatedRecords;
            if (scan == JournalScan::SkipCorruptRecords)
                continue; // this record failed alone; the rest stand
            // Torn or corrupt: drop this record and the untrusted tail.
            while (std::getline(file, line))
                ++result.truncatedRecords;
            break;
        }
        result.records.push_back(std::move(payload));
    }
    return result;
}

} // namespace keq::support
