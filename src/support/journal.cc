#include "src/support/journal.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::support {

uint64_t
fnv1a64(const std::string &bytes)
{
    uint64_t hash = 1469598103934665603ull;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
escapeLine(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out += c;
        }
    }
    return out;
}

bool
unescapeLine(const std::string &line, std::string &out)
{
    out.clear();
    out.reserve(line.size());
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c != '\\') {
            out += c;
            continue;
        }
        if (++i == line.size())
            return false; // trailing backslash: torn record
        switch (line[i]) {
        case '\\':
            out += '\\';
            break;
        case 'n':
            out += '\n';
            break;
        case 't':
            out += '\t';
            break;
        case 'r':
            out += '\r';
            break;
        default:
            return false;
        }
    }
    return true;
}

namespace {

std::string
headerLine(const std::string &kind)
{
    return "keq-journal v1 " + kind;
}

std::string
checksumHex(uint64_t hash)
{
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(hash));
    return buffer;
}

} // namespace

JournalWriter::JournalWriter(std::string path, std::string kind)
    : path_(std::move(path)), kind_(std::move(kind))
{}

void
JournalWriter::append(const std::string &payload)
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::ofstream file(path_, std::ios::app);
    if (!file)
        fatal("cannot open checkpoint journal for append: " + path_);
    if (!headerWritten_) {
        // Only stamp the header when the file is empty — an existing
        // journal being resumed already carries one.
        std::ifstream probe(path_, std::ios::ate | std::ios::binary);
        if (!probe || probe.tellg() == std::streampos(0))
            file << headerLine(kind_) << "\n";
        headerWritten_ = true;
    }
    file << checksumHex(fnv1a64(payload)) << ' ' << escapeLine(payload)
         << "\n";
    file.flush();
    if (!file)
        fatal("failed writing checkpoint journal: " + path_);
}

JournalLoad
loadJournal(const std::string &path, const std::string &kind)
{
    JournalLoad result;
    std::ifstream file(path);
    if (!file)
        return result; // no journal yet: a fresh run
    std::string line;
    if (!std::getline(file, line))
        return result; // empty file (torn before the header)
    if (line != headerLine(kind)) {
        result.ok = false;
        result.error = path + ": not a keq '" + kind +
                       "' journal (header: '" + line + "')";
        return result;
    }
    while (std::getline(file, line)) {
        // "<16 hex> <escaped payload>"; the payload may be empty, so
        // 17 chars (checksum + separator) is already a whole record.
        bool intact = line.size() >= 17 && line[16] == ' ';
        std::string payload;
        uint64_t expected = 0;
        if (intact) {
            std::istringstream hex(line.substr(0, 16));
            hex >> std::hex >> expected;
            intact = !hex.fail() &&
                     unescapeLine(line.substr(17), payload) &&
                     fnv1a64(payload) == expected;
        }
        if (!intact) {
            // Torn or corrupt: drop this record and the untrusted tail.
            ++result.truncatedRecords;
            while (std::getline(file, line))
                ++result.truncatedRecords;
            break;
        }
        result.records.push_back(std::move(payload));
    }
    return result;
}

} // namespace keq::support
