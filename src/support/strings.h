#ifndef KEQ_SUPPORT_STRINGS_H
#define KEQ_SUPPORT_STRINGS_H

/**
 * @file
 * Small string utilities used by the parsers and printers.
 */

#include <string>
#include <string_view>
#include <vector>

namespace keq::support {

/** Removes leading and trailing whitespace. */
std::string_view trim(std::string_view text);

/** Splits on a separator character; empty pieces are kept. */
std::vector<std::string> split(std::string_view text, char separator);

/** Splits on arbitrary whitespace runs; empty pieces are dropped. */
std::vector<std::string> splitWhitespace(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/** Joins pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view separator);

} // namespace keq::support

#endif // KEQ_SUPPORT_STRINGS_H
