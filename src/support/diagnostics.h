#ifndef KEQ_SUPPORT_DIAGNOSTICS_H
#define KEQ_SUPPORT_DIAGNOSTICS_H

/**
 * @file
 * Error reporting primitives shared by every module.
 *
 * Two failure classes, following the fatal()/panic() split common in
 * systems simulators:
 *  - Error: the *input* is at fault (unparsable program, unsupported
 *    construct, bad configuration). Thrown as an exception and reported to
 *    the user.
 *  - internal assertion failure (KEQ_ASSERT): the *library* is at fault;
 *    throws InternalError carrying the failing expression and location.
 */

#include <stdexcept>
#include <string>

namespace keq::support {

/** User-level error: bad input program, configuration, or query. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** Internal invariant violation; indicates a bug in this library. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &message)
        : std::logic_error(message)
    {}
};

/** Builds and throws an InternalError; used by KEQ_ASSERT. */
[[noreturn]] void assertionFailed(const char *expr, const char *file,
                                  int line, const std::string &message);

/** Builds and throws an Error with the given message. */
[[noreturn]] void fatal(const std::string &message);

} // namespace keq::support

/**
 * Asserts an internal invariant; throws keq::support::InternalError on
 * failure. Always enabled (validation correctness depends on these checks).
 */
#define KEQ_ASSERT(expr, msg)                                               \
    do {                                                                    \
        if (!(expr))                                                        \
            ::keq::support::assertionFailed(#expr, __FILE__, __LINE__,     \
                                            (msg));                        \
    } while (false)

#endif // KEQ_SUPPORT_DIAGNOSTICS_H
