#include "src/support/diagnostics.h"

#include <sstream>

namespace keq::support {

void
assertionFailed(const char *expr, const char *file, int line,
                const std::string &message)
{
    std::ostringstream os;
    os << "internal error: " << message << " [" << expr << " at " << file
       << ":" << line << "]";
    throw InternalError(os.str());
}

void
fatal(const std::string &message)
{
    throw Error(message);
}

} // namespace keq::support
