#include "src/support/apint.h"

#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::support {

ApInt
ApInt::add(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::add width mismatch");
    return ApInt(width_, value_ + rhs.value_);
}

ApInt
ApInt::sub(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::sub width mismatch");
    return ApInt(width_, value_ - rhs.value_);
}

ApInt
ApInt::mul(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::mul width mismatch");
    return ApInt(width_, value_ * rhs.value_);
}

ApInt
ApInt::udiv(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::udiv width mismatch");
    KEQ_ASSERT(!rhs.isZero(), "ApInt::udiv division by zero");
    return ApInt(width_, value_ / rhs.value_);
}

ApInt
ApInt::sdiv(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::sdiv width mismatch");
    KEQ_ASSERT(!rhs.isZero(), "ApInt::sdiv division by zero");
    // INT_MIN / -1 wraps (the semantics layers flag it as UB before
    // reaching here in contexts where it matters).
    if (sext() == signedMin(width_).sext() && rhs.isAllOnes())
        return signedMin(width_);
    return ApInt(width_, static_cast<uint64_t>(sext() / rhs.sext()));
}

ApInt
ApInt::urem(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::urem width mismatch");
    KEQ_ASSERT(!rhs.isZero(), "ApInt::urem division by zero");
    return ApInt(width_, value_ % rhs.value_);
}

ApInt
ApInt::srem(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::srem width mismatch");
    KEQ_ASSERT(!rhs.isZero(), "ApInt::srem division by zero");
    if (sext() == signedMin(width_).sext() && rhs.isAllOnes())
        return ApInt(width_, 0);
    return ApInt(width_, static_cast<uint64_t>(sext() % rhs.sext()));
}

ApInt
ApInt::and_(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::and width mismatch");
    return ApInt(width_, value_ & rhs.value_);
}

ApInt
ApInt::or_(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::or width mismatch");
    return ApInt(width_, value_ | rhs.value_);
}

ApInt
ApInt::xor_(ApInt rhs) const
{
    KEQ_ASSERT(width_ == rhs.width_, "ApInt::xor width mismatch");
    return ApInt(width_, value_ ^ rhs.value_);
}

ApInt
ApInt::not_() const
{
    return ApInt(width_, ~value_);
}

ApInt
ApInt::neg() const
{
    return ApInt(width_, ~value_ + 1);
}

ApInt
ApInt::shl(ApInt amount) const
{
    uint64_t sh = amount.zext();
    if (sh >= width_)
        return ApInt(width_, 0);
    return ApInt(width_, value_ << sh);
}

ApInt
ApInt::lshr(ApInt amount) const
{
    uint64_t sh = amount.zext();
    if (sh >= width_)
        return ApInt(width_, 0);
    return ApInt(width_, value_ >> sh);
}

ApInt
ApInt::ashr(ApInt amount) const
{
    uint64_t sh = amount.zext();
    if (sh >= width_)
        return isNegative() ? allOnes(width_) : ApInt(width_, 0);
    return ApInt(width_, static_cast<uint64_t>(sext() >> sh));
}

ApInt
ApInt::zextTo(unsigned new_width) const
{
    KEQ_ASSERT(new_width >= width_, "ApInt::zextTo narrows");
    return ApInt(new_width, value_);
}

ApInt
ApInt::sextTo(unsigned new_width) const
{
    KEQ_ASSERT(new_width >= width_, "ApInt::sextTo narrows");
    return ApInt(new_width, static_cast<uint64_t>(sext()));
}

ApInt
ApInt::truncTo(unsigned new_width) const
{
    KEQ_ASSERT(new_width <= width_, "ApInt::truncTo widens");
    return ApInt(new_width, value_);
}

bool
ApInt::addOverflowSigned(ApInt rhs) const
{
    int64_t a = sext(), b = rhs.sext();
    int64_t r = add(rhs).sext();
    return (a >= 0) == (b >= 0) && (r >= 0) != (a >= 0);
}

bool
ApInt::addOverflowUnsigned(ApInt rhs) const
{
    return add(rhs).zext() < zext();
}

bool
ApInt::subOverflowSigned(ApInt rhs) const
{
    int64_t a = sext(), b = rhs.sext();
    int64_t r = sub(rhs).sext();
    return (a >= 0) != (b >= 0) && (r >= 0) != (a >= 0);
}

bool
ApInt::subOverflowUnsigned(ApInt rhs) const
{
    return zext() < rhs.zext();
}

bool
ApInt::mulOverflowSigned(ApInt rhs) const
{
    if (isZero() || rhs.isZero())
        return false;
    if (width_ <= 32) {
        int64_t full = sext() * rhs.sext();
        return full != mul(rhs).sext();
    }
    __int128 full = static_cast<__int128>(sext()) * rhs.sext();
    return full != static_cast<__int128>(mul(rhs).sext());
}

bool
ApInt::mulOverflowUnsigned(ApInt rhs) const
{
    if (isZero() || rhs.isZero())
        return false;
    if (width_ <= 32) {
        uint64_t full = zext() * rhs.zext();
        return full != mul(rhs).zext();
    }
    unsigned __int128 full =
        static_cast<unsigned __int128>(zext()) * rhs.zext();
    return full != static_cast<unsigned __int128>(mul(rhs).zext());
}

std::string
ApInt::toString() const
{
    return std::to_string(value_);
}

std::string
ApInt::toSignedString() const
{
    return std::to_string(sext());
}

std::string
ApInt::toHexString() const
{
    std::ostringstream os;
    os << "0x" << std::hex << value_;
    return os.str();
}

} // namespace keq::support
