#ifndef KEQ_SUPPORT_JOURNAL_H
#define KEQ_SUPPORT_JOURNAL_H

/**
 * @file
 * Append-only, crash-tolerant record journal.
 *
 * The checkpointing layer (driver::CheckpointJournal, fuzz campaign
 * resume) needs exactly one durability primitive: append a record so
 * that a SIGKILL at any instant loses at most the record being written,
 * never an earlier one. The format is line-oriented text so checkpoints
 * are inspectable with standard tools:
 *
 *     keq-journal v1 <kind>\n          -- header, written once
 *     <fnv64-hex> <payload>\n          -- one record per line
 *
 * Payloads are escaped (backslash, newline, tab, carriage return) so a
 * record is always exactly one line; the FNV-1a checksum covers the
 * *unescaped* payload. load() verifies the header and every checksum and
 * silently drops the first corrupt or torn record and everything after
 * it — after a crash the tail of the file is untrusted by construction.
 *
 * Writers append under a mutex and flush after every record; how hard
 * the flush pushes is the journal's *durability policy*:
 *
 *  - FsyncPolicy::Off     — write() into the kernel page cache only.
 *    Survives any process death (SIGKILL included); an OS crash or
 *    power loss may drop an unbounded tail.
 *  - FsyncPolicy::Batch   — additionally fsync every batchInterval
 *    records. An OS crash drops at most batchInterval-1 synced-past
 *    records plus the in-flight one.
 *  - FsyncPolicy::Record  — fsync after every record. An OS crash
 *    drops at most the record being written.
 *
 * The torn-tail drop bound is therefore 0 / batchInterval-1 / unbounded
 * *beyond* the in-flight record, which unsyncedRecords() exposes so
 * tests can pin the policy's accounting.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace keq::support {

/** FNV-1a 64-bit hash; the journal's per-record checksum. */
uint64_t fnv1a64(const std::string &bytes);

/** When the journal pushes appended records to stable storage. */
enum class FsyncPolicy {
    Record, ///< fsync after every append
    Batch,  ///< fsync every batchInterval appends
    Off,    ///< flush to the kernel only (process-crash safe)
};

/** Stable lower-case name ("record"/"batch"/"off"). */
const char *fsyncPolicyName(FsyncPolicy policy);

/**
 * Inverse of fsyncPolicyName; false (out untouched) on unknown names —
 * CLI layers turn that into a usage error.
 */
bool fsyncPolicyFromName(const char *name, FsyncPolicy &out);

/** One-line escaping: \\ \n \t \r -> two-character sequences. */
std::string escapeLine(const std::string &text);

/**
 * Inverse of escapeLine. Returns false on a malformed escape (truncated
 * record); @p out is left unspecified.
 */
bool unescapeLine(const std::string &line, std::string &out);

/** Append-side handle. Opens lazily on the first append. */
class JournalWriter
{
  public:
    /**
     * @param path          File to append to (created if missing).
     * @param kind          Schema tag in the header, e.g. "pipeline".
     * @param policy        Durability policy for appends.
     * @param batchInterval Records per fsync under FsyncPolicy::Batch
     *                      (ignored otherwise; must be >= 1).
     */
    JournalWriter(std::string path, std::string kind,
                  FsyncPolicy policy = FsyncPolicy::Off,
                  unsigned batchInterval = kDefaultBatchInterval);

    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Appends one record, flushes, and fsyncs per policy. Thread safe.
     * Throws support::Error when the file cannot be opened or written.
     */
    void append(const std::string &payload);

    /** Forces an fsync of everything appended so far. Thread safe. */
    void sync();

    /**
     * Records appended since the last fsync — the journal's own
     * accounting of the torn-tail exposure. Always 0 under
     * FsyncPolicy::Record; bounded by batchInterval-1 after any append
     * returns under FsyncPolicy::Batch; monotone under Off.
     */
    size_t unsyncedRecords() const;

    const std::string &path() const { return path_; }
    FsyncPolicy policy() const { return policy_; }

    static constexpr unsigned kDefaultBatchInterval = 32;

  private:
    void syncLocked();

    std::string path_;
    std::string kind_;
    FsyncPolicy policy_;
    unsigned batchInterval_;
    mutable std::mutex mutex_;
    int fd_ = -1;
    size_t unsynced_ = 0;
};

/**
 * What a corrupt record in the middle of a journal means for the rest
 * of the scan.
 *
 *  - TruncateAtCorruption: the only corruption a checkpoint journal can
 *    legitimately contain is a torn tail, so the first bad record marks
 *    the start of the untrusted region — drop it and everything after.
 *  - SkipCorruptRecords: the file may have rotted in place (bit flips
 *    on month-old storage), so each record stands on its own checksum —
 *    skip bad lines, keep scanning, and let the caller quarantine or
 *    compact. A torn tail still loses only the torn record itself.
 */
enum class JournalScan {
    TruncateAtCorruption,
    SkipCorruptRecords,
};

/**
 * Reads every intact record of @p path. Missing file -> empty result
 * with ok=true (a fresh campaign). Wrong header kind -> ok=false with a
 * diagnostic in error (resuming against the wrong journal is a user
 * error, not a torn write). Corrupt/torn records either terminate the
 * scan or are skipped per @p scan; truncatedRecords counts what was
 * dropped either way.
 */
struct JournalLoad
{
    bool ok = true;
    std::string error;
    std::vector<std::string> records;
    size_t truncatedRecords = 0;
};

JournalLoad
loadJournal(const std::string &path, const std::string &kind,
            JournalScan scan = JournalScan::TruncateAtCorruption);

} // namespace keq::support

#endif // KEQ_SUPPORT_JOURNAL_H
