#ifndef KEQ_SUPPORT_JOURNAL_H
#define KEQ_SUPPORT_JOURNAL_H

/**
 * @file
 * Append-only, crash-tolerant record journal.
 *
 * The checkpointing layer (driver::CheckpointJournal, fuzz campaign
 * resume) needs exactly one durability primitive: append a record so
 * that a SIGKILL at any instant loses at most the record being written,
 * never an earlier one. The format is line-oriented text so checkpoints
 * are inspectable with standard tools:
 *
 *     keq-journal v1 <kind>\n          -- header, written once
 *     <fnv64-hex> <payload>\n          -- one record per line
 *
 * Payloads are escaped (backslash, newline, tab, carriage return) so a
 * record is always exactly one line; the FNV-1a checksum covers the
 * *unescaped* payload. load() verifies the header and every checksum and
 * silently drops the first corrupt or torn record and everything after
 * it — after a crash the tail of the file is untrusted by construction.
 *
 * Writers append under a mutex and flush after every record. That is the
 * strongest guarantee we need: fsync-level durability is overkill for
 * checkpoint files whose loss merely costs recomputation.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace keq::support {

/** FNV-1a 64-bit hash; the journal's per-record checksum. */
uint64_t fnv1a64(const std::string &bytes);

/** One-line escaping: \\ \n \t \r -> two-character sequences. */
std::string escapeLine(const std::string &text);

/**
 * Inverse of escapeLine. Returns false on a malformed escape (truncated
 * record); @p out is left unspecified.
 */
bool unescapeLine(const std::string &line, std::string &out);

/** Append-side handle. Opens lazily on the first append. */
class JournalWriter
{
  public:
    /**
     * @param path  File to append to (created if missing).
     * @param kind  Schema tag written in the header, e.g. "pipeline".
     */
    JournalWriter(std::string path, std::string kind);

    /**
     * Appends one record and flushes. Thread safe. Throws
     * support::Error when the file cannot be opened or written.
     */
    void append(const std::string &payload);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string kind_;
    std::mutex mutex_;
    bool headerWritten_ = false;
};

/**
 * Reads every intact record of @p path. Missing file -> empty result
 * with ok=true (a fresh campaign). Wrong header kind -> ok=false with a
 * diagnostic in error (resuming against the wrong journal is a user
 * error, not a torn write). Corrupt/torn records terminate the scan but
 * keep everything before them; truncatedRecords counts what was dropped.
 */
struct JournalLoad
{
    bool ok = true;
    std::string error;
    std::vector<std::string> records;
    size_t truncatedRecords = 0;
};

JournalLoad loadJournal(const std::string &path, const std::string &kind);

} // namespace keq::support

#endif // KEQ_SUPPORT_JOURNAL_H
