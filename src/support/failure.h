#ifndef KEQ_SUPPORT_FAILURE_H
#define KEQ_SUPPORT_FAILURE_H

/**
 * @file
 * Structured failure taxonomy for the validation pipeline.
 *
 * The paper's evaluation (Section 6) distinguishes "not equivalent" from
 * "could not decide": solver timeouts and Unknown results are expected
 * outcomes on real ISel corpora, not programming errors. This enum is the
 * single classification every layer agrees on — the guarded solver stamps
 * one on each failed query, the checker folds it into the Verdict, the
 * pipeline journals it into checkpoints, and keqc/keq-fuzz report it —
 * replacing the stringly-typed detail messages that previously carried
 * this information.
 *
 * It lives in namespace keq (not keq::smt or keq::driver) because it is
 * shared vocabulary across the whole stack, and in src/support because
 * that is the bottom layer everything already links against.
 */

namespace keq {

/** Why a validation instance failed to produce a definite verdict. */
enum class FailureKind
{
    None,          ///< No failure; the verdict is definite.
    Timeout,       ///< Wall-clock or solver deadline exhausted.
    MemoryBudget,  ///< Term-node or solver memory budget exhausted.
    SolverUnknown, ///< Solver answered Unknown for a non-resource reason.
    SolverCrash,   ///< Solver threw/crashed even on the last ladder rung.
    Cancelled,     ///< Cooperative cancellation (SIGINT, shutdown).

    // Process-isolation failures (smt::SandboxSolver). A sandboxed
    // worker that dies takes exactly one in-flight query with it; the
    // supervisor classifies the death from the waitpid status (and the
    // worker's last heartbeat) so operators can tell a segfaulting
    // query from one the kernel OOM-killed.
    WorkerKilled,  ///< Worker process died (signal or abnormal exit).
    WorkerOom,     ///< Worker died breaching its hard memory cap.

    // Portfolio-racing failure (smt::PortfolioSolver). Two lanes
    // returned contradictory *definite* verdicts for the same query —
    // a free differential-soundness oracle over solver strategies. The
    // portfolio refuses to pick a side and reports Unknown with this
    // classification; fuzz campaigns surface it as a soundness bug.
    PortfolioDisagreement, ///< lanes disagreed on a definite verdict

    // Trust-but-verify failure (smt::CachingSolver audits). A warm
    // cached verdict — typically preloaded from a month-old verdict
    // journal — was independently re-checked (Sat via model replay,
    // Unsat via a pristine solver) and the recheck *contradicted* it.
    // The entry is quarantined and the query re-solved fresh; this
    // kind exists so operators can tell a rotten cache entry from a
    // solver bug in the daemon's logs.
    AuditMismatch, ///< cached verdict contradicted by an audit recheck
};

/** Stable lower-case name, e.g. for --stats and checkpoint records. */
const char *failureKindName(FailureKind kind);

/**
 * Inverse of failureKindName. Returns false (leaving @p out untouched)
 * when @p name is not a known kind — checkpoint loaders treat that as a
 * corrupt record, not an assertion failure.
 */
bool failureKindFromName(const char *name, FailureKind &out);

} // namespace keq

#endif // KEQ_SUPPORT_FAILURE_H
