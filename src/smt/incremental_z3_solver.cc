#include "src/smt/incremental_z3_solver.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include <z3++.h>

#include "src/smt/z3_lowering.h"
#include "src/support/diagnostics.h"
#include "src/support/stopwatch.h"

namespace keq::smt {

struct IncrementalZ3Solver::Impl
{
    z3::context ctx;
    Z3Lowering lowering{ctx};
    /**
     * Logic-specialized solver: every checker term is quantifier-free
     * bitvector/bool/array, and naming the logic keeps Z3 on the
     * specialized engine even in incremental (push/pop) mode, where the
     * plain combined solver would fall back to the generic SMT core —
     * measurably slower on exactly our query mix.
     */
    z3::solver solver{ctx, "QF_AUFBV"};
    /** Assertions currently on the scope stack, one scope each. */
    std::vector<Term> scopes;
    /** Limits currently applied to `solver`; track the setters. */
    unsigned appliedTimeoutMs = 0;
    unsigned appliedMemoryMb = 0;
    bool limitsApplied = false;

    void
    applyLimits(z3::solver &target, unsigned timeout_ms,
                unsigned memory_mb)
    {
        z3::params params(ctx);
        // Z3's own "no limit" sentinel; lets a nonzero limit be
        // cleared again without recreating the solver.
        params.set("timeout",
                   timeout_ms == 0 ? 4294967295u : timeout_ms);
        params.set("max_memory",
                   memory_mb == 0 ? 4294967295u : memory_mb);
        target.set(params);
    }

    /** Drops all live scopes, e.g. after an Unknown poisons state. */
    void
    reset()
    {
        solver = z3::solver(ctx);
        scopes.clear();
        appliedTimeoutMs = 0;
        appliedMemoryMb = 0;
        limitsApplied = false;
    }
};

IncrementalZ3Solver::IncrementalZ3Solver(TermFactory &factory,
                                         BackendTuning tuning)
    : factory_(factory), impl_(std::make_unique<Impl>()),
      tuning_(std::move(tuning))
{}

IncrementalZ3Solver::~IncrementalZ3Solver() = default;

bool
IncrementalZ3Solver::lastModel(Assignment *out) const
{
    if (!lastModel_.has_value())
        return false;
    *out = *lastModel_;
    return true;
}

void
IncrementalZ3Solver::setTimeoutMs(unsigned timeout_ms)
{
    timeoutMs_ = timeout_ms;
}

void
IncrementalZ3Solver::setMemoryBudgetMb(unsigned budget_mb)
{
    memoryBudgetMb_ = budget_mb;
}

void
IncrementalZ3Solver::interruptQuery()
{
    impl_->ctx.interrupt();
}

SatResult
IncrementalZ3Solver::checkSat(const std::vector<Term> &assertions)
{
    support::Stopwatch watch;
    lastUnknownReason_.clear();
    lastFailure_ = FailureKind::None;
    Impl &impl = *impl_;
    if (!impl.limitsApplied || impl.appliedTimeoutMs != timeoutMs_ ||
        impl.appliedMemoryMb != memoryBudgetMb_) {
        impl.applyLimits(impl.solver, timeoutMs_, memoryBudgetMb_);
        if (!tuning_.empty())
            applyTuningParams(impl.ctx, impl.solver, tuning_);
        impl.appliedTimeoutMs = timeoutMs_;
        impl.appliedMemoryMb = memoryBudgetMb_;
        impl.limitsApplied = true;
    }

    // Rewind to the longest prefix shared with the previous query, then
    // push the new suffix one scope at a time. Hash-consing makes the
    // prefix comparison a pointer check. Assertions are added directly
    // (plain scoped asserts, no assumption literals): Z3's full
    // preprocessing stays enabled, which matters more than the lemmas an
    // assumption-based encoding would additionally retain.
    size_t prefix = 0;
    z3::check_result z3_result = z3::unknown;
    std::optional<z3::model> model;
    try {
        while (prefix < impl.scopes.size() &&
               prefix < assertions.size() &&
               impl.scopes[prefix].id() == assertions[prefix].id()) {
            ++prefix;
        }
        if (impl.scopes.size() > prefix) {
            impl.solver.pop(
                static_cast<unsigned>(impl.scopes.size() - prefix));
            impl.scopes.resize(prefix);
        }
        for (size_t i = prefix; i < assertions.size(); ++i) {
            KEQ_ASSERT(assertions[i].sort().isBool(),
                       "checkSat: non-bool assertion");
            impl.solver.push();
            impl.solver.add(impl.lowering.lower(assertions[i]));
            impl.scopes.push_back(assertions[i]);
        }

        support::Stopwatch check_watch;
        z3_result = impl.solver.check();
        if (std::getenv("KEQ_INC_DEBUG") != nullptr)
            std::fprintf(stderr, "inc n=%zu prefix=%zu t=%.4f\n",
                         assertions.size(), prefix,
                         check_watch.seconds());

        stats_.incrementalReused += prefix;
        if (prefix > 0)
            ++stats_.incrementalSolves;
        else
            ++stats_.coldSolves;

        if (z3_result == z3::sat && captureModels_) {
            try {
                model.emplace(impl.solver.get_model());
            } catch (const z3::exception &) {
            }
        }

        if (z3_result == z3::unknown) {
            // Soundness guardrail: never report an Unknown that a cold
            // solver would have answered. Retry fresh, then rebuild the
            // persistent solver — its state may be poisoned. (After a
            // watchdog interrupt this fallback check re-enters Z3; the
            // watchdog re-interrupts until we return.)
            ++stats_.incrementalFallbacks;
            z3::solver fallback(impl.ctx);
            impl.applyLimits(fallback, timeoutMs_, memoryBudgetMb_);
            if (!tuning_.empty())
                applyTuningParams(impl.ctx, fallback, tuning_);
            for (const Term &assertion : assertions)
                fallback.add(impl.lowering.lower(assertion));
            z3_result = fallback.check();
            if (z3_result == z3::unknown)
                lastUnknownReason_ = fallback.reason_unknown();
            if (z3_result == z3::sat && captureModels_) {
                try {
                    model.emplace(fallback.get_model());
                } catch (const z3::exception &) {
                }
            }
            impl.reset();
        }
    } catch (const z3::exception &error) {
        // The scope stack may hold a half-pushed assertion; rebuild
        // before anyone reuses this solver.
        impl.reset();
        std::string what = error.msg();
        lastFailure_ = what.find("memory") != std::string::npos
                           ? FailureKind::MemoryBudget
                           : FailureKind::SolverCrash;
        throw SolverCrashError("z3(incremental): " + what);
    }
    if (z3_result == z3::unknown)
        lastFailure_ = classifyUnknownReason(lastUnknownReason_);

    ++stats_.queries;
    stats_.totalSeconds += watch.seconds();

    lastModel_.reset();
    if (model.has_value()) {
        lastModel_.emplace();
        try {
            extractModel(*model, &*lastModel_);
        } catch (const z3::exception &) {
            lastModel_.reset();
        }
    }

    switch (z3_result) {
      case z3::sat:
        ++stats_.sat;
        return SatResult::Sat;
      case z3::unsat:
        ++stats_.unsat;
        return SatResult::Unsat;
      case z3::unknown:
        ++stats_.unknown;
        return SatResult::Unknown;
    }
    KEQ_ASSERT(false, "checkSat: unhandled Z3 result");
    return SatResult::Unknown;
}

} // namespace keq::smt
