#ifndef KEQ_SMT_FAULT_INJECTION_H
#define KEQ_SMT_FAULT_INJECTION_H

/**
 * @file
 * Deterministic fault-injection decorator for chaos testing.
 *
 * Wraps any Solver and injects backend misbehavior — spurious Unknowns,
 * timeouts, crashes, slowdowns, and interruptible hangs — on a schedule
 * that is a pure function of (plan seed, call index) via
 * support::Rng::stream. Determinism is what makes the chaos suite's
 * headline assertion possible: a faulted run and a clean run of the
 * pipeline must produce byte-identical canonical summaries, which only
 * means something if the faults themselves are reproducible.
 *
 * Faults are *transient*: they key on the call counter, so the
 * GuardedSolver's retry of the same query draws a fresh schedule slot
 * and (usually) passes through. A plan with rates high enough to
 * exhaust every ladder rung exercises the terminal-failure paths
 * instead.
 */

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/smt/solver.h"

namespace keq::smt {

/** What to inject and how often; rates are percentages per call. */
struct FaultPlan
{
    uint64_t seed = 0; ///< 0 disables all injection.
    unsigned unknownPercent = 0;  ///< answer Unknown (reason "injected")
    unsigned timeoutPercent = 0;  ///< answer Unknown (reason "timeout")
    unsigned memoryPercent = 0;   ///< answer Unknown (memory reason)
    unsigned crashPercent = 0;    ///< throw SolverCrashError
    unsigned slowdownPercent = 0; ///< sleep slowdownMs, then solve
    unsigned hangPercent = 0;     ///< block until interruptQuery()
    unsigned slowdownMs = 20;
    /** Hard cap on an injected hang, so a watchdog-less test cannot
     *  deadlock; the hang still answers Unknown ("timeout"). */
    unsigned hangCapMs = 2000;

    bool
    enabled() const
    {
        return seed != 0 &&
               (unknownPercent | timeoutPercent | memoryPercent |
                crashPercent | slowdownPercent | hangPercent) != 0;
    }

    /** Plan for a sibling component, derived deterministically. */
    FaultPlan
    derive(uint64_t stream_index) const
    {
        FaultPlan child = *this;
        if (seed != 0)
            child.seed = seed * 0x9e3779b97f4a7c15ull + stream_index;
        return child;
    }
};

/** Solver decorator that injects faults per the plan. */
class FaultInjectingSolver : public Solver
{
  public:
    /**
     * Non-owning: @p backend must outlive this decorator (e.g. a
     * CachingSolver on the caller's stack).
     */
    FaultInjectingSolver(TermFactory &factory, Solver &backend,
                         FaultPlan plan);

    /** Owning: for lazily-built ladder rungs. */
    FaultInjectingSolver(TermFactory &factory,
                         std::unique_ptr<Solver> backend,
                         FaultPlan plan);
    ~FaultInjectingSolver() override;

    SatResult checkSat(const std::vector<Term> &assertions) override;
    void setTimeoutMs(unsigned timeout_ms) override;
    void setMemoryBudgetMb(unsigned budget_mb) override;
    void interruptQuery() override;
    void enableModelCapture(bool enabled) override;
    bool lastModel(Assignment *out) const override;
    std::string lastUnknownReason() const override;
    FailureKind lastFailureKind() const override;
    const SolverStats &stats() const override { return stats_; }

    Solver &backend() { return *backend_; }

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    TermFactory &factory_;
    std::unique_ptr<Solver> owned_;
    Solver *backend_;
    FaultPlan plan_;
    uint64_t callIndex_ = 0;
    SolverStats stats_;
    std::string lastUnknownReason_;
    FailureKind lastFailure_ = FailureKind::None;
    std::atomic<bool> interrupted_{false};
};

} // namespace keq::smt

#endif // KEQ_SMT_FAULT_INJECTION_H
