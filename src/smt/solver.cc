#include "src/smt/solver.h"

#include "src/smt/term_factory.h"

namespace keq::smt {

SolverStats &
SolverStats::operator+=(const SolverStats &rhs)
{
    queries += rhs.queries;
    sat += rhs.sat;
    unsat += rhs.unsat;
    unknown += rhs.unknown;
    totalSeconds += rhs.totalSeconds;
    cacheHits += rhs.cacheHits;
    cacheMisses += rhs.cacheMisses;
    cacheEvictions += rhs.cacheEvictions;
    rewriteResolved += rhs.rewriteResolved;
    rewriteApplications += rhs.rewriteApplications;
    sliceResolved += rhs.sliceResolved;
    slicedAssertions += rhs.slicedAssertions;
    incrementalReused += rhs.incrementalReused;
    incrementalSolves += rhs.incrementalSolves;
    incrementalFallbacks += rhs.incrementalFallbacks;
    coldSolves += rhs.coldSolves;
    watchdogInterrupts += rhs.watchdogInterrupts;
    guardedRetries += rhs.guardedRetries;
    guardedEscalations += rhs.guardedEscalations;
    escalatedResolved += rhs.escalatedResolved;
    solverCrashes += rhs.solverCrashes;
    faultsInjected += rhs.faultsInjected;
    workerCrashes += rhs.workerCrashes;
    workerRestarts += rhs.workerRestarts;
    heartbeatTimeouts += rhs.heartbeatTimeouts;
    wireBytesSent += rhs.wireBytesSent;
    wireBytesReceived += rhs.wireBytesReceived;
    batchedQueries += rhs.batchedQueries;
    for (size_t i = 0; i < kPortfolioMaxLanes; ++i)
        portfolioWins[i] += rhs.portfolioWins[i];
    portfolioCancellations += rhs.portfolioCancellations;
    crossLaneDisagreements += rhs.crossLaneDisagreements;
    return *this;
}

SolverStats
SolverStats::operator-(const SolverStats &rhs) const
{
    SolverStats delta;
    delta.queries = queries - rhs.queries;
    delta.sat = sat - rhs.sat;
    delta.unsat = unsat - rhs.unsat;
    delta.unknown = unknown - rhs.unknown;
    delta.totalSeconds = totalSeconds - rhs.totalSeconds;
    delta.cacheHits = cacheHits - rhs.cacheHits;
    delta.cacheMisses = cacheMisses - rhs.cacheMisses;
    delta.cacheEvictions = cacheEvictions - rhs.cacheEvictions;
    delta.rewriteResolved = rewriteResolved - rhs.rewriteResolved;
    delta.rewriteApplications =
        rewriteApplications - rhs.rewriteApplications;
    delta.sliceResolved = sliceResolved - rhs.sliceResolved;
    delta.slicedAssertions = slicedAssertions - rhs.slicedAssertions;
    delta.incrementalReused = incrementalReused - rhs.incrementalReused;
    delta.incrementalSolves = incrementalSolves - rhs.incrementalSolves;
    delta.incrementalFallbacks =
        incrementalFallbacks - rhs.incrementalFallbacks;
    delta.coldSolves = coldSolves - rhs.coldSolves;
    delta.watchdogInterrupts = watchdogInterrupts - rhs.watchdogInterrupts;
    delta.guardedRetries = guardedRetries - rhs.guardedRetries;
    delta.guardedEscalations =
        guardedEscalations - rhs.guardedEscalations;
    delta.escalatedResolved = escalatedResolved - rhs.escalatedResolved;
    delta.solverCrashes = solverCrashes - rhs.solverCrashes;
    delta.faultsInjected = faultsInjected - rhs.faultsInjected;
    delta.workerCrashes = workerCrashes - rhs.workerCrashes;
    delta.workerRestarts = workerRestarts - rhs.workerRestarts;
    delta.heartbeatTimeouts = heartbeatTimeouts - rhs.heartbeatTimeouts;
    delta.wireBytesSent = wireBytesSent - rhs.wireBytesSent;
    delta.wireBytesReceived = wireBytesReceived - rhs.wireBytesReceived;
    delta.batchedQueries = batchedQueries - rhs.batchedQueries;
    for (size_t i = 0; i < kPortfolioMaxLanes; ++i)
        delta.portfolioWins[i] = portfolioWins[i] - rhs.portfolioWins[i];
    delta.portfolioCancellations =
        portfolioCancellations - rhs.portfolioCancellations;
    delta.crossLaneDisagreements =
        crossLaneDisagreements - rhs.crossLaneDisagreements;
    return delta;
}

const char *
satResultName(SatResult result)
{
    switch (result) {
      case SatResult::Sat: return "sat";
      case SatResult::Unsat: return "unsat";
      case SatResult::Unknown: return "unknown";
    }
    return "?";
}

void
foldNonVerdictStats(SolverStats &into, const SolverStats &delta)
{
    into.totalSeconds += delta.totalSeconds;
    into.cacheHits += delta.cacheHits;
    into.cacheMisses += delta.cacheMisses;
    into.cacheEvictions += delta.cacheEvictions;
    into.rewriteResolved += delta.rewriteResolved;
    into.rewriteApplications += delta.rewriteApplications;
    into.sliceResolved += delta.sliceResolved;
    into.slicedAssertions += delta.slicedAssertions;
    into.incrementalReused += delta.incrementalReused;
    into.incrementalSolves += delta.incrementalSolves;
    into.incrementalFallbacks += delta.incrementalFallbacks;
    into.coldSolves += delta.coldSolves;
    into.watchdogInterrupts += delta.watchdogInterrupts;
    into.guardedRetries += delta.guardedRetries;
    into.guardedEscalations += delta.guardedEscalations;
    into.escalatedResolved += delta.escalatedResolved;
    into.solverCrashes += delta.solverCrashes;
    into.faultsInjected += delta.faultsInjected;
    into.workerCrashes += delta.workerCrashes;
    into.workerRestarts += delta.workerRestarts;
    into.heartbeatTimeouts += delta.heartbeatTimeouts;
    into.wireBytesSent += delta.wireBytesSent;
    into.wireBytesReceived += delta.wireBytesReceived;
    into.batchedQueries += delta.batchedQueries;
    for (size_t i = 0; i < SolverStats::kPortfolioMaxLanes; ++i)
        into.portfolioWins[i] += delta.portfolioWins[i];
    into.portfolioCancellations += delta.portfolioCancellations;
    into.crossLaneDisagreements += delta.crossLaneDisagreements;
}

FailureKind
classifyUnknownReason(const std::string &reason)
{
    // Z3 spells these "timeout", "canceled" (after Z3_interrupt), and
    // "max. memory exceeded"; substring matching keeps us robust across
    // versions and alternate backends.
    if (reason.find("timeout") != std::string::npos)
        return FailureKind::Timeout;
    if (reason.find("cancel") != std::string::npos ||
        reason.find("interrupt") != std::string::npos)
        return FailureKind::Timeout;
    if (reason.find("memory") != std::string::npos)
        return FailureKind::MemoryBudget;
    return FailureKind::SolverUnknown;
}

bool
Solver::proveImplication(Term hypothesis, Term conclusion)
{
    TermFactory &tf = factory();
    // Fast path: folding already decided it.
    Term negated = tf.mkAnd(hypothesis, tf.mkNot(conclusion));
    if (negated.isFalse())
        return true;
    if (hypothesis.isTrue() && conclusion.isFalse())
        return false;
    return checkSat({negated}) == SatResult::Unsat;
}

bool
Solver::proveImplication(const std::vector<Term> &hypothesis,
                         Term conclusion)
{
    TermFactory &tf = factory();
    // The folded conjunction decides the fast paths exactly like the
    // single-term overload — the two forms must never disagree.
    Term folded = tf.trueTerm();
    for (const Term &part : hypothesis)
        folded = tf.mkAnd(folded, part);
    Term negated = tf.mkAnd(folded, tf.mkNot(conclusion));
    if (negated.isFalse())
        return true;
    if (folded.isTrue() && conclusion.isFalse())
        return false;
    // Ship the hypothesis parts unmerged so consecutive obligations
    // sharing them present an identical prefix to an incremental
    // backend (trivially-true parts carry no information; drop them to
    // keep the prefix canonical).
    std::vector<Term> assertions;
    assertions.reserve(hypothesis.size() + 1);
    for (const Term &part : hypothesis) {
        if (!part.isTrue())
            assertions.push_back(part);
    }
    assertions.push_back(tf.mkNot(conclusion));
    return checkSat(assertions) == SatResult::Unsat;
}

} // namespace keq::smt
