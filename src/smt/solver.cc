#include "src/smt/solver.h"

#include "src/smt/term_factory.h"

namespace keq::smt {

SolverStats &
SolverStats::operator+=(const SolverStats &rhs)
{
    queries += rhs.queries;
    sat += rhs.sat;
    unsat += rhs.unsat;
    unknown += rhs.unknown;
    totalSeconds += rhs.totalSeconds;
    cacheHits += rhs.cacheHits;
    cacheMisses += rhs.cacheMisses;
    cacheEvictions += rhs.cacheEvictions;
    return *this;
}

const char *
satResultName(SatResult result)
{
    switch (result) {
      case SatResult::Sat: return "sat";
      case SatResult::Unsat: return "unsat";
      case SatResult::Unknown: return "unknown";
    }
    return "?";
}

bool
Solver::proveImplication(Term hypothesis, Term conclusion)
{
    TermFactory &tf = factory();
    // Fast path: folding already decided it.
    Term negated = tf.mkAnd(hypothesis, tf.mkNot(conclusion));
    if (negated.isFalse())
        return true;
    if (hypothesis.isTrue() && conclusion.isFalse())
        return false;
    return checkSat({negated}) == SatResult::Unsat;
}

} // namespace keq::smt
