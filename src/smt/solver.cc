#include "src/smt/solver.h"

#include "src/smt/term_factory.h"

namespace keq::smt {

SolverStats &
SolverStats::operator+=(const SolverStats &rhs)
{
    queries += rhs.queries;
    sat += rhs.sat;
    unsat += rhs.unsat;
    unknown += rhs.unknown;
    totalSeconds += rhs.totalSeconds;
    cacheHits += rhs.cacheHits;
    cacheMisses += rhs.cacheMisses;
    cacheEvictions += rhs.cacheEvictions;
    rewriteResolved += rhs.rewriteResolved;
    rewriteApplications += rhs.rewriteApplications;
    sliceResolved += rhs.sliceResolved;
    slicedAssertions += rhs.slicedAssertions;
    incrementalReused += rhs.incrementalReused;
    incrementalSolves += rhs.incrementalSolves;
    incrementalFallbacks += rhs.incrementalFallbacks;
    coldSolves += rhs.coldSolves;
    return *this;
}

SolverStats
SolverStats::operator-(const SolverStats &rhs) const
{
    SolverStats delta;
    delta.queries = queries - rhs.queries;
    delta.sat = sat - rhs.sat;
    delta.unsat = unsat - rhs.unsat;
    delta.unknown = unknown - rhs.unknown;
    delta.totalSeconds = totalSeconds - rhs.totalSeconds;
    delta.cacheHits = cacheHits - rhs.cacheHits;
    delta.cacheMisses = cacheMisses - rhs.cacheMisses;
    delta.cacheEvictions = cacheEvictions - rhs.cacheEvictions;
    delta.rewriteResolved = rewriteResolved - rhs.rewriteResolved;
    delta.rewriteApplications =
        rewriteApplications - rhs.rewriteApplications;
    delta.sliceResolved = sliceResolved - rhs.sliceResolved;
    delta.slicedAssertions = slicedAssertions - rhs.slicedAssertions;
    delta.incrementalReused = incrementalReused - rhs.incrementalReused;
    delta.incrementalSolves = incrementalSolves - rhs.incrementalSolves;
    delta.incrementalFallbacks =
        incrementalFallbacks - rhs.incrementalFallbacks;
    delta.coldSolves = coldSolves - rhs.coldSolves;
    return delta;
}

const char *
satResultName(SatResult result)
{
    switch (result) {
      case SatResult::Sat: return "sat";
      case SatResult::Unsat: return "unsat";
      case SatResult::Unknown: return "unknown";
    }
    return "?";
}

bool
Solver::proveImplication(Term hypothesis, Term conclusion)
{
    TermFactory &tf = factory();
    // Fast path: folding already decided it.
    Term negated = tf.mkAnd(hypothesis, tf.mkNot(conclusion));
    if (negated.isFalse())
        return true;
    if (hypothesis.isTrue() && conclusion.isFalse())
        return false;
    return checkSat({negated}) == SatResult::Unsat;
}

} // namespace keq::smt
