#include "src/smt/term_factory.h"

#include <algorithm>

#include "src/support/diagnostics.h"

namespace keq::smt {

using support::ApInt;

size_t
TermFactory::NodeKeyHash::operator()(const NodeKey &key) const
{
    size_t h = std::hash<uint32_t>()(
        (static_cast<uint32_t>(key.kind) << 16) ^ key.sort);
    auto mix = [&h](uint64_t v) {
        h ^= std::hash<uint64_t>()(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
    };
    for (uint64_t op : key.operands)
        mix(op);
    mix(key.aux0);
    mix(key.aux1);
    h ^= std::hash<std::string>()(key.name) * 31;
    return h;
}

TermFactory::TermFactory()
{
    true_ = intern(Kind::BoolConst, Sort::boolSort(), {}, ApInt(), true);
    false_ = intern(Kind::BoolConst, Sort::boolSort(), {}, ApInt(), false);
}

namespace {

/**
 * True when a == !b structurally: explicit negation, or the total-order
 * comparison complements (ult(x,y) vs ule(y,x), signed likewise) that
 * mkNot normalizes negations into.
 */
bool
areComplements(Term a, Term b)
{
    if (a.kind() == Kind::Not && a.operand(0) == b)
        return true;
    if (b.kind() == Kind::Not && b.operand(0) == a)
        return true;
    auto flipped = [](Term strict, Term weak, Kind strict_kind,
                      Kind weak_kind) {
        return strict.kind() == strict_kind &&
               weak.kind() == weak_kind &&
               strict.operand(0) == weak.operand(1) &&
               strict.operand(1) == weak.operand(0);
    };
    return flipped(a, b, Kind::BvUlt, Kind::BvUle) ||
           flipped(b, a, Kind::BvUlt, Kind::BvUle) ||
           flipped(a, b, Kind::BvSlt, Kind::BvSle) ||
           flipped(b, a, Kind::BvSlt, Kind::BvSle);
}

} // namespace

Term
TermFactory::intern(Kind kind, Sort sort, std::vector<Term> operands,
                    ApInt bv_value, bool bool_value, std::string name,
                    unsigned hi, unsigned lo)
{
    NodeKey key;
    key.kind = kind;
    key.sort = sort.encode();
    key.operands.reserve(operands.size());
    for (const Term &op : operands)
        key.operands.push_back(op.id());
    key.aux0 = kind == Kind::BvConst    ? bv_value.zext()
               : kind == Kind::BoolConst ? (bool_value ? 1 : 0)
                                         : hi;
    key.aux1 = kind == Kind::BvConst ? bv_value.width() : lo;
    key.name = name;

    auto it = interned_.find(key);
    if (it != interned_.end())
        return it->second;

    nodes_.emplace_back(nextId_++, kind, sort, std::move(operands),
                        bv_value, bool_value, std::move(name), hi, lo);
    Term term(&nodes_.back());
    interned_.emplace(std::move(key), term);
    return term;
}

void
TermFactory::canonicalizeCommutative(Kind kind, Term &a, Term &b)
{
    switch (kind) {
      case Kind::BvAdd:
      case Kind::BvMul:
      case Kind::BvAnd:
      case Kind::BvOr:
      case Kind::BvXor:
      case Kind::And:
      case Kind::Or:
      case Kind::Iff:
      case Kind::Eq:
        if (b.id() < a.id())
            std::swap(a, b);
        break;
      default:
        break;
    }
}

// --- Leaves ----------------------------------------------------------------

Term
TermFactory::bvConst(ApInt value)
{
    return intern(Kind::BvConst, Sort::bitVec(value.width()), {}, value);
}

Term
TermFactory::bvConst(unsigned width, uint64_t value)
{
    return bvConst(ApInt(width, value));
}

Term
TermFactory::boolConst(bool value)
{
    return value ? true_ : false_;
}

Term
TermFactory::var(const std::string &name, Sort sort)
{
    auto [it, inserted] = varSorts_.emplace(name, sort);
    KEQ_ASSERT(inserted || it->second == sort,
               "variable " + name + " re-declared at another sort");
    return intern(Kind::Var, sort, {}, ApInt(), false, name);
}

Term
TermFactory::freshVar(const std::string &hint, Sort sort)
{
    std::string name = hint + "!" + std::to_string(freshCounter_++);
    return var(name, sort);
}

// --- Boolean layer -----------------------------------------------------------

Term
TermFactory::mkNot(Term a)
{
    KEQ_ASSERT(a.sort().isBool(), "not: non-bool operand");
    if (a.isBoolConst())
        return boolConst(!a.boolValue());
    if (a.kind() == Kind::Not)
        return a.operand(0);
    // Total-order flips keep the comparison language closed under
    // negation, so "a >u b" computed as !(a <=u b) (the x86 A/G
    // condition codes) and as ult(b, a) (the icmp route) hash-cons to
    // the same term.
    switch (a.kind()) {
      case Kind::BvUlt:
        return bvPredicate(Kind::BvUle, a.operand(1), a.operand(0));
      case Kind::BvUle:
        return bvPredicate(Kind::BvUlt, a.operand(1), a.operand(0));
      case Kind::BvSlt:
        return bvPredicate(Kind::BvSle, a.operand(1), a.operand(0));
      case Kind::BvSle:
        return bvPredicate(Kind::BvSlt, a.operand(1), a.operand(0));
      default:
        break;
    }
    return intern(Kind::Not, Sort::boolSort(), {a});
}

Term
TermFactory::mkAnd(Term a, Term b)
{
    KEQ_ASSERT(a.sort().isBool() && b.sort().isBool(), "and: non-bool");
    if (a.isTrue())
        return b;
    if (b.isTrue())
        return a;
    if (a.isFalse() || b.isFalse())
        return false_;
    if (a == b)
        return a;
    // Keep conjunction chains left-leaning and irredundant: splitting
    // b's conjuncts lets each one be checked against the whole chain,
    // so duplicated and contradictory conjuncts collapse no matter how
    // deep they sit (path conditions are built exactly this way).
    if (b.kind() == Kind::And)
        return mkAnd(mkAnd(a, b.operand(0)), b.operand(1));
    for (Term link = a;;) {
        Term conjunct = link.kind() == Kind::And ? link.operand(1) : link;
        if (conjunct == b)
            return a; // absorption
        if (areComplements(conjunct, b))
            return false_;
        if (link.kind() != Kind::And)
            break;
        link = link.operand(0);
    }
    return intern(Kind::And, Sort::boolSort(), {a, b});
}

Term
TermFactory::mkAnd(const std::vector<Term> &conjuncts)
{
    Term acc = true_;
    for (const Term &c : conjuncts)
        acc = mkAnd(acc, c);
    return acc;
}

Term
TermFactory::mkOr(Term a, Term b)
{
    KEQ_ASSERT(a.sort().isBool() && b.sort().isBool(), "or: non-bool");
    if (a.isFalse())
        return b;
    if (b.isFalse())
        return a;
    if (a.isTrue() || b.isTrue())
        return true_;
    if (a == b)
        return a;
    // Mirror of mkAnd: flatten right-side disjunctions and test each new
    // disjunct against the existing chain.
    if (b.kind() == Kind::Or)
        return mkOr(mkOr(a, b.operand(0)), b.operand(1));
    for (Term link = a;;) {
        Term disjunct = link.kind() == Kind::Or ? link.operand(1) : link;
        if (disjunct == b)
            return a; // absorption
        if (areComplements(disjunct, b))
            return true_;
        if (link.kind() != Kind::Or)
            break;
        link = link.operand(0);
    }
    // "below or equal": ult(x, y) || eq(x, y) == ule(x, y) — the x86 BE
    // condition code folds to the same term as icmp ule.
    auto strict_or_eq = [this](Term strict, Term equality) -> Term {
        if (equality.kind() != Kind::Eq)
            return Term();
        bool is_unsigned = strict.kind() == Kind::BvUlt;
        if (!is_unsigned && strict.kind() != Kind::BvSlt)
            return Term();
        Term x = strict.operand(0);
        Term y = strict.operand(1);
        Term e0 = equality.operand(0);
        Term e1 = equality.operand(1);
        if ((e0 == x && e1 == y) || (e0 == y && e1 == x)) {
            return bvPredicate(is_unsigned ? Kind::BvUle : Kind::BvSle,
                               x, y);
        }
        return Term();
    };
    if (Term merged = strict_or_eq(a, b))
        return merged;
    if (Term merged = strict_or_eq(b, a))
        return merged;
    canonicalizeCommutative(Kind::Or, a, b);
    return intern(Kind::Or, Sort::boolSort(), {a, b});
}

Term
TermFactory::mkOr(const std::vector<Term> &disjuncts)
{
    Term acc = false_;
    for (const Term &d : disjuncts)
        acc = mkOr(acc, d);
    return acc;
}

Term
TermFactory::mkImplies(Term a, Term b)
{
    return mkOr(mkNot(a), b);
}

Term
TermFactory::mkIff(Term a, Term b)
{
    KEQ_ASSERT(a.sort().isBool() && b.sort().isBool(), "iff: non-bool");
    if (a.isTrue())
        return b;
    if (b.isTrue())
        return a;
    if (a.isFalse())
        return mkNot(b);
    if (b.isFalse())
        return mkNot(a);
    if (a == b)
        return true_;
    canonicalizeCommutative(Kind::Iff, a, b);
    return intern(Kind::Iff, Sort::boolSort(), {a, b});
}

Term
TermFactory::mkIte(Term cond, Term then_t, Term else_t)
{
    KEQ_ASSERT(cond.sort().isBool(), "ite: non-bool condition");
    KEQ_ASSERT(then_t.sort() == else_t.sort(), "ite: arm sort mismatch");
    if (cond.isTrue())
        return then_t;
    if (cond.isFalse())
        return else_t;
    if (then_t == else_t)
        return then_t;
    return intern(Kind::Ite, then_t.sort(), {cond, then_t, else_t});
}

Term
TermFactory::mkEq(Term a, Term b)
{
    KEQ_ASSERT(a.sort() == b.sort(), "eq: sort mismatch");
    if (a == b)
        return true_;
    if (a.isBvConst() && b.isBvConst())
        return boolConst(a.bvValue().eq(b.bvValue()));
    if (a.isBoolConst() && b.isBoolConst())
        return boolConst(a.boolValue() == b.boolValue());
    if (a.sort().isBool())
        return mkIff(a, b);
    // eq(x - y, 0) == eq(x, y): aligns the zero-flag encoding with the
    // direct comparison.
    auto sub_vs_zero = [this](Term lhs, Term rhs) -> Term {
        if (lhs.kind() == Kind::BvSub && rhs.isBvConst() &&
            rhs.bvValue().isZero()) {
            return mkEq(lhs.operand(0), lhs.operand(1));
        }
        return Term();
    };
    if (Term folded = sub_vs_zero(a, b))
        return folded;
    if (Term folded = sub_vs_zero(b, a))
        return folded;
    // eq(ite(c, k1, k2), k) folds to c / !c / false when all three are
    // literals — this collapses the flag/SETcc encodings of branch
    // conditions back to the branch predicate, letting both languages'
    // path conditions hash-cons to the same term.
    auto fold_ite_eq = [this](Term ite, Term lit) -> Term {
        if (ite.kind() != Kind::Ite || !lit.isBvConst())
            return Term();
        Term then_t = ite.operand(1);
        Term else_t = ite.operand(2);
        if (!then_t.isBvConst() || !else_t.isBvConst() ||
            then_t == else_t) {
            return Term();
        }
        if (lit == then_t)
            return ite.operand(0);
        if (lit == else_t)
            return mkNot(ite.operand(0));
        return false_;
    };
    if (Term folded = fold_ite_eq(a, b))
        return folded;
    if (Term folded = fold_ite_eq(b, a))
        return folded;
    canonicalizeCommutative(Kind::Eq, a, b);
    return intern(Kind::Eq, Sort::boolSort(), {a, b});
}

// --- Bitvector layer ----------------------------------------------------------

namespace {

ApInt
foldBvBinOp(Kind kind, ApInt a, ApInt b)
{
    switch (kind) {
      case Kind::BvAdd: return a.add(b);
      case Kind::BvSub: return a.sub(b);
      case Kind::BvMul: return a.mul(b);
      case Kind::BvUDiv: return a.udiv(b);
      case Kind::BvSDiv: return a.sdiv(b);
      case Kind::BvURem: return a.urem(b);
      case Kind::BvSRem: return a.srem(b);
      case Kind::BvAnd: return a.and_(b);
      case Kind::BvOr: return a.or_(b);
      case Kind::BvXor: return a.xor_(b);
      case Kind::BvShl: return a.shl(b);
      case Kind::BvLShr: return a.lshr(b);
      case Kind::BvAShr: return a.ashr(b);
      default:
        KEQ_ASSERT(false, "foldBvBinOp: not a binary bv op");
    }
    return a;
}

bool
foldBvPredicate(Kind kind, ApInt a, ApInt b)
{
    switch (kind) {
      case Kind::BvUlt: return a.ult(b);
      case Kind::BvUle: return a.ule(b);
      case Kind::BvSlt: return a.slt(b);
      case Kind::BvSle: return a.sle(b);
      default:
        KEQ_ASSERT(false, "foldBvPredicate: not a bv predicate");
    }
    return false;
}

bool
isDivisionKind(Kind kind)
{
    return kind == Kind::BvUDiv || kind == Kind::BvSDiv ||
           kind == Kind::BvURem || kind == Kind::BvSRem;
}

} // namespace

Term
TermFactory::bvBinOp(Kind kind, Term a, Term b)
{
    KEQ_ASSERT(a.sort().isBitVec() && a.sort() == b.sort(),
               "bv binop: sort mismatch");
    unsigned width = a.sort().width();

    // Constant folding (division by a zero constant stays symbolic; the
    // semantics layers guard divisions with explicit UB branches).
    if (a.isBvConst() && b.isBvConst() &&
        !(isDivisionKind(kind) && b.bvValue().isZero())) {
        return bvConst(foldBvBinOp(kind, a.bvValue(), b.bvValue()));
    }

    // Identity / absorbing elements.
    if (b.isBvConst()) {
        ApInt bv = b.bvValue();
        if (bv.isZero()) {
            switch (kind) {
              case Kind::BvAdd:
              case Kind::BvSub:
              case Kind::BvOr:
              case Kind::BvXor:
              case Kind::BvShl:
              case Kind::BvLShr:
              case Kind::BvAShr:
                return a;
              case Kind::BvMul:
              case Kind::BvAnd:
                return b;
              default:
                break;
            }
        }
        if (kind == Kind::BvMul && bv.zext() == 1)
            return a;
        if ((kind == Kind::BvUDiv || kind == Kind::BvSDiv) &&
            bv.zext() == 1) {
            return a;
        }
        if (kind == Kind::BvAnd && bv.isAllOnes())
            return a;
        if (kind == Kind::BvOr && bv.isAllOnes())
            return b;
    }
    if (a.isBvConst()) {
        ApInt av = a.bvValue();
        if (av.isZero()) {
            switch (kind) {
              case Kind::BvAdd:
              case Kind::BvOr:
              case Kind::BvXor:
                return b;
              case Kind::BvMul:
              case Kind::BvAnd:
              case Kind::BvShl:
              case Kind::BvLShr:
              case Kind::BvAShr:
                return a;
              default:
                break;
            }
        }
        if (kind == Kind::BvMul && av.zext() == 1)
            return b;
        if (kind == Kind::BvAnd && av.isAllOnes())
            return b;
        if (kind == Kind::BvOr && av.isAllOnes())
            return a;
    }
    if (a == b) {
        if (kind == Kind::BvSub || kind == Kind::BvXor)
            return bvConst(width, 0);
        if (kind == Kind::BvAnd || kind == Kind::BvOr)
            return a;
    }

    // Distribute over ite: shared-condition ites merge; a constant-armed
    // ite pushes the operation into its arms (where identities usually
    // collapse them). This normalizes branchless select encodings (the
    // NEG/NOT/AND/OR mask idiom) back to ite form, so both languages'
    // terms hash-cons equal and the solver never sees the masks.
    auto const_armed = [](Term t) {
        return t.kind() == Kind::Ite && t.operand(1).isBvConst() &&
               t.operand(2).isBvConst();
    };
    if (a.kind() == Kind::Ite && b.kind() == Kind::Ite &&
        a.operand(0) == b.operand(0)) {
        return mkIte(a.operand(0),
                     bvBinOp(kind, a.operand(1), b.operand(1)),
                     bvBinOp(kind, a.operand(2), b.operand(2)));
    }
    if (const_armed(a)) {
        return mkIte(a.operand(0), bvBinOp(kind, a.operand(1), b),
                     bvBinOp(kind, a.operand(2), b));
    }
    if (const_armed(b)) {
        return mkIte(b.operand(0), bvBinOp(kind, a, b.operand(1)),
                     bvBinOp(kind, a, b.operand(2)));
    }

    canonicalizeCommutative(kind, a, b);
    return intern(kind, Sort::bitVec(width), {a, b});
}

Term
TermFactory::bvNot(Term a)
{
    KEQ_ASSERT(a.sort().isBitVec(), "bvnot: non-bitvec");
    if (a.isBvConst())
        return bvConst(a.bvValue().not_());
    if (a.kind() == Kind::BvNot)
        return a.operand(0);
    if (a.kind() == Kind::Ite) {
        return mkIte(a.operand(0), bvNot(a.operand(1)),
                     bvNot(a.operand(2)));
    }
    return intern(Kind::BvNot, a.sort(), {a});
}

Term
TermFactory::bvNeg(Term a)
{
    KEQ_ASSERT(a.sort().isBitVec(), "bvneg: non-bitvec");
    if (a.isBvConst())
        return bvConst(a.bvValue().neg());
    if (a.kind() == Kind::BvNeg)
        return a.operand(0);
    if (a.kind() == Kind::Ite) {
        return mkIte(a.operand(0), bvNeg(a.operand(1)),
                     bvNeg(a.operand(2)));
    }
    return intern(Kind::BvNeg, a.sort(), {a});
}

Term
TermFactory::bvPredicate(Kind kind, Term a, Term b)
{
    if (kind == Kind::Eq)
        return mkEq(a, b);
    KEQ_ASSERT(a.sort().isBitVec() && a.sort() == b.sort(),
               "bv predicate: sort mismatch");
    if (a.isBvConst() && b.isBvConst())
        return boolConst(foldBvPredicate(kind, a.bvValue(), b.bvValue()));
    if (a == b) {
        // x < x is false; x <= x is true.
        if (kind == Kind::BvUlt || kind == Kind::BvSlt)
            return false_;
        return true_;
    }
    // Distribute over constant-armed / shared-condition ites (see
    // bvBinOp) so comparisons of select results normalize.
    auto const_armed = [](Term t) {
        return t.kind() == Kind::Ite && t.operand(1).isBvConst() &&
               t.operand(2).isBvConst();
    };
    if (a.kind() == Kind::Ite && b.kind() == Kind::Ite &&
        a.operand(0) == b.operand(0)) {
        return mkIte(a.operand(0),
                     bvPredicate(kind, a.operand(1), b.operand(1)),
                     bvPredicate(kind, a.operand(2), b.operand(2)));
    }
    if (const_armed(a)) {
        return mkIte(a.operand(0),
                     bvPredicate(kind, a.operand(1), b),
                     bvPredicate(kind, a.operand(2), b));
    }
    if (const_armed(b)) {
        return mkIte(b.operand(0), bvPredicate(kind, a, b.operand(1)),
                     bvPredicate(kind, a, b.operand(2)));
    }
    return intern(kind, Sort::boolSort(), {a, b});
}

Term
TermFactory::zext(Term a, unsigned new_width)
{
    KEQ_ASSERT(a.sort().isBitVec(), "zext: non-bitvec");
    KEQ_ASSERT(new_width >= a.sort().width(), "zext narrows");
    if (new_width == a.sort().width())
        return a;
    if (a.isBvConst())
        return bvConst(a.bvValue().zextTo(new_width));
    // Push extension through constant-armed ite (normalizes SETcc/zext
    // encodings across languages).
    if (a.kind() == Kind::Ite && a.operand(1).isBvConst() &&
        a.operand(2).isBvConst()) {
        return mkIte(a.operand(0), zext(a.operand(1), new_width),
                     zext(a.operand(2), new_width));
    }
    // zext of zext composes.
    if (a.kind() == Kind::ZExt)
        return zext(a.operand(0), new_width);
    return intern(Kind::ZExt, Sort::bitVec(new_width), {a}, ApInt(), false,
                  {}, new_width, 0);
}

Term
TermFactory::sext(Term a, unsigned new_width)
{
    KEQ_ASSERT(a.sort().isBitVec(), "sext: non-bitvec");
    KEQ_ASSERT(new_width >= a.sort().width(), "sext narrows");
    if (new_width == a.sort().width())
        return a;
    if (a.isBvConst())
        return bvConst(a.bvValue().sextTo(new_width));
    if (a.kind() == Kind::Ite && a.operand(1).isBvConst() &&
        a.operand(2).isBvConst()) {
        return mkIte(a.operand(0), sext(a.operand(1), new_width),
                     sext(a.operand(2), new_width));
    }
    if (a.kind() == Kind::SExt)
        return sext(a.operand(0), new_width);
    return intern(Kind::SExt, Sort::bitVec(new_width), {a}, ApInt(), false,
                  {}, new_width, 0);
}

Term
TermFactory::extract(Term a, unsigned hi, unsigned lo)
{
    KEQ_ASSERT(a.sort().isBitVec(), "extract: non-bitvec");
    KEQ_ASSERT(hi >= lo && hi < a.sort().width(), "extract: bad range");
    unsigned width = hi - lo + 1;
    if (width == a.sort().width())
        return a;
    if (a.isBvConst()) {
        ApInt shifted =
            a.bvValue().lshr(ApInt(a.bvValue().width(), lo));
        return bvConst(shifted.truncTo(width));
    }
    // extract of zext: fully below the original width -> extract there;
    // fully above -> zero.
    if (a.kind() == Kind::ZExt) {
        Term inner = a.operand(0);
        unsigned iw = inner.sort().width();
        if (hi < iw)
            return extract(inner, hi, lo);
        if (lo >= iw)
            return bvConst(width, 0);
    }
    // extract of concat: route into one side when possible.
    if (a.kind() == Kind::Concat) {
        Term high = a.operand(0);
        Term low = a.operand(1);
        unsigned lw = low.sort().width();
        if (hi < lw)
            return extract(low, hi, lo);
        if (lo >= lw)
            return extract(high, hi - lw, lo - lw);
    }
    // extract of extract composes.
    if (a.kind() == Kind::Extract) {
        return extract(a.operand(0), a.extractLo() + hi,
                       a.extractLo() + lo);
    }
    // Push extraction through constant-armed ite (see zext).
    if (a.kind() == Kind::Ite && a.operand(1).isBvConst() &&
        a.operand(2).isBvConst()) {
        return mkIte(a.operand(0), extract(a.operand(1), hi, lo),
                     extract(a.operand(2), hi, lo));
    }
    return intern(Kind::Extract, Sort::bitVec(width), {a}, ApInt(), false,
                  {}, hi, lo);
}

Term
TermFactory::trunc(Term a, unsigned new_width)
{
    KEQ_ASSERT(new_width <= a.sort().width(), "trunc widens");
    if (new_width == a.sort().width())
        return a;
    return extract(a, new_width - 1, 0);
}

Term
TermFactory::concat(Term high, Term low)
{
    KEQ_ASSERT(high.sort().isBitVec() && low.sort().isBitVec(),
               "concat: non-bitvec");
    unsigned width = high.sort().width() + low.sort().width();
    KEQ_ASSERT(width <= 64, "concat: width exceeds 64 bits");
    if (high.isBvConst() && low.isBvConst()) {
        uint64_t bits = (high.bvValue().zext() << low.sort().width()) |
                        low.bvValue().zext();
        return bvConst(width, bits);
    }
    // concat(0, x) == zext(x).
    if (high.isBvConst() && high.bvValue().isZero())
        return zext(low, width);
    // Reassemble adjacent extracts of the same base term.
    if (high.kind() == Kind::Extract && low.kind() == Kind::Extract &&
        high.operand(0) == low.operand(0) &&
        high.extractLo() == low.extractHi() + 1) {
        return extract(high.operand(0), high.extractHi(), low.extractLo());
    }
    // Sign replication: concat(sext(low[msb]), low) == sext(low). This
    // is the CDQ/CQO pattern — the high half is the sign of the low half
    // replicated — and folding it lets the x86 division collapse to the
    // same narrow terms as the input language's.
    if (high.kind() == Kind::SExt) {
        Term sign = high.operand(0);
        unsigned low_width = low.sort().width();
        if (sign.kind() == Kind::Extract &&
            sign.operand(0) == low &&
            sign.extractHi() == low_width - 1 &&
            sign.extractLo() == low_width - 1) {
            return sext(low, width);
        }
    }
    return intern(Kind::Concat, Sort::bitVec(width), {high, low});
}

// --- Memory arrays -------------------------------------------------------------

Term
TermFactory::select(Term array, Term index)
{
    KEQ_ASSERT(array.sort().isMemArray(), "select: non-array");
    KEQ_ASSERT(index.sort() == Sort::bitVec(64), "select: index not bv64");

    // Walk the store chain: select(store(m, i, v), j) is v when i == j
    // syntactically and select(m, j) when i and j are provably distinct
    // constants. This makes concrete-address memory traffic (the common
    // case in -O0 code) collapse without SMT involvement.
    Term current = array;
    while (current.kind() == Kind::Store) {
        Term stored_index = current.operand(1);
        if (stored_index == index)
            return current.operand(2);
        if (stored_index.isBvConst() && index.isBvConst())
            current = current.operand(0);
        else
            break;
    }
    return intern(Kind::Select, Sort::bitVec(8), {current, index});
}

Term
TermFactory::store(Term array, Term index, Term value)
{
    KEQ_ASSERT(array.sort().isMemArray(), "store: non-array");
    KEQ_ASSERT(index.sort() == Sort::bitVec(64), "store: index not bv64");
    KEQ_ASSERT(value.sort() == Sort::bitVec(8), "store: value not bv8");

    // store(store(m, i, v1), i, v2) == store(m, i, v2).
    if (array.kind() == Kind::Store && array.operand(1) == index)
        return store(array.operand(0), index, value);
    // Redundant store of the value already present.
    if (value.kind() == Kind::Select && value.operand(0) == array &&
        value.operand(1) == index) {
        return array;
    }
    return intern(Kind::Store, Sort::memArray(), {array, index, value});
}

Term
TermFactory::readBytes(Term array, Term address, unsigned num_bytes)
{
    KEQ_ASSERT(num_bytes >= 1 && num_bytes <= 8, "readBytes: bad size");
    Term result;
    for (unsigned i = 0; i < num_bytes; ++i) {
        Term idx = bvAdd(address, bvConst(64, i));
        Term byte = select(array, idx);
        result = (i == 0) ? byte : concat(byte, result);
    }
    return result;
}

Term
TermFactory::writeBytes(Term array, Term address, Term value,
                        unsigned num_bytes)
{
    KEQ_ASSERT(num_bytes >= 1 && num_bytes <= 8, "writeBytes: bad size");
    KEQ_ASSERT(value.sort() == Sort::bitVec(8 * num_bytes),
               "writeBytes: value width mismatch");
    Term current = array;
    for (unsigned i = 0; i < num_bytes; ++i) {
        Term idx = bvAdd(address, bvConst(64, i));
        Term byte = extract(value, 8 * i + 7, 8 * i);
        current = store(current, idx, byte);
    }
    return current;
}

} // namespace keq::smt
