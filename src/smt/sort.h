#ifndef KEQ_SMT_SORT_H
#define KEQ_SMT_SORT_H

/**
 * @file
 * Sorts of the symbolic expression language.
 *
 * The checker needs exactly three sort families: booleans (path
 * conditions), bitvectors of width 1..64 (program values), and a single
 * array sort BV64 -> BV8 modelling the byte-addressable common memory
 * (Section 4.4 of the paper).
 */

#include <cstdint>
#include <string>

#include "src/support/diagnostics.h"

namespace keq::smt {

/** Sort of a term: Bool, BitVec(width) or the memory array sort. */
class Sort
{
  public:
    enum class Kind : uint8_t { Bool, BitVec, MemArray };

    static constexpr Sort boolSort() { return Sort(Kind::Bool, 0); }

    static constexpr Sort
    bitVec(unsigned width)
    {
        return Sort(Kind::BitVec, width);
    }

    /** The memory sort: arrays from 64-bit addresses to bytes. */
    static constexpr Sort memArray() { return Sort(Kind::MemArray, 0); }

    constexpr Kind kind() const { return kind_; }
    constexpr bool isBool() const { return kind_ == Kind::Bool; }
    constexpr bool isBitVec() const { return kind_ == Kind::BitVec; }
    constexpr bool isMemArray() const { return kind_ == Kind::MemArray; }

    /** Bit width; only meaningful for BitVec sorts. */
    constexpr unsigned
    width() const
    {
        return width_;
    }

    constexpr bool operator==(const Sort &rhs) const = default;

    std::string
    toString() const
    {
        switch (kind_) {
          case Kind::Bool:
            return "Bool";
          case Kind::BitVec:
            return "bv" + std::to_string(width_);
          case Kind::MemArray:
            return "Mem";
        }
        return "?";
    }

    /** Dense encoding for hashing. */
    constexpr uint32_t
    encode() const
    {
        return (static_cast<uint32_t>(kind_) << 8) | width_;
    }

  private:
    constexpr Sort(Kind kind, unsigned width)
        : kind_(kind), width_(static_cast<uint8_t>(width))
    {}

    Kind kind_;
    uint8_t width_;
};

} // namespace keq::smt

#endif // KEQ_SMT_SORT_H
