#ifndef KEQ_SMT_TERM_H
#define KEQ_SMT_TERM_H

/**
 * @file
 * Hash-consed symbolic terms.
 *
 * Terms form an immutable DAG owned by a TermFactory. Structurally
 * identical terms are shared, so pointer equality is structural equality
 * and hashing a term is O(1). The factory performs aggressive constant
 * folding and algebraic simplification on construction, which keeps
 * symbolic execution of mostly-concrete -O0 code cheap and keeps SMT
 * queries small (the paper's K backend relies on the same property).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/smt/sort.h"
#include "src/support/apint.h"

namespace keq::smt {

class TermFactory;
class TermNode;

/** Operator / leaf kinds of the term language. */
enum class Kind : uint8_t {
    // Leaves.
    BvConst,   ///< Bitvector literal (payload: ApInt).
    BoolConst, ///< Boolean literal (payload: bool).
    Var,       ///< Free variable (payload: name), any sort.

    // Boolean connectives.
    Not,
    And,
    Or,
    Implies,
    Iff,
    Ite, ///< operands: cond, then, else; sort of then/else.

    // Bitvector arithmetic (both operands same width).
    BvAdd,
    BvSub,
    BvMul,
    BvUDiv,
    BvSDiv,
    BvURem,
    BvSRem,
    BvAnd,
    BvOr,
    BvXor,
    BvNot,
    BvNeg,
    BvShl,
    BvLShr,
    BvAShr,

    // Predicates (result sort Bool).
    Eq, ///< Polymorphic equality (bitvec, bool or memory sort).
    BvUlt,
    BvUle,
    BvSlt,
    BvSle,

    // Width adjustment.
    ZExt,    ///< payload: target width.
    SExt,    ///< payload: target width.
    Extract, ///< payload: hi, lo bit positions (inclusive).
    Concat,  ///< operand 0 is the high part.

    // Memory arrays.
    Select, ///< operands: array, index(bv64); result bv8.
    Store,  ///< operands: array, index(bv64), value(bv8); result Mem.
};

const char *kindName(Kind kind);

/**
 * A reference to a hash-consed term node.
 *
 * Cheap to copy; two Terms are structurally equal iff they compare equal.
 * A default-constructed Term is null and only valid as a placeholder.
 */
class Term
{
  public:
    constexpr Term() : node_(nullptr) {}

    bool isNull() const { return node_ == nullptr; }
    explicit operator bool() const { return node_ != nullptr; }

    Kind kind() const;
    Sort sort() const;
    /** Stable, dense identifier (creation order within the factory). */
    uint64_t id() const;

    size_t numOperands() const;
    Term operand(size_t index) const;

    bool isBvConst() const { return kind() == Kind::BvConst; }
    bool isBoolConst() const { return kind() == Kind::BoolConst; }
    bool isVar() const { return kind() == Kind::Var; }
    /** True for BvConst and BoolConst. */
    bool isConst() const { return isBvConst() || isBoolConst(); }

    /** Literal value; only valid when isBvConst(). */
    support::ApInt bvValue() const;
    /** Literal value; only valid when isBoolConst(). */
    bool boolValue() const;
    /** Variable name; only valid when isVar(). */
    const std::string &varName() const;
    /** Extract bounds; only valid for Extract terms. */
    unsigned extractHi() const;
    unsigned extractLo() const;

    /** True if this is the literal `true`. */
    bool isTrue() const;
    /** True if this is the literal `false`. */
    bool isFalse() const;

    bool operator==(const Term &rhs) const = default;

    /** SMT-LIB-flavoured rendering (for logs and tests). */
    std::string toString() const;

    const TermNode *node() const { return node_; }

  private:
    friend class TermFactory;
    explicit constexpr Term(const TermNode *node) : node_(node) {}

    const TermNode *node_;
};

/** Hash functor so Terms can key unordered containers. */
struct TermHash
{
    size_t operator()(const Term &term) const;
};

} // namespace keq::smt

#endif // KEQ_SMT_TERM_H
