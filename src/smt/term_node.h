#ifndef KEQ_SMT_TERM_NODE_H
#define KEQ_SMT_TERM_NODE_H

/**
 * @file
 * Internal representation of a hash-consed term node.
 *
 * Only the factory and the term accessors look inside nodes; client code
 * uses the Term facade.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/smt/sort.h"
#include "src/smt/term.h"
#include "src/support/apint.h"

namespace keq::smt {

/** Immutable node storage; instances owned by a TermFactory. */
class TermNode
{
  public:
    TermNode(uint64_t id, Kind kind, Sort sort, std::vector<Term> operands,
             support::ApInt bv_value, bool bool_value, std::string name,
             unsigned hi, unsigned lo)
        : id_(id), kind_(kind), sort_(sort),
          operands_(std::move(operands)), bvValue_(bv_value),
          boolValue_(bool_value), name_(std::move(name)), hi_(hi), lo_(lo)
    {}

    uint64_t id() const { return id_; }
    Kind kind() const { return kind_; }
    Sort sort() const { return sort_; }
    const std::vector<Term> &operands() const { return operands_; }
    support::ApInt bvValue() const { return bvValue_; }
    bool boolValue() const { return boolValue_; }
    const std::string &name() const { return name_; }
    unsigned hi() const { return hi_; }
    unsigned lo() const { return lo_; }

  private:
    uint64_t id_;
    Kind kind_;
    Sort sort_;
    std::vector<Term> operands_;
    support::ApInt bvValue_;
    bool boolValue_;
    std::string name_;
    unsigned hi_;
    unsigned lo_;
};

} // namespace keq::smt

#endif // KEQ_SMT_TERM_NODE_H
