#include "src/smt/slicer.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/smt/caching_solver.h"
#include "src/smt/term_node.h"
#include "src/support/diagnostics.h"
#include "src/support/rng.h"

namespace keq::smt {

namespace {

/** Free variables of one assertion, plus evaluation supportability. */
struct AssertionScan
{
    std::vector<std::pair<std::string, Sort>> vars;
    /** False when concrete evaluation cannot decide the assertion
     *  (array-sorted equality has no finite-overlay semantics). */
    bool evaluable = true;
};

AssertionScan
scanAssertion(Term root)
{
    AssertionScan scan;
    std::unordered_set<const TermNode *> visited;
    std::unordered_set<std::string> seen;
    std::vector<Term> stack{root};
    while (!stack.empty()) {
        Term term = stack.back();
        stack.pop_back();
        if (!visited.insert(term.node()).second)
            continue;
        if (term.isVar()) {
            if (seen.insert(term.varName()).second)
                scan.vars.emplace_back(term.varName(), term.sort());
        } else if (term.kind() == Kind::Eq &&
                   !term.operand(0).sort().isBool() &&
                   !term.operand(0).sort().isBitVec()) {
            scan.evaluable = false;
        }
        for (size_t i = 0; i < term.numOperands(); ++i)
            stack.push_back(term.operand(i));
    }
    return scan;
}

/** Union-find over assertion indices. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        for (size_t i = 0; i < n; ++i)
            parent_[i] = i;
    }

    size_t
    find(size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    unite(size_t a, size_t b)
    {
        parent_[find(a)] = find(b);
    }

  private:
    std::vector<size_t> parent_;
};

/** One cone of influence: assertions closed under variable sharing. */
struct Cone
{
    std::vector<size_t> assertionIndices;
    std::vector<std::pair<std::string, Sort>> vars;
    bool evaluable = true;
};

/**
 * Deterministic witness search over one cone. Mirrors the QueryCache's
 * probe discipline (fixed corner cases first, then seeded SplitMix64
 * draws) at a smaller budget: cones are small, and a miss costs only a
 * few memoized evaluations.
 */
bool
findWitness(const Cone &cone, const std::vector<Term> &assertions,
            uint64_t seed, Assignment *witness)
{
    if (!cone.evaluable)
        return false;
    static constexpr int kProbes = 12;
    support::Rng rng(seed ^ 0xC2B2AE3D27D4EB4Full);
    for (int probe = 0; probe < kProbes; ++probe) {
        Assignment candidate;
        for (const auto &[name, sort] : cone.vars) {
            if (sort.isBitVec()) {
                uint64_t bits;
                switch (probe) {
                  case 0: bits = 0; break;
                  case 1: bits = ~0ull; break;
                  case 2: bits = 1; break;
                  default: bits = rng.next(); break;
                }
                candidate.setBv(name, support::ApInt(sort.width(), bits));
            } else if (sort.isBool()) {
                candidate.setBool(
                    name, probe == 0 ? false : (rng.next() & 1) != 0);
            }
            // Array variables need no entry: unset bytes read as zero.
        }
        Evaluator eval(candidate);
        bool satisfied = true;
        try {
            for (size_t index : cone.assertionIndices) {
                if (!eval.evalBool(assertions[index])) {
                    satisfied = false;
                    break;
                }
            }
        } catch (const support::InternalError &) {
            satisfied = false;
        }
        if (satisfied) {
            *witness = std::move(candidate);
            return true;
        }
    }
    return false;
}

} // namespace

SliceResult
Slicer::slice(const std::vector<Term> &assertions)
{
    SliceResult result;
    const size_t n = assertions.size();
    if (n == 0) {
        result.decided = SatResult::Sat;
        return result;
    }

    // 1. Cone fixpoint: assertions sharing any free variable coalesce.
    //    (The factory folds variable-free assertions to constants, but
    //    guard anyway: `false` decides the query, `true` drops.)
    std::vector<AssertionScan> scans;
    scans.reserve(n);
    UnionFind uf(n);
    std::unordered_map<std::string, size_t> owner; // var -> assertion
    for (size_t i = 0; i < n; ++i) {
        if (assertions[i].isFalse()) {
            result.decided = SatResult::Unsat;
            return result;
        }
        scans.push_back(scanAssertion(assertions[i]));
        for (const auto &[name, sort] : scans[i].vars) {
            (void)sort;
            auto [it, inserted] = owner.emplace(name, i);
            if (!inserted)
                uf.unite(i, it->second);
        }
    }

    // 2. Materialize cones. Variable-free `true` assertions form empty
    //    cones and drop silently.
    std::unordered_map<size_t, Cone> cones;
    std::vector<size_t> roots; // deterministic iteration order
    for (size_t i = 0; i < n; ++i) {
        if (assertions[i].isTrue())
            continue;
        size_t root = uf.find(i);
        auto [it, inserted] = cones.emplace(root, Cone{});
        if (inserted)
            roots.push_back(root);
        Cone &cone = it->second;
        cone.assertionIndices.push_back(i);
        cone.evaluable &= scans[i].evaluable;
    }
    // Collect each cone's variables once, in first-occurrence order.
    for (size_t root : roots) {
        Cone &cone = cones.at(root);
        std::unordered_set<std::string> seen;
        for (size_t index : cone.assertionIndices) {
            for (const auto &var : scans[index].vars) {
                if (seen.insert(var.first).second)
                    cone.vars.push_back(var);
            }
        }
    }
    result.components = roots.size();

    // 3. Discharge cones with a verified witness; keep the rest. The
    //    probe seed derives from the cone's canonical fingerprint, so
    //    the search — and hence every downstream counter — is
    //    deterministic across runs, threads, and factories.
    std::vector<bool> dropped(n, false);
    bool all_dropped = true;
    for (size_t root : roots) {
        const Cone &cone = cones.at(root);
        std::vector<Term> cone_assertions;
        cone_assertions.reserve(cone.assertionIndices.size());
        for (size_t index : cone.assertionIndices)
            cone_assertions.push_back(assertions[index]);
        uint64_t seed = std::hash<std::string>{}(
            CachingSolver::normalizedKey(cone_assertions));
        Assignment witness;
        if (findWitness(cone, assertions, seed, &witness)) {
            for (size_t index : cone.assertionIndices)
                dropped[index] = true;
            result.droppedAssertions += cone.assertionIndices.size();
            // Merge the witness into the combined dropped-cone model
            // (cones are variable-disjoint, so no clashes).
            for (const auto &[name, sort] : cone.vars) {
                if (sort.isBitVec())
                    result.droppedWitness.setBv(name, witness.bv(name));
                else if (sort.isBool())
                    result.droppedWitness.setBool(name,
                                                  witness.boolean(name));
            }
        } else {
            all_dropped = false;
        }
    }

    if (all_dropped) {
        // Every cone has a witness and cone models compose: Sat.
        result.decided = SatResult::Sat;
        return result;
    }
    for (size_t i = 0; i < n; ++i) {
        if (!assertions[i].isTrue() && !dropped[i])
            result.kept.push_back(assertions[i]);
    }
    return result;
}

} // namespace keq::smt
