#include "src/smt/simplifier.h"

#include <algorithm>
#include <unordered_set>

#include "src/smt/term_node.h"
#include "src/support/diagnostics.h"

namespace keq::smt {

using support::ApInt;

namespace {

bool
isCommutativeBvOp(Kind kind)
{
    return kind == Kind::BvAdd || kind == Kind::BvMul ||
           kind == Kind::BvAnd || kind == Kind::BvOr ||
           kind == Kind::BvXor;
}

/** Folds two constants of a commutative/associative bv operation. */
ApInt
foldAssoc(Kind kind, ApInt a, ApInt b)
{
    switch (kind) {
      case Kind::BvAdd: return a.add(b);
      case Kind::BvMul: return a.mul(b);
      case Kind::BvAnd: return a.and_(b);
      case Kind::BvOr: return a.or_(b);
      case Kind::BvXor: return a.xor_(b);
      default:
        KEQ_ASSERT(false, "foldAssoc: not associative");
    }
    return a;
}

/** The non-constant / constant split of a binary term, if it has one. */
struct ConstSplit
{
    Term other;
    ApInt value;
    bool found = false;
};

ConstSplit
splitConst(Term term)
{
    ConstSplit split;
    if (term.operand(0).isBvConst()) {
        split = {term.operand(1), term.operand(0).bvValue(), true};
    } else if (term.operand(1).isBvConst()) {
        split = {term.operand(0), term.operand(1).bvValue(), true};
    }
    return split;
}

bool
mentionsVar(Term root, const std::string &name)
{
    std::unordered_set<const TermNode *> visited;
    std::vector<Term> stack{root};
    while (!stack.empty()) {
        Term term = stack.back();
        stack.pop_back();
        if (!visited.insert(term.node()).second)
            continue;
        if (term.isVar() && term.varName() == name)
            return true;
        for (size_t i = 0; i < term.numOperands(); ++i)
            stack.push_back(term.operand(i));
    }
    return false;
}

} // namespace

// --- substitution ---------------------------------------------------------

Term
substituteVars(TermFactory &tf, Term term,
               const std::unordered_map<std::string, Term> &map)
{
    // Iterative post-order rebuild through the factory. The memo is
    // local to one substitution map.
    std::unordered_map<const TermNode *, Term> memo;
    struct Frame
    {
        Term term;
        size_t nextOperand = 0;
        std::vector<Term> rebuilt;
    };
    std::vector<Frame> stack;
    stack.push_back({term, 0, {}});
    while (true) {
        Frame &frame = stack.back();
        if (auto it = memo.find(frame.term.node()); it != memo.end()) {
            Term result = it->second;
            stack.pop_back();
            if (stack.empty())
                return result;
            stack.back().rebuilt.push_back(result);
            continue;
        }
        if (frame.nextOperand < frame.term.numOperands()) {
            Term operand = frame.term.operand(frame.nextOperand++);
            stack.push_back({operand, 0, {}});
            continue;
        }

        Term t = frame.term;
        const std::vector<Term> &ops = frame.rebuilt;
        Term result;
        switch (t.kind()) {
          case Kind::Var: {
            auto it = map.find(t.varName());
            if (it != map.end()) {
                KEQ_ASSERT(it->second.sort() == t.sort(),
                           "substituteVars: sort mismatch");
                result = it->second;
            } else {
                result = t;
            }
            break;
          }
          case Kind::BvConst:
          case Kind::BoolConst:
            result = t;
            break;
          case Kind::Not:
            result = tf.mkNot(ops[0]);
            break;
          case Kind::And:
            result = tf.mkAnd(ops[0], ops[1]);
            break;
          case Kind::Or:
            result = tf.mkOr(ops[0], ops[1]);
            break;
          case Kind::Implies:
            result = tf.mkImplies(ops[0], ops[1]);
            break;
          case Kind::Iff:
            result = tf.mkIff(ops[0], ops[1]);
            break;
          case Kind::Ite:
            result = tf.mkIte(ops[0], ops[1], ops[2]);
            break;
          case Kind::Eq:
            result = tf.mkEq(ops[0], ops[1]);
            break;
          case Kind::BvUlt:
          case Kind::BvUle:
          case Kind::BvSlt:
          case Kind::BvSle:
            result = tf.bvPredicate(t.kind(), ops[0], ops[1]);
            break;
          case Kind::BvNot:
            result = tf.bvNot(ops[0]);
            break;
          case Kind::BvNeg:
            result = tf.bvNeg(ops[0]);
            break;
          case Kind::ZExt:
            result = tf.zext(ops[0], t.sort().width());
            break;
          case Kind::SExt:
            result = tf.sext(ops[0], t.sort().width());
            break;
          case Kind::Extract:
            result = tf.extract(ops[0], t.extractHi(), t.extractLo());
            break;
          case Kind::Concat:
            result = tf.concat(ops[0], ops[1]);
            break;
          case Kind::Select:
            result = tf.select(ops[0], ops[1]);
            break;
          case Kind::Store:
            result = tf.store(ops[0], ops[1], ops[2]);
            break;
          default:
            // Binary bitvector arithmetic.
            result = tf.bvBinOp(t.kind(), ops[0], ops[1]);
            break;
        }
        memo.emplace(t.node(), result);
        stack.pop_back();
        if (stack.empty())
            return result;
        stack.back().rebuilt.push_back(result);
    }
}

// --- the rewriter ---------------------------------------------------------

Term
Simplifier::rewrite(Term term)
{
    if (auto it = memo_.find(term.node()); it != memo_.end())
        return it->second;
    Term result = applyRules(rewriteOperands(term));
    memo_.emplace(term.node(), result);
    return result;
}

Term
Simplifier::rewriteOperands(Term term)
{
    if (term.numOperands() == 0)
        return term;
    std::vector<Term> ops;
    ops.reserve(term.numOperands());
    bool changed = false;
    for (size_t i = 0; i < term.numOperands(); ++i) {
        Term rewritten = rewrite(term.operand(i));
        changed |= !(rewritten == term.operand(i));
        ops.push_back(rewritten);
    }
    if (!changed)
        return term;
    // Rebuild through the factory so its construction-time rules fire on
    // the rewritten operands.
    switch (term.kind()) {
      case Kind::Not: return tf_.mkNot(ops[0]);
      case Kind::And: return tf_.mkAnd(ops[0], ops[1]);
      case Kind::Or: return tf_.mkOr(ops[0], ops[1]);
      case Kind::Implies: return tf_.mkImplies(ops[0], ops[1]);
      case Kind::Iff: return tf_.mkIff(ops[0], ops[1]);
      case Kind::Ite: return tf_.mkIte(ops[0], ops[1], ops[2]);
      case Kind::Eq: return tf_.mkEq(ops[0], ops[1]);
      case Kind::BvUlt:
      case Kind::BvUle:
      case Kind::BvSlt:
      case Kind::BvSle:
        return tf_.bvPredicate(term.kind(), ops[0], ops[1]);
      case Kind::BvNot: return tf_.bvNot(ops[0]);
      case Kind::BvNeg: return tf_.bvNeg(ops[0]);
      case Kind::ZExt: return tf_.zext(ops[0], term.sort().width());
      case Kind::SExt: return tf_.sext(ops[0], term.sort().width());
      case Kind::Extract:
        return tf_.extract(ops[0], term.extractHi(), term.extractLo());
      case Kind::Concat: return tf_.concat(ops[0], ops[1]);
      case Kind::Select: return tf_.select(ops[0], ops[1]);
      case Kind::Store: return tf_.store(ops[0], ops[1], ops[2]);
      default: return tf_.bvBinOp(term.kind(), ops[0], ops[1]);
    }
}

Term
Simplifier::applyRules(Term term)
{
    // Every rule strictly shrinks (node count, operand widths), so the
    // fixpoint terminates; the cap is pure defence.
    for (int round = 0; round < 64; ++round) {
        Term next = applyRulesOnce(term);
        if (next.isNull())
            return term;
        ++rewrites_;
        // The rewritten root may expose new operand-level redexes (e.g.
        // ite-lifting creates And/Or of fresh subterms), so normalize
        // the whole replacement before the next round.
        term = rewrite(next);
    }
    return term;
}

Term
Simplifier::applyRulesOnce(Term t)
{
    const Kind kind = t.kind();

    // --- bitvector arithmetic ---------------------------------------------
    if (kind == Kind::BvSub && t.operand(1).isBvConst() &&
        !t.operand(1).bvValue().isZero()) {
        // x - c -> x + (-c): funnels subtraction into the associative
        // re-folding below.
        return tf_.bvAdd(t.operand(0),
                         tf_.bvConst(t.operand(1).bvValue().neg()));
    }
    if (isCommutativeBvOp(kind)) {
        ConstSplit outer = splitConst(t);
        if (outer.found && outer.other.kind() == kind) {
            ConstSplit inner = splitConst(outer.other);
            if (inner.found) {
                // (x op c1) op c2 -> x op (c1 op c2).
                return tf_.bvBinOp(
                    kind, inner.other,
                    tf_.bvConst(foldAssoc(kind, inner.value,
                                          outer.value)));
            }
        }
    }
    if (kind == Kind::BvXor) {
        // x ^ allones -> ~x.
        ConstSplit split = splitConst(t);
        if (split.found && split.value.isAllOnes())
            return tf_.bvNot(split.other);
    }
    if (kind == Kind::BvAnd || kind == Kind::BvOr) {
        // x & ~x -> 0, x | ~x -> allones.
        Term a = t.operand(0);
        Term b = t.operand(1);
        bool complements =
            (a.kind() == Kind::BvNot && a.operand(0) == b) ||
            (b.kind() == Kind::BvNot && b.operand(0) == a);
        if (complements) {
            unsigned width = t.sort().width();
            return kind == Kind::BvAnd
                       ? tf_.bvConst(width, 0)
                       : tf_.bvConst(ApInt::allOnes(width));
        }
    }
    if ((kind == Kind::BvShl || kind == Kind::BvLShr) &&
        t.operand(1).isBvConst() && t.operand(0).kind() == kind &&
        t.operand(0).operand(1).isBvConst()) {
        // (x shift c1) shift c2 -> x shift (c1 + c2), saturating to 0 at
        // the width (both shifts shift in zeros).
        unsigned width = t.sort().width();
        uint64_t total = t.operand(1).bvValue().zext() +
                         t.operand(0).operand(1).bvValue().zext();
        if (total >= width)
            return tf_.bvConst(width, 0);
        return tf_.bvBinOp(kind, t.operand(0).operand(0),
                           tf_.bvConst(width, total));
    }

    // --- comparisons -------------------------------------------------------
    if (kind == Kind::BvUlt || kind == Kind::BvUle ||
        kind == Kind::BvSlt || kind == Kind::BvSle) {
        Term a = t.operand(0);
        Term b = t.operand(1);
        unsigned width = a.sort().width();
        if (b.isBvConst()) {
            ApInt bv = b.bvValue();
            if (kind == Kind::BvUlt && bv.isZero())
                return tf_.falseTerm();
            if (kind == Kind::BvUlt && bv.zext() == 1)
                return tf_.mkEq(a, tf_.bvConst(width, 0));
            if (kind == Kind::BvUle && bv.isAllOnes())
                return tf_.trueTerm();
            if (kind == Kind::BvSle && bv == ApInt::signedMax(width))
                return tf_.trueTerm();
            if (kind == Kind::BvSlt && bv == ApInt::signedMin(width))
                return tf_.falseTerm();
        }
        if (a.isBvConst()) {
            ApInt av = a.bvValue();
            if (kind == Kind::BvUle && av.isZero())
                return tf_.trueTerm();
            if (kind == Kind::BvUlt && av.isAllOnes())
                return tf_.falseTerm();
            if (kind == Kind::BvSle && av == ApInt::signedMin(width))
                return tf_.trueTerm();
            if (kind == Kind::BvSlt && av == ApInt::signedMax(width))
                return tf_.falseTerm();
        }
        // Strip matching extensions: zext is monotone for unsigned
        // comparisons, sext for signed ones (and for unsigned ones the
        // order embedding does not hold, so only the matching pairs
        // fold).
        bool is_unsigned = kind == Kind::BvUlt || kind == Kind::BvUle;
        Kind ext = is_unsigned ? Kind::ZExt : Kind::SExt;
        if (a.kind() == ext && b.kind() == ext &&
            a.operand(0).sort() == b.operand(0).sort()) {
            return tf_.bvPredicate(kind, a.operand(0), b.operand(0));
        }
        // zext(x) < c with c >= 2^w(x): always true (likewise <=).
        if (is_unsigned && a.kind() == Kind::ZExt && b.isBvConst()) {
            unsigned iw = a.operand(0).sort().width();
            ApInt bound = ApInt::allOnes(iw).zextTo(width);
            if (kind == Kind::BvUlt ? bound.ult(b.bvValue())
                                    : bound.ule(b.bvValue())) {
                return tf_.trueTerm();
            }
            // And when c fits in the narrow width, compare there.
            if (b.bvValue().ule(bound)) {
                return tf_.bvPredicate(
                    kind, a.operand(0),
                    tf_.bvConst(b.bvValue().truncTo(iw)));
            }
        }
    }

    if (kind == Kind::Eq && t.operand(0).sort().isBitVec()) {
        Term a = t.operand(0);
        Term b = t.operand(1);
        // Orient the constant to one side for the rules below.
        if (a.isBvConst())
            std::swap(a, b);
        if (b.isBvConst()) {
            ApInt c = b.bvValue();
            // eq(x + c1, c2) -> eq(x, c2 - c1): exposes definitional
            // equalities to the propagation pass.
            if (a.kind() == Kind::BvAdd) {
                ConstSplit split = splitConst(a);
                if (split.found) {
                    return tf_.mkEq(split.other,
                                    tf_.bvConst(c.sub(split.value)));
                }
            }
            if (a.kind() == Kind::BvXor) {
                ConstSplit split = splitConst(a);
                if (split.found) {
                    return tf_.mkEq(split.other,
                                    tf_.bvConst(c.xor_(split.value)));
                }
            }
            // eq(zext(x), c): decided by c's high bits.
            if (a.kind() == Kind::ZExt) {
                unsigned iw = a.operand(0).sort().width();
                if (!c.lshr(ApInt(c.width(), iw)).isZero())
                    return tf_.falseTerm();
                return tf_.mkEq(a.operand(0),
                                tf_.bvConst(c.truncTo(iw)));
            }
            // eq(sext(x), c): c must be its own sign-extension.
            if (a.kind() == Kind::SExt) {
                unsigned iw = a.operand(0).sort().width();
                ApInt low = c.truncTo(iw);
                if (!(low.sextTo(c.width()) == c))
                    return tf_.falseTerm();
                return tf_.mkEq(a.operand(0), tf_.bvConst(low));
            }
            // eq(bvnot(x), c) -> eq(x, ~c); eq(bvneg(x), c) -> eq(x,-c).
            if (a.kind() == Kind::BvNot)
                return tf_.mkEq(a.operand(0), tf_.bvConst(c.not_()));
            if (a.kind() == Kind::BvNeg)
                return tf_.mkEq(a.operand(0), tf_.bvConst(c.neg()));
        }
        // eq(zext(x), zext(y)) / eq(sext(x), sext(y)) with equal inner
        // widths: extensions are injective.
        if ((a.kind() == Kind::ZExt || a.kind() == Kind::SExt) &&
            b.kind() == a.kind() &&
            a.operand(0).sort() == b.operand(0).sort()) {
            return tf_.mkEq(a.operand(0), b.operand(0));
        }
        // eq(x + c, x) with c != 0 is false (cancellation).
        auto cancels = [](Term sum, Term base) {
            if (sum.kind() != Kind::BvAdd)
                return false;
            ConstSplit split = splitConst(sum);
            return split.found && split.other == base &&
                   !split.value.isZero();
        };
        if (cancels(a, b) || cancels(b, a))
            return tf_.falseTerm();
    }

    // --- ite lifting -------------------------------------------------------
    if (kind == Kind::Ite) {
        Term cond = t.operand(0);
        Term then_t = t.operand(1);
        Term else_t = t.operand(2);
        if (cond.kind() == Kind::Not)
            return tf_.mkIte(cond.operand(0), else_t, then_t);
        if (t.sort().isBool()) {
            // Boolean ites become and/or so the factory's absorption and
            // complement rules see through them.
            if (then_t.isTrue())
                return tf_.mkOr(cond, else_t);
            if (then_t.isFalse())
                return tf_.mkAnd(tf_.mkNot(cond), else_t);
            if (else_t.isTrue())
                return tf_.mkOr(tf_.mkNot(cond), then_t);
            if (else_t.isFalse())
                return tf_.mkAnd(cond, then_t);
        }
        // Nested ites on the same condition collapse to one decision.
        if (then_t.kind() == Kind::Ite && then_t.operand(0) == cond)
            return tf_.mkIte(cond, then_t.operand(1), else_t);
        if (else_t.kind() == Kind::Ite && else_t.operand(0) == cond)
            return tf_.mkIte(cond, then_t, else_t.operand(2));
    }

    return Term();
}

// --- whole-query simplification -------------------------------------------

SimplifyResult
Simplifier::simplifyQuery(const std::vector<Term> &assertions)
{
    SimplifyResult result;
    uint64_t rewrites_before = rewrites_;

    // 1. Flatten top-level conjunctions (mkAnd builds left-leaning
    //    chains) and rewrite each conjunct.
    std::vector<Term> flat;
    std::vector<Term> pending(assertions.rbegin(), assertions.rend());
    while (!pending.empty()) {
        Term term = pending.back();
        pending.pop_back();
        if (term.kind() == Kind::And) {
            pending.push_back(term.operand(1));
            pending.push_back(term.operand(0));
            continue;
        }
        flat.push_back(rewrite(term));
    }

    // 2. Equality propagation: eliminate definitional constraints.
    //    `x == t` (x not free in t) lets every other assertion replace x
    //    by t; the defining equation is then dropped — any model of the
    //    rest extends uniquely to x. Bool facts propagate the same way:
    //    a bare `x` assertion pins x to true, `!x` to false.
    for (size_t round = 0; round < flat.size() + 1; ++round) {
        std::unordered_map<std::string, Term> binding;
        size_t defining = flat.size();
        for (size_t i = 0; i < flat.size() && binding.empty(); ++i) {
            Term a = flat[i];
            Term var, value;
            if (a.kind() == Kind::Eq || a.kind() == Kind::Iff) {
                if (a.operand(0).isVar()) {
                    var = a.operand(0);
                    value = a.operand(1);
                } else if (a.operand(1).isVar()) {
                    var = a.operand(1);
                    value = a.operand(0);
                }
                if (var && !mentionsVar(value, var.varName())) {
                    binding.emplace(var.varName(), value);
                    defining = i;
                }
            } else if (a.isVar()) {
                binding.emplace(a.varName(), tf_.trueTerm());
                defining = i;
            } else if (a.kind() == Kind::Not && a.operand(0).isVar()) {
                binding.emplace(a.operand(0).varName(), tf_.falseTerm());
                defining = i;
            }
        }
        if (binding.empty())
            break;
        ++result.eliminatedVars;
        ++rewrites_;
        std::vector<Term> next;
        next.reserve(flat.size() - 1);
        for (size_t i = 0; i < flat.size(); ++i) {
            if (i == defining)
                continue;
            Term substituted = substituteVars(tf_, flat[i], binding);
            next.push_back(rewrite(substituted));
        }
        flat = std::move(next);
    }

    // 3. Re-conjoin through the factory: its chain scan cancels
    //    duplicate and complementary assertions across the whole set,
    //    then flatten back into assertion form.
    Term conjoined = tf_.trueTerm();
    for (const Term &a : flat)
        conjoined = tf_.mkAnd(conjoined, a);

    // 4. Structural fast paths.
    if (conjoined.isFalse()) {
        result.decided = SatResult::Unsat;
        result.rewrites = rewrites_ - rewrites_before;
        return result;
    }
    if (conjoined.isTrue()) {
        // Everything rewrote away; the empty conjunction is satisfied by
        // any assignment. (Eliminated definitional variables extend any
        // model, so this is still Sat for the original query.)
        result.decided = SatResult::Sat;
        result.rewrites = rewrites_ - rewrites_before;
        return result;
    }

    result.assertions.clear();
    std::vector<Term> chain{conjoined};
    while (!chain.empty()) {
        Term term = chain.back();
        chain.pop_back();
        if (term.kind() == Kind::And) {
            chain.push_back(term.operand(1));
            chain.push_back(term.operand(0));
            continue;
        }
        result.assertions.push_back(term);
    }
    result.rewrites = rewrites_ - rewrites_before;
    return result;
}

} // namespace keq::smt
