#ifndef KEQ_SMT_SOLVER_H
#define KEQ_SMT_SOLVER_H

/**
 * @file
 * Solver interface used by the KEQ checker.
 *
 * The checker only needs two questions answered: satisfiability of a
 * conjunction, and validity of an implication. Keeping the interface this
 * small lets the checker stay agnostic of the backing solver, mirroring
 * how the paper's K framework fronts Z3.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/smt/term.h"
#include "src/support/failure.h"

namespace keq::smt {

/** Outcome of a satisfiability query. */
enum class SatResult { Sat, Unsat, Unknown };

/**
 * Ordered (name, value) backend tuning parameters — the knobs a
 * portfolio lane turns ("bv.enable_int2bv" = "true", "random_seed" =
 * "7"). Applied best-effort: a parameter the backend build does not
 * recognize is skipped, never fatal, so lane specs stay portable
 * across Z3 versions.
 */
using BackendTuning = std::vector<std::pair<std::string, std::string>>;

const char *satResultName(SatResult result);

/** Aggregate statistics over the life of a solver. */
struct SolverStats
{
    uint64_t queries = 0;
    uint64_t sat = 0;
    uint64_t unsat = 0;
    uint64_t unknown = 0;
    double totalSeconds = 0.0;

    // Memoization counters; nonzero only when a CachingSolver fronts the
    // backend. For a CachingSolver every query is resolved by exactly one
    // stage, so
    //   rewriteResolved + sliceResolved + cacheHits + cacheMisses
    //     == queries.
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;

    // Per-stage counters of the query optimization stack
    // (simplify -> slice -> cache -> incremental Z3); all zero for the
    // unoptimized stack.
    uint64_t rewriteResolved = 0; ///< queries decided by the rewrite engine
    uint64_t rewriteApplications = 0; ///< individual rewrite rule firings
    uint64_t sliceResolved = 0;   ///< queries decided by COI slicing alone
    uint64_t slicedAssertions = 0; ///< assertions pruned before solving
    uint64_t incrementalReused = 0; ///< assertions reused from a live prefix
    uint64_t incrementalSolves = 0; ///< backend checks reusing >= 1 assertion
    uint64_t incrementalFallbacks = 0; ///< Unknown -> fresh-solver retries
    uint64_t coldSolves = 0;      ///< backend checks with no reused prefix

    // Fault-tolerance counters (GuardedSolver / FaultInjectingSolver).
    // These count *recovery work*, never logical queries: the verdict
    // counters above stay byte-identical whether or not faults occurred,
    // which is what lets the chaos suite diff canonical summaries.
    uint64_t watchdogInterrupts = 0; ///< deadline/cancel interrupts fired
    uint64_t guardedRetries = 0;     ///< same-rung retry attempts
    uint64_t guardedEscalations = 0; ///< moves to the next ladder rung
    uint64_t escalatedResolved = 0;  ///< queries decided by a fallback rung
    uint64_t solverCrashes = 0;      ///< backend exceptions absorbed
    uint64_t faultsInjected = 0;     ///< faults the injection harness fired

    // Process-isolation counters (SandboxSolver / WorkerSupervisor).
    // Like the fault-tolerance block these count recovery work and IPC
    // overhead, never logical queries.
    uint64_t workerCrashes = 0;     ///< worker process deaths observed
    uint64_t workerRestarts = 0;    ///< workers respawned after a death
    uint64_t heartbeatTimeouts = 0; ///< queries killed for a silent worker
    uint64_t wireBytesSent = 0;     ///< protocol bytes shipped to workers
    uint64_t wireBytesReceived = 0; ///< protocol bytes read from workers

    // Portfolio counters (PortfolioSolver / batched discharge). Wins and
    // cancellations count race outcomes, never logical queries; a lane
    // losing a race is invisible to the verdict counters above.
    static constexpr size_t kPortfolioMaxLanes = 4;
    uint64_t batchedQueries = 0; ///< obligations reusing a warm batch prefix
    uint64_t portfolioWins[kPortfolioMaxLanes] = {}; ///< first-answer wins
    uint64_t portfolioCancellations = 0; ///< losing lanes interrupted
    uint64_t crossLaneDisagreements = 0; ///< definite-verdict mismatches

    SolverStats &operator+=(const SolverStats &rhs);
    /** Field-wise difference; used to attribute counters to one check. */
    SolverStats operator-(const SolverStats &rhs) const;
};

/**
 * Adds every field of @p delta to @p into EXCEPT the logical-query
 * counters (queries, sat, unsat, unknown). Decorators that retry or
 * escalate (GuardedSolver, FaultInjectingSolver) count one logical query
 * per checkSat call themselves, but must still surface the work their
 * rungs performed — cache traffic, incremental reuse, injected faults,
 * backend seconds — without inflating the query/verdict counts that the
 * canonical (byte-identical) summaries are built from.
 */
void foldNonVerdictStats(SolverStats &into, const SolverStats &delta);

class Assignment; // evaluator.h

/**
 * Thrown when a backend solver fails abnormally (a z3::exception or an
 * injected crash) rather than answering Unknown. The GuardedSolver
 * absorbs these while ladder rungs remain; only an exhausted ladder
 * lets one escape to the checker, which classifies it
 * FailureKind::SolverCrash.
 */
class SolverCrashError : public std::runtime_error
{
  public:
    explicit SolverCrashError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * Maps a backend's reason_unknown() string onto the taxonomy. Z3 reports
 * "timeout"/"canceled"/"max. memory exceeded" style reasons; anything
 * unrecognized is an honest SolverUnknown (incompleteness).
 */
FailureKind classifyUnknownReason(const std::string &reason);

/** Abstract satisfiability oracle. */
class Solver
{
  public:
    virtual ~Solver() = default;

    /** Checks satisfiability of the conjunction of @p assertions. */
    virtual SatResult checkSat(const std::vector<Term> &assertions) = 0;

    /**
     * Asks the solver to retain the satisfying model of each Sat answer
     * so that lastModel() can surface it. Off by default: extracting
     * models costs time the plain pipeline never recoups. Backends
     * without model support may ignore this.
     */
    virtual void enableModelCapture(bool enabled) { (void)enabled; }

    /**
     * Copies the model of the most recent Sat answer into @p out.
     *
     * @return false when no model is available (capture disabled, last
     *         answer not Sat, or the backend cannot produce models).
     */
    virtual bool lastModel(Assignment *out) const
    {
        (void)out;
        return false;
    }

    /**
     * Proves `hypothesis => conclusion` by checking that
     * `hypothesis && !conclusion` is unsatisfiable.
     *
     * @return true only when the implication is proven valid; Unknown
     *         results (e.g. timeouts) report false.
     */
    bool proveImplication(Term hypothesis, Term conclusion);

    /**
     * Batched-discharge form: proves `(/\ hypothesis) => conclusion` by
     * shipping the hypothesis as *separate leading assertions* followed
     * by `!conclusion`, instead of collapsing everything into one
     * conjunction. Logically identical to the single-term overload, but
     * consecutive obligations sharing a hypothesis then present an
     * identical assertion prefix to an incremental backend, which keeps
     * the prefix asserted in a warm scope and push/pops only the final
     * negated conclusion (SolverStats::incrementalReused measures the
     * effect). Verdicts never differ between the two forms.
     */
    bool proveImplication(const std::vector<Term> &hypothesis,
                          Term conclusion);

    /** Per-query timeout; 0 means no limit. */
    virtual void setTimeoutMs(unsigned timeout_ms) = 0;

    /**
     * Soft per-query memory budget in MB; 0 means no limit. Backends
     * that cannot enforce one may ignore it.
     */
    virtual void setMemoryBudgetMb(unsigned budget_mb)
    {
        (void)budget_mb;
    }

    /**
     * Asks the backend to abandon the in-flight checkSat as soon as
     * possible (the interrupted query returns Unknown). Must be safe to
     * call from another thread — this is the watchdog's lever. Decorators
     * forward to their backend; the default is a no-op for backends with
     * nothing to interrupt.
     */
    virtual void interruptQuery() {}

    /**
     * Backend's explanation of the most recent Unknown answer (e.g.
     * Z3's reason_unknown()); empty when unavailable or the last answer
     * was definite.
     */
    virtual std::string lastUnknownReason() const { return {}; }

    /**
     * Taxonomy classification of the most recent checkSat: None for a
     * definite answer, otherwise why the query failed. Decorators that
     * retry/escalate (GuardedSolver) report the classification of the
     * final attempt.
     */
    virtual FailureKind lastFailureKind() const
    {
        return FailureKind::None;
    }

    virtual const SolverStats &stats() const = 0;

  protected:
    /** Factory that owns the terms this solver receives. */
    virtual TermFactory &factory() = 0;
};

} // namespace keq::smt

#endif // KEQ_SMT_SOLVER_H
