#ifndef KEQ_SMT_SOLVER_H
#define KEQ_SMT_SOLVER_H

/**
 * @file
 * Solver interface used by the KEQ checker.
 *
 * The checker only needs two questions answered: satisfiability of a
 * conjunction, and validity of an implication. Keeping the interface this
 * small lets the checker stay agnostic of the backing solver, mirroring
 * how the paper's K framework fronts Z3.
 */

#include <cstdint>
#include <vector>

#include "src/smt/term.h"

namespace keq::smt {

/** Outcome of a satisfiability query. */
enum class SatResult { Sat, Unsat, Unknown };

const char *satResultName(SatResult result);

/** Aggregate statistics over the life of a solver. */
struct SolverStats
{
    uint64_t queries = 0;
    uint64_t sat = 0;
    uint64_t unsat = 0;
    uint64_t unknown = 0;
    double totalSeconds = 0.0;
};

/** Abstract satisfiability oracle. */
class Solver
{
  public:
    virtual ~Solver() = default;

    /** Checks satisfiability of the conjunction of @p assertions. */
    virtual SatResult checkSat(const std::vector<Term> &assertions) = 0;

    /**
     * Proves `hypothesis => conclusion` by checking that
     * `hypothesis && !conclusion` is unsatisfiable.
     *
     * @return true only when the implication is proven valid; Unknown
     *         results (e.g. timeouts) report false.
     */
    bool proveImplication(Term hypothesis, Term conclusion);

    /** Per-query timeout; 0 means no limit. */
    virtual void setTimeoutMs(unsigned timeout_ms) = 0;

    virtual const SolverStats &stats() const = 0;

  protected:
    /** Factory that owns the terms this solver receives. */
    virtual TermFactory &factory() = 0;
};

} // namespace keq::smt

#endif // KEQ_SMT_SOLVER_H
