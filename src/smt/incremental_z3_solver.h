#ifndef KEQ_SMT_INCREMENTAL_Z3_SOLVER_H
#define KEQ_SMT_INCREMENTAL_Z3_SOLVER_H

/**
 * @file
 * Incremental Z3 backend (stage 3 of the optimization stack).
 *
 * Z3Solver cold-starts a fresh z3::solver per query, mirroring the
 * paper's K/Z3 integration. Checker queries, however, arrive in runs
 * that share long assertion prefixes: the cut-point hypothesis terms
 * accumulate in order, and successive proof obligations differ only in
 * the negated conclusion at the tail. IncrementalZ3Solver keeps one
 * z3::solver alive per worker and mirrors the assertion list onto a
 * push/pop scope stack — one scope per directly-asserted assertion
 * (plain scoped asserts keep Z3's full preprocessing enabled, unlike an
 * assumption-literal encoding). A new query pops back to the longest
 * common prefix with the previous one and pushes only the suffix, so
 * the prefix's internalized clauses survive across queries.
 *
 * Soundness guardrail: an Unknown from the incremental solver is
 * retried on a fresh cold solver before being reported (and the
 * persistent solver is rebuilt), so incrementality can change timings
 * but not verdicts — the identity-vs-Z3Solver property tests assert
 * this on interleaved query sequences.
 */

#include <memory>
#include <optional>
#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/solver.h"
#include "src/smt/term_factory.h"

namespace keq::smt {

/** Persistent Z3 solver reusing shared assertion prefixes. */
class IncrementalZ3Solver : public Solver
{
  public:
    /**
     * @p tuning: optional best-effort Z3 parameters applied to the
     * persistent solver and every fallback — how a portfolio lane
     * differentiates itself.
     */
    explicit IncrementalZ3Solver(TermFactory &factory,
                                 BackendTuning tuning = {});
    ~IncrementalZ3Solver() override;

    SatResult checkSat(const std::vector<Term> &assertions) override;
    void setTimeoutMs(unsigned timeout_ms) override;
    void setMemoryBudgetMb(unsigned budget_mb) override;

    /**
     * Fires Z3_interrupt on the owning context; safe from another
     * thread. Note the Unknown guardrail below *re-enters* Z3 on a
     * fresh fallback solver after an interrupted check — a watchdog
     * that wants the whole call abandoned must keep re-interrupting
     * until checkSat returns (GuardedSolver's does).
     */
    void interruptQuery() override;

    std::string lastUnknownReason() const override
    {
        return lastUnknownReason_;
    }

    FailureKind lastFailureKind() const override { return lastFailure_; }

    const SolverStats &stats() const override { return stats_; }

    void enableModelCapture(bool enabled) override
    {
        captureModels_ = enabled;
    }

    bool lastModel(Assignment *out) const override;

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    struct Impl; // hides <z3++.h> from clients
    TermFactory &factory_;
    std::unique_ptr<Impl> impl_;
    BackendTuning tuning_;
    SolverStats stats_;
    unsigned timeoutMs_ = 0;
    unsigned memoryBudgetMb_ = 0;
    bool captureModels_ = false;
    std::optional<Assignment> lastModel_;
    std::string lastUnknownReason_;
    FailureKind lastFailure_ = FailureKind::None;
};

} // namespace keq::smt

#endif // KEQ_SMT_INCREMENTAL_Z3_SOLVER_H
