#include "src/smt/z3_solver.h"

#include <cstdlib>
#include <iostream>

#include <z3++.h>

#include "src/smt/z3_lowering.h"
#include "src/support/diagnostics.h"
#include "src/support/stopwatch.h"

namespace keq::smt {

struct Z3Solver::Impl
{
    z3::context ctx;
    Z3Lowering lowering{ctx};
};

Z3Solver::Z3Solver(TermFactory &factory)
    : factory_(factory), impl_(std::make_unique<Impl>())
{}

Z3Solver::~Z3Solver() = default;

bool
Z3Solver::lastModel(Assignment *out) const
{
    if (!lastModel_.has_value())
        return false;
    *out = *lastModel_;
    return true;
}

void
Z3Solver::setTimeoutMs(unsigned timeout_ms)
{
    timeoutMs_ = timeout_ms;
}

SatResult
Z3Solver::checkSat(const std::vector<Term> &assertions)
{
    support::Stopwatch watch;
    z3::solver solver(impl_->ctx);
    if (timeoutMs_ > 0) {
        z3::params params(impl_->ctx);
        params.set("timeout", timeoutMs_);
        solver.set(params);
    }
    for (const Term &assertion : assertions) {
        KEQ_ASSERT(assertion.sort().isBool(),
                   "checkSat: non-bool assertion");
        solver.add(impl_->lowering.lower(assertion));
    }
    z3::check_result z3_result = solver.check();

    ++stats_.queries;
    double seconds = watch.seconds();
    stats_.totalSeconds += seconds;

    // Diagnostics: KEQ_DUMP_SLOW_QUERIES=<seconds> prints any query that
    // exceeds the threshold in SMT-LIB form to stderr.
    static const char *threshold_env =
        std::getenv("KEQ_DUMP_SLOW_QUERIES");
    if (threshold_env != nullptr &&
        seconds > std::strtod(threshold_env, nullptr)) {
        std::cerr << "; slow query (" << seconds << " s)\n"
                  << solver.to_smt2() << "\n";
    }
    lastModel_.reset();
    if (z3_result == z3::sat && captureModels_) {
        lastModel_.emplace();
        try {
            extractModel(solver.get_model(), &*lastModel_);
        } catch (const z3::exception &) {
            lastModel_.reset();
        }
    }

    switch (z3_result) {
      case z3::sat:
        ++stats_.sat;
        return SatResult::Sat;
      case z3::unsat:
        ++stats_.unsat;
        return SatResult::Unsat;
      case z3::unknown:
        ++stats_.unknown;
        return SatResult::Unknown;
    }
    KEQ_ASSERT(false, "checkSat: unhandled Z3 result");
    return SatResult::Unknown;
}

} // namespace keq::smt
