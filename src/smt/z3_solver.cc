#include "src/smt/z3_solver.h"

#include <cstdlib>
#include <iostream>

#include <z3++.h>

#include "src/smt/z3_lowering.h"
#include "src/support/diagnostics.h"
#include "src/support/stopwatch.h"

namespace keq::smt {

struct Z3Solver::Impl
{
    z3::context ctx;
    Z3Lowering lowering{ctx};
};

Z3Solver::Z3Solver(TermFactory &factory, BackendTuning tuning)
    : factory_(factory), impl_(std::make_unique<Impl>()),
      tuning_(std::move(tuning))
{}

Z3Solver::~Z3Solver() = default;

bool
Z3Solver::lastModel(Assignment *out) const
{
    if (!lastModel_.has_value())
        return false;
    *out = *lastModel_;
    return true;
}

void
Z3Solver::setTimeoutMs(unsigned timeout_ms)
{
    timeoutMs_ = timeout_ms;
}

void
Z3Solver::setMemoryBudgetMb(unsigned budget_mb)
{
    memoryBudgetMb_ = budget_mb;
}

void
Z3Solver::interruptQuery()
{
    impl_->ctx.interrupt();
}

SatResult
Z3Solver::checkSat(const std::vector<Term> &assertions)
{
    support::Stopwatch watch;
    lastUnknownReason_.clear();
    lastFailure_ = FailureKind::None;
    z3::solver solver(impl_->ctx);
    if (timeoutMs_ > 0 || memoryBudgetMb_ > 0) {
        z3::params params(impl_->ctx);
        if (timeoutMs_ > 0)
            params.set("timeout", timeoutMs_);
        if (memoryBudgetMb_ > 0)
            params.set("max_memory", memoryBudgetMb_);
        solver.set(params);
    }
    if (!tuning_.empty())
        applyTuningParams(impl_->ctx, solver, tuning_);
    z3::check_result z3_result = z3::unknown;
    try {
        for (const Term &assertion : assertions) {
            KEQ_ASSERT(assertion.sort().isBool(),
                       "checkSat: non-bool assertion");
            solver.add(impl_->lowering.lower(assertion));
        }
        z3_result = solver.check();
        if (z3_result == z3::unknown) {
            lastUnknownReason_ = solver.reason_unknown();
            lastFailure_ = classifyUnknownReason(lastUnknownReason_);
        }
    } catch (const z3::exception &error) {
        // An abnormal backend failure is a crash, not a verdict; the
        // GuardedSolver ladder absorbs it. Memory exhaustion surfaces
        // as an allocation exception with some Z3 configurations.
        std::string what = error.msg();
        lastFailure_ = what.find("memory") != std::string::npos
                           ? FailureKind::MemoryBudget
                           : FailureKind::SolverCrash;
        throw SolverCrashError("z3: " + what);
    }

    ++stats_.queries;
    double seconds = watch.seconds();
    stats_.totalSeconds += seconds;

    // Diagnostics: KEQ_DUMP_SLOW_QUERIES=<seconds> prints any query that
    // exceeds the threshold in SMT-LIB form to stderr.
    static const char *threshold_env =
        std::getenv("KEQ_DUMP_SLOW_QUERIES");
    if (threshold_env != nullptr &&
        seconds > std::strtod(threshold_env, nullptr)) {
        std::cerr << "; slow query (" << seconds << " s)\n"
                  << solver.to_smt2() << "\n";
    }
    lastModel_.reset();
    if (z3_result == z3::sat && captureModels_) {
        lastModel_.emplace();
        try {
            extractModel(solver.get_model(), &*lastModel_);
        } catch (const z3::exception &) {
            lastModel_.reset();
        }
    }

    switch (z3_result) {
      case z3::sat:
        ++stats_.sat;
        return SatResult::Sat;
      case z3::unsat:
        ++stats_.unsat;
        return SatResult::Unsat;
      case z3::unknown:
        ++stats_.unknown;
        return SatResult::Unknown;
    }
    KEQ_ASSERT(false, "checkSat: unhandled Z3 result");
    return SatResult::Unknown;
}

} // namespace keq::smt
