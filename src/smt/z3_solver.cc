#include "src/smt/z3_solver.h"

#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include <z3++.h>

#include "src/support/diagnostics.h"
#include "src/support/stopwatch.h"

namespace keq::smt {

struct Z3Solver::Impl
{
    z3::context ctx;
    std::unordered_map<uint64_t, z3::expr> cache;

    z3::sort
    lowerSort(Sort sort)
    {
        switch (sort.kind()) {
          case Sort::Kind::Bool:
            return ctx.bool_sort();
          case Sort::Kind::BitVec:
            return ctx.bv_sort(sort.width());
          case Sort::Kind::MemArray:
            return ctx.array_sort(ctx.bv_sort(64), ctx.bv_sort(8));
        }
        KEQ_ASSERT(false, "lowerSort: unhandled sort");
        return ctx.bool_sort();
    }

    z3::expr
    lower(Term term)
    {
        auto it = cache.find(term.id());
        if (it != cache.end())
            return it->second;
        z3::expr result = lowerUncached(term);
        cache.emplace(term.id(), result);
        return result;
    }

    z3::expr
    lowerUncached(Term term)
    {
        switch (term.kind()) {
          case Kind::BvConst:
            return ctx.bv_val(term.bvValue().zext(),
                              term.bvValue().width());
          case Kind::BoolConst:
            return ctx.bool_val(term.boolValue());
          case Kind::Var:
            return ctx.constant(term.varName().c_str(),
                                lowerSort(term.sort()));
          case Kind::Not:
            return !lower(term.operand(0));
          case Kind::And:
            return lower(term.operand(0)) && lower(term.operand(1));
          case Kind::Or:
            return lower(term.operand(0)) || lower(term.operand(1));
          case Kind::Implies:
            return z3::implies(lower(term.operand(0)),
                               lower(term.operand(1)));
          case Kind::Iff:
            return lower(term.operand(0)) == lower(term.operand(1));
          case Kind::Ite:
            return z3::ite(lower(term.operand(0)),
                           lower(term.operand(1)),
                           lower(term.operand(2)));
          case Kind::BvAdd:
            return lower(term.operand(0)) + lower(term.operand(1));
          case Kind::BvSub:
            return lower(term.operand(0)) - lower(term.operand(1));
          case Kind::BvMul:
            return lower(term.operand(0)) * lower(term.operand(1));
          case Kind::BvUDiv:
            return z3::udiv(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvSDiv:
            return lower(term.operand(0)) / lower(term.operand(1));
          case Kind::BvURem:
            return z3::urem(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvSRem:
            return z3::srem(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvAnd:
            return lower(term.operand(0)) & lower(term.operand(1));
          case Kind::BvOr:
            return lower(term.operand(0)) | lower(term.operand(1));
          case Kind::BvXor:
            return lower(term.operand(0)) ^ lower(term.operand(1));
          case Kind::BvNot:
            return ~lower(term.operand(0));
          case Kind::BvNeg:
            return -lower(term.operand(0));
          case Kind::BvShl:
            return z3::shl(lower(term.operand(0)),
                           lower(term.operand(1)));
          case Kind::BvLShr:
            return z3::lshr(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvAShr:
            return z3::ashr(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::Eq:
            return lower(term.operand(0)) == lower(term.operand(1));
          case Kind::BvUlt:
            return z3::ult(lower(term.operand(0)),
                           lower(term.operand(1)));
          case Kind::BvUle:
            return z3::ule(lower(term.operand(0)),
                           lower(term.operand(1)));
          case Kind::BvSlt:
            return lower(term.operand(0)) < lower(term.operand(1));
          case Kind::BvSle:
            return lower(term.operand(0)) <= lower(term.operand(1));
          case Kind::ZExt:
            return z3::zext(lower(term.operand(0)),
                            term.sort().width() -
                                term.operand(0).sort().width());
          case Kind::SExt:
            return z3::sext(lower(term.operand(0)),
                            term.sort().width() -
                                term.operand(0).sort().width());
          case Kind::Extract:
            return lower(term.operand(0))
                .extract(term.extractHi(), term.extractLo());
          case Kind::Concat:
            return z3::concat(lower(term.operand(0)),
                              lower(term.operand(1)));
          case Kind::Select:
            return z3::select(lower(term.operand(0)),
                              lower(term.operand(1)));
          case Kind::Store:
            return z3::store(lower(term.operand(0)),
                             lower(term.operand(1)),
                             lower(term.operand(2)));
        }
        KEQ_ASSERT(false, "lowerUncached: unhandled kind");
        return ctx.bool_val(false);
    }
};

Z3Solver::Z3Solver(TermFactory &factory)
    : factory_(factory), impl_(std::make_unique<Impl>())
{}

Z3Solver::~Z3Solver() = default;

bool
Z3Solver::lastModel(Assignment *out) const
{
    if (!lastModel_.has_value())
        return false;
    *out = *lastModel_;
    return true;
}

void
Z3Solver::setTimeoutMs(unsigned timeout_ms)
{
    timeoutMs_ = timeout_ms;
}

SatResult
Z3Solver::checkSat(const std::vector<Term> &assertions)
{
    support::Stopwatch watch;
    z3::solver solver(impl_->ctx);
    if (timeoutMs_ > 0) {
        z3::params params(impl_->ctx);
        params.set("timeout", timeoutMs_);
        solver.set(params);
    }
    for (const Term &assertion : assertions) {
        KEQ_ASSERT(assertion.sort().isBool(),
                   "checkSat: non-bool assertion");
        solver.add(impl_->lower(assertion));
    }
    z3::check_result z3_result = solver.check();

    ++stats_.queries;
    double seconds = watch.seconds();
    stats_.totalSeconds += seconds;

    // Diagnostics: KEQ_DUMP_SLOW_QUERIES=<seconds> prints any query that
    // exceeds the threshold in SMT-LIB form to stderr.
    static const char *threshold_env =
        std::getenv("KEQ_DUMP_SLOW_QUERIES");
    if (threshold_env != nullptr &&
        seconds > std::strtod(threshold_env, nullptr)) {
        std::cerr << "; slow query (" << seconds << " s)\n"
                  << solver.to_smt2() << "\n";
    }
    lastModel_.reset();
    if (z3_result == z3::sat && captureModels_) {
        lastModel_.emplace();
        try {
            z3::model model = solver.get_model();
            for (unsigned i = 0; i < model.size(); ++i) {
                z3::func_decl decl = model[i];
                if (decl.arity() != 0)
                    continue;
                z3::expr value = model.get_const_interp(decl);
                z3::sort range = decl.range();
                if (range.is_bv() && range.bv_size() <= 64 &&
                    value.is_numeral()) {
                    lastModel_->setBv(
                        decl.name().str(),
                        support::ApInt(range.bv_size(),
                                       value.get_numeral_uint64()));
                } else if (range.is_bool() && value.is_bool()) {
                    lastModel_->setBool(decl.name().str(),
                                        value.is_true());
                }
                // Array interpretations are skipped: reused models are
                // re-verified by evaluation, which reads unlisted bytes
                // as zero.
            }
        } catch (const z3::exception &) {
            lastModel_.reset();
        }
    }

    switch (z3_result) {
      case z3::sat:
        ++stats_.sat;
        return SatResult::Sat;
      case z3::unsat:
        ++stats_.unsat;
        return SatResult::Unsat;
      case z3::unknown:
        ++stats_.unknown;
        return SatResult::Unknown;
    }
    KEQ_ASSERT(false, "checkSat: unhandled Z3 result");
    return SatResult::Unknown;
}

} // namespace keq::smt
