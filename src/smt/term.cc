#include "src/smt/term.h"

#include <sstream>

#include "src/smt/term_node.h"
#include "src/support/diagnostics.h"

namespace keq::smt {

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::BvConst: return "bvconst";
      case Kind::BoolConst: return "boolconst";
      case Kind::Var: return "var";
      case Kind::Not: return "not";
      case Kind::And: return "and";
      case Kind::Or: return "or";
      case Kind::Implies: return "=>";
      case Kind::Iff: return "iff";
      case Kind::Ite: return "ite";
      case Kind::BvAdd: return "bvadd";
      case Kind::BvSub: return "bvsub";
      case Kind::BvMul: return "bvmul";
      case Kind::BvUDiv: return "bvudiv";
      case Kind::BvSDiv: return "bvsdiv";
      case Kind::BvURem: return "bvurem";
      case Kind::BvSRem: return "bvsrem";
      case Kind::BvAnd: return "bvand";
      case Kind::BvOr: return "bvor";
      case Kind::BvXor: return "bvxor";
      case Kind::BvNot: return "bvnot";
      case Kind::BvNeg: return "bvneg";
      case Kind::BvShl: return "bvshl";
      case Kind::BvLShr: return "bvlshr";
      case Kind::BvAShr: return "bvashr";
      case Kind::Eq: return "=";
      case Kind::BvUlt: return "bvult";
      case Kind::BvUle: return "bvule";
      case Kind::BvSlt: return "bvslt";
      case Kind::BvSle: return "bvsle";
      case Kind::ZExt: return "zext";
      case Kind::SExt: return "sext";
      case Kind::Extract: return "extract";
      case Kind::Concat: return "concat";
      case Kind::Select: return "select";
      case Kind::Store: return "store";
    }
    return "?";
}

Kind
Term::kind() const
{
    return node_->kind();
}

Sort
Term::sort() const
{
    return node_->sort();
}

uint64_t
Term::id() const
{
    return node_->id();
}

size_t
Term::numOperands() const
{
    return node_->operands().size();
}

Term
Term::operand(size_t index) const
{
    KEQ_ASSERT(index < node_->operands().size(), "operand out of range");
    return node_->operands()[index];
}

support::ApInt
Term::bvValue() const
{
    KEQ_ASSERT(isBvConst(), "bvValue on non-constant");
    return node_->bvValue();
}

bool
Term::boolValue() const
{
    KEQ_ASSERT(isBoolConst(), "boolValue on non-constant");
    return node_->boolValue();
}

const std::string &
Term::varName() const
{
    KEQ_ASSERT(isVar(), "varName on non-variable");
    return node_->name();
}

unsigned
Term::extractHi() const
{
    KEQ_ASSERT(kind() == Kind::Extract, "extractHi on non-extract");
    return node_->hi();
}

unsigned
Term::extractLo() const
{
    KEQ_ASSERT(kind() == Kind::Extract, "extractLo on non-extract");
    return node_->lo();
}

bool
Term::isTrue() const
{
    return isBoolConst() && boolValue();
}

bool
Term::isFalse() const
{
    return isBoolConst() && !boolValue();
}

namespace {

void
printTerm(std::ostream &os, const Term &term)
{
    switch (term.kind()) {
      case Kind::BvConst:
        os << term.bvValue().toString() << ":bv"
           << term.bvValue().width();
        return;
      case Kind::BoolConst:
        os << (term.boolValue() ? "true" : "false");
        return;
      case Kind::Var:
        os << term.varName();
        return;
      case Kind::Extract:
        os << "((_ extract " << term.extractHi() << " "
           << term.extractLo() << ") ";
        printTerm(os, term.operand(0));
        os << ")";
        return;
      case Kind::ZExt:
      case Kind::SExt:
        os << "((_ " << kindName(term.kind()) << " "
           << term.sort().width() << ") ";
        printTerm(os, term.operand(0));
        os << ")";
        return;
      default:
        break;
    }
    os << "(" << kindName(term.kind());
    for (size_t i = 0; i < term.numOperands(); ++i) {
        os << " ";
        printTerm(os, term.operand(i));
    }
    os << ")";
}

} // namespace

std::string
Term::toString() const
{
    if (isNull())
        return "<null>";
    std::ostringstream os;
    printTerm(os, *this);
    return os.str();
}

size_t
TermHash::operator()(const Term &term) const
{
    return std::hash<const TermNode *>()(term.node());
}

} // namespace keq::smt
