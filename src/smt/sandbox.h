#ifndef KEQ_SMT_SANDBOX_H
#define KEQ_SMT_SANDBOX_H

/**
 * @file
 * Out-of-process solver sandbox: supervised worker pool with crash
 * containment.
 *
 * The GuardedSolver contains *in-process* failures (exceptions, soft
 * timeouts), but a solver that segfaults, triggers the kernel OOM
 * killer, or wedges inside native code takes the whole validation run
 * with it. The sandbox moves the entire solver stack into child
 * processes running under hard setrlimit caps (RLIMIT_AS, RLIMIT_CPU,
 * RLIMIT_CORE=0) so that the worst a query can do is kill its worker:
 *
 *  - **WorkerSupervisor** owns a fixed pool of worker slots. Each
 *    leased slot runs one `keq-solver-worker` child speaking the wire
 *    protocol (src/smt/wire.h) over its stdin/stdout pipes. The
 *    supervisor ships queries, enforces a per-query heartbeat deadline,
 *    classifies worker deaths from the waitpid status (exit code 77 or
 *    a signal near the memory cap => FailureKind::WorkerOom, any other
 *    abnormal death => WorkerKilled), and respawns dead workers with
 *    capped, jittered exponential backoff. Exactly the query that was
 *    in flight on a dying worker is lost — the verdict set of a run is
 *    otherwise identical to the in-process pipeline's.
 *
 *  - **SandboxSolver** adapts one supervisor session to the Solver
 *    interface so the checker cannot tell it is talking to another
 *    process. Each SandboxSolver is a session: the worker lazily builds
 *    a fresh TermFactory + incremental/cache/guard stack on the first
 *    query of a session (a Reset frame), so per-function variable
 *    namespaces never collide inside a long-lived worker.
 *
 *  - **Chaos.** When chaosKillRate > 0 the supervisor runs a chaos
 *    thread delivering real SIGKILL/SIGSEGV to live, busy workers —
 *    the integration tests drive genuine process deaths through the
 *    exact recovery path production failures take.
 */

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/smt/solver.h"
#include "src/smt/wire.h"
#include "src/support/cancellation.h"
#include "src/support/subprocess.h"

namespace keq::smt {

/** Exit code a worker uses to self-report an allocation failure. */
constexpr int kWorkerOomExitCode = 77;

/** Pool-wide sandbox configuration. */
struct SandboxOptions
{
    /** Worker binary; empty => discoverWorkerBinary(). */
    std::string workerPath;
    /** Pool size; solve() blocks while all slots are leased. */
    unsigned workers = 1;
    /** Hard RLIMIT_AS cap per worker in MB (0 = uncapped). */
    unsigned workerMemoryMb = 0;
    /** Hard RLIMIT_CPU cap per worker in seconds (0 = uncapped). */
    unsigned workerCpuSeconds = 0;
    /** Soft solver memory budget forwarded into the worker stack. */
    unsigned memoryBudgetMb = 0;
    /** Worker heartbeat cadence while a query is in flight. */
    unsigned heartbeatIntervalMs = 250;
    /**
     * Max silence (no Result, no Heartbeat) before the supervisor
     * declares the worker wedged, kills it and classifies Timeout.
     */
    unsigned heartbeatGraceMs = 5000;
    /** Ceiling of the jittered exponential respawn backoff. */
    unsigned maxRespawnBackoffMs = 2000;
    /** Attempts to spawn a worker before giving up on a query. */
    unsigned spawnAttempts = 3;

    /**
     * Chaos monkey: per-tick probability that each busy worker is shot
     * with a real SIGKILL or SIGSEGV. 0 disables the chaos thread.
     */
    double chaosKillRate = 0.0;
    uint64_t chaosSeed = 0x5eed;
    unsigned chaosTickMs = 20;

    /** Cooperative cancellation (checked while awaiting results). */
    support::CancellationToken cancel;
};

/**
 * Locates the worker binary: an explicit path wins, then the
 * KEQ_SOLVER_WORKER environment variable, then `keq-solver-worker`
 * next to the running executable, then `../tools/keq-solver-worker`
 * relative to it (test binaries live in sibling directories). Returns
 * "" when nothing executable is found — callers degrade gracefully.
 */
std::string discoverWorkerBinary(const std::string &explicitPath);

/**
 * Classifies a dead worker. @p lastRssKb is the worker's last
 * heartbeat-reported resident set; a signal death close to the hard
 * memory cap is attributed to the cap (the kernel delivers plain
 * SIGSEGV/SIGKILL for rlimit breaches, so proximity is the only
 * available evidence).
 */
FailureKind classifyWorkerDeath(const support::ExitStatus &status,
                                uint64_t lastRssKb,
                                unsigned workerMemoryMb);

/** Supervised pool of sandboxed solver workers. */
class WorkerSupervisor
{
  public:
    explicit WorkerSupervisor(SandboxOptions options);
    ~WorkerSupervisor();

    WorkerSupervisor(const WorkerSupervisor &) = delete;
    WorkerSupervisor &operator=(const WorkerSupervisor &) = delete;

    /**
     * Resolves the worker binary and starts the chaos thread. Workers
     * themselves spawn lazily on first lease. Returns false (with a
     * diagnostic) when no worker binary can be found.
     */
    bool start(std::string &error);

    /** Kills and reaps every worker; idempotent. */
    void stop();

    bool started() const { return started_; }
    const std::string &workerPath() const { return workerPath_; }

    /** Outcome of one sandboxed query. */
    struct QueryOutcome
    {
        SatResult result = SatResult::Unknown;
        FailureKind failureKind = FailureKind::None;
        std::string unknownReason;
        /**
         * Per-query stats: the worker stack's own delta (cache,
         * incremental, guard counters) plus the supervisor's transport
         * counters (wire bytes, crashes, restarts, heartbeat
         * timeouts). Verdict counters inside are the *worker's*; the
         * SandboxSolver folds this via foldNonVerdictStats.
         */
        SolverStats stats;
    };

    /**
     * Ships one checkSat to a leased worker and blocks for the
     * outcome. @p sessionId groups queries that share a TermFactory
     * (variable namespace); the supervisor resets a worker whenever it
     * switches sessions or lane strategies. @p interrupted, when
     * non-null, is polled while awaiting the result — setting it
     * cancels the query by killing the worker (classified Cancelled,
     * not a crash). @p strategy names the portfolio lane the worker
     * session's backend is built from ("" = default stack).
     */
    QueryOutcome solve(uint64_t sessionId,
                       const std::vector<Term> &assertions,
                       unsigned timeoutMs,
                       const std::atomic<bool> *interrupted,
                       const std::string &strategy = std::string());

    /**
     * Portfolio race: ships the same checkSat to one worker per lane
     * strategy and blocks until the race resolves. The first definite
     * Sat/Unsat wins; every other in-flight lane is sent a wire Cancel
     * frame and its (Cancelled) result is reaped but never surfaced —
     * a losing lane contributes portfolioCancellations, not a
     * user-visible FailureKind::Cancelled. A lane that dies mid-race
     * (chaos kill, OOM) is ignored as long as some other lane answers;
     * the race only fails when *every* lane fails. Two lanes returning
     * conflicting definite verdicts is a soundness signal: the outcome
     * is Unknown with FailureKind::PortfolioDisagreement and
     * crossLaneDisagreements bumped.
     *
     * Slots are leased atomically (all lanes or none, under one lock)
     * so two concurrent group solves cannot deadlock on a partial
     * grab; the lane count is clamped to the pool size. Wins land in
     * stats.portfolioWins[lane] of the returned outcome.
     */
    QueryOutcome solveGroup(uint64_t sessionId,
                            const std::vector<Term> &assertions,
                            unsigned timeoutMs,
                            const std::atomic<bool> *interrupted,
                            const std::vector<std::string> &lanes);

    /** Fresh session identifier (never 0). */
    uint64_t newSessionId();

    /** Pool-lifetime transport counters (for logs and stats dumps). */
    SolverStats transportTotals() const;

    /**
     * Adjusts the chaos monkey's per-tick kill probability at runtime
     * (the chaos tests shoot the first query, then throttle to zero to
     * verify recovery). Only effective when the supervisor was started
     * with chaosKillRate > 0 — the chaos thread does not spawn late.
     */
    void setChaosKillRate(double rate)
    {
        chaosRate_.store(rate, std::memory_order_relaxed);
    }

  private:
    struct Slot
    {
        support::Subprocess proc;
        uint64_t sessionId = 0; ///< session the worker is reset to
        std::string strategy;   ///< lane the session stack was built for
        uint64_t lastRssKb = 0;
        unsigned backoffMs = 0;
        std::atomic<int> chaosPid{0}; ///< signal target; 0 = not alive
        bool busy = false;
        bool alive = false;
        bool everSpawned = false; ///< distinguishes restarts from starts
    };

    Slot *leaseSlot();
    /** Atomically leases @p n slots (all-or-nothing, deadlock-free). */
    std::vector<Slot *> leaseSlots(size_t n);
    void releaseSlot(Slot *slot);
    /**
     * Dispatch helper shared by solve/solveGroup: respawn if needed,
     * Reset on session/strategy switch, ship the Query. Returns false
     * when the slot's worker died mid-dispatch (already reaped).
     */
    bool dispatchQuery(Slot &slot, uint64_t sessionId,
                       const std::string &strategy, uint64_t seq,
                       const std::vector<Term> &assertions,
                       unsigned timeoutMs,
                       const std::atomic<bool> *interrupted,
                       SolverStats &transport,
                       std::string &spawnError);
    /** Spawns + handshakes a worker in @p slot (backoff applied). */
    bool spawnWorker(Slot &slot, std::string &error,
                     SolverStats &transport);
    /** Marks the worker dead, reaps it, and returns its exit status. */
    support::ExitStatus reapWorker(Slot &slot);
    void chaosLoop();
    void bumpTotals(const SolverStats &delta);

    SandboxOptions options_;
    std::string workerPath_;
    bool started_ = false;

    std::mutex mutex_; ///< slot lease state + slot vector
    std::condition_variable slotFree_;
    std::vector<std::unique_ptr<Slot>> slots_;

    std::atomic<uint64_t> nextSession_{1};
    std::atomic<uint64_t> nextQuerySeq_{1};

    mutable std::mutex totalsMutex_;
    SolverStats totals_;

    std::thread chaosThread_;
    std::atomic<bool> chaosStop_{false};
    std::atomic<double> chaosRate_{0.0};
};

/**
 * Solver facade over one WorkerSupervisor session. Construct one per
 * function validation (like any other per-worker solver stack); the
 * heavyweight pool is shared through the supervisor reference.
 *
 * With more than one lane strategy the facade races each checkSat
 * across a worker group (WorkerSupervisor::solveGroup); with exactly
 * one it pins the session to that lane's backend; with none it is
 * byte-identical to the pre-portfolio sandbox.
 */
class SandboxSolver : public Solver
{
  public:
    SandboxSolver(TermFactory &factory, WorkerSupervisor &supervisor,
                  std::vector<std::string> laneStrategies = {});

    size_t laneCount() const
    {
        return laneStrategies_.empty() ? 1 : laneStrategies_.size();
    }

    SatResult checkSat(const std::vector<Term> &assertions) override;
    void setTimeoutMs(unsigned timeout_ms) override;
    void setMemoryBudgetMb(unsigned budget_mb) override;
    void interruptQuery() override;
    std::string lastUnknownReason() const override;
    FailureKind lastFailureKind() const override;
    const SolverStats &stats() const override { return stats_; }

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    TermFactory &factory_;
    WorkerSupervisor &supervisor_;
    uint64_t sessionId_;
    std::vector<std::string> laneStrategies_;
    unsigned timeoutMs_ = 0;
    std::atomic<bool> interrupted_{false};
    std::string lastUnknownReason_;
    FailureKind lastFailure_ = FailureKind::None;
    SolverStats stats_;
};

} // namespace keq::smt

#endif // KEQ_SMT_SANDBOX_H
