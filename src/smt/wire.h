#ifndef KEQ_SMT_WIRE_H
#define KEQ_SMT_WIRE_H

/**
 * @file
 * Binary wire protocol between the pipeline and sandboxed solver
 * workers.
 *
 * A sandboxed query crosses a process boundary, so the hash-consed term
 * DAG must be flattened to bytes and rebuilt inside the worker's own
 * TermFactory. The codec here is designed around two properties the
 * sandbox depends on:
 *
 *  1. **Round-trip identity.** Nodes are emitted in ascending creation
 *     order (a valid topological order: operands always have smaller
 *     ids than their parents). A fresh factory replaying the nodes
 *     therefore reproduces the source factory's *relative* id order,
 *     and because every serialized term is already a fixed point of the
 *     factory's constructor folding, replay creates a structurally
 *     identical DAG — encode(parse(encode(t))) == encode(t) and the
 *     CachingSolver's structural fingerprints agree across the
 *     boundary. The property tests in tests/smt/wire_test.cc pin this.
 *
 *  2. **Hostile-input safety.** The parent treats worker bytes (and the
 *     worker treats parent bytes) as untrusted: a crashed worker can
 *     leave a torn frame, and a corrupted frame must surface as a
 *     decode error, never as a KEQ_ASSERT abort inside TermFactory.
 *     Every kind, arity, sort, width and operand reference is validated
 *     before any factory constructor runs.
 *
 * Framing is a u32 little-endian payload length followed by the
 * payload; the payload's first byte is the FrameType. Integers are
 * little-endian fixed width or unsigned LEB128 ("varuint"); strings are
 * varuint length + raw bytes.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace keq::smt {

class TermFactory;

namespace wire {

/**
 * Bumped whenever any frame layout changes; Ready carries it.
 * v2: Cancel frame, ResetFrame strategy string, portfolio stats
 * fields.
 * v3: validation-service frames (ClientHello .. Busy) spoken between
 * keqc and the keqd daemon, with explicit version negotiation at
 * connect.
 * v4: JobStatus carries the month-scale operability counters (store
 * bytes/evictions/quarantines, audit mismatches, quota rejects) and
 * the draining flag.
 * v5: multi-host transport. SubmitJob carries a deterministic job
 * fingerprint (idempotent resubmission after failover), JobStatus
 * grows dedup + per-transport accept counters, and Ping/Pong frames
 * give clients a connection-level heartbeat. A v5 daemon still
 * negotiates with v4 clients (see kMinServiceProtocolVersion): the v4
 * frame forms remain valid prefixes of their v5 forms.
 */
constexpr uint32_t kProtocolVersion = 5;

/**
 * Oldest client protocol a daemon still serves. A v4 client simply
 * never sends fingerprints or Pings and receives v4-shaped JobStatus
 * replies; verdicts are version-independent.
 */
constexpr uint32_t kMinServiceProtocolVersion = 4;

/**
 * First four bytes of every ClientHello ("KEQD" little-endian). A
 * random process writing to the daemon socket fails the magic check
 * deterministically instead of being misread as a version mismatch.
 */
constexpr uint32_t kServiceMagic = 0x4451454bu;

/** Upper bound on a single frame payload; larger lengths are corrupt. */
constexpr uint32_t kMaxFramePayload = 64u << 20;

/** Frame discriminator (first payload byte). */
enum class FrameType : uint8_t {
    // worker -> parent
    Ready = 1,     ///< handshake: protocol version + worker pid
    Heartbeat = 2, ///< liveness: in-flight query seq + worker RSS
    Result = 3,    ///< verdict for one Query
    Error = 4,     ///< worker-side protocol failure (diagnostic string)

    // parent -> worker
    Reset = 5,    ///< begin a session: fresh factory + solver stack
    Query = 6,    ///< one checkSat request
    Shutdown = 7, ///< polite exit request (also client -> daemon)
    Cancel = 8,   ///< abandon the in-flight Query (portfolio reap)

    // validation service: client -> daemon
    ClientHello = 9, ///< connect handshake: magic + version + name
    SubmitJob = 10,  ///< one function-validation job
    JobStatus = 11,  ///< status probe (daemon echoes it back, filled)

    // validation service: daemon -> client
    ServerHello = 12, ///< handshake accept: version + daemon pid
    HelloReject = 13, ///< typed handshake rejection (version skew)
    JobVerdict = 14,  ///< one finished job's report + solver stats
    Busy = 15,        ///< admission control: in-flight cap reached

    // validation service, v5: connection-level heartbeat
    Ping = 16, ///< client -> daemon liveness probe (nonce)
    Pong = 17, ///< daemon -> client echo of the Ping nonce
};

const char *frameTypeName(FrameType type);

// --- Low-level byte codec -----------------------------------------------

/** Append-only byte sink for payload construction. */
class Encoder
{
  public:
    void u8(uint8_t value) { bytes_.push_back(static_cast<char>(value)); }
    void u32(uint32_t value);
    void u64(uint64_t value);
    void f64(double value); ///< IEEE bits as u64
    void varuint(uint64_t value);
    void str(const std::string &value);

    const std::string &bytes() const { return bytes_; }
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/**
 * Bounds-checked cursor over untrusted payload bytes. All getters
 * return false (and poison the decoder) on truncation; fail() carries
 * a diagnostic.
 */
class Decoder
{
  public:
    explicit Decoder(const std::string &bytes) : bytes_(&bytes) {}

    bool u8(uint8_t &out);
    bool u32(uint32_t &out);
    bool u64(uint64_t &out);
    bool f64(double &out);
    bool varuint(uint64_t &out);
    bool str(std::string &out);

    /** Marks the decode failed with @p why (keeps the first reason). */
    bool fail(const std::string &why);

    bool ok() const { return error_.empty(); }
    bool atEnd() const { return pos_ == bytes_->size(); }
    const std::string &error() const { return error_; }

  private:
    const std::string *bytes_;
    size_t pos_ = 0;
    std::string error_;
};

// --- Term codec ---------------------------------------------------------

/**
 * Cross-query variable-sort context. The factory KEQ_ASSERTs when one
 * name is requested with two different sorts, so a worker session keeps
 * one VarSortContext alive across parses to reject such (corrupt)
 * frames before they reach the factory.
 */
using VarSortContext = std::unordered_map<std::string, Sort>;

/** Serializes @p terms (their full reachable DAG) into @p enc. */
void encodeTerms(Encoder &enc, const std::vector<Term> &terms);

/**
 * Rebuilds terms previously written by encodeTerms inside @p factory.
 * Fully validates the bytes; on any inconsistency returns false via
 * dec.fail() without having violated a factory precondition. @p vars
 * may be null when the factory is fresh and used for a single parse.
 */
bool decodeTerms(Decoder &dec, TermFactory &factory,
                 VarSortContext *vars, std::vector<Term> &out);

// --- Stats codec --------------------------------------------------------

void encodeStats(Encoder &enc, const SolverStats &stats);
bool decodeStats(Decoder &dec, SolverStats &out);

// --- Typed frames -------------------------------------------------------

struct ReadyFrame
{
    uint32_t protocolVersion = 0;
    uint64_t pid = 0;
};

struct HeartbeatFrame
{
    uint64_t querySeq = 0; ///< 0 when idle
    uint64_t rssKb = 0;    ///< worker resident set, for OOM forensics
};

struct ResetFrame
{
    uint32_t timeoutMs = 0;      ///< per-query solver deadline
    uint32_t memoryBudgetMb = 0; ///< soft solver budget (0 = none)
    uint8_t useCache = 1;        ///< front the backend with a cache
    uint8_t useGuard = 1;        ///< wrap the stack in a GuardedSolver
    /**
     * Portfolio lane name the session's backend is built from
     * ("default", "int2bv", "cold", "seed<K>", optionally with
     * ":key=value" tuning); empty selects the default incremental
     * stack, byte-identical to protocol v1 behavior.
     */
    std::string strategy;
};

struct QueryFrame
{
    uint64_t seq = 0;
    uint32_t timeoutMs = 0; ///< overrides the session deadline when != 0
    std::vector<Term> assertions;
};

/**
 * Parent -> worker: abandon the in-flight Query with sequence number
 * @p seq. The worker still replies with a Result for that seq (kind
 * Cancelled) so the frame stream stays in lockstep; a Cancel naming
 * any other seq is ignored (the race was already over).
 */
struct CancelFrame
{
    uint64_t seq = 0;
};

struct ResultFrame
{
    uint64_t seq = 0;
    SatResult result = SatResult::Unknown;
    FailureKind failureKind = FailureKind::None;
    std::string unknownReason;
    SolverStats stats; ///< worker-side delta for this query
};

// --- Validation-service frames (keqc <-> keqd, protocol v3) -------------

/**
 * Client -> daemon connect handshake. The daemon answers with
 * ServerHello on success or HelloReject (then closes) when the magic
 * or protocol version does not match — a client from a different
 * build learns *why* instead of hitting undefined decode behavior.
 */
struct ClientHelloFrame
{
    uint32_t magic = kServiceMagic;
    uint32_t protocolVersion = kProtocolVersion;
    std::string clientName; ///< advisory, for daemon-side diagnostics
};

struct ServerHelloFrame
{
    uint32_t protocolVersion = kProtocolVersion;
    uint64_t pid = 0; ///< daemon pid, for operator diagnostics
};

struct HelloRejectFrame
{
    uint32_t supportedVersion = kProtocolVersion;
    std::string message;
};

/**
 * The deterministic validation knobs a job carries. This is the
 * subset of driver::{PipelineOptions, ExecutionOptions} that changes
 * *verdicts* (canonical summaries), not how the daemon schedules or
 * isolates the work — solver pools, caching and sandboxing stay
 * daemon-side policy so every client shares the warm resources.
 */
struct JobOptionsFrame
{
    uint8_t mergeStores = 0;    ///< isel::IselOptions::mergeStores
    uint8_t foldExtLoad = 0;    ///< isel::IselOptions::foldExtLoad
    uint8_t bug = 0;            ///< 0 none, 1 waw, 2 loadwiden
    uint8_t refinementOnly = 0; ///< CheckerConfig::refinementOnly
    uint8_t positiveForm = 1;   ///< CheckerConfig::positiveFormOpt
    uint8_t crudeLiveness = 0;  ///< VcOptions::crudeLiveness
    uint8_t batchDischarge = 0; ///< CheckerConfig::batchDischarge
    uint32_t smtTimeoutMs = 30000; ///< CheckerConfig::solverTimeoutMs
    double wallBudgetSeconds = 0;  ///< CheckerConfig::wallBudgetSeconds
    uint64_t specSizeBudget = 0;   ///< PipelineOptions::specSizeBudget
};

/**
 * One validation job: a function pair identified by the module text
 * plus the function name. Shipping the whole module (not one
 * function) keeps parsing entirely daemon-side and lets the daemon
 * memoize the parsed module across the N jobs of one client run.
 */
struct SubmitJobFrame
{
    uint64_t jobId = 0; ///< client-chosen; echoed on JobVerdict/Busy
    std::string function; ///< e.g. "@max" — must be defined in module
    std::string moduleText;
    JobOptionsFrame options;
    /**
     * v5: deterministic job identity — a stable hash over (module
     * text, function, jobOptionsKey), computed with
     * service::jobFingerprint. A nonzero value is a *resubmission
     * claim*: the client already sent this job once and its connection
     * died before the verdict arrived, so the daemon's completed-job
     * ledger may serve it idempotently — no second solve, no second
     * quota charge, no second journal append. First-time submissions
     * (and every v4 submit) carry 0: they always take the real
     * solving path, so distinct clients submitting identical work
     * still exercise the shared warm query cache, never replay each
     * other's ledger entries.
     */
    uint64_t fingerprint = 0;
};

/** Daemon-wide counters echoed back on a JobStatus probe. */
struct JobStatusFrame
{
    uint64_t queuedJobs = 0;
    uint64_t runningJobs = 0;
    uint64_t completedJobs = 0;
    uint64_t storeEntries = 0; ///< cross-run verdict store size
    uint64_t activeClients = 0;
    uint64_t busyRejects = 0;
    // v4: month-scale operability counters.
    uint64_t storeBytes = 0;      ///< accounted verdict-store bytes
    uint64_t storeEvictions = 0;  ///< entries evicted by the byte cap
    uint64_t storeQuarantined = 0;///< entries tombstoned by audits
    uint64_t auditMismatches = 0; ///< trust-but-verify contradictions
    uint64_t quotaRejects = 0;    ///< Busy replies from quota/queue caps
    uint8_t draining = 0;         ///< 1 once SIGTERM drain began
    // v5: multi-host transport counters.
    uint64_t dedupHits = 0;     ///< jobs served from the completed ledger
    uint64_t acceptedUnix = 0;  ///< connections accepted on AF_UNIX
    uint64_t acceptedTcp = 0;   ///< connections accepted on TCP
};

/**
 * v5 heartbeat. A client waiting on a slow verdict over TCP cannot
 * tell a long solve from a silently-dead peer (no RST ever arrives
 * when a remote host vanishes); a Ping answered inline by the daemon's
 * reader thread bounds that uncertainty. The nonce is echoed verbatim.
 */
struct PingFrame
{
    uint64_t nonce = 0;
};

struct PongFrame
{
    uint64_t nonce = 0;
};

/**
 * Daemon -> client: one finished job. The report travels as a
 * checkpoint-journal verdict record (driver::serializeFunctionReport)
 * — the same crash-proofed codec --resume trusts — plus the full
 * SolverStats delta the client folds into its --stats output.
 */
struct JobVerdictFrame
{
    uint64_t jobId = 0;
    std::string report; ///< serializeFunctionReport payload
    SolverStats stats;  ///< per-job solver-stack delta
};

/**
 * Daemon -> client: the per-client in-flight cap is reached; the job
 * was *not* admitted. The client resubmits after draining a verdict —
 * typed backpressure instead of unbounded daemon-side queue growth.
 */
struct BusyFrame
{
    uint64_t jobId = 0;
    uint32_t inFlightLimit = 0;
};

/** Wraps a payload in the length-prefixed frame envelope. */
std::string frameBytes(FrameType type, const std::string &payload);

std::string encodeReady(const ReadyFrame &frame);
std::string encodeHeartbeat(const HeartbeatFrame &frame);
std::string encodeReset(const ResetFrame &frame);
std::string encodeQuery(const QueryFrame &frame);
std::string encodeResult(const ResultFrame &frame);
std::string encodeError(const std::string &message);
std::string encodeShutdown();
std::string encodeCancel(const CancelFrame &frame);
std::string encodeClientHello(const ClientHelloFrame &frame);
std::string encodeServerHello(const ServerHelloFrame &frame);
std::string encodeHelloReject(const HelloRejectFrame &frame);
/**
 * SubmitJob/JobStatus layouts grew in v5; @p version selects the form
 * so a v5 daemon can answer a v4 client with bytes it can decode (and
 * tests can fabricate v4 clients). Decoders accept both forms.
 */
std::string encodeSubmitJob(const SubmitJobFrame &frame,
                            uint32_t version = kProtocolVersion);
std::string encodeJobStatus(const JobStatusFrame &frame,
                            uint32_t version = kProtocolVersion);
std::string encodeJobVerdict(const JobVerdictFrame &frame);
std::string encodeBusy(const BusyFrame &frame);
std::string encodePing(const PingFrame &frame);
std::string encodePong(const PongFrame &frame);

/**
 * Splits a received payload into its FrameType and body decoder input.
 * Returns false on an empty or unknown-typed payload.
 */
bool splitFrame(const std::string &payload, FrameType &type,
                std::string &body);

bool decodeReady(const std::string &body, ReadyFrame &out,
                 std::string &error);
bool decodeHeartbeat(const std::string &body, HeartbeatFrame &out,
                     std::string &error);
bool decodeReset(const std::string &body, ResetFrame &out,
                 std::string &error);
bool decodeQuery(const std::string &body, TermFactory &factory,
                 VarSortContext *vars, QueryFrame &out,
                 std::string &error);
bool decodeResult(const std::string &body, ResultFrame &out,
                  std::string &error);
bool decodeError(const std::string &body, std::string &message);
bool decodeCancel(const std::string &body, CancelFrame &out,
                  std::string &error);
bool decodeClientHello(const std::string &body, ClientHelloFrame &out,
                       std::string &error);
bool decodeServerHello(const std::string &body, ServerHelloFrame &out,
                       std::string &error);
bool decodeHelloReject(const std::string &body, HelloRejectFrame &out,
                       std::string &error);
bool decodeSubmitJob(const std::string &body, SubmitJobFrame &out,
                     std::string &error);
bool decodeJobStatus(const std::string &body, JobStatusFrame &out,
                     std::string &error);
bool decodeJobVerdict(const std::string &body, JobVerdictFrame &out,
                      std::string &error);
bool decodeBusy(const std::string &body, BusyFrame &out,
                std::string &error);
bool decodePing(const std::string &body, PingFrame &out,
                std::string &error);
bool decodePong(const std::string &body, PongFrame &out,
                std::string &error);

} // namespace wire
} // namespace keq::smt

#endif // KEQ_SMT_WIRE_H
