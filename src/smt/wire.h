#ifndef KEQ_SMT_WIRE_H
#define KEQ_SMT_WIRE_H

/**
 * @file
 * Binary wire protocol between the pipeline and sandboxed solver
 * workers.
 *
 * A sandboxed query crosses a process boundary, so the hash-consed term
 * DAG must be flattened to bytes and rebuilt inside the worker's own
 * TermFactory. The codec here is designed around two properties the
 * sandbox depends on:
 *
 *  1. **Round-trip identity.** Nodes are emitted in ascending creation
 *     order (a valid topological order: operands always have smaller
 *     ids than their parents). A fresh factory replaying the nodes
 *     therefore reproduces the source factory's *relative* id order,
 *     and because every serialized term is already a fixed point of the
 *     factory's constructor folding, replay creates a structurally
 *     identical DAG — encode(parse(encode(t))) == encode(t) and the
 *     CachingSolver's structural fingerprints agree across the
 *     boundary. The property tests in tests/smt/wire_test.cc pin this.
 *
 *  2. **Hostile-input safety.** The parent treats worker bytes (and the
 *     worker treats parent bytes) as untrusted: a crashed worker can
 *     leave a torn frame, and a corrupted frame must surface as a
 *     decode error, never as a KEQ_ASSERT abort inside TermFactory.
 *     Every kind, arity, sort, width and operand reference is validated
 *     before any factory constructor runs.
 *
 * Framing is a u32 little-endian payload length followed by the
 * payload; the payload's first byte is the FrameType. Integers are
 * little-endian fixed width or unsigned LEB128 ("varuint"); strings are
 * varuint length + raw bytes.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace keq::smt {

class TermFactory;

namespace wire {

/**
 * Bumped whenever any frame layout changes; Ready carries it.
 * v2: Cancel frame, ResetFrame strategy string, portfolio stats
 * fields.
 */
constexpr uint32_t kProtocolVersion = 2;

/** Upper bound on a single frame payload; larger lengths are corrupt. */
constexpr uint32_t kMaxFramePayload = 64u << 20;

/** Frame discriminator (first payload byte). */
enum class FrameType : uint8_t {
    // worker -> parent
    Ready = 1,     ///< handshake: protocol version + worker pid
    Heartbeat = 2, ///< liveness: in-flight query seq + worker RSS
    Result = 3,    ///< verdict for one Query
    Error = 4,     ///< worker-side protocol failure (diagnostic string)

    // parent -> worker
    Reset = 5,    ///< begin a session: fresh factory + solver stack
    Query = 6,    ///< one checkSat request
    Shutdown = 7, ///< polite exit request
    Cancel = 8,   ///< abandon the in-flight Query (portfolio reap)
};

const char *frameTypeName(FrameType type);

// --- Low-level byte codec -----------------------------------------------

/** Append-only byte sink for payload construction. */
class Encoder
{
  public:
    void u8(uint8_t value) { bytes_.push_back(static_cast<char>(value)); }
    void u32(uint32_t value);
    void u64(uint64_t value);
    void f64(double value); ///< IEEE bits as u64
    void varuint(uint64_t value);
    void str(const std::string &value);

    const std::string &bytes() const { return bytes_; }
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/**
 * Bounds-checked cursor over untrusted payload bytes. All getters
 * return false (and poison the decoder) on truncation; fail() carries
 * a diagnostic.
 */
class Decoder
{
  public:
    explicit Decoder(const std::string &bytes) : bytes_(&bytes) {}

    bool u8(uint8_t &out);
    bool u32(uint32_t &out);
    bool u64(uint64_t &out);
    bool f64(double &out);
    bool varuint(uint64_t &out);
    bool str(std::string &out);

    /** Marks the decode failed with @p why (keeps the first reason). */
    bool fail(const std::string &why);

    bool ok() const { return error_.empty(); }
    bool atEnd() const { return pos_ == bytes_->size(); }
    const std::string &error() const { return error_; }

  private:
    const std::string *bytes_;
    size_t pos_ = 0;
    std::string error_;
};

// --- Term codec ---------------------------------------------------------

/**
 * Cross-query variable-sort context. The factory KEQ_ASSERTs when one
 * name is requested with two different sorts, so a worker session keeps
 * one VarSortContext alive across parses to reject such (corrupt)
 * frames before they reach the factory.
 */
using VarSortContext = std::unordered_map<std::string, Sort>;

/** Serializes @p terms (their full reachable DAG) into @p enc. */
void encodeTerms(Encoder &enc, const std::vector<Term> &terms);

/**
 * Rebuilds terms previously written by encodeTerms inside @p factory.
 * Fully validates the bytes; on any inconsistency returns false via
 * dec.fail() without having violated a factory precondition. @p vars
 * may be null when the factory is fresh and used for a single parse.
 */
bool decodeTerms(Decoder &dec, TermFactory &factory,
                 VarSortContext *vars, std::vector<Term> &out);

// --- Stats codec --------------------------------------------------------

void encodeStats(Encoder &enc, const SolverStats &stats);
bool decodeStats(Decoder &dec, SolverStats &out);

// --- Typed frames -------------------------------------------------------

struct ReadyFrame
{
    uint32_t protocolVersion = 0;
    uint64_t pid = 0;
};

struct HeartbeatFrame
{
    uint64_t querySeq = 0; ///< 0 when idle
    uint64_t rssKb = 0;    ///< worker resident set, for OOM forensics
};

struct ResetFrame
{
    uint32_t timeoutMs = 0;      ///< per-query solver deadline
    uint32_t memoryBudgetMb = 0; ///< soft solver budget (0 = none)
    uint8_t useCache = 1;        ///< front the backend with a cache
    uint8_t useGuard = 1;        ///< wrap the stack in a GuardedSolver
    /**
     * Portfolio lane name the session's backend is built from
     * ("default", "int2bv", "cold", "seed<K>", optionally with
     * ":key=value" tuning); empty selects the default incremental
     * stack, byte-identical to protocol v1 behavior.
     */
    std::string strategy;
};

struct QueryFrame
{
    uint64_t seq = 0;
    uint32_t timeoutMs = 0; ///< overrides the session deadline when != 0
    std::vector<Term> assertions;
};

/**
 * Parent -> worker: abandon the in-flight Query with sequence number
 * @p seq. The worker still replies with a Result for that seq (kind
 * Cancelled) so the frame stream stays in lockstep; a Cancel naming
 * any other seq is ignored (the race was already over).
 */
struct CancelFrame
{
    uint64_t seq = 0;
};

struct ResultFrame
{
    uint64_t seq = 0;
    SatResult result = SatResult::Unknown;
    FailureKind failureKind = FailureKind::None;
    std::string unknownReason;
    SolverStats stats; ///< worker-side delta for this query
};

/** Wraps a payload in the length-prefixed frame envelope. */
std::string frameBytes(FrameType type, const std::string &payload);

std::string encodeReady(const ReadyFrame &frame);
std::string encodeHeartbeat(const HeartbeatFrame &frame);
std::string encodeReset(const ResetFrame &frame);
std::string encodeQuery(const QueryFrame &frame);
std::string encodeResult(const ResultFrame &frame);
std::string encodeError(const std::string &message);
std::string encodeShutdown();
std::string encodeCancel(const CancelFrame &frame);

/**
 * Splits a received payload into its FrameType and body decoder input.
 * Returns false on an empty or unknown-typed payload.
 */
bool splitFrame(const std::string &payload, FrameType &type,
                std::string &body);

bool decodeReady(const std::string &body, ReadyFrame &out,
                 std::string &error);
bool decodeHeartbeat(const std::string &body, HeartbeatFrame &out,
                     std::string &error);
bool decodeReset(const std::string &body, ResetFrame &out,
                 std::string &error);
bool decodeQuery(const std::string &body, TermFactory &factory,
                 VarSortContext *vars, QueryFrame &out,
                 std::string &error);
bool decodeResult(const std::string &body, ResultFrame &out,
                  std::string &error);
bool decodeError(const std::string &body, std::string &message);
bool decodeCancel(const std::string &body, CancelFrame &out,
                  std::string &error);

} // namespace wire
} // namespace keq::smt

#endif // KEQ_SMT_WIRE_H
