#include "src/smt/caching_solver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <unordered_set>

#include "src/smt/term_node.h"
#include "src/support/diagnostics.h"
#include "src/support/rng.h"
#include "src/support/stopwatch.h"

namespace keq::smt {

namespace {

/**
 * Appends a canonical linearization of @p root's DAG to @p out: every
 * node not yet in @p index is emitted exactly once (operands as
 * back-references), so the result is linear in the DAG size and equal
 * strings mean structurally equal terms. Node identity is purely
 * structural — kind, sort, payload, operand indices — never
 * factory-specific ids, so fingerprints agree across workers with
 * private factories.
 *
 * Variable handling: when @p var_numbers is non-null, variables are
 * emitted as their first-occurrence ordinal instead of their name
 * (alpha-renaming). Satisfiability is invariant under sort-preserving
 * bijective renaming of free variables, so queries that differ only in
 * register numbering or fresh-variable counters — rampant across sync
 * points and corpus functions — collapse onto one cache key. Passing
 * the same maps across several roots serializes a whole assertion set
 * with one consistent renaming.
 */
void
fingerprintTerm(Term root, std::string &out,
                std::unordered_map<const TermNode *, unsigned> &index,
                std::unordered_map<std::string, unsigned> *var_numbers)
{
    struct Frame
    {
        Term term;
        size_t nextOperand = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    while (!stack.empty()) {
        Frame &frame = stack.back();
        if (index.count(frame.term.node()) != 0) {
            stack.pop_back();
            continue;
        }
        if (frame.nextOperand < frame.term.numOperands()) {
            Term operand = frame.term.operand(frame.nextOperand++);
            if (index.count(operand.node()) == 0)
                stack.push_back({operand});
            continue;
        }

        const Term &term = frame.term;
        out += 'k';
        out += std::to_string(static_cast<unsigned>(term.kind()));
        out += 's';
        out += std::to_string(term.sort().encode());
        switch (term.kind()) {
          case Kind::BvConst:
            out += 'v';
            out += std::to_string(term.bvValue().zext());
            break;
          case Kind::BoolConst:
            out += term.boolValue() ? "b1" : "b0";
            break;
          case Kind::Var:
            if (var_numbers != nullptr) {
                auto [it, inserted] = var_numbers->emplace(
                    term.varName(),
                    static_cast<unsigned>(var_numbers->size()));
                out += 'n';
                out += std::to_string(it->second);
            } else {
                // Length-prefixed so exotic names cannot forge
                // delimiters.
                out += 'n';
                out += std::to_string(term.varName().size());
                out += ':';
                out += term.varName();
            }
            break;
          case Kind::Extract:
            out += 'h';
            out += std::to_string(term.extractHi());
            out += 'l';
            out += std::to_string(term.extractLo());
            break;
          default:
            break;
        }
        for (size_t i = 0; i < term.numOperands(); ++i) {
            out += i == 0 ? '(' : ',';
            out += std::to_string(index.at(term.operand(i).node()));
        }
        if (term.numOperands() > 0)
            out += ')';
        out += ';';

        unsigned id = static_cast<unsigned>(index.size());
        index.emplace(term.node(), id);
        stack.pop_back();
    }
}

/** Fingerprint of one term with fresh (local) maps. */
std::string
localFingerprint(Term root, bool alpha_rename)
{
    std::string out;
    std::unordered_map<const TermNode *, unsigned> index;
    std::unordered_map<std::string, unsigned> vars;
    fingerprintTerm(root, out, index, alpha_rename ? &vars : nullptr);
    return out;
}

/** Free variables of a query, and whether evaluation can decide it. */
struct QueryScan
{
    bool supported = true;
    std::vector<std::pair<std::string, Sort>> vars;
};

QueryScan
scanQuery(const std::vector<Term> &assertions)
{
    QueryScan scan;
    std::unordered_set<const TermNode *> visited;
    std::unordered_set<std::string> seen;
    std::vector<Term> stack(assertions.begin(), assertions.end());
    while (!stack.empty()) {
        Term term = stack.back();
        stack.pop_back();
        if (!visited.insert(term.node()).second)
            continue;
        if (term.kind() == Kind::Var) {
            if (seen.insert(term.varName()).second)
                scan.vars.emplace_back(term.varName(), term.sort());
        } else if (term.kind() == Kind::Eq &&
                   !term.operand(0).sort().isBool() &&
                   !term.operand(0).sort().isBitVec()) {
            // Array equality cannot be decided from a finite overlay.
            scan.supported = false;
            return scan;
        }
        for (size_t i = 0; i < term.numOperands(); ++i)
            stack.push_back(term.operand(i));
    }
    return scan;
}

} // namespace

// --- QueryCache ----------------------------------------------------------

QueryCache::QueryCache(size_t max_entries_per_shard, size_t max_bytes)
    : maxPerShard_(max_entries_per_shard),
      maxBytesPerShard_(max_bytes == 0
                            ? 0
                            : std::max<size_t>(1, max_bytes / kShards))
{}

QueryCache::Shard &
QueryCache::shardFor(const std::string &key)
{
    return shards_[std::hash<std::string>{}(key) % kShards];
}

std::optional<SatResult>
QueryCache::lookup(const std::string &key, bool *unaudited)
{
    Shard &shard = shardFor(key);
    std::unique_lock<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(std::string_view(key));
    if (it == shard.map.end()) {
        ++shard.misses;
        return std::nullopt;
    }
    ++shard.hits;
    // Touch: a hit entry moves to the LRU front. Splicing never
    // invalidates list iterators, so the map stays consistent.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (unaudited != nullptr)
        *unaudited = it->second->unaudited;
    return it->second->result;
}

size_t
QueryCache::insert(const std::string &key, SatResult result)
{
    return insertImpl(key, result, /*preloaded=*/false);
}

size_t
QueryCache::insertPreloaded(const std::string &key, SatResult result)
{
    return insertImpl(key, result, /*preloaded=*/true);
}

size_t
QueryCache::insertImpl(const std::string &key, SatResult result,
                       bool preloaded)
{
    KEQ_ASSERT(result != SatResult::Unknown,
               "QueryCache: Unknown verdicts must not be cached");
    Shard &shard = shardFor(key);
    size_t evicted = 0;
    bool fresh = false;
    {
        std::unique_lock<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(std::string_view(key));
        if (it != shard.map.end()) {
            // Deterministic queries cannot change their verdict; just
            // touch. A locally-computed verdict also supersedes the
            // unaudited flag: we just proved the entry ourselves.
            if (!preloaded)
                it->second->unaudited = false;
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return 0;
        }
        fresh = true;
        shard.lru.push_front(Entry{key, result, preloaded});
        shard.map.emplace(std::string_view(shard.lru.front().key),
                          shard.lru.begin());
        shard.bytes += entryBytes(key);
        if (preloaded)
            ++shard.preloaded;

        // Evict cold entries until both bounds hold again, always
        // keeping the entry just inserted.
        while (shard.lru.size() > 1 &&
               ((maxPerShard_ > 0 && shard.lru.size() > maxPerShard_) ||
                (maxBytesPerShard_ > 0 &&
                 shard.bytes > maxBytesPerShard_))) {
            const auto &victim = shard.lru.back();
            shard.bytes -= entryBytes(victim.key);
            shard.map.erase(std::string_view(victim.key));
            shard.lru.pop_back();
            ++shard.evictions;
            ++evicted;
        }
    }
    // Fire outside the shard lock: the listener may do I/O (the verdict
    // store journals), and must never deadlock against a concurrent
    // lookup on this shard. Preloaded entries never fire — the journal
    // is where they came from.
    if (fresh && !preloaded && insertListener_)
        insertListener_(key, result);
    return evicted;
}

void
QueryCache::markAudited(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::unique_lock<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(std::string_view(key));
    if (it == shard.map.end())
        return; // evicted between lookup and audit; nothing to mark
    it->second->unaudited = false;
    ++shard.auditPasses;
}

bool
QueryCache::quarantine(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::unique_lock<std::mutex> lock(shard.mutex);
    ++shard.auditMismatches;
    auto it = shard.map.find(std::string_view(key));
    if (it == shard.map.end())
        return false;
    shard.bytes -= entryBytes(it->second->key);
    shard.lru.erase(it->second);
    shard.map.erase(it);
    ++shard.quarantined;
    return true;
}

void
QueryCache::setInsertListener(InsertListener listener)
{
    insertListener_ = std::move(listener);
}

void
QueryCache::addModel(std::shared_ptr<const Assignment> model)
{
    std::unique_lock<std::mutex> lock(modelMutex_);
    if (models_.size() < kMaxModels) {
        models_.push_back(std::move(model));
    } else {
        // Overwrite the oldest slot (bounded ring).
        models_[modelNext_] = std::move(model);
        modelNext_ = (modelNext_ + 1) % kMaxModels;
    }
}

std::vector<std::shared_ptr<const Assignment>>
QueryCache::models() const
{
    std::unique_lock<std::mutex> lock(modelMutex_);
    return models_;
}

void
QueryCache::noteModelHit()
{
    std::unique_lock<std::mutex> lock(modelMutex_);
    ++modelHits_;
}

CacheStats
QueryCache::stats() const
{
    CacheStats stats;
    for (const Shard &shard : shards_) {
        std::unique_lock<std::mutex> lock(shard.mutex);
        stats.hits += shard.hits;
        stats.misses += shard.misses;
        stats.evictions += shard.evictions;
        stats.entries += shard.map.size();
        stats.bytes += shard.bytes;
        stats.preloaded += shard.preloaded;
        stats.auditPasses += shard.auditPasses;
        stats.auditMismatches += shard.auditMismatches;
        stats.quarantined += shard.quarantined;
    }
    std::unique_lock<std::mutex> lock(modelMutex_);
    stats.modelHits = modelHits_;
    return stats;
}

void
QueryCache::clear()
{
    for (Shard &shard : shards_) {
        std::unique_lock<std::mutex> lock(shard.mutex);
        shard.map.clear();
        shard.lru.clear();
        shard.bytes = 0;
        shard.hits = 0;
        shard.misses = 0;
        shard.evictions = 0;
        shard.preloaded = 0;
        shard.auditPasses = 0;
        shard.auditMismatches = 0;
        shard.quarantined = 0;
    }
    std::unique_lock<std::mutex> lock(modelMutex_);
    models_.clear();
    modelNext_ = 0;
    modelHits_ = 0;
}

// --- CachingSolver -------------------------------------------------------

CachingSolver::CachingSolver(TermFactory &factory, Solver &backend,
                             std::shared_ptr<QueryCache> cache,
                             Options options)
    : factory_(factory), backend_(backend), cache_(std::move(cache)),
      options_(options), simplifier_(factory), slicer_(factory)
{
    KEQ_ASSERT(cache_ != nullptr, "CachingSolver: null cache");
    backend_.enableModelCapture(true);
}

void
CachingSolver::countVerdict(SatResult result)
{
    switch (result) {
      case SatResult::Sat: ++stats_.sat; break;
      case SatResult::Unsat: ++stats_.unsat; break;
      case SatResult::Unknown: ++stats_.unknown; break;
    }
}

std::optional<SatResult>
CachingSolver::tryModelReuse(const std::vector<Term> &assertions,
                             const std::string &key)
{
    QueryScan scan = scanQuery(assertions);
    if (!scan.supported)
        return std::nullopt;

    // Does this total assignment satisfy every assertion? A `true`
    // return is a satisfiability *proof* (the assignment is a model);
    // `false` proves nothing about the query.
    auto satisfies = [&](const Assignment &candidate) {
        Evaluator eval(candidate);
        try {
            for (const Term &assertion : assertions) {
                if (!eval.evalBool(assertion))
                    return false;
            }
        } catch (const support::InternalError &) {
            // Evaluation strayed outside the supported fragment;
            // treat as "this assignment does not apply".
            return false;
        }
        return true;
    };

    // Phase 1 — pooled models, newest first: they come from the most
    // recent (and thus most similar) queries.
    std::vector<std::shared_ptr<const Assignment>> models =
        cache_->models();
    for (auto it = models.rbegin(); it != models.rend(); ++it) {
        const Assignment &pooled = **it;
        // Extend the pooled model to a total assignment over this
        // query's variables; the extension's values are arbitrary
        // (zero), since evaluation below re-verifies the whole model.
        Assignment total;
        for (const auto &[name, sort] : scan.vars) {
            if (sort.isBitVec()) {
                if (pooled.hasBv(name) &&
                    pooled.bv(name).width() == sort.width()) {
                    total.setBv(name, pooled.bv(name));
                } else {
                    total.setBv(name, support::ApInt(sort.width(), 0));
                }
            } else if (sort.isBool()) {
                total.setBool(name, pooled.hasBool(name)
                                        ? pooled.boolean(name)
                                        : false);
            }
            // Array variables need no entry: unset bytes read as zero.
        }
        if (satisfies(total))
            return SatResult::Sat;
    }

    // Phase 2 — deterministic random probing. Path-feasibility checks
    // (the bulk of Sat traffic) are usually satisfied by a large
    // fraction of the input space, so a few dozen seeded-random
    // assignments often find a model in microseconds where Z3 grinds
    // through bvmul/overflow reasoning for ~100 ms. Seeding from the
    // canonical key keeps the probe sequence — and therefore every
    // verdict and counter — deterministic across runs and threads.
    // Unsat queries pay kProbes cheap evaluations and move on.
    static constexpr int kProbes = 48;
    support::Rng rng(
        static_cast<uint64_t>(std::hash<std::string>{}(key)) ^
        0x9E3779B97F4A7C15ull);
    for (int probe = 0; probe < kProbes; ++probe) {
        Assignment candidate;
        for (const auto &[name, sort] : scan.vars) {
            if (sort.isBitVec()) {
                uint64_t bits;
                switch (probe) {
                  case 0: bits = 0; break;
                  case 1: bits = ~0ull; break;
                  case 2: bits = 1; break;
                  default: bits = rng.next(); break;
                }
                candidate.setBv(name,
                                support::ApInt(sort.width(), bits));
            } else if (sort.isBool()) {
                candidate.setBool(
                    name, probe == 0 ? false : (rng.next() & 1) != 0);
            }
        }
        if (satisfies(candidate)) {
            // Keep the discovered model: neighboring path conditions
            // will likely accept it via phase 1.
            cache_->addModel(std::make_shared<const Assignment>(
                std::move(candidate)));
            return SatResult::Sat;
        }
    }
    if (std::getenv("KEQ_CACHE_DEBUG") != nullptr) {
        std::fprintf(stderr, "NOREUSE sup=%d nv=%zu h=%zx\n",
                     scan.supported ? 1 : 0, scan.vars.size(),
                     std::hash<std::string>{}(key));
    }
    return std::nullopt;
}

bool
CachingSolver::shouldAudit(const std::string &key) const
{
    if (options_.auditRate <= 0.0)
        return false;
    if (options_.auditRate >= 1.0)
        return true;
    // Deterministic by key (salted): the same entry is either in the
    // sample or not for the whole daemon lifetime, so audit coverage is
    // reproducible and independent of request interleaving. splitmix64
    // decorrelates the hash from the cache's own shard selector.
    uint64_t x = static_cast<uint64_t>(std::hash<std::string>{}(key)) ^
                 options_.auditSeed;
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    double unit = static_cast<double>(x >> 11) * 0x1.0p-53;
    return unit < options_.auditRate;
}

CachingSolver::AuditOutcome
CachingSolver::auditCachedVerdict(const std::vector<Term> &assertions,
                                  const std::string &key,
                                  SatResult stored)
{
    // Cheap first: a stored Sat confirmed by model replay is a concrete
    // evaluation *proof* — no solver involved. Replay failing proves
    // nothing (the probes just missed), so fall through to a pristine
    // recheck rather than calling it a mismatch.
    if (stored == SatResult::Sat &&
        tryModelReuse(assertions, key).has_value())
        return AuditOutcome::Pass;

    if (!options_.auditSolverFactory)
        return AuditOutcome::Inconclusive;
    std::unique_ptr<Solver> pristine =
        options_.auditSolverFactory(factory_);
    if (pristine == nullptr)
        return AuditOutcome::Inconclusive;
    SatResult recheck = pristine->checkSat(assertions);
    if (recheck == SatResult::Unknown)
        return AuditOutcome::Inconclusive;
    if (recheck == stored)
        return AuditOutcome::Pass;

    // Independent contradiction: the journal entry is rotten (or one
    // of the solvers is wrong — either way it cannot be served).
    // Quarantine under the cache lock, then notify outside it.
    cache_->quarantine(key);
    if (options_.onAuditMismatch)
        options_.onAuditMismatch(key, stored, recheck);
    return AuditOutcome::Mismatch;
}

std::string
CachingSolver::normalizedKey(const std::vector<Term> &assertions)
{
    // Stage 1 — order and dedup the assertion set. A conjunction is
    // commutative/associative/idempotent, so order and duplicates must
    // not affect the key. Sorting primarily by the alpha-renamed
    // fingerprint keeps alpha-variant *sets* in the same order (so they
    // meet in stage 2); the exact fingerprint breaks ties
    // deterministically and is the dedup criterion — deduping on the
    // renamed form alone would wrongly merge distinct assertions such
    // as x<y and y<x.
    struct Entry
    {
        std::string alpha;
        std::string exact;
        Term term;
    };
    std::vector<Entry> entries;
    entries.reserve(assertions.size());
    for (const Term &assertion : assertions) {
        entries.push_back({localFingerprint(assertion, true),
                           localFingerprint(assertion, false),
                           assertion});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.alpha != b.alpha)
                      return a.alpha < b.alpha;
                  return a.exact < b.exact;
              });
    entries.erase(std::unique(entries.begin(), entries.end(),
                              [](const Entry &a, const Entry &b) {
                                  return a.exact == b.exact;
                              }),
                  entries.end());

    // Stage 2 — serialize the sorted set as one DAG with a single
    // consistent variable renaming (first occurrence across the whole
    // set). Equal keys therefore imply the assertion sets are equal up
    // to a sort-preserving bijection of free variables, which preserves
    // satisfiability. Shared subterms across assertions are emitted
    // once; a root marker per assertion records which nodes are
    // asserted.
    std::string key;
    std::unordered_map<const TermNode *, unsigned> index;
    std::unordered_map<std::string, unsigned> var_numbers;
    for (const Entry &entry : entries) {
        fingerprintTerm(entry.term, key, index, &var_numbers);
        key += 'r';
        key += std::to_string(index.at(entry.term.node()));
        key += '\n';
    }
    return key;
}

SatResult
CachingSolver::checkSat(const std::vector<Term> &assertions)
{
    ++stats_.queries;

    // Stage 1 — rewrite engine. Normalizes the query (which also
    // improves key-cache hit rates downstream) and decides structurally
    // trivial obligations outright.
    std::vector<Term> working = assertions;
    if (options_.simplify) {
        SimplifyResult simplified = simplifier_.simplifyQuery(working);
        stats_.rewriteApplications += simplified.rewrites;
        if (simplified.decided.has_value()) {
            ++stats_.rewriteResolved;
            countVerdict(*simplified.decided);
            return *simplified.decided;
        }
        working = std::move(simplified.assertions);
    }

    // Stage 2 — cone-of-influence slicing. Prunes witness-discharged
    // cones (shrinking the key and the backend query) and answers Sat
    // when every cone is discharged.
    if (options_.slice) {
        SliceResult sliced = slicer_.slice(working);
        stats_.slicedAssertions += sliced.droppedAssertions;
        if (sliced.decided.has_value()) {
            ++stats_.sliceResolved;
            if (*sliced.decided == SatResult::Sat &&
                sliced.droppedAssertions > 0) {
                // The combined cone witness is a genuine model of the
                // whole query; pool it for neighbors.
                cache_->addModel(std::make_shared<const Assignment>(
                    std::move(sliced.droppedWitness)));
            }
            countVerdict(*sliced.decided);
            return *sliced.decided;
        }
        working = std::move(sliced.kept);
    }

    // Stages 3-4 — verdict store and model reuse on the reduced query.
    std::string key = normalizedKey(working);
    bool unaudited = false;
    std::optional<SatResult> hit = cache_->lookup(key, &unaudited);
    if (hit.has_value() && unaudited && shouldAudit(key)) {
        switch (auditCachedVerdict(working, key, *hit)) {
        case AuditOutcome::Pass:
            cache_->markAudited(key);
            break;
        case AuditOutcome::Inconclusive:
            // Recheck budget ran out; serve the stored verdict and
            // leave the flag set for a later, luckier sample.
            break;
        case AuditOutcome::Mismatch:
            // auditCachedVerdict already quarantined the entry; forget
            // the hit so the query takes the normal miss path below and
            // the served verdict is exactly what a daemonless run
            // computes.
            hit.reset();
            break;
        }
    }
    if (hit.has_value()) {
        ++stats_.cacheHits;
        countVerdict(*hit);
        return *hit;
    }
    if (std::optional<SatResult> reused = tryModelReuse(working, key)) {
        // A pooled model satisfies the query under concrete evaluation:
        // Sat without touching the backend. Store the verdict so exact
        // repeats take the cheaper key path.
        ++stats_.cacheHits;
        ++stats_.sat;
        cache_->noteModelHit();
        stats_.cacheEvictions += cache_->insert(key, *reused);
        return *reused;
    }
    ++stats_.cacheMisses;

    support::Stopwatch watch;
    SolverStats backend_before = backend_.stats();
    SatResult result = backend_.checkSat(working);
    // Fold the backend's per-call attribution (incremental reuse,
    // fallbacks, cold solves, and — when the backend is a guarded or
    // sandboxed stack — its recovery and transport work) into this
    // stack's stats. The cache/rewrite/slice counters are deliberately
    // NOT folded: this stack counts its own stages, and a sandboxed
    // backend's worker-side cache traffic must not break the
    // one-stage-per-query invariant documented on SolverStats.
    SolverStats backend_delta = backend_.stats() - backend_before;
    stats_.incrementalReused += backend_delta.incrementalReused;
    stats_.incrementalSolves += backend_delta.incrementalSolves;
    stats_.incrementalFallbacks += backend_delta.incrementalFallbacks;
    stats_.coldSolves += backend_delta.coldSolves;
    stats_.watchdogInterrupts += backend_delta.watchdogInterrupts;
    stats_.guardedRetries += backend_delta.guardedRetries;
    stats_.guardedEscalations += backend_delta.guardedEscalations;
    stats_.escalatedResolved += backend_delta.escalatedResolved;
    stats_.solverCrashes += backend_delta.solverCrashes;
    stats_.faultsInjected += backend_delta.faultsInjected;
    stats_.workerCrashes += backend_delta.workerCrashes;
    stats_.workerRestarts += backend_delta.workerRestarts;
    stats_.heartbeatTimeouts += backend_delta.heartbeatTimeouts;
    stats_.wireBytesSent += backend_delta.wireBytesSent;
    stats_.wireBytesReceived += backend_delta.wireBytesReceived;
    stats_.batchedQueries += backend_delta.batchedQueries;
    for (size_t i = 0; i < SolverStats::kPortfolioMaxLanes; ++i)
        stats_.portfolioWins[i] += backend_delta.portfolioWins[i];
    stats_.portfolioCancellations +=
        backend_delta.portfolioCancellations;
    stats_.crossLaneDisagreements +=
        backend_delta.crossLaneDisagreements;
    stats_.totalSeconds += watch.seconds();
    if (std::getenv("KEQ_CACHE_DEBUG") != nullptr) {
        std::fprintf(stderr, "MISS %8.2f ms  %s  h=%zx  n=%zu  a=%zu\n",
                     watch.seconds() * 1e3,
                     result == SatResult::Sat
                         ? "sat  "
                         : (result == SatResult::Unsat ? "unsat"
                                                       : "unk  "),
                     std::hash<std::string>{}(key), key.size(),
                     working.size());
    }
    if (result == SatResult::Sat) {
        Assignment model;
        if (backend_.lastModel(&model)) {
            cache_->addModel(
                std::make_shared<const Assignment>(std::move(model)));
        }
    }
    if (result != SatResult::Unknown)
        stats_.cacheEvictions += cache_->insert(key, result);
    countVerdict(result);
    return result;
}

void
CachingSolver::setTimeoutMs(unsigned timeout_ms)
{
    backend_.setTimeoutMs(timeout_ms);
}

void
CachingSolver::setMemoryBudgetMb(unsigned budget_mb)
{
    backend_.setMemoryBudgetMb(budget_mb);
}

void
CachingSolver::interruptQuery()
{
    backend_.interruptQuery();
}

std::string
CachingSolver::lastUnknownReason() const
{
    return backend_.lastUnknownReason();
}

FailureKind
CachingSolver::lastFailureKind() const
{
    return backend_.lastFailureKind();
}

} // namespace keq::smt
