#include "src/smt/fault_injection.h"

#include <chrono>
#include <thread>

#include "src/support/diagnostics.h"
#include "src/support/rng.h"
#include "src/support/stopwatch.h"

namespace keq::smt {

namespace {

/** Which fault (if any) this call draws. */
enum class Fault
{
    None,
    Unknown,
    Timeout,
    Memory,
    Crash,
    Slowdown,
    Hang,
};

Fault
drawFault(const FaultPlan &plan, support::Rng &rng)
{
    // One roll against cumulative thresholds so the per-kind rates are
    // independent of evaluation order and each call consumes the same
    // number of draws regardless of outcome.
    uint64_t roll = rng.below(100);
    uint64_t edge = plan.crashPercent;
    if (roll < edge)
        return Fault::Crash;
    edge += plan.timeoutPercent;
    if (roll < edge)
        return Fault::Timeout;
    edge += plan.memoryPercent;
    if (roll < edge)
        return Fault::Memory;
    edge += plan.unknownPercent;
    if (roll < edge)
        return Fault::Unknown;
    edge += plan.hangPercent;
    if (roll < edge)
        return Fault::Hang;
    edge += plan.slowdownPercent;
    if (roll < edge)
        return Fault::Slowdown;
    return Fault::None;
}

} // namespace

FaultInjectingSolver::FaultInjectingSolver(TermFactory &factory,
                                           Solver &backend,
                                           FaultPlan plan)
    : factory_(factory), backend_(&backend), plan_(plan)
{}

FaultInjectingSolver::FaultInjectingSolver(
    TermFactory &factory, std::unique_ptr<Solver> backend, FaultPlan plan)
    : factory_(factory), owned_(std::move(backend)),
      backend_(owned_.get()), plan_(plan)
{
    KEQ_ASSERT(backend_ != nullptr, "FaultInjectingSolver: null backend");
}

FaultInjectingSolver::~FaultInjectingSolver() = default;

void
FaultInjectingSolver::setTimeoutMs(unsigned timeout_ms)
{
    backend_->setTimeoutMs(timeout_ms);
}

void
FaultInjectingSolver::setMemoryBudgetMb(unsigned budget_mb)
{
    backend_->setMemoryBudgetMb(budget_mb);
}

void
FaultInjectingSolver::interruptQuery()
{
    interrupted_.store(true, std::memory_order_relaxed);
    backend_->interruptQuery();
}

void
FaultInjectingSolver::enableModelCapture(bool enabled)
{
    backend_->enableModelCapture(enabled);
}

bool
FaultInjectingSolver::lastModel(Assignment *out) const
{
    return backend_->lastModel(out);
}

std::string
FaultInjectingSolver::lastUnknownReason() const
{
    return lastUnknownReason_;
}

FailureKind
FaultInjectingSolver::lastFailureKind() const
{
    return lastFailure_;
}

SatResult
FaultInjectingSolver::checkSat(const std::vector<Term> &assertions)
{
    ++stats_.queries;
    lastUnknownReason_.clear();
    lastFailure_ = FailureKind::None;
    interrupted_.store(false, std::memory_order_relaxed);

    Fault fault = Fault::None;
    if (plan_.enabled()) {
        support::Rng rng =
            support::Rng::stream(plan_.seed, callIndex_);
        fault = drawFault(plan_, rng);
    }
    ++callIndex_;

    switch (fault) {
    case Fault::Crash:
        ++stats_.faultsInjected;
        ++stats_.unknown; // keeps sat+unsat+unknown == queries
        lastFailure_ = FailureKind::SolverCrash;
        throw SolverCrashError("injected solver crash");
    case Fault::Timeout:
        ++stats_.faultsInjected;
        ++stats_.unknown;
        lastUnknownReason_ = "timeout (injected)";
        lastFailure_ = FailureKind::Timeout;
        return SatResult::Unknown;
    case Fault::Memory:
        ++stats_.faultsInjected;
        ++stats_.unknown;
        lastUnknownReason_ = "max. memory exceeded (injected)";
        lastFailure_ = FailureKind::MemoryBudget;
        return SatResult::Unknown;
    case Fault::Unknown:
        ++stats_.faultsInjected;
        ++stats_.unknown;
        lastUnknownReason_ = "injected incompleteness";
        lastFailure_ = FailureKind::SolverUnknown;
        return SatResult::Unknown;
    case Fault::Hang: {
        // Interruptible busy-wait: blocks like a wedged backend would,
        // but responds to interruptQuery() so watchdog unit tests need
        // no real Z3 hang, and gives up after hangCapMs so a
        // watchdog-less caller cannot deadlock.
        ++stats_.faultsInjected;
        support::Stopwatch hang;
        while (!interrupted_.load(std::memory_order_relaxed) &&
               hang.seconds() * 1000.0 < plan_.hangCapMs) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        ++stats_.unknown;
        lastUnknownReason_ = interrupted_.load(std::memory_order_relaxed)
                                 ? "canceled (injected hang)"
                                 : "timeout (injected hang)";
        lastFailure_ = FailureKind::Timeout;
        return SatResult::Unknown;
    }
    case Fault::Slowdown:
        ++stats_.faultsInjected;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan_.slowdownMs));
        break; // still solves below
    case Fault::None:
        break;
    }

    SolverStats before = backend_->stats();
    try {
        SatResult result = backend_->checkSat(assertions);
        foldNonVerdictStats(stats_, backend_->stats() - before);
        switch (result) {
        case SatResult::Sat:
            ++stats_.sat;
            break;
        case SatResult::Unsat:
            ++stats_.unsat;
            break;
        case SatResult::Unknown:
            ++stats_.unknown;
            lastUnknownReason_ = backend_->lastUnknownReason();
            lastFailure_ = backend_->lastFailureKind();
            if (lastFailure_ == FailureKind::None)
                lastFailure_ = classifyUnknownReason(lastUnknownReason_);
            break;
        }
        return result;
    } catch (const support::InternalError &) {
        throw; // library bug: not a solver failure
    } catch (...) {
        foldNonVerdictStats(stats_, backend_->stats() - before);
        ++stats_.unknown;
        lastFailure_ = backend_->lastFailureKind();
        if (lastFailure_ == FailureKind::None)
            lastFailure_ = FailureKind::SolverCrash;
        throw;
    }
}

} // namespace keq::smt
