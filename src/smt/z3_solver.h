#ifndef KEQ_SMT_Z3_SOLVER_H
#define KEQ_SMT_Z3_SOLVER_H

/**
 * @file
 * Z3-backed implementation of the Solver interface.
 *
 * Each query runs on a fresh z3::solver (no incrementality), matching the
 * paper's observation that the K/Z3 integration cold-starts every query —
 * and keeping query times directly comparable per call.
 */

#include <memory>
#include <optional>
#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/solver.h"
#include "src/smt/term_factory.h"

namespace keq::smt {

/** Translates terms to Z3 ASTs and discharges queries. */
class Z3Solver : public Solver
{
  public:
    /**
     * @p tuning: optional best-effort Z3 parameters applied to every
     * query's solver — how a portfolio lane differentiates itself.
     */
    explicit Z3Solver(TermFactory &factory, BackendTuning tuning = {});
    ~Z3Solver() override;

    SatResult checkSat(const std::vector<Term> &assertions) override;
    void setTimeoutMs(unsigned timeout_ms) override;
    void setMemoryBudgetMb(unsigned budget_mb) override;

    /**
     * Fires Z3_interrupt on the owning context; safe from another
     * thread (the watchdog). The in-flight check returns Unknown with
     * reason "canceled".
     */
    void interruptQuery() override;

    std::string lastUnknownReason() const override
    {
        return lastUnknownReason_;
    }

    FailureKind lastFailureKind() const override { return lastFailure_; }

    const SolverStats &stats() const override { return stats_; }

    void enableModelCapture(bool enabled) override
    {
        captureModels_ = enabled;
    }

    /**
     * Bitvector and bool constants of the last Sat model. Array
     * interpretations are not extracted: consumers re-verify reused
     * models by evaluation, under which unlisted bytes read as zero.
     */
    bool lastModel(Assignment *out) const override;

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    struct Impl; // hides <z3++.h> from clients
    TermFactory &factory_;
    std::unique_ptr<Impl> impl_;
    BackendTuning tuning_;
    SolverStats stats_;
    unsigned timeoutMs_ = 0;
    unsigned memoryBudgetMb_ = 0;
    bool captureModels_ = false;
    std::optional<Assignment> lastModel_;
    std::string lastUnknownReason_;
    FailureKind lastFailure_ = FailureKind::None;
};

} // namespace keq::smt

#endif // KEQ_SMT_Z3_SOLVER_H
