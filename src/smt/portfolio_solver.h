#ifndef KEQ_SMT_PORTFOLIO_SOLVER_H
#define KEQ_SMT_PORTFOLIO_SOLVER_H

/**
 * @file
 * Portfolio racing over differently-tuned solver strategy lanes.
 *
 * A hard query rarely looks hard to every Z3 configuration: the default
 * QF_AUFBV engine, an int2bv-translating configuration, and a cold
 * fresh-solver lane have close to uncorrelated worst cases. The
 * PortfolioSolver fans each checkSat out to N persistent lane threads —
 * each owning its own backend (own z3::context) built from a LaneConfig
 * — takes the first *definite* Sat/Unsat answer, and reaps the losers
 * through the same re-firing interruptQuery() lever the GuardedSolver
 * watchdog uses (an incremental lane's Unknown guardrail re-enters Z3,
 * so one interrupt is not enough; we keep firing until the lane
 * returns).
 *
 * Verdict-counter contract: one checkSat is ONE logical query no matter
 * how many lanes raced it. Lane work is folded through
 * foldNonVerdictStats, race outcomes land in the portfolio counters
 * (portfolioWins per lane, portfolioCancellations,
 * crossLaneDisagreements), and a losing lane's interrupt-induced
 * Unknown never surfaces as a user-visible failure classification.
 *
 * Disagreement oracle: if two lanes return contradictory definite
 * verdicts for the same assertions, the portfolio refuses to pick a
 * side — it reports Unknown with FailureKind::PortfolioDisagreement and
 * bumps crossLaneDisagreements. Strategy disagreement is a free
 * differential-soundness check; fuzz campaigns surface it as a
 * soundness bug.
 *
 * Threading contract: checkSat blocks until every lane has quiesced
 * before returning, so lane threads only ever read the shared
 * hash-consed term DAG while the checker thread is parked inside
 * checkSat — the TermFactory is never mutated concurrently with a
 * reader.
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/solver.h"
#include "src/smt/term_factory.h"

namespace keq::smt {

/** One strategy lane: a named, tuned backend configuration. */
struct LaneConfig
{
    std::string name;        ///< stable label ("default", "int2bv", ...)
    bool incremental = true; ///< scope-reusing backend vs cold fresh-solver
    BackendTuning tuning;    ///< best-effort Z3 parameters
};

/**
 * Resolves a built-in lane name. Known names: "default" (incremental
 * QF_AUFBV, untuned), "int2bv" (incremental, bitvector-to-integer
 * translation plus aggressive rewriting), "cold" (fresh solver per
 * query, no incrementality), and "seed<K>" (incremental with
 * random_seed K, a cheap way to decorrelate extra lanes). Returns
 * false with @p error set for anything else.
 */
bool laneConfigFromName(const std::string &name, LaneConfig &out,
                        std::string &error);

/**
 * The built-in lane set for an N-lane portfolio:
 * 1 lane: default · 2: default,cold · 3: default,int2bv,cold ·
 * 4: default,int2bv,cold,seed7. N is clamped to
 * [1, SolverStats::kPortfolioMaxLanes].
 */
std::vector<LaneConfig> defaultPortfolioLanes(unsigned lanes);

/**
 * Parses a --portfolio-lanes spec: comma-separated lane entries, each a
 * built-in name optionally followed by `:key=value` tuning overrides
 * (e.g. "default,int2bv,cold:random_seed=3"). At most
 * SolverStats::kPortfolioMaxLanes entries. Returns false with @p error
 * set on malformed input.
 */
bool parsePortfolioLanes(const std::string &spec,
                         std::vector<LaneConfig> &out,
                         std::string &error);

/** Builds the in-process backend a LaneConfig describes. */
std::unique_ptr<Solver> makeLaneBackend(TermFactory &factory,
                                        const LaneConfig &config);

/** Races N strategy lanes per query; first definite answer wins. */
class PortfolioSolver : public Solver
{
  public:
    /**
     * @p lanes must hold 1..SolverStats::kPortfolioMaxLanes configs;
     * each lane's backend and thread are created eagerly and live for
     * the solver's lifetime (warm lanes across queries).
     */
    PortfolioSolver(TermFactory &factory, std::vector<LaneConfig> lanes);
    ~PortfolioSolver() override;

    SatResult checkSat(const std::vector<Term> &assertions) override;
    void setTimeoutMs(unsigned timeout_ms) override;
    void setMemoryBudgetMb(unsigned budget_mb) override;

    /**
     * Interrupts every lane; safe from another thread (the outer
     * GuardedSolver watchdog re-fires this until checkSat returns,
     * which forwards each firing to all in-flight lanes).
     */
    void interruptQuery() override;

    void enableModelCapture(bool enabled) override;
    bool lastModel(Assignment *out) const override;

    std::string lastUnknownReason() const override;
    FailureKind lastFailureKind() const override;
    const SolverStats &stats() const override { return stats_; }

    size_t laneCount() const;
    const std::string &laneName(size_t lane) const;

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    struct Lane;
    struct State;

    void laneMain(size_t lane);

    TermFactory &factory_;
    std::unique_ptr<State> state_;
    SolverStats stats_;
    std::string lastUnknownReason_;
    FailureKind lastFailure_ = FailureKind::None;
    std::optional<Assignment> lastModel_;
};

} // namespace keq::smt

#endif // KEQ_SMT_PORTFOLIO_SOLVER_H
