#include "src/smt/evaluator.h"

#include "src/support/diagnostics.h"

namespace keq::smt {

using support::ApInt;

void
Assignment::setBv(const std::string &name, ApInt value)
{
    bvs_[name] = value;
}

void
Assignment::setBool(const std::string &name, bool value)
{
    bools_[name] = value;
}

void
Assignment::setArrayByte(const std::string &name, uint64_t address,
                         uint8_t value)
{
    arrays_[name][address] = value;
}

ApInt
Assignment::bv(const std::string &name) const
{
    auto it = bvs_.find(name);
    KEQ_ASSERT(it != bvs_.end(), "unassigned bitvector variable " + name);
    return it->second;
}

bool
Assignment::boolean(const std::string &name) const
{
    auto it = bools_.find(name);
    KEQ_ASSERT(it != bools_.end(), "unassigned bool variable " + name);
    return it->second;
}

uint8_t
Assignment::arrayByte(const std::string &name, uint64_t address) const
{
    auto it = arrays_.find(name);
    if (it == arrays_.end())
        return 0;
    auto byte_it = it->second.find(address);
    return byte_it == it->second.end() ? 0 : byte_it->second;
}

bool
Assignment::hasBv(const std::string &name) const
{
    return bvs_.count(name) != 0;
}

bool
Assignment::hasBool(const std::string &name) const
{
    return bools_.count(name) != 0;
}

ApInt
Evaluator::evalBv(Term term)
{
    auto it = bvMemo_.find(term.id());
    if (it != bvMemo_.end())
        return it->second;
    ApInt value = evalBvUncached(term);
    bvMemo_.emplace(term.id(), value);
    return value;
}

bool
Evaluator::evalBool(Term term)
{
    auto it = boolMemo_.find(term.id());
    if (it != boolMemo_.end())
        return it->second;
    bool value = evalBoolUncached(term);
    boolMemo_.emplace(term.id(), value);
    return value;
}

Evaluator::ArrayValue
Evaluator::evalArray(Term term)
{
    auto it = arrayMemo_.find(term.id());
    if (it != arrayMemo_.end())
        return it->second;
    ArrayValue value = evalArrayUncached(term);
    arrayMemo_.emplace(term.id(), value);
    return value;
}

ApInt
Evaluator::evalBvUncached(Term term)
{
    KEQ_ASSERT(term.sort().isBitVec(), "evalBv: non-bitvec term");
    unsigned width = term.sort().width();
    switch (term.kind()) {
      case Kind::BvConst:
        return term.bvValue();
      case Kind::Var:
        return assignment_.bv(term.varName());
      case Kind::Ite:
        return evalBool(term.operand(0)) ? evalBv(term.operand(1))
                                         : evalBv(term.operand(2));
      case Kind::BvNot:
        return evalBv(term.operand(0)).not_();
      case Kind::BvNeg:
        return evalBv(term.operand(0)).neg();
      case Kind::ZExt:
        return evalBv(term.operand(0)).zextTo(width);
      case Kind::SExt:
        return evalBv(term.operand(0)).sextTo(width);
      case Kind::Extract: {
        ApInt inner = evalBv(term.operand(0));
        ApInt shifted = inner.lshr(ApInt(inner.width(), term.extractLo()));
        return shifted.truncTo(width);
      }
      case Kind::Concat: {
        ApInt high = evalBv(term.operand(0));
        ApInt low = evalBv(term.operand(1));
        uint64_t bits = (high.zext() << low.width()) | low.zext();
        return ApInt(width, bits);
      }
      case Kind::Select: {
        ArrayValue array = evalArray(term.operand(0));
        uint64_t address = evalBv(term.operand(1)).zext();
        return ApInt(8, readArray(array, address));
      }
      default:
        break;
    }
    ApInt a = evalBv(term.operand(0));
    ApInt b = evalBv(term.operand(1));
    switch (term.kind()) {
      case Kind::BvAdd: return a.add(b);
      case Kind::BvSub: return a.sub(b);
      case Kind::BvMul: return a.mul(b);
      case Kind::BvUDiv:
        // SMT-LIB semantics: division by zero yields all-ones.
        return b.isZero() ? ApInt::allOnes(width) : a.udiv(b);
      case Kind::BvSDiv:
        return b.isZero()
                   ? (a.isNegative() ? ApInt(width, 1)
                                     : ApInt::allOnes(width))
                   : a.sdiv(b);
      case Kind::BvURem: return b.isZero() ? a : a.urem(b);
      case Kind::BvSRem: return b.isZero() ? a : a.srem(b);
      case Kind::BvAnd: return a.and_(b);
      case Kind::BvOr: return a.or_(b);
      case Kind::BvXor: return a.xor_(b);
      case Kind::BvShl: return a.shl(b);
      case Kind::BvLShr: return a.lshr(b);
      case Kind::BvAShr: return a.ashr(b);
      default:
        KEQ_ASSERT(false, "evalBv: unhandled kind");
    }
    return a;
}

bool
Evaluator::evalBoolUncached(Term term)
{
    KEQ_ASSERT(term.sort().isBool(), "evalBool: non-bool term");
    switch (term.kind()) {
      case Kind::BoolConst:
        return term.boolValue();
      case Kind::Var:
        return assignment_.boolean(term.varName());
      case Kind::Not:
        return !evalBool(term.operand(0));
      case Kind::And:
        return evalBool(term.operand(0)) && evalBool(term.operand(1));
      case Kind::Or:
        return evalBool(term.operand(0)) || evalBool(term.operand(1));
      case Kind::Implies:
        return !evalBool(term.operand(0)) || evalBool(term.operand(1));
      case Kind::Iff:
        return evalBool(term.operand(0)) == evalBool(term.operand(1));
      case Kind::Ite:
        return evalBool(term.operand(0)) ? evalBool(term.operand(1))
                                         : evalBool(term.operand(2));
      case Kind::Eq: {
        Term a = term.operand(0);
        if (a.sort().isBool())
            return evalBool(a) == evalBool(term.operand(1));
        if (a.sort().isBitVec()) {
            return evalBv(a).eq(evalBv(term.operand(1)));
        }
        // Memory equality under an assignment cannot be decided from a
        // finite overlay in general; tests avoid it.
        KEQ_ASSERT(false, "evalBool: array equality not supported");
        return false;
      }
      case Kind::BvUlt:
        return evalBv(term.operand(0)).ult(evalBv(term.operand(1)));
      case Kind::BvUle:
        return evalBv(term.operand(0)).ule(evalBv(term.operand(1)));
      case Kind::BvSlt:
        return evalBv(term.operand(0)).slt(evalBv(term.operand(1)));
      case Kind::BvSle:
        return evalBv(term.operand(0)).sle(evalBv(term.operand(1)));
      default:
        KEQ_ASSERT(false, "evalBool: unhandled kind");
    }
    return false;
}

Evaluator::ArrayValue
Evaluator::evalArrayUncached(Term term)
{
    if (term.kind() == Kind::Var)
        return ArrayValue{term.varName(), {}};
    if (term.kind() == Kind::Ite) {
        return evalBool(term.operand(0)) ? evalArray(term.operand(1))
                                         : evalArray(term.operand(2));
    }
    KEQ_ASSERT(term.kind() == Kind::Store, "evalArray: unhandled kind");
    ArrayValue base = evalArray(term.operand(0));
    uint64_t address = evalBv(term.operand(1)).zext();
    uint8_t value = static_cast<uint8_t>(evalBv(term.operand(2)).zext());
    base.overlay[address] = value;
    return base;
}

uint8_t
Evaluator::readArray(const ArrayValue &array, uint64_t address) const
{
    auto it = array.overlay.find(address);
    if (it != array.overlay.end())
        return it->second;
    return assignment_.arrayByte(array.base, address);
}

} // namespace keq::smt
