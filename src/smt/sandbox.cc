#include "src/smt/sandbox.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "src/smt/term_factory.h"
#include "src/support/rng.h"

namespace keq::smt {

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kReadSliceMs = 100;     ///< poll granularity
constexpr unsigned kHandshakeMs = 10000;   ///< Ready deadline
constexpr unsigned kReapGraceMs = 500;     ///< voluntary-exit window
constexpr unsigned kMinBackoffMs = 25;

unsigned
elapsedMs(Clock::time_point since)
{
    return static_cast<unsigned>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

} // namespace

std::string
discoverWorkerBinary(const std::string &explicitPath)
{
    if (!explicitPath.empty()) {
        return support::isExecutableFile(explicitPath) ? explicitPath
                                                       : std::string();
    }
    if (const char *env = std::getenv("KEQ_SOLVER_WORKER")) {
        if (support::isExecutableFile(env))
            return env;
    }
    std::string dir = support::currentExecutableDir();
    if (dir.empty())
        return {};
    for (const char *relative :
         {"/keq-solver-worker", "/../tools/keq-solver-worker"}) {
        std::string candidate = dir + relative;
        if (support::isExecutableFile(candidate))
            return candidate;
    }
    return {};
}

FailureKind
classifyWorkerDeath(const support::ExitStatus &status, uint64_t lastRssKb,
                    unsigned workerMemoryMb)
{
    if (status.exited && status.exitCode == kWorkerOomExitCode)
        return FailureKind::WorkerOom;
    if (status.signaled && workerMemoryMb > 0) {
        // The kernel reports an RLIMIT_AS breach as a plain signal
        // (SIGSEGV from a failed stack/heap grow, or the OOM killer's
        // SIGKILL); attribute the death to the cap when the last
        // heartbeat put the worker within 80% of it.
        uint64_t capKb = uint64_t(workerMemoryMb) * 1024;
        if (lastRssKb >= capKb - capKb / 5)
            return FailureKind::WorkerOom;
    }
    return FailureKind::WorkerKilled;
}

WorkerSupervisor::WorkerSupervisor(SandboxOptions options)
    : options_(std::move(options))
{
    if (options_.workers == 0)
        options_.workers = 1;
    for (unsigned i = 0; i < options_.workers; ++i)
        slots_.push_back(std::make_unique<Slot>());
}

WorkerSupervisor::~WorkerSupervisor()
{
    stop();
}

bool
WorkerSupervisor::start(std::string &error)
{
    if (started_)
        return true;
    workerPath_ = discoverWorkerBinary(options_.workerPath);
    if (workerPath_.empty()) {
        error = options_.workerPath.empty()
                    ? "no keq-solver-worker binary found (set "
                      "KEQ_SOLVER_WORKER or --worker-path)"
                    : "worker binary not executable: " +
                          options_.workerPath;
        return false;
    }
    // Writing to a just-crashed worker must surface as EPIPE, not kill
    // the supervisor's process.
    std::signal(SIGPIPE, SIG_IGN);
    started_ = true;
    if (options_.chaosKillRate > 0.0) {
        chaosRate_.store(options_.chaosKillRate,
                         std::memory_order_relaxed);
        chaosStop_ = false;
        chaosThread_ = std::thread([this] { chaosLoop(); });
    }
    return true;
}

void
WorkerSupervisor::stop()
{
    if (chaosThread_.joinable()) {
        chaosStop_ = true;
        chaosThread_.join();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto &slot : slots_) {
        if (slot->alive) {
            slot->chaosPid = 0;
            // A polite Shutdown lets the worker flush and exit; the
            // grace period escalates to SIGKILL for wedged ones.
            slot->proc.writeAll(wire::encodeShutdown());
            slot->proc.waitOrKill(kReapGraceMs);
            slot->alive = false;
        }
    }
    started_ = false;
}

uint64_t
WorkerSupervisor::newSessionId()
{
    return nextSession_.fetch_add(1);
}

SolverStats
WorkerSupervisor::transportTotals() const
{
    std::unique_lock<std::mutex> lock(totalsMutex_);
    return totals_;
}

void
WorkerSupervisor::bumpTotals(const SolverStats &delta)
{
    std::unique_lock<std::mutex> lock(totalsMutex_);
    totals_ += delta;
}

WorkerSupervisor::Slot *
WorkerSupervisor::leaseSlot()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto &slot : slots_) {
            if (!slot->busy) {
                slot->busy = true;
                return slot.get();
            }
        }
        slotFree_.wait(lock);
    }
}

void
WorkerSupervisor::releaseSlot(Slot *slot)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        slot->busy = false;
    }
    slotFree_.notify_one();
}

support::ExitStatus
WorkerSupervisor::reapWorker(Slot &slot)
{
    slot.chaosPid = 0; // stop the chaos thread signalling this pid
    support::ExitStatus status = slot.proc.waitOrKill(kReapGraceMs);
    slot.alive = false;
    slot.sessionId = 0;
    slot.backoffMs = slot.backoffMs == 0
                         ? kMinBackoffMs
                         : std::min(slot.backoffMs * 2,
                                    options_.maxRespawnBackoffMs);
    return status;
}

bool
WorkerSupervisor::spawnWorker(Slot &slot, std::string &error,
                              SolverStats &transport)
{
    if (slot.backoffMs > 0) {
        // Jittered backoff so a pool of crashed workers doesn't respawn
        // in lockstep.
        support::Rng rng(options_.chaosSeed ^
                         nextQuerySeq_.fetch_add(1));
        unsigned base = slot.backoffMs;
        unsigned wait = base / 2 + static_cast<unsigned>(
                                       rng.below(base / 2 + 1));
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    std::vector<std::string> argv = {workerPath_};
    if (options_.workerMemoryMb > 0)
        argv.push_back("--memory-mb=" +
                       std::to_string(options_.workerMemoryMb));
    if (options_.workerCpuSeconds > 0)
        argv.push_back("--cpu-seconds=" +
                       std::to_string(options_.workerCpuSeconds));
    argv.push_back("--heartbeat-ms=" +
                   std::to_string(options_.heartbeatIntervalMs));

    slot.proc = support::Subprocess();
    if (!slot.proc.spawn(argv, error))
        return false;

    // Handshake: the worker leads with Ready carrying its protocol
    // version; anything else (or silence) means a broken binary.
    std::string buf;
    Clock::time_point begin = Clock::now();
    uint32_t frameLen = 0;
    bool haveHeader = false;
    for (;;) {
        if (elapsedMs(begin) > kHandshakeMs) {
            error = "worker handshake timed out";
            reapWorker(slot);
            return false;
        }
        size_t want = haveHeader ? frameLen : 4;
        support::IoStatus st =
            slot.proc.readExact(buf, want - buf.size(), kReadSliceMs);
        if (st == support::IoStatus::Timeout)
            continue;
        if (st != support::IoStatus::Ok) {
            support::ExitStatus dead = reapWorker(slot);
            error = "worker died during handshake (" +
                    dead.describe() + ")";
            return false;
        }
        if (!haveHeader) {
            wire::Decoder dec(buf);
            dec.u32(frameLen);
            if (frameLen == 0 ||
                frameLen > wire::kMaxFramePayload) {
                error = "worker handshake sent a corrupt frame";
                reapWorker(slot);
                return false;
            }
            haveHeader = true;
            buf.clear();
            continue;
        }
        transport.wireBytesReceived += 4 + buf.size();
        wire::FrameType type;
        std::string body;
        wire::ReadyFrame ready;
        std::string decodeError;
        if (!wire::splitFrame(buf, type, body) ||
            type != wire::FrameType::Ready ||
            !wire::decodeReady(body, ready, decodeError)) {
            error = "worker handshake sent a non-Ready frame";
            reapWorker(slot);
            return false;
        }
        if (ready.protocolVersion != wire::kProtocolVersion) {
            error = "worker protocol version " +
                    std::to_string(ready.protocolVersion) +
                    " != supervisor " +
                    std::to_string(wire::kProtocolVersion);
            reapWorker(slot);
            return false;
        }
        break;
    }
    if (slot.everSpawned)
        ++transport.workerRestarts;
    slot.everSpawned = true;
    slot.alive = true;
    slot.sessionId = 0;
    slot.lastRssKb = 0;
    slot.chaosPid = slot.proc.pid();
    return true;
}

WorkerSupervisor::QueryOutcome
WorkerSupervisor::solve(uint64_t sessionId,
                        const std::vector<Term> &assertions,
                        unsigned timeoutMs,
                        const std::atomic<bool> *interrupted)
{
    QueryOutcome out;
    SolverStats transport;
    if (!started_) {
        out.failureKind = FailureKind::WorkerKilled;
        out.unknownReason = "sandbox supervisor not started";
        return out;
    }

    Slot *slot = leaseSlot();
    uint64_t seq = nextQuerySeq_.fetch_add(1);

    auto cancelled = [&] {
        return (interrupted != nullptr &&
                interrupted->load(std::memory_order_relaxed)) ||
               options_.cancel.cancelled();
    };

    // --- Dispatch (with bounded respawn + redispatch) -----------------
    // A worker that dies *here* has not consumed the query, so it is
    // respawned and the query redispatched; a death after dispatch
    // costs exactly this query (classified below).
    bool dispatched = false;
    std::string spawnError;
    for (unsigned attempt = 0;
         attempt < options_.spawnAttempts && !dispatched && !cancelled();
         ++attempt) {
        if (!slot->alive &&
            !spawnWorker(*slot, spawnError, transport)) {
            continue;
        }
        if (slot->sessionId != sessionId) {
            wire::ResetFrame reset;
            reset.timeoutMs = timeoutMs;
            reset.memoryBudgetMb = options_.memoryBudgetMb;
            std::string bytes = wire::encodeReset(reset);
            if (!slot->proc.writeAll(bytes)) {
                reapWorker(*slot);
                ++transport.workerCrashes;
                continue;
            }
            transport.wireBytesSent += bytes.size();
            slot->sessionId = sessionId;
        }
        wire::QueryFrame query;
        query.seq = seq;
        query.timeoutMs = timeoutMs;
        query.assertions = assertions;
        std::string bytes = wire::encodeQuery(query);
        if (!slot->proc.writeAll(bytes)) {
            reapWorker(*slot);
            ++transport.workerCrashes;
            continue;
        }
        transport.wireBytesSent += bytes.size();
        dispatched = true;
    }
    if (!dispatched) {
        if (cancelled()) {
            out.failureKind = FailureKind::Cancelled;
            out.unknownReason = "cancelled before dispatch";
        } else {
            out.failureKind = FailureKind::WorkerKilled;
            out.unknownReason =
                "cannot dispatch to a sandbox worker" +
                (spawnError.empty() ? std::string()
                                    : ": " + spawnError);
        }
        releaseSlot(slot);
        out.stats += transport;
        bumpTotals(transport);
        return out;
    }

    // --- Await the result under the heartbeat deadline ----------------
    Clock::time_point lastFrame = Clock::now();
    std::string buf;
    uint32_t frameLen = 0;
    bool haveHeader = false;
    bool done = false;
    while (!done) {
        if (cancelled()) {
            // Cancellation beats every other classification: kill the
            // worker (its in-flight query is abandoned) and report
            // Cancelled so the caller never journals this verdict.
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            out.result = SatResult::Unknown;
            out.failureKind = FailureKind::Cancelled;
            out.unknownReason = "cancelled";
            break;
        }
        size_t want = haveHeader ? frameLen : 4;
        support::IoStatus st =
            slot->proc.readExact(buf, want - buf.size(), kReadSliceMs);
        if (st == support::IoStatus::Timeout) {
            if (elapsedMs(lastFrame) > options_.heartbeatGraceMs) {
                // Silent worker: wedged in native code, SIGSTOPped, or
                // spinning without heartbeats. Kill and classify as a
                // timeout — the query never produced evidence of a
                // crash, only of taking too long.
                slot->proc.kill(SIGKILL);
                reapWorker(*slot);
                ++transport.heartbeatTimeouts;
                out.result = SatResult::Unknown;
                out.failureKind = FailureKind::Timeout;
                out.unknownReason = "worker heartbeat deadline";
                break;
            }
            continue;
        }
        if (st != support::IoStatus::Ok) {
            support::ExitStatus dead = reapWorker(*slot);
            ++transport.workerCrashes;
            out.result = SatResult::Unknown;
            out.failureKind = classifyWorkerDeath(
                dead, slot->lastRssKb, options_.workerMemoryMb);
            out.unknownReason = "worker died (" + dead.describe() + ")";
            break;
        }
        if (!haveHeader) {
            wire::Decoder dec(buf);
            dec.u32(frameLen);
            if (frameLen == 0 || frameLen > wire::kMaxFramePayload) {
                slot->proc.kill(SIGKILL);
                reapWorker(*slot);
                ++transport.workerCrashes;
                out.failureKind = FailureKind::WorkerKilled;
                out.unknownReason = "worker sent a corrupt frame";
                break;
            }
            haveHeader = true;
            buf.clear();
            continue;
        }

        transport.wireBytesReceived += 4 + buf.size();
        lastFrame = Clock::now();
        std::string payload = std::move(buf);
        buf.clear();
        haveHeader = false;

        wire::FrameType type;
        std::string body;
        if (!wire::splitFrame(payload, type, body)) {
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            ++transport.workerCrashes;
            out.failureKind = FailureKind::WorkerKilled;
            out.unknownReason = "worker sent an unknown frame type";
            break;
        }
        switch (type) {
        case wire::FrameType::Heartbeat: {
            wire::HeartbeatFrame beat;
            std::string error;
            if (wire::decodeHeartbeat(body, beat, error))
                slot->lastRssKb = beat.rssKb;
            break; // liveness refreshed above
        }
        case wire::FrameType::Result: {
            wire::ResultFrame result;
            std::string error;
            if (!wire::decodeResult(body, result, error) ||
                result.seq != seq) {
                slot->proc.kill(SIGKILL);
                reapWorker(*slot);
                ++transport.workerCrashes;
                out.failureKind = FailureKind::WorkerKilled;
                out.unknownReason =
                    error.empty() ? "worker answered the wrong query"
                                  : "corrupt result frame: " + error;
                done = true;
                break;
            }
            out.result = result.result;
            out.failureKind = result.failureKind;
            out.unknownReason = result.unknownReason;
            out.stats += result.stats;
            slot->backoffMs = 0; // healthy answer resets the backoff
            done = true;
            break;
        }
        case wire::FrameType::Error: {
            std::string message;
            wire::decodeError(body, message);
            // The worker refused the query (undecodable frame). Its
            // session state is untrusted now; recycle the process.
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            ++transport.workerCrashes;
            out.failureKind = FailureKind::SolverCrash;
            out.unknownReason = "worker rejected query: " + message;
            done = true;
            break;
        }
        default:
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            ++transport.workerCrashes;
            out.failureKind = FailureKind::WorkerKilled;
            out.unknownReason = "unexpected frame from worker";
            done = true;
            break;
        }
    }

    releaseSlot(slot);
    out.stats += transport;
    bumpTotals(transport);
    return out;
}

void
WorkerSupervisor::chaosLoop()
{
    support::Rng rng(options_.chaosSeed);
    while (!chaosStop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.chaosTickMs));
        std::unique_lock<std::mutex> lock(mutex_);
        for (auto &slot : slots_) {
            if (!slot->busy)
                continue;
            int pid = slot->chaosPid.load(std::memory_order_relaxed);
            if (pid <= 0)
                continue;
            double roll =
                static_cast<double>(rng.below(1u << 20)) /
                static_cast<double>(1u << 20);
            if (roll < chaosRate_.load(std::memory_order_relaxed)) {
                // Real signals through the real kernel path: half the
                // kills are abrupt (SIGKILL), half look like solver
                // bugs (SIGSEGV).
                ::kill(pid, rng.below(2) == 0 ? SIGKILL : SIGSEGV);
            }
        }
    }
}

// --- SandboxSolver ------------------------------------------------------

SandboxSolver::SandboxSolver(TermFactory &factory,
                             WorkerSupervisor &supervisor)
    : factory_(factory), supervisor_(supervisor),
      sessionId_(supervisor.newSessionId())
{}

SatResult
SandboxSolver::checkSat(const std::vector<Term> &assertions)
{
    interrupted_.store(false, std::memory_order_relaxed);
    ++stats_.queries;
    WorkerSupervisor::QueryOutcome outcome = supervisor_.solve(
        sessionId_, assertions, timeoutMs_, &interrupted_);
    switch (outcome.result) {
    case SatResult::Sat:
        ++stats_.sat;
        break;
    case SatResult::Unsat:
        ++stats_.unsat;
        break;
    case SatResult::Unknown:
        ++stats_.unknown;
        break;
    }
    // The worker already counted its own logical queries; fold in only
    // the work counters so this stack reports one query per checkSat.
    foldNonVerdictStats(stats_, outcome.stats);
    lastFailure_ = outcome.failureKind;
    lastUnknownReason_ = outcome.unknownReason;
    return outcome.result;
}

void
SandboxSolver::setTimeoutMs(unsigned timeout_ms)
{
    timeoutMs_ = timeout_ms;
}

void
SandboxSolver::setMemoryBudgetMb(unsigned budget_mb)
{
    // The soft budget is a session property shipped in the Reset frame
    // from SandboxOptions::memoryBudgetMb; the hard cap is the worker's
    // rlimit. Nothing to adjust per solver.
    (void)budget_mb;
}

void
SandboxSolver::interruptQuery()
{
    interrupted_.store(true, std::memory_order_relaxed);
}

std::string
SandboxSolver::lastUnknownReason() const
{
    return lastUnknownReason_;
}

FailureKind
SandboxSolver::lastFailureKind() const
{
    return lastFailure_;
}

} // namespace keq::smt
