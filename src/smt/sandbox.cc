#include "src/smt/sandbox.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "src/smt/term_factory.h"
#include "src/support/rng.h"

namespace keq::smt {

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kReadSliceMs = 100;     ///< poll granularity
constexpr unsigned kGroupSliceMs = 10;     ///< per-lane poll in a race
constexpr unsigned kHandshakeMs = 10000;   ///< Ready deadline
constexpr unsigned kReapGraceMs = 500;     ///< voluntary-exit window
constexpr unsigned kMinBackoffMs = 25;

unsigned
elapsedMs(Clock::time_point since)
{
    return static_cast<unsigned>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

} // namespace

std::string
discoverWorkerBinary(const std::string &explicitPath)
{
    if (!explicitPath.empty()) {
        return support::isExecutableFile(explicitPath) ? explicitPath
                                                       : std::string();
    }
    if (const char *env = std::getenv("KEQ_SOLVER_WORKER")) {
        if (support::isExecutableFile(env))
            return env;
    }
    std::string dir = support::currentExecutableDir();
    if (dir.empty())
        return {};
    for (const char *relative :
         {"/keq-solver-worker", "/../tools/keq-solver-worker"}) {
        std::string candidate = dir + relative;
        if (support::isExecutableFile(candidate))
            return candidate;
    }
    return {};
}

FailureKind
classifyWorkerDeath(const support::ExitStatus &status, uint64_t lastRssKb,
                    unsigned workerMemoryMb)
{
    if (status.exited && status.exitCode == kWorkerOomExitCode)
        return FailureKind::WorkerOom;
    if (status.signaled && workerMemoryMb > 0) {
        // The kernel reports an RLIMIT_AS breach as a plain signal
        // (SIGSEGV from a failed stack/heap grow, or the OOM killer's
        // SIGKILL); attribute the death to the cap when the last
        // heartbeat put the worker within 80% of it.
        uint64_t capKb = uint64_t(workerMemoryMb) * 1024;
        if (lastRssKb >= capKb - capKb / 5)
            return FailureKind::WorkerOom;
    }
    return FailureKind::WorkerKilled;
}

WorkerSupervisor::WorkerSupervisor(SandboxOptions options)
    : options_(std::move(options))
{
    if (options_.workers == 0)
        options_.workers = 1;
    for (unsigned i = 0; i < options_.workers; ++i)
        slots_.push_back(std::make_unique<Slot>());
}

WorkerSupervisor::~WorkerSupervisor()
{
    stop();
}

bool
WorkerSupervisor::start(std::string &error)
{
    if (started_)
        return true;
    workerPath_ = discoverWorkerBinary(options_.workerPath);
    if (workerPath_.empty()) {
        error = options_.workerPath.empty()
                    ? "no keq-solver-worker binary found (set "
                      "KEQ_SOLVER_WORKER or --worker-path)"
                    : "worker binary not executable: " +
                          options_.workerPath;
        return false;
    }
    // Writing to a just-crashed worker must surface as EPIPE, not kill
    // the supervisor's process.
    std::signal(SIGPIPE, SIG_IGN);
    started_ = true;
    if (options_.chaosKillRate > 0.0) {
        chaosRate_.store(options_.chaosKillRate,
                         std::memory_order_relaxed);
        chaosStop_ = false;
        chaosThread_ = std::thread([this] { chaosLoop(); });
    }
    return true;
}

void
WorkerSupervisor::stop()
{
    if (chaosThread_.joinable()) {
        chaosStop_ = true;
        chaosThread_.join();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto &slot : slots_) {
        if (slot->alive) {
            slot->chaosPid = 0;
            // A polite Shutdown lets the worker flush and exit; the
            // grace period escalates to SIGKILL for wedged ones.
            slot->proc.writeAll(wire::encodeShutdown());
            slot->proc.waitOrKill(kReapGraceMs);
            slot->alive = false;
        }
    }
    started_ = false;
}

uint64_t
WorkerSupervisor::newSessionId()
{
    return nextSession_.fetch_add(1);
}

SolverStats
WorkerSupervisor::transportTotals() const
{
    std::unique_lock<std::mutex> lock(totalsMutex_);
    return totals_;
}

void
WorkerSupervisor::bumpTotals(const SolverStats &delta)
{
    std::unique_lock<std::mutex> lock(totalsMutex_);
    totals_ += delta;
}

WorkerSupervisor::Slot *
WorkerSupervisor::leaseSlot()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        for (auto &slot : slots_) {
            if (!slot->busy) {
                slot->busy = true;
                return slot.get();
            }
        }
        slotFree_.wait(lock);
    }
}

std::vector<WorkerSupervisor::Slot *>
WorkerSupervisor::leaseSlots(size_t n)
{
    // All-or-nothing under one lock: a group either grabs every slot it
    // needs in a single critical section or grabs none and waits. Two
    // concurrent groups can therefore never deadlock on partial leases
    // (one of them always completes first).
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        std::vector<Slot *> free;
        for (auto &slot : slots_) {
            if (!slot->busy)
                free.push_back(slot.get());
        }
        if (free.size() >= n) {
            free.resize(n);
            for (Slot *slot : free)
                slot->busy = true;
            return free;
        }
        slotFree_.wait(lock);
    }
}

void
WorkerSupervisor::releaseSlot(Slot *slot)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        slot->busy = false;
    }
    // notify_all, not notify_one: a group waiter needing several slots
    // must re-check on every release, and waking only one waiter could
    // starve it behind single-slot waiters.
    slotFree_.notify_all();
}

support::ExitStatus
WorkerSupervisor::reapWorker(Slot &slot)
{
    slot.chaosPid = 0; // stop the chaos thread signalling this pid
    support::ExitStatus status = slot.proc.waitOrKill(kReapGraceMs);
    slot.alive = false;
    slot.sessionId = 0;
    slot.strategy.clear();
    slot.backoffMs = slot.backoffMs == 0
                         ? kMinBackoffMs
                         : std::min(slot.backoffMs * 2,
                                    options_.maxRespawnBackoffMs);
    return status;
}

bool
WorkerSupervisor::spawnWorker(Slot &slot, std::string &error,
                              SolverStats &transport)
{
    if (slot.backoffMs > 0) {
        // Jittered backoff so a pool of crashed workers doesn't respawn
        // in lockstep.
        support::Rng rng(options_.chaosSeed ^
                         nextQuerySeq_.fetch_add(1));
        unsigned base = slot.backoffMs;
        unsigned wait = base / 2 + static_cast<unsigned>(
                                       rng.below(base / 2 + 1));
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
    std::vector<std::string> argv = {workerPath_};
    if (options_.workerMemoryMb > 0)
        argv.push_back("--memory-mb=" +
                       std::to_string(options_.workerMemoryMb));
    if (options_.workerCpuSeconds > 0)
        argv.push_back("--cpu-seconds=" +
                       std::to_string(options_.workerCpuSeconds));
    argv.push_back("--heartbeat-ms=" +
                   std::to_string(options_.heartbeatIntervalMs));

    slot.proc = support::Subprocess();
    if (!slot.proc.spawn(argv, error))
        return false;

    // Handshake: the worker leads with Ready carrying its protocol
    // version; anything else (or silence) means a broken binary.
    std::string buf;
    Clock::time_point begin = Clock::now();
    uint32_t frameLen = 0;
    bool haveHeader = false;
    for (;;) {
        if (elapsedMs(begin) > kHandshakeMs) {
            error = "worker handshake timed out";
            reapWorker(slot);
            return false;
        }
        size_t want = haveHeader ? frameLen : 4;
        support::IoStatus st =
            slot.proc.readExact(buf, want - buf.size(), kReadSliceMs);
        if (st == support::IoStatus::Timeout)
            continue;
        if (st != support::IoStatus::Ok) {
            support::ExitStatus dead = reapWorker(slot);
            error = "worker died during handshake (" +
                    dead.describe() + ")";
            return false;
        }
        if (!haveHeader) {
            wire::Decoder dec(buf);
            dec.u32(frameLen);
            if (frameLen == 0 ||
                frameLen > wire::kMaxFramePayload) {
                error = "worker handshake sent a corrupt frame";
                reapWorker(slot);
                return false;
            }
            haveHeader = true;
            buf.clear();
            continue;
        }
        transport.wireBytesReceived += 4 + buf.size();
        wire::FrameType type;
        std::string body;
        wire::ReadyFrame ready;
        std::string decodeError;
        if (!wire::splitFrame(buf, type, body) ||
            type != wire::FrameType::Ready ||
            !wire::decodeReady(body, ready, decodeError)) {
            error = "worker handshake sent a non-Ready frame";
            reapWorker(slot);
            return false;
        }
        if (ready.protocolVersion != wire::kProtocolVersion) {
            error = "worker protocol version " +
                    std::to_string(ready.protocolVersion) +
                    " != supervisor " +
                    std::to_string(wire::kProtocolVersion);
            reapWorker(slot);
            return false;
        }
        break;
    }
    if (slot.everSpawned)
        ++transport.workerRestarts;
    slot.everSpawned = true;
    slot.alive = true;
    slot.sessionId = 0;
    slot.strategy.clear();
    slot.lastRssKb = 0;
    slot.chaosPid = slot.proc.pid();
    return true;
}

bool
WorkerSupervisor::dispatchQuery(Slot &slot, uint64_t sessionId,
                                const std::string &strategy,
                                uint64_t seq,
                                const std::vector<Term> &assertions,
                                unsigned timeoutMs,
                                const std::atomic<bool> *interrupted,
                                SolverStats &transport,
                                std::string &spawnError)
{
    // Bounded respawn + redispatch: a worker that dies *here* has not
    // consumed the query, so it is respawned and the query redispatched;
    // a death after dispatch costs exactly this query (classified by
    // the caller's await loop).
    auto cancelled = [&] {
        return (interrupted != nullptr &&
                interrupted->load(std::memory_order_relaxed)) ||
               options_.cancel.cancelled();
    };
    for (unsigned attempt = 0;
         attempt < options_.spawnAttempts && !cancelled(); ++attempt) {
        if (!slot.alive && !spawnWorker(slot, spawnError, transport))
            continue;
        if (slot.sessionId != sessionId || slot.strategy != strategy) {
            wire::ResetFrame reset;
            reset.timeoutMs = timeoutMs;
            reset.memoryBudgetMb = options_.memoryBudgetMb;
            reset.strategy = strategy;
            std::string bytes = wire::encodeReset(reset);
            if (!slot.proc.writeAll(bytes)) {
                reapWorker(slot);
                ++transport.workerCrashes;
                continue;
            }
            transport.wireBytesSent += bytes.size();
            slot.sessionId = sessionId;
            slot.strategy = strategy;
        }
        wire::QueryFrame query;
        query.seq = seq;
        query.timeoutMs = timeoutMs;
        query.assertions = assertions;
        std::string bytes = wire::encodeQuery(query);
        if (!slot.proc.writeAll(bytes)) {
            reapWorker(slot);
            ++transport.workerCrashes;
            continue;
        }
        transport.wireBytesSent += bytes.size();
        return true;
    }
    return false;
}

WorkerSupervisor::QueryOutcome
WorkerSupervisor::solve(uint64_t sessionId,
                        const std::vector<Term> &assertions,
                        unsigned timeoutMs,
                        const std::atomic<bool> *interrupted,
                        const std::string &strategy)
{
    QueryOutcome out;
    SolverStats transport;
    if (!started_) {
        out.failureKind = FailureKind::WorkerKilled;
        out.unknownReason = "sandbox supervisor not started";
        return out;
    }

    Slot *slot = leaseSlot();
    uint64_t seq = nextQuerySeq_.fetch_add(1);

    auto cancelled = [&] {
        return (interrupted != nullptr &&
                interrupted->load(std::memory_order_relaxed)) ||
               options_.cancel.cancelled();
    };

    std::string spawnError;
    bool dispatched =
        dispatchQuery(*slot, sessionId, strategy, seq, assertions,
                      timeoutMs, interrupted, transport, spawnError);
    if (!dispatched) {
        if (cancelled()) {
            out.failureKind = FailureKind::Cancelled;
            out.unknownReason = "cancelled before dispatch";
        } else {
            out.failureKind = FailureKind::WorkerKilled;
            out.unknownReason =
                "cannot dispatch to a sandbox worker" +
                (spawnError.empty() ? std::string()
                                    : ": " + spawnError);
        }
        releaseSlot(slot);
        out.stats += transport;
        bumpTotals(transport);
        return out;
    }

    // --- Await the result under the heartbeat deadline ----------------
    Clock::time_point lastFrame = Clock::now();
    std::string buf;
    uint32_t frameLen = 0;
    bool haveHeader = false;
    bool done = false;
    while (!done) {
        if (cancelled()) {
            // Cancellation beats every other classification: kill the
            // worker (its in-flight query is abandoned) and report
            // Cancelled so the caller never journals this verdict.
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            out.result = SatResult::Unknown;
            out.failureKind = FailureKind::Cancelled;
            out.unknownReason = "cancelled";
            break;
        }
        size_t want = haveHeader ? frameLen : 4;
        support::IoStatus st =
            slot->proc.readExact(buf, want - buf.size(), kReadSliceMs);
        if (st == support::IoStatus::Timeout) {
            if (elapsedMs(lastFrame) > options_.heartbeatGraceMs) {
                // Silent worker: wedged in native code, SIGSTOPped, or
                // spinning without heartbeats. Kill and classify as a
                // timeout — the query never produced evidence of a
                // crash, only of taking too long.
                slot->proc.kill(SIGKILL);
                reapWorker(*slot);
                ++transport.heartbeatTimeouts;
                out.result = SatResult::Unknown;
                out.failureKind = FailureKind::Timeout;
                out.unknownReason = "worker heartbeat deadline";
                break;
            }
            continue;
        }
        if (st != support::IoStatus::Ok) {
            support::ExitStatus dead = reapWorker(*slot);
            ++transport.workerCrashes;
            out.result = SatResult::Unknown;
            out.failureKind = classifyWorkerDeath(
                dead, slot->lastRssKb, options_.workerMemoryMb);
            out.unknownReason = "worker died (" + dead.describe() + ")";
            break;
        }
        if (!haveHeader) {
            wire::Decoder dec(buf);
            dec.u32(frameLen);
            if (frameLen == 0 || frameLen > wire::kMaxFramePayload) {
                slot->proc.kill(SIGKILL);
                reapWorker(*slot);
                ++transport.workerCrashes;
                out.failureKind = FailureKind::WorkerKilled;
                out.unknownReason = "worker sent a corrupt frame";
                break;
            }
            haveHeader = true;
            buf.clear();
            continue;
        }

        transport.wireBytesReceived += 4 + buf.size();
        lastFrame = Clock::now();
        std::string payload = std::move(buf);
        buf.clear();
        haveHeader = false;

        wire::FrameType type;
        std::string body;
        if (!wire::splitFrame(payload, type, body)) {
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            ++transport.workerCrashes;
            out.failureKind = FailureKind::WorkerKilled;
            out.unknownReason = "worker sent an unknown frame type";
            break;
        }
        switch (type) {
        case wire::FrameType::Heartbeat: {
            wire::HeartbeatFrame beat;
            std::string error;
            if (wire::decodeHeartbeat(body, beat, error))
                slot->lastRssKb = beat.rssKb;
            break; // liveness refreshed above
        }
        case wire::FrameType::Result: {
            wire::ResultFrame result;
            std::string error;
            if (!wire::decodeResult(body, result, error) ||
                result.seq != seq) {
                slot->proc.kill(SIGKILL);
                reapWorker(*slot);
                ++transport.workerCrashes;
                out.failureKind = FailureKind::WorkerKilled;
                out.unknownReason =
                    error.empty() ? "worker answered the wrong query"
                                  : "corrupt result frame: " + error;
                done = true;
                break;
            }
            out.result = result.result;
            out.failureKind = result.failureKind;
            out.unknownReason = result.unknownReason;
            out.stats += result.stats;
            slot->backoffMs = 0; // healthy answer resets the backoff
            done = true;
            break;
        }
        case wire::FrameType::Error: {
            std::string message;
            wire::decodeError(body, message);
            // The worker refused the query (undecodable frame). Its
            // session state is untrusted now; recycle the process.
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            ++transport.workerCrashes;
            out.failureKind = FailureKind::SolverCrash;
            out.unknownReason = "worker rejected query: " + message;
            done = true;
            break;
        }
        default:
            slot->proc.kill(SIGKILL);
            reapWorker(*slot);
            ++transport.workerCrashes;
            out.failureKind = FailureKind::WorkerKilled;
            out.unknownReason = "unexpected frame from worker";
            done = true;
            break;
        }
    }

    releaseSlot(slot);
    out.stats += transport;
    bumpTotals(transport);
    return out;
}

namespace {

/** Per-lane bookkeeping for one portfolio race. */
struct LaneRun
{
    std::string strategy;
    bool finished = false;
    bool haveResult = false; ///< a Result frame (any kind) arrived
    bool cancelSent = false;
    Clock::time_point cancelAt{};
    Clock::time_point lastFrame{};
    std::string buf; ///< partial frame bytes (readExact accumulates)
    uint32_t frameLen = 0;
    bool haveHeader = false;
    SatResult result = SatResult::Unknown;
    FailureKind kind = FailureKind::None;
    std::string reason;
    SolverStats stats;
};

bool
isDefinite(const LaneRun &lane)
{
    return lane.haveResult && lane.kind == FailureKind::None &&
           lane.result != SatResult::Unknown;
}

} // namespace

WorkerSupervisor::QueryOutcome
WorkerSupervisor::solveGroup(uint64_t sessionId,
                             const std::vector<Term> &assertions,
                             unsigned timeoutMs,
                             const std::atomic<bool> *interrupted,
                             const std::vector<std::string> &lanes)
{
    if (lanes.size() <= 1) {
        return solve(sessionId, assertions, timeoutMs, interrupted,
                     lanes.empty() ? std::string() : lanes.front());
    }
    QueryOutcome out;
    SolverStats transport;
    if (!started_) {
        out.failureKind = FailureKind::WorkerKilled;
        out.unknownReason = "sandbox supervisor not started";
        return out;
    }

    // Racing more lanes than the pool has workers would block the
    // atomic lease forever; degrade to the widest race that fits.
    size_t laneCount = std::min(lanes.size(), slots_.size());
    std::vector<Slot *> leased = leaseSlots(laneCount);
    uint64_t seq = nextQuerySeq_.fetch_add(1);

    auto cancelled = [&] {
        return (interrupted != nullptr &&
                interrupted->load(std::memory_order_relaxed)) ||
               options_.cancel.cancelled();
    };

    std::vector<LaneRun> runs(laneCount);
    size_t unfinished = 0;
    auto finishLane = [&](LaneRun &lane, FailureKind kind,
                          std::string reason) {
        lane.finished = true;
        lane.kind = kind;
        lane.reason = std::move(reason);
        --unfinished;
    };

    // Every lane gets the same query seq: a worker only ever has one
    // query in flight, so the seq disambiguates per-stream, and a
    // single seq lets one CancelFrame value serve the whole group.
    std::string spawnError;
    for (size_t i = 0; i < laneCount; ++i) {
        runs[i].strategy = lanes[i];
        runs[i].lastFrame = Clock::now();
        if (!cancelled() &&
            dispatchQuery(*leased[i], sessionId, lanes[i], seq,
                          assertions, timeoutMs, interrupted, transport,
                          spawnError)) {
            ++unfinished;
        } else {
            // Dead on arrival; the race tolerates it as long as some
            // other lane dispatched.
            runs[i].finished = true;
            runs[i].kind = cancelled() ? FailureKind::Cancelled
                                       : FailureKind::WorkerKilled;
            runs[i].reason =
                "cannot dispatch portfolio lane '" + lanes[i] + "'" +
                (spawnError.empty() ? std::string()
                                    : ": " + spawnError);
        }
    }

    auto sendCancel = [&](LaneRun &lane, Slot &slot) {
        if (lane.finished || lane.cancelSent)
            return;
        wire::CancelFrame cancel;
        cancel.seq = seq;
        std::string bytes = wire::encodeCancel(cancel);
        if (slot.proc.writeAll(bytes))
            transport.wireBytesSent += bytes.size();
        // A failed write means the worker already died; the read side
        // of the pump will reap and classify it.
        lane.cancelSent = true;
        lane.cancelAt = Clock::now();
    };

    // --- Round-robin pump: first definite verdict wins ----------------
    int winner = -1;
    bool userCancelled = false;
    while (unfinished > 0) {
        if (cancelled()) {
            userCancelled = true;
            for (size_t i = 0; i < runs.size(); ++i) {
                if (runs[i].finished)
                    continue;
                leased[i]->proc.kill(SIGKILL);
                reapWorker(*leased[i]);
                finishLane(runs[i], FailureKind::Cancelled, "cancelled");
            }
            break;
        }
        for (size_t i = 0; i < runs.size() && unfinished > 0; ++i) {
            LaneRun &lane = runs[i];
            Slot &slot = *leased[i];
            if (lane.finished)
                continue;
            size_t want = lane.haveHeader ? lane.frameLen : 4;
            support::IoStatus st = slot.proc.readExact(
                lane.buf, want - lane.buf.size(), kGroupSliceMs);
            if (st == support::IoStatus::Timeout) {
                if (lane.cancelSent &&
                    elapsedMs(lane.cancelAt) > kReapGraceMs) {
                    // The loser ignored its Cancel frame (wedged in
                    // native code); reap it the hard way. Still a
                    // cancellation, not a timeout: the race was over.
                    slot.proc.kill(SIGKILL);
                    reapWorker(slot);
                    finishLane(lane, FailureKind::Cancelled,
                               "cancelled (killed after grace)");
                } else if (elapsedMs(lane.lastFrame) >
                           options_.heartbeatGraceMs) {
                    slot.proc.kill(SIGKILL);
                    reapWorker(slot);
                    ++transport.heartbeatTimeouts;
                    finishLane(lane, FailureKind::Timeout,
                               "worker heartbeat deadline");
                }
                continue;
            }
            if (st != support::IoStatus::Ok) {
                support::ExitStatus dead = reapWorker(slot);
                ++transport.workerCrashes;
                // A loser dying after its Cancel is still just a
                // cancellation; an uncancelled lane's death is a real
                // (contained) failure of that lane only.
                finishLane(lane,
                           lane.cancelSent
                               ? FailureKind::Cancelled
                               : classifyWorkerDeath(
                                     dead, slot.lastRssKb,
                                     options_.workerMemoryMb),
                           "worker died (" + dead.describe() + ")");
                continue;
            }
            if (!lane.haveHeader) {
                wire::Decoder dec(lane.buf);
                dec.u32(lane.frameLen);
                if (lane.frameLen == 0 ||
                    lane.frameLen > wire::kMaxFramePayload) {
                    slot.proc.kill(SIGKILL);
                    reapWorker(slot);
                    ++transport.workerCrashes;
                    finishLane(lane, FailureKind::WorkerKilled,
                               "worker sent a corrupt frame");
                    continue;
                }
                lane.haveHeader = true;
                lane.buf.clear();
                continue;
            }

            transport.wireBytesReceived += 4 + lane.buf.size();
            lane.lastFrame = Clock::now();
            std::string payload = std::move(lane.buf);
            lane.buf.clear();
            lane.haveHeader = false;

            wire::FrameType type;
            std::string body;
            if (!wire::splitFrame(payload, type, body)) {
                slot.proc.kill(SIGKILL);
                reapWorker(slot);
                ++transport.workerCrashes;
                finishLane(lane, FailureKind::WorkerKilled,
                           "worker sent an unknown frame type");
                continue;
            }
            switch (type) {
            case wire::FrameType::Heartbeat: {
                wire::HeartbeatFrame beat;
                std::string error;
                if (wire::decodeHeartbeat(body, beat, error))
                    slot.lastRssKb = beat.rssKb;
                break;
            }
            case wire::FrameType::Result: {
                wire::ResultFrame result;
                std::string error;
                if (!wire::decodeResult(body, result, error) ||
                    result.seq != seq) {
                    slot.proc.kill(SIGKILL);
                    reapWorker(slot);
                    ++transport.workerCrashes;
                    finishLane(lane, FailureKind::WorkerKilled,
                               error.empty()
                                   ? "worker answered the wrong query"
                                   : "corrupt result frame: " + error);
                    break;
                }
                lane.haveResult = true;
                lane.result = result.result;
                lane.stats = result.stats;
                slot.backoffMs = 0;
                finishLane(lane, result.failureKind,
                           result.unknownReason);
                if (isDefinite(lane) && winner < 0) {
                    winner = static_cast<int>(i);
                    for (size_t j = 0; j < runs.size(); ++j) {
                        if (j != i)
                            sendCancel(runs[j], *leased[j]);
                    }
                }
                break;
            }
            case wire::FrameType::Error: {
                std::string message;
                wire::decodeError(body, message);
                slot.proc.kill(SIGKILL);
                reapWorker(slot);
                ++transport.workerCrashes;
                finishLane(lane, FailureKind::SolverCrash,
                           "worker rejected query: " + message);
                break;
            }
            default:
                slot.proc.kill(SIGKILL);
                reapWorker(slot);
                ++transport.workerCrashes;
                finishLane(lane, FailureKind::WorkerKilled,
                           "unexpected frame from worker");
                break;
            }
        }
    }

    // --- Classify the race ---------------------------------------------
    for (const LaneRun &lane : runs)
        out.stats += lane.stats;

    bool sawSat = false;
    bool sawUnsat = false;
    for (const LaneRun &lane : runs) {
        if (!isDefinite(lane))
            continue;
        sawSat = sawSat || lane.result == SatResult::Sat;
        sawUnsat = sawUnsat || lane.result == SatResult::Unsat;
    }

    if (userCancelled) {
        out.result = SatResult::Unknown;
        out.failureKind = FailureKind::Cancelled;
        out.unknownReason = "cancelled";
    } else if (sawSat && sawUnsat) {
        // Two lanes produced conflicting definite verdicts on the same
        // assertion set: a solver soundness bug. Refuse to pick a side.
        ++out.stats.crossLaneDisagreements;
        std::string detail;
        for (const LaneRun &lane : runs) {
            if (!isDefinite(lane))
                continue;
            if (!detail.empty())
                detail += ", ";
            detail += lane.strategy + "=" +
                      (lane.result == SatResult::Sat ? "sat" : "unsat");
        }
        out.result = SatResult::Unknown;
        out.failureKind = FailureKind::PortfolioDisagreement;
        out.unknownReason = "portfolio disagreement: " + detail;
    } else if (winner >= 0) {
        const LaneRun &won = runs[static_cast<size_t>(winner)];
        out.result = won.result;
        out.failureKind = FailureKind::None;
        out.unknownReason.clear();
        size_t winSlot =
            std::min(static_cast<size_t>(winner),
                     SolverStats::kPortfolioMaxLanes - 1);
        ++out.stats.portfolioWins[winSlot];
        for (const LaneRun &lane : runs) {
            if (&lane != &won && lane.cancelSent && !isDefinite(lane))
                ++out.stats.portfolioCancellations;
        }
    } else {
        // Every lane failed. Surface the most informative lane: any
        // classified failure beats Cancelled (which here only marks
        // dead-on-arrival lanes of an already-failed race).
        const LaneRun *pick = &runs.front();
        for (const LaneRun &lane : runs) {
            if (pick->kind == FailureKind::Cancelled &&
                lane.kind != FailureKind::Cancelled)
                pick = &lane;
        }
        out.result = SatResult::Unknown;
        out.failureKind = pick->kind != FailureKind::None
                              ? pick->kind
                              : FailureKind::SolverUnknown;
        out.unknownReason = pick->reason;
    }

    for (Slot *slot : leased)
        releaseSlot(slot);
    out.stats += transport;
    bumpTotals(transport);
    return out;
}

void
WorkerSupervisor::chaosLoop()
{
    support::Rng rng(options_.chaosSeed);
    while (!chaosStop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.chaosTickMs));
        std::unique_lock<std::mutex> lock(mutex_);
        for (auto &slot : slots_) {
            if (!slot->busy)
                continue;
            int pid = slot->chaosPid.load(std::memory_order_relaxed);
            if (pid <= 0)
                continue;
            double roll =
                static_cast<double>(rng.below(1u << 20)) /
                static_cast<double>(1u << 20);
            if (roll < chaosRate_.load(std::memory_order_relaxed)) {
                // Real signals through the real kernel path: half the
                // kills are abrupt (SIGKILL), half look like solver
                // bugs (SIGSEGV).
                ::kill(pid, rng.below(2) == 0 ? SIGKILL : SIGSEGV);
            }
        }
    }
}

// --- SandboxSolver ------------------------------------------------------

SandboxSolver::SandboxSolver(TermFactory &factory,
                             WorkerSupervisor &supervisor,
                             std::vector<std::string> laneStrategies)
    : factory_(factory), supervisor_(supervisor),
      sessionId_(supervisor.newSessionId()),
      laneStrategies_(std::move(laneStrategies))
{}

SatResult
SandboxSolver::checkSat(const std::vector<Term> &assertions)
{
    interrupted_.store(false, std::memory_order_relaxed);
    ++stats_.queries;
    WorkerSupervisor::QueryOutcome outcome =
        laneStrategies_.size() > 1
            ? supervisor_.solveGroup(sessionId_, assertions, timeoutMs_,
                                     &interrupted_, laneStrategies_)
            : supervisor_.solve(sessionId_, assertions, timeoutMs_,
                                &interrupted_,
                                laneStrategies_.empty()
                                    ? std::string()
                                    : laneStrategies_.front());
    switch (outcome.result) {
    case SatResult::Sat:
        ++stats_.sat;
        break;
    case SatResult::Unsat:
        ++stats_.unsat;
        break;
    case SatResult::Unknown:
        ++stats_.unknown;
        break;
    }
    // The worker already counted its own logical queries; fold in only
    // the work counters so this stack reports one query per checkSat.
    foldNonVerdictStats(stats_, outcome.stats);
    lastFailure_ = outcome.failureKind;
    lastUnknownReason_ = outcome.unknownReason;
    return outcome.result;
}

void
SandboxSolver::setTimeoutMs(unsigned timeout_ms)
{
    timeoutMs_ = timeout_ms;
}

void
SandboxSolver::setMemoryBudgetMb(unsigned budget_mb)
{
    // The soft budget is a session property shipped in the Reset frame
    // from SandboxOptions::memoryBudgetMb; the hard cap is the worker's
    // rlimit. Nothing to adjust per solver.
    (void)budget_mb;
}

void
SandboxSolver::interruptQuery()
{
    interrupted_.store(true, std::memory_order_relaxed);
}

std::string
SandboxSolver::lastUnknownReason() const
{
    return lastUnknownReason_;
}

FailureKind
SandboxSolver::lastFailureKind() const
{
    return lastFailure_;
}

} // namespace keq::smt
