#ifndef KEQ_SMT_Z3_LOWERING_H
#define KEQ_SMT_Z3_LOWERING_H

/**
 * @file
 * Term -> Z3 AST translation shared by the Z3 backends.
 *
 * Internal header: it pulls in <z3++.h>, so only the backend .cc files
 * may include it (the public headers keep Z3 behind a pimpl). The
 * translation memoizes per term id — hash-consing makes that a perfect
 * cache — and the memo's lifetime is the context's, so repeated queries
 * over a shared factory re-lower nothing.
 */

#include <cctype>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <z3++.h>

#include "src/smt/evaluator.h"
#include "src/smt/term.h"
#include "src/support/diagnostics.h"

namespace keq::smt {

/**
 * Applies (name, value) tuning parameters to @p solver one at a time,
 * best-effort: unknown names are skipped so a lane spec written for
 * one Z3 build still runs on another. Z3's combined solver defers
 * parameter validation to the first check() — far too late to catch
 * here — so names are validated eagerly against the solver's own
 * parameter descriptors instead of trusting set() to throw. Values
 * parse as bool ("true"/"false"), unsigned (all digits), or a string
 * symbol.
 */
inline void
applyTuningParams(
    z3::context &ctx, z3::solver &solver,
    const std::vector<std::pair<std::string, std::string>> &tuning)
{
    std::unordered_map<std::string, bool> known;
    try {
        z3::param_descrs descrs = solver.get_param_descrs();
        for (unsigned i = 0; i < descrs.size(); ++i)
            known[descrs.name(i).str()] = true;
    } catch (const z3::exception &) {
        // No descriptors on this build: fall back to set-and-hope.
    }
    for (const auto &[name, value] : tuning) {
        if (!known.empty() && known.find(name) == known.end())
            continue;
        try {
            z3::params params(ctx);
            if (value == "true" || value == "false") {
                params.set(name.c_str(), value == "true");
            } else if (!value.empty() &&
                       value.find_first_not_of("0123456789") ==
                           std::string::npos) {
                params.set(name.c_str(),
                           static_cast<unsigned>(
                               std::strtoul(value.c_str(), nullptr, 10)));
            } else {
                params.set(name.c_str(), ctx.str_symbol(value.c_str()));
            }
            solver.set(params);
        } catch (const z3::exception &) {
            // Unknown parameter on this build; skip it.
        }
    }
}

/** Memoizing lowering of hash-consed terms into one z3::context. */
class Z3Lowering
{
  public:
    explicit Z3Lowering(z3::context &ctx) : ctx_(ctx) {}

    z3::sort
    lowerSort(Sort sort)
    {
        switch (sort.kind()) {
          case Sort::Kind::Bool:
            return ctx_.bool_sort();
          case Sort::Kind::BitVec:
            return ctx_.bv_sort(sort.width());
          case Sort::Kind::MemArray:
            return ctx_.array_sort(ctx_.bv_sort(64), ctx_.bv_sort(8));
        }
        KEQ_ASSERT(false, "lowerSort: unhandled sort");
        return ctx_.bool_sort();
    }

    z3::expr
    lower(Term term)
    {
        auto it = cache_.find(term.id());
        if (it != cache_.end())
            return it->second;
        z3::expr result = lowerUncached(term);
        cache_.emplace(term.id(), result);
        return result;
    }

  private:
    z3::expr
    lowerUncached(Term term)
    {
        switch (term.kind()) {
          case Kind::BvConst:
            return ctx_.bv_val(term.bvValue().zext(),
                               term.bvValue().width());
          case Kind::BoolConst:
            return ctx_.bool_val(term.boolValue());
          case Kind::Var:
            return ctx_.constant(term.varName().c_str(),
                                 lowerSort(term.sort()));
          case Kind::Not:
            return !lower(term.operand(0));
          case Kind::And:
            return lower(term.operand(0)) && lower(term.operand(1));
          case Kind::Or:
            return lower(term.operand(0)) || lower(term.operand(1));
          case Kind::Implies:
            return z3::implies(lower(term.operand(0)),
                               lower(term.operand(1)));
          case Kind::Iff:
            return lower(term.operand(0)) == lower(term.operand(1));
          case Kind::Ite:
            return z3::ite(lower(term.operand(0)),
                           lower(term.operand(1)),
                           lower(term.operand(2)));
          case Kind::BvAdd:
            return lower(term.operand(0)) + lower(term.operand(1));
          case Kind::BvSub:
            return lower(term.operand(0)) - lower(term.operand(1));
          case Kind::BvMul:
            return lower(term.operand(0)) * lower(term.operand(1));
          case Kind::BvUDiv:
            return z3::udiv(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvSDiv:
            return lower(term.operand(0)) / lower(term.operand(1));
          case Kind::BvURem:
            return z3::urem(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvSRem:
            return z3::srem(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvAnd:
            return lower(term.operand(0)) & lower(term.operand(1));
          case Kind::BvOr:
            return lower(term.operand(0)) | lower(term.operand(1));
          case Kind::BvXor:
            return lower(term.operand(0)) ^ lower(term.operand(1));
          case Kind::BvNot:
            return ~lower(term.operand(0));
          case Kind::BvNeg:
            return -lower(term.operand(0));
          case Kind::BvShl:
            return z3::shl(lower(term.operand(0)),
                           lower(term.operand(1)));
          case Kind::BvLShr:
            return z3::lshr(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::BvAShr:
            return z3::ashr(lower(term.operand(0)),
                            lower(term.operand(1)));
          case Kind::Eq:
            return lower(term.operand(0)) == lower(term.operand(1));
          case Kind::BvUlt:
            return z3::ult(lower(term.operand(0)),
                           lower(term.operand(1)));
          case Kind::BvUle:
            return z3::ule(lower(term.operand(0)),
                           lower(term.operand(1)));
          case Kind::BvSlt:
            return lower(term.operand(0)) < lower(term.operand(1));
          case Kind::BvSle:
            return lower(term.operand(0)) <= lower(term.operand(1));
          case Kind::ZExt:
            return z3::zext(lower(term.operand(0)),
                            term.sort().width() -
                                term.operand(0).sort().width());
          case Kind::SExt:
            return z3::sext(lower(term.operand(0)),
                            term.sort().width() -
                                term.operand(0).sort().width());
          case Kind::Extract:
            return lower(term.operand(0))
                .extract(term.extractHi(), term.extractLo());
          case Kind::Concat:
            return z3::concat(lower(term.operand(0)),
                              lower(term.operand(1)));
          case Kind::Select:
            return z3::select(lower(term.operand(0)),
                              lower(term.operand(1)));
          case Kind::Store:
            return z3::store(lower(term.operand(0)),
                             lower(term.operand(1)),
                             lower(term.operand(2)));
        }
        KEQ_ASSERT(false, "lowerUncached: unhandled kind");
        return ctx_.bool_val(false);
    }

    z3::context &ctx_;
    std::unordered_map<uint64_t, z3::expr> cache_;
};

/**
 * Copies the bitvector and bool constants of @p model into @p out,
 * skipping any constant whose name @p skip accepts (e.g. backend-
 * internal assumption literals). Array interpretations are not
 * extracted: consumers re-verify reused models by evaluation, under
 * which unlisted bytes read as zero.
 */
inline void
extractModel(const z3::model &model, Assignment *out,
             bool (*skip)(const std::string &) = nullptr)
{
    for (unsigned i = 0; i < model.size(); ++i) {
        z3::func_decl decl = model[i];
        if (decl.arity() != 0)
            continue;
        if (skip != nullptr && skip(decl.name().str()))
            continue;
        z3::expr value = model.get_const_interp(decl);
        z3::sort range = decl.range();
        if (range.is_bv() && range.bv_size() <= 64 &&
            value.is_numeral()) {
            out->setBv(decl.name().str(),
                       support::ApInt(range.bv_size(),
                                      value.get_numeral_uint64()));
        } else if (range.is_bool() && value.is_bool()) {
            out->setBool(decl.name().str(), value.is_true());
        }
    }
}

} // namespace keq::smt

#endif // KEQ_SMT_Z3_LOWERING_H
