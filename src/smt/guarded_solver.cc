#include "src/smt/guarded_solver.h"

#include <algorithm>

#include "src/support/diagnostics.h"
#include "src/support/rng.h"

namespace keq::smt {

using Clock = std::chrono::steady_clock;

GuardedSolver::GuardedSolver(TermFactory &factory, Solver &primary,
                             std::vector<RungFactory> fallbacks,
                             GuardedSolverOptions options)
    : factory_(factory), primary_(primary),
      rungFactories_(std::move(fallbacks)), options_(options)
{}

GuardedSolver::~GuardedSolver()
{
    if (watchdog_.joinable()) {
        {
            std::unique_lock<std::mutex> lock(watchMutex_);
            watchShutdown_ = true;
        }
        watchCv_.notify_all();
        watchdog_.join();
    }
}

void
GuardedSolver::setTimeoutMs(unsigned timeout_ms)
{
    timeoutMs_ = timeout_ms;
    primary_.setTimeoutMs(timeout_ms);
    for (auto &rung : rungs_) {
        if (rung)
            rung->setTimeoutMs(timeout_ms);
    }
}

void
GuardedSolver::setMemoryBudgetMb(unsigned budget_mb)
{
    memoryBudgetMb_ = budget_mb;
    primary_.setMemoryBudgetMb(budget_mb);
    for (auto &rung : rungs_) {
        if (rung)
            rung->setMemoryBudgetMb(budget_mb);
    }
}

void
GuardedSolver::enableModelCapture(bool enabled)
{
    captureModels_ = enabled;
    primary_.enableModelCapture(enabled);
    for (auto &rung : rungs_) {
        if (rung)
            rung->enableModelCapture(enabled);
    }
}

bool
GuardedSolver::lastModel(Assignment *out) const
{
    return lastAnswering_ != nullptr && lastAnswering_->lastModel(out);
}

std::string
GuardedSolver::lastUnknownReason() const
{
    return lastUnknownReason_;
}

FailureKind
GuardedSolver::lastFailureKind() const
{
    return lastFailure_;
}

void
GuardedSolver::interruptQuery()
{
    // Forward to whatever could be solving right now; harmless for idle
    // rungs (a stray interrupt makes at most one future attempt return
    // Unknown, which the ladder retries).
    primary_.interruptQuery();
    for (auto &rung : rungs_) {
        if (rung)
            rung->interruptQuery();
    }
}

void
GuardedSolver::cancelCurrentQuery()
{
    queryCancelled_.store(true, std::memory_order_relaxed);
    // Immediate first interrupt so the reap does not wait for the next
    // watchdog poll tick; the watchdog re-fires until the attempt
    // returns (the incremental backend's Unknown fallback re-enters Z3).
    interruptQuery();
    watchCv_.notify_all();
}

Solver *
GuardedSolver::rungSolver(size_t rung)
{
    if (rung == 0)
        return &primary_;
    size_t index = rung - 1;
    if (rungs_.size() <= index)
        rungs_.resize(rungFactories_.size());
    if (!rungs_[index]) {
        rungs_[index] = rungFactories_[index]();
        KEQ_ASSERT(rungs_[index] != nullptr,
                   "GuardedSolver: rung factory returned null");
        rungs_[index]->setTimeoutMs(timeoutMs_);
        rungs_[index]->setMemoryBudgetMb(memoryBudgetMb_);
        rungs_[index]->enableModelCapture(captureModels_);
    }
    return rungs_[index].get();
}

void
GuardedSolver::ensureWatchdog()
{
    if (!watchdog_.joinable())
        watchdog_ = std::thread([this] { watchdogLoop(); });
}

void
GuardedSolver::armWatchdog(Solver *target)
{
    if (options_.deadlineMs == 0 && !options_.cancel.valid() &&
        !options_.cancellable)
        return; // nothing to enforce
    ensureWatchdog();
    {
        std::unique_lock<std::mutex> lock(watchMutex_);
        watchTarget_ = target;
        watchHasDeadline_ = options_.deadlineMs > 0;
        if (watchHasDeadline_) {
            watchDeadline_ = Clock::now() + std::chrono::milliseconds(
                                                options_.deadlineMs);
        }
        watchArmed_ = true;
        watchFired_ = false;
        ++watchGeneration_;
    }
    watchCv_.notify_all();
}

bool
GuardedSolver::disarmWatchdog()
{
    if (!watchdog_.joinable())
        return false;
    bool fired;
    {
        std::unique_lock<std::mutex> lock(watchMutex_);
        fired = watchFired_;
        watchArmed_ = false;
        watchFired_ = false;
        ++watchGeneration_;
    }
    watchCv_.notify_all();
    if (fired)
        ++stats_.watchdogInterrupts;
    return fired;
}

void
GuardedSolver::watchdogLoop()
{
    using namespace std::chrono_literals;
    std::unique_lock<std::mutex> lock(watchMutex_);
    for (;;) {
        watchCv_.wait(lock,
                      [this] { return watchShutdown_ || watchArmed_; });
        if (watchShutdown_)
            return;
        uint64_t generation = watchGeneration_;
        while (watchArmed_ && watchGeneration_ == generation &&
               !watchShutdown_) {
            Clock::time_point now = Clock::now();
            bool expired = watchHasDeadline_ && now >= watchDeadline_;
            bool cancelled =
                options_.cancel.cancelled() ||
                queryCancelled_.load(std::memory_order_relaxed);
            if (expired || cancelled) {
                watchFired_ = true;
                Solver *target = watchTarget_;
                // Interrupt outside the lock: Z3_interrupt is
                // thread-safe but can take a moment. A lost race with
                // disarm costs at most one spurious Unknown on a later
                // attempt, which the ladder absorbs; it can never flip
                // a definite verdict.
                lock.unlock();
                target->interruptQuery();
                lock.lock();
                // Keep re-firing until the attempt returns: the
                // incremental backend's Unknown guardrail re-enters Z3
                // after the first interrupt lands.
                watchCv_.wait_for(lock, 25ms, [&] {
                    return !watchArmed_ ||
                           watchGeneration_ != generation ||
                           watchShutdown_;
                });
            } else {
                Clock::time_point wake = now + 50ms; // cancel poll tick
                if (watchHasDeadline_)
                    wake = std::min(wake, watchDeadline_);
                watchCv_.wait_until(lock, wake, [&] {
                    return !watchArmed_ ||
                           watchGeneration_ != generation ||
                           watchShutdown_;
                });
            }
        }
    }
}

SatResult
GuardedSolver::checkSat(const std::vector<Term> &assertions)
{
    ++stats_.queries;
    lastUnknownReason_.clear();
    lastFailure_ = FailureKind::None;
    lastAnswering_ = nullptr;
    // A stale per-query cancel must not leak into this query; the host
    // protocol guarantees cancelCurrentQuery only targets an in-flight
    // checkSat.
    queryCancelled_.store(false, std::memory_order_relaxed);

    support::Rng jitter(options_.jitterSeed ^ stats_.queries);
    size_t rungCount = 1 + rungFactories_.size();
    unsigned attemptNumber = 0; // across rungs, for backoff growth

    for (size_t rung = 0; rung < rungCount; ++rung) {
        Solver *solver = rungSolver(rung);
        for (unsigned attempt = 0; attempt <= options_.retries;
             ++attempt, ++attemptNumber) {
            if (options_.cancel.cancelled() ||
                queryCancelled_.load(std::memory_order_relaxed)) {
                lastFailure_ = FailureKind::Cancelled;
                lastUnknownReason_ = "cancelled";
                ++stats_.unknown;
                return SatResult::Unknown;
            }
            if (attemptNumber > 0 && options_.backoffBaseMs > 0) {
                // Exponential backoff with jitter: decorrelates retry
                // storms across workers hammering a shared resource.
                unsigned shift = std::min(attemptNumber - 1, 4u);
                uint64_t base =
                    static_cast<uint64_t>(options_.backoffBaseMs)
                    << shift;
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    base + jitter.below(options_.backoffBaseMs)));
            }

            SolverStats before = solver->stats();
            armWatchdog(solver);
            SatResult result = SatResult::Unknown;
            bool crashed = false;
            std::string crashWhat;
            try {
                result = solver->checkSat(assertions);
            } catch (const support::InternalError &) {
                disarmWatchdog();
                foldNonVerdictStats(stats_,
                                    solver->stats() - before);
                throw; // library bug; never absorbed
            } catch (const std::exception &error) {
                crashed = true;
                crashWhat = error.what();
            }
            bool deadlineFired = disarmWatchdog();
            foldNonVerdictStats(stats_, solver->stats() - before);

            if (!crashed && result != SatResult::Unknown) {
                if (rung > 0)
                    ++stats_.escalatedResolved;
                lastAnswering_ = solver;
                if (result == SatResult::Sat)
                    ++stats_.sat;
                else
                    ++stats_.unsat;
                return result;
            }

            // Classify this attempt's failure, most-specific first.
            if (crashed) {
                ++stats_.solverCrashes;
                lastUnknownReason_ = crashWhat;
                lastFailure_ =
                    crashWhat.find("memory") != std::string::npos
                        ? FailureKind::MemoryBudget
                        : FailureKind::SolverCrash;
            } else if (options_.cancel.cancelled() ||
                       queryCancelled_.load(
                           std::memory_order_relaxed)) {
                lastUnknownReason_ = "cancelled";
                lastFailure_ = FailureKind::Cancelled;
            } else if (deadlineFired) {
                lastUnknownReason_ = "watchdog deadline";
                lastFailure_ = FailureKind::Timeout;
            } else {
                lastUnknownReason_ = solver->lastUnknownReason();
                FailureKind kind = solver->lastFailureKind();
                lastFailure_ =
                    kind != FailureKind::None
                        ? kind
                        : classifyUnknownReason(lastUnknownReason_);
            }

            if (lastFailure_ == FailureKind::Cancelled) {
                ++stats_.unknown;
                return SatResult::Unknown; // retrying cancelled work
                                           // is pointless
            }
            if (attempt < options_.retries)
                ++stats_.guardedRetries;
        }
        if (rung + 1 < rungCount)
            ++stats_.guardedEscalations;
    }

    // Ladder exhausted: report Unknown carrying the final attempt's
    // classification. Crashes are absorbed here by design — the caller
    // gets a classified failure, never an exception.
    ++stats_.unknown;
    return SatResult::Unknown;
}

} // namespace keq::smt
