#ifndef KEQ_SMT_SIMPLIFIER_H
#define KEQ_SMT_SIMPLIFIER_H

/**
 * @file
 * Rewrite engine for SMT queries (stage 1 of the optimization stack).
 *
 * The TermFactory already folds constants and applies local identities on
 * construction, but it only ever sees one node at a time. The Simplifier
 * adds what the factory cannot:
 *
 *  - bitvector algebraic rules that need to look through one operand
 *    (associative constant re-folding, shift composition, extension
 *    narrowing of comparisons, xor-with-allones, x & ~x, ...);
 *  - ite-lifting: boolean-sorted ites become and/or combinations and
 *    nested same-condition ites collapse, so the factory's boolean
 *    absorption/complement machinery applies to their conditions;
 *  - whole-query passes: top-level conjunctions are flattened into
 *    assertion sets, definitional equalities (`x == t` with `x` free)
 *    are eliminated by substitution (equality propagation), and the
 *    final set is re-conjoined through the factory so duplicated and
 *    contradictory assertions cancel across the set;
 *  - structural fast paths: a query that rewrites to `false` is Unsat
 *    and a query that rewrites away entirely is Sat — trivial
 *    verification conditions never reach Z3.
 *
 * Every rewrite is satisfiability-preserving (most are equivalences;
 * variable elimination is equisatisfiable in both directions), so the
 * downstream verdict is bit-identical to the unoptimized stack's.
 * Rebuilding terms through the owning factory keeps the output
 * hash-consed, which is what makes the rewriter cheap: results are
 * memoized per node, so shared DAG nodes are visited once per
 * Simplifier lifetime.
 */

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/smt/solver.h"
#include "src/smt/term.h"
#include "src/smt/term_factory.h"

namespace keq::smt {

/** Outcome of simplifying one query (an assertion conjunction). */
struct SimplifyResult
{
    /** The simplified assertion set; meaningless when decided is set. */
    std::vector<Term> assertions;
    /** Set when the fast paths decided the query without a solver. */
    std::optional<SatResult> decided;
    /** Individual rewrite rule firings (term- and set-level). */
    uint64_t rewrites = 0;
    /** Variables eliminated by equality propagation. */
    uint64_t eliminatedVars = 0;
};

/**
 * Bottom-up memoizing rewriter over one TermFactory's DAG.
 *
 * Not thread safe; use one Simplifier per worker (it holds references
 * into its factory, so it must not outlive it). The memo table persists
 * across calls — rewriting is pure, so a node's normal form never
 * changes.
 */
class Simplifier
{
  public:
    explicit Simplifier(TermFactory &factory) : tf_(factory) {}

    /**
     * Normal form of one term: operands rewritten first, then the rule
     * set applied to fixpoint at the root. Sort-preserving and, unlike
     * simplifyQuery's set-level passes, *model-preserving*: for every
     * assignment, eval(rewrite(t)) == eval(t) (the property tests check
     * exactly this against smt::Evaluator).
     */
    Term rewrite(Term term);

    /**
     * Whole-query simplification: flatten top-level conjunctions,
     * rewrite every assertion, eliminate definitional equalities by
     * substitution, re-conjoin through the factory, and decide
     * structurally trivial queries. Satisfiability-preserving.
     */
    SimplifyResult simplifyQuery(const std::vector<Term> &assertions);

    /** Rule firings since construction. */
    uint64_t rewriteCount() const { return rewrites_; }

  private:
    Term rewriteOperands(Term term);
    /** Applies root rules until none fire; counts into rewrites_. */
    Term applyRules(Term term);
    /** One pass of root rules; null when nothing fired. */
    Term applyRulesOnce(Term term);

    TermFactory &tf_;
    std::unordered_map<const TermNode *, Term> memo_;
    uint64_t rewrites_ = 0;
};

/**
 * Capture-free substitution of free variables by terms, rebuilt through
 * @p tf (so factory folds re-apply). Exposed for the simplifier tests.
 */
Term substituteVars(TermFactory &tf, Term term,
                    const std::unordered_map<std::string, Term> &map);

} // namespace keq::smt

#endif // KEQ_SMT_SIMPLIFIER_H
