#include "src/smt/wire.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/smt/term_factory.h"
#include "src/support/apint.h"

namespace keq::smt::wire {

namespace {

constexpr uint8_t kMaxKind = static_cast<uint8_t>(Kind::Store);
constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::Pong);

/** Fixed arity of each term kind (leaves are 0). */
unsigned
kindArity(Kind kind)
{
    switch (kind) {
    case Kind::BvConst:
    case Kind::BoolConst:
    case Kind::Var:
        return 0;
    case Kind::Not:
    case Kind::BvNot:
    case Kind::BvNeg:
    case Kind::ZExt:
    case Kind::SExt:
    case Kind::Extract:
        return 1;
    case Kind::Ite:
    case Kind::Store:
        return 3;
    default:
        return 2;
    }
}

bool
isBvBinOpKind(Kind kind)
{
    switch (kind) {
    case Kind::BvAdd:
    case Kind::BvSub:
    case Kind::BvMul:
    case Kind::BvUDiv:
    case Kind::BvSDiv:
    case Kind::BvURem:
    case Kind::BvSRem:
    case Kind::BvAnd:
    case Kind::BvOr:
    case Kind::BvXor:
    case Kind::BvShl:
    case Kind::BvLShr:
    case Kind::BvAShr:
        return true;
    default:
        return false;
    }
}

bool
isBvPredicateKind(Kind kind)
{
    return kind == Kind::BvUlt || kind == Kind::BvUle ||
           kind == Kind::BvSlt || kind == Kind::BvSle;
}

void
encodeSort(Encoder &enc, Sort sort)
{
    enc.u8(static_cast<uint8_t>(sort.kind()));
    enc.u8(static_cast<uint8_t>(sort.isBitVec() ? sort.width() : 0));
}

bool
decodeSort(Decoder &dec, Sort &out)
{
    uint8_t kind = 0, width = 0;
    if (!dec.u8(kind) || !dec.u8(width))
        return false;
    switch (static_cast<Sort::Kind>(kind)) {
    case Sort::Kind::Bool:
        if (width != 0)
            return dec.fail("Bool sort with nonzero width");
        out = Sort::boolSort();
        return true;
    case Sort::Kind::BitVec:
        if (width < 1 || width > 64)
            return dec.fail("bitvector width out of [1,64]");
        out = Sort::bitVec(width);
        return true;
    case Sort::Kind::MemArray:
        if (width != 0)
            return dec.fail("Mem sort with nonzero width");
        out = Sort::memArray();
        return true;
    }
    return dec.fail("unknown sort kind");
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
    case FrameType::Ready:
        return "ready";
    case FrameType::Heartbeat:
        return "heartbeat";
    case FrameType::Result:
        return "result";
    case FrameType::Error:
        return "error";
    case FrameType::Reset:
        return "reset";
    case FrameType::Query:
        return "query";
    case FrameType::Shutdown:
        return "shutdown";
    case FrameType::Cancel:
        return "cancel";
    case FrameType::ClientHello:
        return "client-hello";
    case FrameType::SubmitJob:
        return "submit-job";
    case FrameType::JobStatus:
        return "job-status";
    case FrameType::ServerHello:
        return "server-hello";
    case FrameType::HelloReject:
        return "hello-reject";
    case FrameType::JobVerdict:
        return "job-verdict";
    case FrameType::Busy:
        return "busy";
    case FrameType::Ping:
        return "ping";
    case FrameType::Pong:
        return "pong";
    }
    return "?";
}

// --- Encoder ------------------------------------------------------------

void
Encoder::u32(uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        u8(static_cast<uint8_t>(value >> shift));
}

void
Encoder::u64(uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        u8(static_cast<uint8_t>(value >> shift));
}

void
Encoder::f64(double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    u64(bits);
}

void
Encoder::varuint(uint64_t value)
{
    while (value >= 0x80) {
        u8(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    u8(static_cast<uint8_t>(value));
}

void
Encoder::str(const std::string &value)
{
    varuint(value.size());
    bytes_.append(value);
}

// --- Decoder ------------------------------------------------------------

bool
Decoder::fail(const std::string &why)
{
    if (error_.empty())
        error_ = why;
    return false;
}

bool
Decoder::u8(uint8_t &out)
{
    if (!ok())
        return false;
    if (pos_ >= bytes_->size())
        return fail("truncated payload");
    out = static_cast<uint8_t>((*bytes_)[pos_++]);
    return true;
}

bool
Decoder::u32(uint32_t &out)
{
    out = 0;
    for (int shift = 0; shift < 32; shift += 8) {
        uint8_t byte = 0;
        if (!u8(byte))
            return false;
        out |= static_cast<uint32_t>(byte) << shift;
    }
    return true;
}

bool
Decoder::u64(uint64_t &out)
{
    out = 0;
    for (int shift = 0; shift < 64; shift += 8) {
        uint8_t byte = 0;
        if (!u8(byte))
            return false;
        out |= static_cast<uint64_t>(byte) << shift;
    }
    return true;
}

bool
Decoder::f64(double &out)
{
    uint64_t bits = 0;
    if (!u64(bits))
        return false;
    std::memcpy(&out, &bits, sizeof out);
    return true;
}

bool
Decoder::varuint(uint64_t &out)
{
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        uint8_t byte = 0;
        if (!u8(byte))
            return false;
        out |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return true;
    }
    return fail("overlong varuint");
}

bool
Decoder::str(std::string &out)
{
    uint64_t size = 0;
    if (!varuint(size))
        return false;
    if (size > bytes_->size() - pos_)
        return fail("string length past end of payload");
    out.assign(*bytes_, pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return true;
}

// --- Term codec ---------------------------------------------------------

void
encodeTerms(Encoder &enc, const std::vector<Term> &terms)
{
    // Collect the reachable DAG, then emit nodes in ascending id order —
    // a topological order (operand ids precede parent ids) that a fresh
    // factory reproduces, keeping relative ids and therefore commutative
    // canonicalization stable across the process boundary.
    std::vector<Term> nodes;
    std::unordered_map<uint64_t, uint64_t> indexOf; // id -> emitted slot
    std::vector<Term> stack;
    for (Term root : terms)
        if (!root.isNull())
            stack.push_back(root);
    while (!stack.empty()) {
        Term term = stack.back();
        stack.pop_back();
        if (indexOf.count(term.id()))
            continue;
        indexOf.emplace(term.id(), 0); // slot fixed after the sort
        nodes.push_back(term);
        for (size_t i = 0; i < term.numOperands(); ++i)
            stack.push_back(term.operand(i));
    }
    std::sort(nodes.begin(), nodes.end(),
              [](Term a, Term b) { return a.id() < b.id(); });
    for (size_t i = 0; i < nodes.size(); ++i)
        indexOf[nodes[i].id()] = i;

    enc.varuint(nodes.size());
    for (Term term : nodes) {
        enc.u8(static_cast<uint8_t>(term.kind()));
        encodeSort(enc, term.sort());
        switch (term.kind()) {
        case Kind::BvConst:
            enc.u64(term.bvValue().zext());
            break;
        case Kind::BoolConst:
            enc.u8(term.boolValue() ? 1 : 0);
            break;
        case Kind::Var:
            enc.str(term.varName());
            break;
        case Kind::Extract:
            enc.u8(static_cast<uint8_t>(term.extractHi()));
            enc.u8(static_cast<uint8_t>(term.extractLo()));
            break;
        default:
            break;
        }
        enc.varuint(term.numOperands());
        for (size_t i = 0; i < term.numOperands(); ++i)
            enc.varuint(indexOf[term.operand(i).id()]);
    }
    enc.varuint(terms.size());
    for (Term root : terms) {
        // Null roots never occur on the solver path; encode defensively
        // as a self-describing sentinel that decode rejects.
        enc.varuint(root.isNull() ? nodes.size() : indexOf[root.id()]);
    }
}

bool
decodeTerms(Decoder &dec, TermFactory &factory, VarSortContext *vars,
            std::vector<Term> &out)
{
    uint64_t nodeCount = 0;
    if (!dec.varuint(nodeCount))
        return false;
    // Each node costs >= 5 bytes on the wire; reject counts a torn
    // frame cannot possibly back before allocating anything.
    if (nodeCount > kMaxFramePayload / 5)
        return dec.fail("implausible node count");

    VarSortContext localVars;
    if (vars == nullptr)
        vars = &localVars;

    std::vector<Term> built;
    built.reserve(static_cast<size_t>(nodeCount));
    for (uint64_t n = 0; n < nodeCount; ++n) {
        uint8_t rawKind = 0;
        Sort sort = Sort::boolSort();
        if (!dec.u8(rawKind))
            return false;
        if (rawKind > kMaxKind)
            return dec.fail("unknown term kind");
        Kind kind = static_cast<Kind>(rawKind);
        if (!decodeSort(dec, sort))
            return false;

        uint64_t bvBits = 0;
        uint8_t boolBits = 0, hi = 0, lo = 0;
        std::string name;
        switch (kind) {
        case Kind::BvConst:
            if (!dec.u64(bvBits))
                return false;
            break;
        case Kind::BoolConst:
            if (!dec.u8(boolBits))
                return false;
            break;
        case Kind::Var:
            if (!dec.str(name))
                return false;
            break;
        case Kind::Extract:
            if (!dec.u8(hi) || !dec.u8(lo))
                return false;
            break;
        default:
            break;
        }

        uint64_t arity = 0;
        if (!dec.varuint(arity))
            return false;
        if (arity != kindArity(kind))
            return dec.fail(std::string("bad arity for ") +
                            kindName(kind));
        Term ops[3];
        for (uint64_t i = 0; i < arity; ++i) {
            uint64_t ref = 0;
            if (!dec.varuint(ref))
                return false;
            if (ref >= built.size())
                return dec.fail("operand reference not topological");
            ops[i] = built[static_cast<size_t>(ref)];
        }

        // Validate every TermFactory precondition before constructing;
        // corrupt bytes must decode-fail, not trip a KEQ_ASSERT.
        auto wantBool = [&](Term t) { return t.sort().isBool(); };
        auto wantBv = [&](Term t) { return t.sort().isBitVec(); };
        Term term;
        switch (kind) {
        case Kind::BvConst:
            if (!sort.isBitVec())
                return dec.fail("BvConst with non-bitvector sort");
            if (support::ApInt(sort.width(), bvBits).zext() != bvBits)
                return dec.fail("BvConst bits exceed declared width");
            term = factory.bvConst(
                support::ApInt(sort.width(), bvBits));
            break;
        case Kind::BoolConst:
            if (!sort.isBool() || boolBits > 1)
                return dec.fail("malformed BoolConst");
            term = factory.boolConst(boolBits != 0);
            break;
        case Kind::Var: {
            if (name.empty())
                return dec.fail("variable with empty name");
            auto [it, inserted] = vars->emplace(name, sort);
            if (!inserted && !(it->second == sort))
                return dec.fail("variable '" + name +
                                "' redeclared at a different sort");
            term = factory.var(name, sort);
            break;
        }
        case Kind::Not:
            if (!wantBool(ops[0]))
                return dec.fail("Not of non-boolean");
            term = factory.mkNot(ops[0]);
            break;
        case Kind::And:
        case Kind::Or:
        case Kind::Implies:
        case Kind::Iff: {
            if (!wantBool(ops[0]) || !wantBool(ops[1]))
                return dec.fail("boolean connective of non-booleans");
            if (kind == Kind::And)
                term = factory.mkAnd(ops[0], ops[1]);
            else if (kind == Kind::Or)
                term = factory.mkOr(ops[0], ops[1]);
            else if (kind == Kind::Implies)
                term = factory.mkImplies(ops[0], ops[1]);
            else
                term = factory.mkIff(ops[0], ops[1]);
            break;
        }
        case Kind::Ite:
            if (!wantBool(ops[0]) || !(ops[1].sort() == ops[2].sort()))
                return dec.fail("malformed Ite");
            term = factory.mkIte(ops[0], ops[1], ops[2]);
            break;
        case Kind::Eq:
            if (!(ops[0].sort() == ops[1].sort()))
                return dec.fail("Eq across different sorts");
            term = factory.mkEq(ops[0], ops[1]);
            break;
        case Kind::ZExt:
        case Kind::SExt:
            if (!wantBv(ops[0]) || !sort.isBitVec() ||
                sort.width() < ops[0].sort().width())
                return dec.fail("narrowing extension");
            term = kind == Kind::ZExt
                       ? factory.zext(ops[0], sort.width())
                       : factory.sext(ops[0], sort.width());
            break;
        case Kind::Extract:
            if (!wantBv(ops[0]) || hi < lo ||
                hi >= ops[0].sort().width())
                return dec.fail("extract bounds out of range");
            term = factory.extract(ops[0], hi, lo);
            break;
        case Kind::Concat:
            if (!wantBv(ops[0]) || !wantBv(ops[1]) ||
                ops[0].sort().width() + ops[1].sort().width() > 64)
                return dec.fail("concat wider than 64 bits");
            term = factory.concat(ops[0], ops[1]);
            break;
        case Kind::Select:
            if (!ops[0].sort().isMemArray() || !wantBv(ops[1]) ||
                ops[1].sort().width() != 64)
                return dec.fail("malformed Select");
            term = factory.select(ops[0], ops[1]);
            break;
        case Kind::Store:
            if (!ops[0].sort().isMemArray() || !wantBv(ops[1]) ||
                ops[1].sort().width() != 64 || !wantBv(ops[2]) ||
                ops[2].sort().width() != 8)
                return dec.fail("malformed Store");
            term = factory.store(ops[0], ops[1], ops[2]);
            break;
        default:
            if (isBvBinOpKind(kind)) {
                if (!wantBv(ops[0]) ||
                    !(ops[0].sort() == ops[1].sort()))
                    return dec.fail("bitvector op width mismatch");
                term = factory.bvBinOp(kind, ops[0], ops[1]);
            } else if (isBvPredicateKind(kind)) {
                if (!wantBv(ops[0]) ||
                    !(ops[0].sort() == ops[1].sort()))
                    return dec.fail("predicate width mismatch");
                term = factory.bvPredicate(kind, ops[0], ops[1]);
            } else if (kind == Kind::BvNot || kind == Kind::BvNeg) {
                if (!wantBv(ops[0]))
                    return dec.fail("bitvector op of non-bitvector");
                term = kind == Kind::BvNot ? factory.bvNot(ops[0])
                                           : factory.bvNeg(ops[0]);
            } else {
                return dec.fail("unhandled term kind");
            }
        }
        if (!(term.sort() == sort))
            return dec.fail("constructed sort disagrees with declared");
        built.push_back(term);
    }

    uint64_t rootCount = 0;
    if (!dec.varuint(rootCount))
        return false;
    if (rootCount > kMaxFramePayload)
        return dec.fail("implausible root count");
    out.clear();
    out.reserve(static_cast<size_t>(rootCount));
    for (uint64_t i = 0; i < rootCount; ++i) {
        uint64_t ref = 0;
        if (!dec.varuint(ref))
            return false;
        if (ref >= built.size())
            return dec.fail("root reference out of range");
        out.push_back(built[static_cast<size_t>(ref)]);
    }
    return true;
}

// --- Stats codec --------------------------------------------------------

namespace {

/**
 * Every SolverStats field in declaration order. Adding a field here
 * (and in solver.h) changes the wire layout: bump kProtocolVersion.
 */
template <typename Stats, typename Fn>
void
forEachStatsField(Stats &stats, Fn &&fn)
{
    fn(stats.queries);
    fn(stats.sat);
    fn(stats.unsat);
    fn(stats.unknown);
    fn(stats.cacheHits);
    fn(stats.cacheMisses);
    fn(stats.cacheEvictions);
    fn(stats.rewriteResolved);
    fn(stats.rewriteApplications);
    fn(stats.sliceResolved);
    fn(stats.slicedAssertions);
    fn(stats.incrementalReused);
    fn(stats.incrementalSolves);
    fn(stats.incrementalFallbacks);
    fn(stats.coldSolves);
    fn(stats.watchdogInterrupts);
    fn(stats.guardedRetries);
    fn(stats.guardedEscalations);
    fn(stats.escalatedResolved);
    fn(stats.solverCrashes);
    fn(stats.faultsInjected);
    fn(stats.workerCrashes);
    fn(stats.workerRestarts);
    fn(stats.heartbeatTimeouts);
    fn(stats.wireBytesSent);
    fn(stats.wireBytesReceived);
    fn(stats.batchedQueries);
    for (size_t i = 0; i < SolverStats::kPortfolioMaxLanes; ++i)
        fn(stats.portfolioWins[i]);
    fn(stats.portfolioCancellations);
    fn(stats.crossLaneDisagreements);
}

constexpr uint64_t kStatsFieldCount =
    33; // 27 scalars + kPortfolioMaxLanes win slots + 2

} // namespace

void
encodeStats(Encoder &enc, const SolverStats &stats)
{
    enc.varuint(kStatsFieldCount);
    forEachStatsField(stats,
                      [&](const uint64_t &field) { enc.u64(field); });
    enc.f64(stats.totalSeconds);
}

bool
decodeStats(Decoder &dec, SolverStats &out)
{
    uint64_t fields = 0;
    if (!dec.varuint(fields))
        return false;
    if (fields != kStatsFieldCount)
        return dec.fail("stats field count mismatch (version skew?)");
    bool allRead = true;
    forEachStatsField(out, [&](uint64_t &field) {
        allRead = allRead && dec.u64(field);
    });
    return allRead && dec.f64(out.totalSeconds);
}

// --- Typed frames -------------------------------------------------------

std::string
frameBytes(FrameType type, const std::string &payload)
{
    Encoder enc;
    enc.u32(static_cast<uint32_t>(payload.size() + 1));
    enc.u8(static_cast<uint8_t>(type));
    std::string bytes = enc.take();
    bytes += payload;
    return bytes;
}

bool
splitFrame(const std::string &payload, FrameType &type,
           std::string &body)
{
    if (payload.empty())
        return false;
    uint8_t raw = static_cast<uint8_t>(payload[0]);
    if (raw < 1 || raw > kMaxFrameType)
        return false;
    type = static_cast<FrameType>(raw);
    body = payload.substr(1);
    return true;
}

std::string
encodeReady(const ReadyFrame &frame)
{
    Encoder enc;
    enc.u32(frame.protocolVersion);
    enc.u64(frame.pid);
    return frameBytes(FrameType::Ready, enc.take());
}

std::string
encodeHeartbeat(const HeartbeatFrame &frame)
{
    Encoder enc;
    enc.u64(frame.querySeq);
    enc.u64(frame.rssKb);
    return frameBytes(FrameType::Heartbeat, enc.take());
}

std::string
encodeReset(const ResetFrame &frame)
{
    Encoder enc;
    enc.u32(frame.timeoutMs);
    enc.u32(frame.memoryBudgetMb);
    enc.u8(frame.useCache);
    enc.u8(frame.useGuard);
    enc.str(frame.strategy);
    return frameBytes(FrameType::Reset, enc.take());
}

std::string
encodeQuery(const QueryFrame &frame)
{
    Encoder enc;
    enc.u64(frame.seq);
    enc.u32(frame.timeoutMs);
    encodeTerms(enc, frame.assertions);
    return frameBytes(FrameType::Query, enc.take());
}

std::string
encodeResult(const ResultFrame &frame)
{
    Encoder enc;
    enc.u64(frame.seq);
    enc.u8(static_cast<uint8_t>(frame.result));
    enc.u8(static_cast<uint8_t>(frame.failureKind));
    enc.str(frame.unknownReason);
    encodeStats(enc, frame.stats);
    return frameBytes(FrameType::Result, enc.take());
}

std::string
encodeError(const std::string &message)
{
    Encoder enc;
    enc.str(message);
    return frameBytes(FrameType::Error, enc.take());
}

std::string
encodeShutdown()
{
    return frameBytes(FrameType::Shutdown, std::string());
}

std::string
encodeCancel(const CancelFrame &frame)
{
    Encoder enc;
    enc.u64(frame.seq);
    return frameBytes(FrameType::Cancel, enc.take());
}

// --- Validation-service frames ------------------------------------------

namespace {

void
encodeJobOptionsBody(Encoder &enc, const JobOptionsFrame &options)
{
    enc.u8(options.mergeStores);
    enc.u8(options.foldExtLoad);
    enc.u8(options.bug);
    enc.u8(options.refinementOnly);
    enc.u8(options.positiveForm);
    enc.u8(options.crudeLiveness);
    enc.u8(options.batchDischarge);
    enc.u32(options.smtTimeoutMs);
    enc.f64(options.wallBudgetSeconds);
    enc.u64(options.specSizeBudget);
}

bool
decodeJobOptionsBody(Decoder &dec, JobOptionsFrame &out)
{
    if (!(dec.u8(out.mergeStores) && dec.u8(out.foldExtLoad) &&
          dec.u8(out.bug) && dec.u8(out.refinementOnly) &&
          dec.u8(out.positiveForm) && dec.u8(out.crudeLiveness) &&
          dec.u8(out.batchDischarge) && dec.u32(out.smtTimeoutMs) &&
          dec.f64(out.wallBudgetSeconds) &&
          dec.u64(out.specSizeBudget)))
        return false;
    if (out.mergeStores > 1 || out.foldExtLoad > 1 ||
        out.refinementOnly > 1 || out.positiveForm > 1 ||
        out.crudeLiveness > 1 || out.batchDischarge > 1)
        return dec.fail("job-option flag not a boolean");
    if (out.bug > 2)
        return dec.fail("unknown isel bug discriminant");
    return true;
}

} // namespace

std::string
encodeClientHello(const ClientHelloFrame &frame)
{
    Encoder enc;
    enc.u32(frame.magic);
    enc.u32(frame.protocolVersion);
    enc.str(frame.clientName);
    return frameBytes(FrameType::ClientHello, enc.take());
}

std::string
encodeServerHello(const ServerHelloFrame &frame)
{
    Encoder enc;
    enc.u32(frame.protocolVersion);
    enc.u64(frame.pid);
    return frameBytes(FrameType::ServerHello, enc.take());
}

std::string
encodeHelloReject(const HelloRejectFrame &frame)
{
    Encoder enc;
    enc.u32(frame.supportedVersion);
    enc.str(frame.message);
    return frameBytes(FrameType::HelloReject, enc.take());
}

std::string
encodeSubmitJob(const SubmitJobFrame &frame, uint32_t version)
{
    Encoder enc;
    enc.u64(frame.jobId);
    enc.str(frame.function);
    enc.str(frame.moduleText);
    encodeJobOptionsBody(enc, frame.options);
    // v5 appends the job fingerprint; the v4 form is a strict prefix,
    // so the decoder distinguishes them by atEnd, not by negotiation
    // side channels.
    if (version >= 5)
        enc.u64(frame.fingerprint);
    return frameBytes(FrameType::SubmitJob, enc.take());
}

std::string
encodeJobStatus(const JobStatusFrame &frame, uint32_t version)
{
    Encoder enc;
    enc.u64(frame.queuedJobs);
    enc.u64(frame.runningJobs);
    enc.u64(frame.completedJobs);
    enc.u64(frame.storeEntries);
    enc.u64(frame.activeClients);
    enc.u64(frame.busyRejects);
    enc.u64(frame.storeBytes);
    enc.u64(frame.storeEvictions);
    enc.u64(frame.storeQuarantined);
    enc.u64(frame.auditMismatches);
    enc.u64(frame.quotaRejects);
    enc.u8(frame.draining);
    if (version >= 5) {
        enc.u64(frame.dedupHits);
        enc.u64(frame.acceptedUnix);
        enc.u64(frame.acceptedTcp);
    }
    return frameBytes(FrameType::JobStatus, enc.take());
}

std::string
encodeJobVerdict(const JobVerdictFrame &frame)
{
    Encoder enc;
    enc.u64(frame.jobId);
    enc.str(frame.report);
    encodeStats(enc, frame.stats);
    return frameBytes(FrameType::JobVerdict, enc.take());
}

std::string
encodeBusy(const BusyFrame &frame)
{
    Encoder enc;
    enc.u64(frame.jobId);
    enc.u32(frame.inFlightLimit);
    return frameBytes(FrameType::Busy, enc.take());
}

std::string
encodePing(const PingFrame &frame)
{
    Encoder enc;
    enc.u64(frame.nonce);
    return frameBytes(FrameType::Ping, enc.take());
}

std::string
encodePong(const PongFrame &frame)
{
    Encoder enc;
    enc.u64(frame.nonce);
    return frameBytes(FrameType::Pong, enc.take());
}

namespace {

bool
finish(Decoder &dec, std::string &error)
{
    if (!dec.ok()) {
        error = dec.error();
        return false;
    }
    if (!dec.atEnd()) {
        error = "trailing bytes after frame body";
        return false;
    }
    return true;
}

} // namespace

bool
decodeReady(const std::string &body, ReadyFrame &out, std::string &error)
{
    Decoder dec(body);
    if (!dec.u32(out.protocolVersion) || !dec.u64(out.pid))
        return finish(dec, error);
    return finish(dec, error);
}

bool
decodeHeartbeat(const std::string &body, HeartbeatFrame &out,
                std::string &error)
{
    Decoder dec(body);
    dec.u64(out.querySeq) && dec.u64(out.rssKb);
    return finish(dec, error);
}

bool
decodeReset(const std::string &body, ResetFrame &out, std::string &error)
{
    Decoder dec(body);
    dec.u32(out.timeoutMs) && dec.u32(out.memoryBudgetMb) &&
        dec.u8(out.useCache) && dec.u8(out.useGuard) &&
        dec.str(out.strategy);
    return finish(dec, error);
}

bool
decodeQuery(const std::string &body, TermFactory &factory,
            VarSortContext *vars, QueryFrame &out, std::string &error)
{
    Decoder dec(body);
    if (dec.u64(out.seq) && dec.u32(out.timeoutMs))
        decodeTerms(dec, factory, vars, out.assertions);
    return finish(dec, error);
}

bool
decodeResult(const std::string &body, ResultFrame &out,
             std::string &error)
{
    Decoder dec(body);
    uint8_t sat = 0, kind = 0;
    if (dec.u64(out.seq) && dec.u8(sat) && dec.u8(kind) &&
        dec.str(out.unknownReason) && decodeStats(dec, out.stats)) {
        if (sat > static_cast<uint8_t>(SatResult::Unknown))
            dec.fail("bad SatResult discriminant");
        else if (kind >
                 static_cast<uint8_t>(FailureKind::PortfolioDisagreement))
            dec.fail("bad FailureKind discriminant");
        else {
            out.result = static_cast<SatResult>(sat);
            out.failureKind = static_cast<FailureKind>(kind);
        }
    }
    return finish(dec, error);
}

bool
decodeError(const std::string &body, std::string &message)
{
    Decoder dec(body);
    std::string error;
    return dec.str(message) && finish(dec, error);
}

bool
decodeCancel(const std::string &body, CancelFrame &out,
             std::string &error)
{
    Decoder dec(body);
    dec.u64(out.seq);
    return finish(dec, error);
}

bool
decodeClientHello(const std::string &body, ClientHelloFrame &out,
                  std::string &error)
{
    Decoder dec(body);
    dec.u32(out.magic) && dec.u32(out.protocolVersion) &&
        dec.str(out.clientName);
    return finish(dec, error);
}

bool
decodeServerHello(const std::string &body, ServerHelloFrame &out,
                  std::string &error)
{
    Decoder dec(body);
    dec.u32(out.protocolVersion) && dec.u64(out.pid);
    return finish(dec, error);
}

bool
decodeHelloReject(const std::string &body, HelloRejectFrame &out,
                  std::string &error)
{
    Decoder dec(body);
    dec.u32(out.supportedVersion) && dec.str(out.message);
    return finish(dec, error);
}

bool
decodeSubmitJob(const std::string &body, SubmitJobFrame &out,
                std::string &error)
{
    Decoder dec(body);
    if (dec.u64(out.jobId) && dec.str(out.function) &&
        dec.str(out.moduleText))
        decodeJobOptionsBody(dec, out.options);
    // v4 bodies end here; a v5 body carries exactly one trailing u64
    // fingerprint. Anything else (a torn fingerprint, extra bytes) is
    // corrupt and fails in finish().
    if (dec.ok() && !dec.atEnd())
        dec.u64(out.fingerprint);
    if (dec.ok() && out.function.empty())
        dec.fail("job with empty function name");
    return finish(dec, error);
}

bool
decodeJobStatus(const std::string &body, JobStatusFrame &out,
                std::string &error)
{
    Decoder dec(body);
    dec.u64(out.queuedJobs) && dec.u64(out.runningJobs) &&
        dec.u64(out.completedJobs) && dec.u64(out.storeEntries) &&
        dec.u64(out.activeClients) && dec.u64(out.busyRejects) &&
        dec.u64(out.storeBytes) && dec.u64(out.storeEvictions) &&
        dec.u64(out.storeQuarantined) && dec.u64(out.auditMismatches) &&
        dec.u64(out.quotaRejects) && dec.u8(out.draining);
    // v5 appends three counters as one all-or-nothing group.
    if (dec.ok() && !dec.atEnd())
        dec.u64(out.dedupHits) && dec.u64(out.acceptedUnix) &&
            dec.u64(out.acceptedTcp);
    return finish(dec, error);
}

bool
decodeJobVerdict(const std::string &body, JobVerdictFrame &out,
                 std::string &error)
{
    Decoder dec(body);
    if (dec.u64(out.jobId) && dec.str(out.report))
        decodeStats(dec, out.stats);
    return finish(dec, error);
}

bool
decodeBusy(const std::string &body, BusyFrame &out, std::string &error)
{
    Decoder dec(body);
    dec.u64(out.jobId) && dec.u32(out.inFlightLimit);
    return finish(dec, error);
}

bool
decodePing(const std::string &body, PingFrame &out, std::string &error)
{
    Decoder dec(body);
    dec.u64(out.nonce);
    return finish(dec, error);
}

bool
decodePong(const std::string &body, PongFrame &out, std::string &error)
{
    Decoder dec(body);
    dec.u64(out.nonce);
    return finish(dec, error);
}

} // namespace keq::smt::wire
