#ifndef KEQ_SMT_CACHING_SOLVER_H
#define KEQ_SMT_CACHING_SOLVER_H

/**
 * @file
 * Memoizing decorator around any Solver.
 *
 * Cut-bisimulation checking re-proves near-identical implications at every
 * synchronization point, and corpus functions repeat whole query shapes —
 * yet each Z3Solver::checkSat cold-starts a fresh z3::solver. The
 * CachingSolver normalizes every query to a canonical key (sorted, deduped
 * assertion fingerprints) and memoizes definitive Sat/Unsat verdicts, so
 * repeated queries are answered without touching the backend.
 *
 * Soundness:
 *  - Keys are exact structural fingerprints (a linearized serialization of
 *    the term DAG), not lossy hashes, and are independent of the owning
 *    TermFactory — a cache may be shared across workers that each own a
 *    private factory (hash-consing stays thread-local; only the sharded
 *    cache map takes locks).
 *  - Sat/Unsat are definitive regardless of timeouts, so caching them can
 *    never change a verdict. Unknown results (timeouts, incompleteness)
 *    are NEVER cached: a later query with a larger budget must get a fresh
 *    chance to resolve.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/simplifier.h"
#include "src/smt/slicer.h"
#include "src/smt/solver.h"
#include "src/smt/term_factory.h"

namespace keq::smt {

/** Snapshot of one cache's counters (aggregated over shards). */
struct CacheStats
{
    uint64_t hits = 0;      ///< lookups answered by a stored verdict
    uint64_t misses = 0;    ///< lookups that found no stored verdict
    uint64_t modelHits = 0; ///< misses answered Sat by a reused model
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;     ///< accounted size of resident entries

    // Trust-but-verify accounting. Preloaded entries arrive from a
    // persisted journal and are "unaudited" until an independent
    // recheck confirms them; a mismatch quarantines the entry (it is
    // removed and the query re-solved fresh).
    uint64_t preloaded = 0;       ///< entries inserted as unaudited
    uint64_t auditPasses = 0;     ///< audits that confirmed the verdict
    uint64_t auditMismatches = 0; ///< audits that contradicted it
    uint64_t quarantined = 0;     ///< entries removed by quarantine()

    /** Fraction of lookups that avoided the backend entirely. */
    double
    hitRate() const
    {
        uint64_t lookups = hits + misses;
        return lookups == 0
                   ? 0.0
                   : static_cast<double>(hits + modelHits) /
                         static_cast<double>(lookups);
    }

    /** Queries that actually reached the backing solver. */
    uint64_t
    backendCalls() const
    {
        return misses - modelHits;
    }
};

/**
 * Thread-safe verdict store keyed by canonical query fingerprints.
 *
 * Sharded by key hash: concurrent workers contend only when they touch
 * the same shard, and each shard holds its mutex just for one map
 * operation — the solver call itself never runs under a lock.
 *
 * Eviction is least-recently-used per shard, bounded both by an entry
 * count and by an accounted byte budget (keys dominate the footprint;
 * each entry is charged its key size plus a fixed node overhead), so a
 * week-long campaign cannot grow the cache without bound. The
 * most-recently-inserted entry is never evicted, so even a query whose
 * key alone exceeds the budget still caches once.
 */
class QueryCache
{
  public:
    /** Default byte budget (~512 MB); --solver-cache-mb overrides. */
    static constexpr size_t kDefaultMaxBytes = size_t(512) << 20;
    /** Per-entry bookkeeping charge on top of the key bytes. */
    static constexpr size_t kEntryOverheadBytes = 128;

    /**
     * @param max_entries_per_shard Entry-count threshold (0 = none).
     * @param max_bytes Byte budget across all shards (0 = none).
     */
    explicit QueryCache(size_t max_entries_per_shard = 1 << 16,
                        size_t max_bytes = kDefaultMaxBytes);

    /**
     * @param unaudited When non-null, set to whether the entry was
     *                  preloaded from a persisted journal and has not
     *                  yet survived a trust-but-verify audit.
     */
    std::optional<SatResult> lookup(const std::string &key,
                                    bool *unaudited = nullptr);

    /**
     * Stores a definitive verdict; Unknown is ignored by contract.
     * @return Number of LRU entries evicted to make room.
     */
    size_t insert(const std::string &key, SatResult result);

    /**
     * Like insert(), but marks the entry unaudited and never fires the
     * insert listener: the caller (the daemon's verdict store) already
     * has the record, and the verdict is a month-old *claim* until an
     * audit replays it. A key that is already resident is left as-is.
     */
    size_t insertPreloaded(const std::string &key, SatResult result);

    /** Clears the unaudited flag after a recheck confirmed the entry. */
    void markAudited(const std::string &key);

    /**
     * Removes an entry whose audit recheck contradicted it. The next
     * lookup misses and the query is solved fresh.
     * @return true when the key was resident.
     */
    bool quarantine(const std::string &key);

    /**
     * Model pool for Sat-by-evaluation reuse: retains the most recent
     * satisfying assignments (a bounded ring). A pooled model answers a
     * *new* query only after the CachingSolver re-verifies it by
     * concrete evaluation, so stale or mismatched models cost a lookup,
     * never a wrong verdict.
     */
    void addModel(std::shared_ptr<const Assignment> model);
    std::vector<std::shared_ptr<const Assignment>> models() const;
    /** Records a miss that a pooled model answered (CacheStats). */
    void noteModelHit();

    CacheStats stats() const;
    void clear();

    /**
     * Observer invoked (outside any shard lock) for every *fresh*
     * insert — touches of an existing key do not fire. The validation
     * daemon subscribes its cross-run verdict store here so every new
     * verdict is journaled the moment it is memoized. Set before the
     * cache is shared across threads; the listener itself must be
     * thread-safe.
     */
    using InsertListener =
        std::function<void(const std::string &, SatResult)>;
    void setInsertListener(InsertListener listener);

  private:
    static constexpr size_t kShards = 16;
    static constexpr size_t kMaxModels = 64;

    struct Entry
    {
        std::string key;
        SatResult result;
        /** Preloaded from a journal and not yet audit-confirmed. */
        bool unaudited = false;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        /** LRU order, front = most recently used; owns the keys. */
        std::list<Entry> lru;
        /** Views into lru's keys; list nodes never move. */
        std::unordered_map<std::string_view, std::list<Entry>::iterator>
            map;
        uint64_t bytes = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t preloaded = 0;
        uint64_t auditPasses = 0;
        uint64_t auditMismatches = 0;
        uint64_t quarantined = 0;
    };

    static size_t entryBytes(const std::string &key)
    {
        return key.size() + kEntryOverheadBytes;
    }

    Shard &shardFor(const std::string &key);
    size_t insertImpl(const std::string &key, SatResult result,
                      bool preloaded);

    size_t maxPerShard_;
    size_t maxBytesPerShard_;
    std::array<Shard, kShards> shards_;
    InsertListener insertListener_;

    mutable std::mutex modelMutex_;
    std::vector<std::shared_ptr<const Assignment>> models_;
    size_t modelNext_ = 0;
    uint64_t modelHits_ = 0;
};

/**
 * Solver decorator running the query optimization stack in front of the
 * backend: simplify -> slice -> cache -> backend.
 *
 * Stages, tried in order (each may answer without the next):
 *  1. rewrite engine — the Simplifier normalizes the query and decides
 *     structurally trivial ones (rewrites to `false` => Unsat, rewrites
 *     away => Sat);
 *  2. cone-of-influence slicer — variable-disjoint cones with a
 *     verified witness are pruned; a fully discharged query is Sat;
 *  3. verdict store — exact canonical-key match on the *reduced* query
 *     returns the stored Sat/Unsat;
 *  4. model reuse — on a key miss, recent satisfying assignments from
 *     the pool are evaluated against the query (memoized concrete
 *     evaluation, microseconds); if one satisfies every assertion the
 *     query is Sat by construction, no solver needed. This pays off on
 *     path-feasibility checks, which dominate Sat traffic and rarely
 *     repeat exactly but are usually satisfied by a neighboring path's
 *     model.
 * Simplification and slicing also shrink what stages 3-4 fingerprint
 * and what the backend must solve, so they speed up misses too.
 *
 * Stats contract (relied on by the checker, which reads query *deltas*):
 * `queries` counts every checkSat call whether or not it hit, and
 * sat/unsat/unknown count returned results — so a cached run reports the
 * same query/verdict counts as an uncached one and only totalSeconds
 * (backend time actually spent) shrinks. Every query is resolved by
 * exactly one stage:
 *   rewriteResolved + sliceResolved + cacheHits + cacheMisses == queries
 * where cacheHits counts queries answered by the verdict store or a
 * reused model, and cacheMisses counts queries that reached the
 * backend. The incremental-backend counters (incrementalReused,
 * incrementalSolves, incrementalFallbacks, coldSolves) are folded in
 * from the backend's own stats per call, so one SolverStats describes
 * the whole stack.
 */
/**
 * Preprocessing configuration for CachingSolver. Both stages run before
 * the cache by default; tests that assert exact backend-call counts
 * construct with `{false, false}` to pin the PR 1 cache-only behavior.
 */
struct CachingSolverOptions
{
    /** Run the Simplifier (rewrite + equality propagation) first. */
    bool simplify = true;
    /** Run the cone-of-influence Slicer on the simplified set. */
    bool slice = true;

    // --- Trust-but-verify auditing of warm (preloaded) hits. --------
    //
    // A verdict replayed from a month-old journal is a cached *claim*.
    // With auditRate > 0, a deterministic sample of unaudited hits is
    // independently re-checked before being served: a stored Sat by
    // Evaluator model replay (cheap, a concrete-evaluation *proof*),
    // falling back to a pristine solver; a stored Unsat by a pristine
    // solver recheck. A confirming recheck marks the entry audited; a
    // contradicting one quarantines it and the query falls through to
    // the normal miss path (model reuse, then backend) — so the served
    // verdict is byte-identical to what a daemonless run computes. An
    // Unknown recheck is inconclusive: the stored verdict is served
    // and the entry stays unaudited for a later, luckier sample.

    /** Fraction of unaudited hits to re-check (0 = off, 1 = all). */
    double auditRate = 0.0;
    /** Salt for the deterministic per-key sampling decision. */
    uint64_t auditSeed = 0;
    /**
     * Builds the pristine re-check solver (typically a fresh
     * Z3Solver). Required for auditing stored-Unsat entries and for
     * Sat entries model replay fails to confirm; when null those
     * audits are inconclusive.
     */
    std::function<std::unique_ptr<Solver>(TermFactory &)>
        auditSolverFactory;
    /**
     * Invoked (outside any cache lock) when an audit contradicts a
     * stored verdict, after the entry is quarantined and before the
     * fresh solve. The daemon hooks this to tombstone the journal
     * record and log a typed FailureKind::AuditMismatch.
     */
    std::function<void(const std::string &key, SatResult stored,
                       SatResult recheck)>
        onAuditMismatch;
};

class CachingSolver : public Solver
{
  public:
    using Options = CachingSolverOptions;

    /**
     * @param factory Factory owning the terms this solver will receive.
     * @param backend Solver that misses fall through to; must outlive
     *                this decorator.
     * @param cache Verdict store, possibly shared with other workers'
     *              CachingSolvers.
     * @param options Which preprocessing stages to run before the cache.
     */
    CachingSolver(TermFactory &factory, Solver &backend,
                  std::shared_ptr<QueryCache> cache,
                  Options options = Options());

    SatResult checkSat(const std::vector<Term> &assertions) override;
    void setTimeoutMs(unsigned timeout_ms) override;
    void setMemoryBudgetMb(unsigned budget_mb) override;
    void interruptQuery() override;
    std::string lastUnknownReason() const override;
    FailureKind lastFailureKind() const override;
    const SolverStats &stats() const override { return stats_; }

    const std::shared_ptr<QueryCache> &
    cache() const
    {
        return cache_;
    }

    /**
     * Canonical fingerprint of a query: per-assertion structural
     * serializations, sorted and deduplicated. Assertion order and
     * duplicates never change the key (conjunction is commutative,
     * associative and idempotent). Exposed for the property tests.
     */
    static std::string normalizedKey(const std::vector<Term> &assertions);

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    /**
     * Tries to answer @p assertions without the backend: first with
     * pooled models, then with deterministic random probes (seeded from
     * @p key). Returns Sat when some assignment provably satisfies
     * every assertion under concrete evaluation; nullopt otherwise
     * (never Unsat — failing to find a model proves nothing).
     */
    std::optional<SatResult>
    tryModelReuse(const std::vector<Term> &assertions,
                  const std::string &key);

    /** Deterministic per-key audit sampling decision. */
    bool shouldAudit(const std::string &key) const;

    /** What an audit recheck concluded about a stored verdict. */
    enum class AuditOutcome { Pass, Mismatch, Inconclusive };

    /**
     * Independently re-checks @p stored for @p assertions: Sat via
     * model replay then pristine solver, Unsat via pristine solver.
     */
    AuditOutcome auditCachedVerdict(const std::vector<Term> &assertions,
                                    const std::string &key,
                                    SatResult stored);

    /** Tallies a returned verdict into sat/unsat/unknown. */
    void countVerdict(SatResult result);

    TermFactory &factory_;
    Solver &backend_;
    std::shared_ptr<QueryCache> cache_;
    Options options_;
    Simplifier simplifier_;
    Slicer slicer_;
    SolverStats stats_;
};

} // namespace keq::smt

#endif // KEQ_SMT_CACHING_SOLVER_H
