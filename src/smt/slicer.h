#ifndef KEQ_SMT_SLICER_H
#define KEQ_SMT_SLICER_H

/**
 * @file
 * Cone-of-influence slicer for SMT queries (stage 2 of the optimization
 * stack).
 *
 * A checker query is a conjunction mixing the actual proof goal with a
 * long tail of side constraints (definitional equalities, path-condition
 * fragments of unrelated registers). The slicer computes the cones of
 * influence — the fixpoint partition of the assertion set under "shares
 * a free variable", walked over the hash-consed term DAG — and then
 * discharges whole cones that are independently satisfiable by a cheap
 * deterministic witness search (concrete evaluation of a few seeded
 * probe assignments). Cones share no variables, so their models compose:
 * dropping a cone with a verified witness never changes the query's
 * verdict, it only shrinks what the cache fingerprints and the solver
 * sees. When every cone is discharged the query is Sat outright.
 *
 * The witness check is evaluation-proven (the same discipline as the
 * QueryCache's model reuse), so slicing can shift timings but never
 * verdicts — asserted by the differential property tests.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "src/smt/evaluator.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"
#include "src/smt/term_factory.h"

namespace keq::smt {

/** Outcome of slicing one query. */
struct SliceResult
{
    /** Assertions of the undischarged cones, in input order. */
    std::vector<Term> kept;
    /** Set when slicing alone decided the query. */
    std::optional<SatResult> decided;
    /** Assertions pruned (their cone had a verified witness). */
    uint64_t droppedAssertions = 0;
    /** Number of cones (connected components) in the query. */
    uint64_t components = 0;
    /**
     * Combined witness of every dropped cone: a partial model that
     * satisfies exactly the pruned assertions. Useful as a pooled model
     * seed — it is re-verified by evaluation before any reuse.
     */
    Assignment droppedWitness;
};

/** Slices assertion sets along cones of influence. */
class Slicer
{
  public:
    explicit Slicer(TermFactory &factory) : tf_(factory) {}

    SliceResult slice(const std::vector<Term> &assertions);

  private:
    TermFactory &tf_;
};

} // namespace keq::smt

#endif // KEQ_SMT_SLICER_H
