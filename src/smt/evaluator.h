#ifndef KEQ_SMT_EVALUATOR_H
#define KEQ_SMT_EVALUATOR_H

/**
 * @file
 * Concrete evaluation of terms under a variable assignment.
 *
 * Used by the property-based tests to cross-check the factory's constant
 * folding and the Z3 translation: for random assignments, eval(t) must
 * agree with Z3's model-based evaluation and with folding of the
 * fully-substituted term.
 */

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "src/smt/term.h"
#include "src/support/apint.h"

namespace keq::smt {

/** Concrete values for free variables. Array variables map to byte maps. */
class Assignment
{
  public:
    void setBv(const std::string &name, support::ApInt value);
    void setBool(const std::string &name, bool value);
    /** Sets one byte of an array variable (unset bytes read as 0). */
    void setArrayByte(const std::string &name, uint64_t address,
                      uint8_t value);

    support::ApInt bv(const std::string &name) const;
    bool boolean(const std::string &name) const;
    uint8_t arrayByte(const std::string &name, uint64_t address) const;

    bool hasBv(const std::string &name) const;
    bool hasBool(const std::string &name) const;

  private:
    std::unordered_map<std::string, support::ApInt> bvs_;
    std::unordered_map<std::string, bool> bools_;
    std::unordered_map<std::string, std::map<uint64_t, uint8_t>> arrays_;
};

/**
 * Evaluates terms bottom-up under an assignment.
 *
 * Array-sorted terms evaluate to (base array name, overlay of stored
 * bytes); bool and bitvector terms evaluate to concrete values.
 *
 * Results are memoized per evaluator instance (evaluation is pure), so
 * shared subterms of a hash-consed DAG are visited once — required for
 * the solver cache's model-reuse path, which evaluates whole solver
 * queries. The referenced Assignment must not change while this
 * evaluator is in use.
 */
class Evaluator
{
  public:
    explicit Evaluator(const Assignment &assignment)
        : assignment_(assignment)
    {}

    /** Evaluates a bitvector-sorted term. */
    support::ApInt evalBv(Term term);

    /** Evaluates a bool-sorted term. */
    bool evalBool(Term term);

  private:
    struct ArrayValue
    {
        std::string base;
        std::map<uint64_t, uint8_t> overlay;
    };

    support::ApInt evalBvUncached(Term term);
    bool evalBoolUncached(Term term);
    ArrayValue evalArray(Term term);
    ArrayValue evalArrayUncached(Term term);
    uint8_t readArray(const ArrayValue &array, uint64_t address) const;

    const Assignment &assignment_;
    std::unordered_map<uint64_t, support::ApInt> bvMemo_;
    std::unordered_map<uint64_t, bool> boolMemo_;
    std::unordered_map<uint64_t, ArrayValue> arrayMemo_;
};

} // namespace keq::smt

#endif // KEQ_SMT_EVALUATOR_H
