#ifndef KEQ_SMT_GUARDED_SOLVER_H
#define KEQ_SMT_GUARDED_SOLVER_H

/**
 * @file
 * Fault-tolerant solver front: watchdog + retry/escalation ladder.
 *
 * Real ISel corpora wedge solvers (paper Section 6): Z3's soft timeout
 * is best-effort and a pathological query can ignore it for minutes,
 * a z3::exception kills the whole function validation, and a transient
 * Unknown from the incremental backend wastes a verdict the cold solver
 * could have produced. The GuardedSolver makes every query terminate
 * with a *classified* outcome:
 *
 *  - **Watchdog.** Each attempt runs under a hard wall-clock deadline
 *    enforced by a dedicated thread that fires the backend's
 *    interruptQuery() (Z3_interrupt) when the deadline or a cooperative
 *    cancellation token trips — and keeps re-firing until the attempt
 *    returns, because the incremental backend's internal Unknown
 *    fallback re-enters Z3 after the first interrupt.
 *
 *  - **Escalation ladder.** On a failed attempt (Unknown or crash) the
 *    query is retried a bounded number of times per rung with jittered
 *    backoff, then escalated to the next rung: typically
 *    incremental+cache -> fresh cold solver -> pristine unoptimized
 *    solver. Rungs are built lazily from caller-supplied factories, so
 *    a healthy run never pays for them. The last rung is conventionally
 *    pristine (no fault injection, no optimization) which is what makes
 *    chaos runs converge to the clean run's verdicts.
 *
 *  - **Classified failure.** When the ladder is exhausted the query
 *    returns Unknown and lastFailureKind() says why (Timeout,
 *    MemoryBudget, SolverUnknown, SolverCrash, Cancelled) — crashes are
 *    absorbed, never propagated, so one wedged query costs one verdict,
 *    not a worker.
 *
 * Stats contract: `queries` counts logical checkSat calls and
 * sat/unsat/unknown count final outcomes — identical whether zero or
 * fifty retries happened, so canonical summaries stay byte-identical
 * under injected faults. All recovery work lands in the dedicated
 * counters (watchdogInterrupts, guardedRetries, guardedEscalations,
 * escalatedResolved, solverCrashes) and rung work (cache hits,
 * incremental reuse, faultsInjected...) is folded in via
 * foldNonVerdictStats.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/smt/solver.h"
#include "src/support/cancellation.h"

namespace keq::smt {

/** Tuning for GuardedSolver; defaults keep the guard nearly invisible. */
struct GuardedSolverOptions
{
    /** Hard per-attempt wall deadline in ms; 0 = no watchdog deadline
     *  (the watchdog still polls the cancellation token if set). */
    unsigned deadlineMs = 0;
    /** Extra attempts on the same rung after the first fails. */
    unsigned retries = 1;
    /** Base backoff before a retry/escalation attempt; 0 disables. */
    unsigned backoffBaseMs = 5;
    /** Seed for backoff jitter (timing only, never verdicts). */
    uint64_t jitterSeed = 0x6a77;
    /** Cooperative cancellation; polled by the watchdog mid-query. */
    support::CancellationToken cancel;
    /**
     * Arm the watchdog even without a deadline or token so that
     * cancelCurrentQuery() can reap the in-flight query. Set by hosts
     * that cancel externally (the solver worker's portfolio Cancel
     * frame); costs one mostly-idle thread.
     */
    bool cancellable = false;
};

/** Watchdogged escalation ladder over a primary solver + fallbacks. */
class GuardedSolver : public Solver
{
  public:
    /** Builds one fallback rung on first use. */
    using RungFactory = std::function<std::unique_ptr<Solver>()>;

    /**
     * @param factory Factory owning the terms.
     * @param primary Rung 0; must outlive this object.
     * @param fallbacks Lazily-instantiated rungs 1..n, cheapest first;
     *                  each inherits the current timeout/memory/model
     *                  settings when built.
     */
    GuardedSolver(TermFactory &factory, Solver &primary,
                  std::vector<RungFactory> fallbacks,
                  GuardedSolverOptions options);
    ~GuardedSolver() override;

    SatResult checkSat(const std::vector<Term> &assertions) override;
    void setTimeoutMs(unsigned timeout_ms) override;
    void setMemoryBudgetMb(unsigned budget_mb) override;
    void interruptQuery() override;

    /**
     * Abandons the *current* checkSat (it returns Unknown classified
     * Cancelled, never retried) without poisoning later queries — the
     * flag auto-resets when the next checkSat starts, unlike the
     * one-shot CancellationToken in the options. Safe from another
     * thread; a no-op when no query is in flight. This is how a losing
     * portfolio lane is reaped: the watchdog keeps re-firing the
     * backend interrupt until the attempt returns. Requires
     * options.cancellable (or a deadline/token) for mid-query
     * enforcement.
     */
    void cancelCurrentQuery();
    void enableModelCapture(bool enabled) override;
    bool lastModel(Assignment *out) const override;
    std::string lastUnknownReason() const override;
    FailureKind lastFailureKind() const override;
    const SolverStats &stats() const override { return stats_; }

  protected:
    TermFactory &factory() override { return factory_; }

  private:
    Solver *rungSolver(size_t rung);
    void ensureWatchdog();
    void armWatchdog(Solver *target);
    /** @return true when the watchdog fired during this attempt. */
    bool disarmWatchdog();
    void watchdogLoop();

    TermFactory &factory_;
    Solver &primary_;
    std::vector<RungFactory> rungFactories_;
    std::vector<std::unique_ptr<Solver>> rungs_; // lazily built
    GuardedSolverOptions options_;
    SolverStats stats_;

    unsigned timeoutMs_ = 0;
    unsigned memoryBudgetMb_ = 0;
    bool captureModels_ = false;
    Solver *lastAnswering_ = nullptr;
    std::string lastUnknownReason_;
    FailureKind lastFailure_ = FailureKind::None;
    /** Per-query cancel; reset at every checkSat entry. */
    std::atomic<bool> queryCancelled_{false};

    // Watchdog state; every field below is guarded by watchMutex_.
    std::thread watchdog_;
    std::mutex watchMutex_;
    std::condition_variable watchCv_;
    Solver *watchTarget_ = nullptr;
    std::chrono::steady_clock::time_point watchDeadline_;
    bool watchHasDeadline_ = false;
    bool watchArmed_ = false;
    bool watchFired_ = false;
    bool watchShutdown_ = false;
    uint64_t watchGeneration_ = 0;
};

} // namespace keq::smt

#endif // KEQ_SMT_GUARDED_SOLVER_H
