#ifndef KEQ_SMT_TERM_FACTORY_H
#define KEQ_SMT_TERM_FACTORY_H

/**
 * @file
 * Construction, hash-consing and on-the-fly simplification of terms.
 */

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/term.h"
#include "src/smt/term_node.h"
#include "src/support/apint.h"

namespace keq::smt {

/**
 * Owns all term nodes of one validation pipeline.
 *
 * Every constructor performs constant folding and light algebraic
 * simplification before interning, so structurally equal (post-fold) terms
 * are always pointer-equal. Not thread safe; each validation run owns one
 * factory.
 */
class TermFactory
{
  public:
    TermFactory();
    TermFactory(const TermFactory &) = delete;
    TermFactory &operator=(const TermFactory &) = delete;

    // --- Leaves ---------------------------------------------------------

    Term bvConst(support::ApInt value);
    /** Convenience: bvConst(ApInt(width, value)). */
    Term bvConst(unsigned width, uint64_t value);
    Term boolConst(bool value);
    Term trueTerm() { return true_; }
    Term falseTerm() { return false_; }

    /**
     * Named free variable. Re-requesting the same name returns the same
     * term; requesting it with a different sort is an internal error.
     */
    Term var(const std::string &name, Sort sort);

    /** Fresh variable with a unique name derived from @p hint. */
    Term freshVar(const std::string &hint, Sort sort);

    // --- Boolean layer ---------------------------------------------------

    Term mkNot(Term a);
    Term mkAnd(Term a, Term b);
    Term mkAnd(const std::vector<Term> &conjuncts);
    Term mkOr(Term a, Term b);
    Term mkOr(const std::vector<Term> &disjuncts);
    Term mkImplies(Term a, Term b);
    Term mkIff(Term a, Term b);
    Term mkIte(Term cond, Term then_t, Term else_t);
    Term mkEq(Term a, Term b);
    Term mkDistinct(Term a, Term b) { return mkNot(mkEq(a, b)); }

    // --- Bitvector layer --------------------------------------------------

    /** Generic binary bitvector operation (arithmetic/bitwise/shift). */
    Term bvBinOp(Kind kind, Term a, Term b);

    Term bvAdd(Term a, Term b) { return bvBinOp(Kind::BvAdd, a, b); }
    Term bvSub(Term a, Term b) { return bvBinOp(Kind::BvSub, a, b); }
    Term bvMul(Term a, Term b) { return bvBinOp(Kind::BvMul, a, b); }
    Term bvUDiv(Term a, Term b) { return bvBinOp(Kind::BvUDiv, a, b); }
    Term bvSDiv(Term a, Term b) { return bvBinOp(Kind::BvSDiv, a, b); }
    Term bvURem(Term a, Term b) { return bvBinOp(Kind::BvURem, a, b); }
    Term bvSRem(Term a, Term b) { return bvBinOp(Kind::BvSRem, a, b); }
    Term bvAnd(Term a, Term b) { return bvBinOp(Kind::BvAnd, a, b); }
    Term bvOr(Term a, Term b) { return bvBinOp(Kind::BvOr, a, b); }
    Term bvXor(Term a, Term b) { return bvBinOp(Kind::BvXor, a, b); }
    Term bvShl(Term a, Term b) { return bvBinOp(Kind::BvShl, a, b); }
    Term bvLShr(Term a, Term b) { return bvBinOp(Kind::BvLShr, a, b); }
    Term bvAShr(Term a, Term b) { return bvBinOp(Kind::BvAShr, a, b); }

    Term bvNot(Term a);
    Term bvNeg(Term a);

    /** Generic bitvector predicate (BvUlt/BvUle/BvSlt/BvSle or Eq). */
    Term bvPredicate(Kind kind, Term a, Term b);

    Term bvUlt(Term a, Term b) { return bvPredicate(Kind::BvUlt, a, b); }
    Term bvUle(Term a, Term b) { return bvPredicate(Kind::BvUle, a, b); }
    Term bvUgt(Term a, Term b) { return bvUlt(b, a); }
    Term bvUge(Term a, Term b) { return bvUle(b, a); }
    Term bvSlt(Term a, Term b) { return bvPredicate(Kind::BvSlt, a, b); }
    Term bvSle(Term a, Term b) { return bvPredicate(Kind::BvSle, a, b); }
    Term bvSgt(Term a, Term b) { return bvSlt(b, a); }
    Term bvSge(Term a, Term b) { return bvSle(b, a); }

    Term zext(Term a, unsigned new_width);
    Term sext(Term a, unsigned new_width);
    /** Bits [hi, lo] inclusive; result width hi - lo + 1. */
    Term extract(Term a, unsigned hi, unsigned lo);
    /** Truncation to the low @p new_width bits. */
    Term trunc(Term a, unsigned new_width);
    /** @p high becomes the most significant bits. */
    Term concat(Term high, Term low);

    // --- Memory arrays ----------------------------------------------------

    Term select(Term array, Term index);
    Term store(Term array, Term index, Term value);

    /** Little-endian read of @p num_bytes bytes starting at @p address. */
    Term readBytes(Term array, Term address, unsigned num_bytes);
    /** Little-endian write of @p value (width 8*num_bytes). */
    Term writeBytes(Term array, Term address, Term value,
                    unsigned num_bytes);

    // --- Introspection ----------------------------------------------------

    /** Number of distinct nodes created (memory budget metric). */
    size_t nodeCount() const { return nodes_.size(); }

  private:
    struct NodeKey
    {
        Kind kind;
        uint32_t sort;
        std::vector<uint64_t> operands;
        uint64_t aux0; // ApInt bits / bool value / hi
        uint64_t aux1; // ApInt width / lo
        std::string name;

        bool operator==(const NodeKey &rhs) const = default;
    };

    struct NodeKeyHash
    {
        size_t operator()(const NodeKey &key) const;
    };

    Term intern(Kind kind, Sort sort, std::vector<Term> operands,
                support::ApInt bv_value = support::ApInt(),
                bool bool_value = false, std::string name = {},
                unsigned hi = 0, unsigned lo = 0);

    /** Orders commutative operand pairs by node id for better sharing. */
    static void canonicalizeCommutative(Kind kind, Term &a, Term &b);

    std::deque<TermNode> nodes_;
    std::unordered_map<NodeKey, Term, NodeKeyHash> interned_;
    std::unordered_map<std::string, Sort> varSorts_;
    uint64_t nextId_ = 0;
    uint64_t freshCounter_ = 0;
    Term true_;
    Term false_;
};

} // namespace keq::smt

#endif // KEQ_SMT_TERM_FACTORY_H
