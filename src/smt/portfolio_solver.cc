#include "src/smt/portfolio_solver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/smt/incremental_z3_solver.h"
#include "src/smt/z3_solver.h"
#include "src/support/diagnostics.h"

namespace keq::smt {

namespace {

/** Period of the loser-reaping interrupt re-fire loop. */
constexpr auto kReapPeriod = std::chrono::milliseconds(2);

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
        size_t end = text.find(sep, start);
        parts.push_back(text.substr(start, end - start));
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    return parts;
}

} // namespace

bool
laneConfigFromName(const std::string &name, LaneConfig &out,
                   std::string &error)
{
    LaneConfig config;
    config.name = name;
    if (name == "default") {
        config.incremental = true;
    } else if (name == "int2bv") {
        // Bitvector-to-integer translation changes which theory engine
        // carries the arithmetic; both spellings are listed because the
        // parameter namespace differs across Z3 builds and application
        // is best-effort.
        config.incremental = true;
        config.tuning = {{"bv.enable_int2bv", "true"},
                         {"smt.bv.enable_int2bv", "true"},
                         {"pull_nested_quantifiers", "false"}};
    } else if (name == "cold") {
        config.incremental = false;
    } else if (name.rfind("seed", 0) == 0 && name.size() > 4 &&
               name.find_first_not_of("0123456789", 4) ==
                   std::string::npos) {
        std::string seed = name.substr(4);
        config.incremental = true;
        config.tuning = {{"random_seed", seed},
                         {"smt.random_seed", seed},
                         {"sat.random_seed", seed}};
    } else {
        error = "unknown portfolio lane '" + name +
                "' (expected default|int2bv|cold|seed<K>)";
        return false;
    }
    out = std::move(config);
    return true;
}

std::vector<LaneConfig>
defaultPortfolioLanes(unsigned lanes)
{
    lanes = std::clamp<unsigned>(
        lanes, 1,
        static_cast<unsigned>(SolverStats::kPortfolioMaxLanes));
    static const char *const kRoster[] = {"default", "int2bv", "cold",
                                          "seed7"};
    // Two lanes pair the incremental default with the cold lane — the
    // most decorrelated pair; three and four extend with tuned lanes.
    std::vector<std::string> names;
    if (lanes == 1)
        names = {"default"};
    else if (lanes == 2)
        names = {"default", "cold"};
    else {
        for (unsigned i = 0; i < lanes; ++i)
            names.push_back(kRoster[i]);
    }
    std::vector<LaneConfig> configs;
    for (const std::string &name : names) {
        LaneConfig config;
        std::string error;
        bool ok = laneConfigFromName(name, config, error);
        KEQ_ASSERT(ok, "defaultPortfolioLanes: bad built-in name");
        configs.push_back(std::move(config));
    }
    return configs;
}

bool
parsePortfolioLanes(const std::string &spec, std::vector<LaneConfig> &out,
                    std::string &error)
{
    std::vector<LaneConfig> configs;
    for (const std::string &entry : splitOn(spec, ',')) {
        if (entry.empty()) {
            error = "empty lane entry in portfolio spec";
            return false;
        }
        std::vector<std::string> pieces = splitOn(entry, ':');
        LaneConfig config;
        if (!laneConfigFromName(pieces[0], config, error))
            return false;
        for (size_t i = 1; i < pieces.size(); ++i) {
            size_t eq = pieces[i].find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == pieces[i].size()) {
                error = "bad lane tuning '" + pieces[i] +
                        "' (expected key=value)";
                return false;
            }
            config.tuning.emplace_back(pieces[i].substr(0, eq),
                                       pieces[i].substr(eq + 1));
        }
        configs.push_back(std::move(config));
    }
    if (configs.empty()) {
        error = "portfolio spec names no lanes";
        return false;
    }
    if (configs.size() > SolverStats::kPortfolioMaxLanes) {
        error = "portfolio spec names more than " +
                std::to_string(SolverStats::kPortfolioMaxLanes) +
                " lanes";
        return false;
    }
    out = std::move(configs);
    return true;
}

std::unique_ptr<Solver>
makeLaneBackend(TermFactory &factory, const LaneConfig &config)
{
    if (config.incremental)
        return std::make_unique<IncrementalZ3Solver>(factory,
                                                     config.tuning);
    return std::make_unique<Z3Solver>(factory, config.tuning);
}

struct PortfolioSolver::Lane
{
    LaneConfig config;
    std::unique_ptr<Solver> backend;
    std::thread thread;
    // Remaining fields are guarded by State::mutex.
    uint64_t generation = 0; ///< last generation this lane picked up
    bool done = true;
    bool crashed = false;
    SatResult result = SatResult::Unknown;
};

struct PortfolioSolver::State
{
    std::mutex mutex;
    std::condition_variable workCv; ///< wakes lanes on a new generation
    std::condition_variable doneCv; ///< wakes the caller on lane results
    std::vector<std::unique_ptr<Lane>> lanes;
    // Guarded by mutex.
    uint64_t generation = 0;
    const std::vector<Term> *work = nullptr;
    size_t doneCount = 0;
    int winner = -1;
    bool stop = false;
    // Settings snapshotted by lanes at race start (guarded by mutex).
    unsigned timeoutMs = 0;
    unsigned memoryBudgetMb = 0;
    bool captureModels = false;
};

PortfolioSolver::PortfolioSolver(TermFactory &factory,
                                 std::vector<LaneConfig> lanes)
    : factory_(factory), state_(std::make_unique<State>())
{
    KEQ_ASSERT(!lanes.empty() &&
                   lanes.size() <= SolverStats::kPortfolioMaxLanes,
               "PortfolioSolver: bad lane count");
    for (LaneConfig &config : lanes) {
        auto lane = std::make_unique<Lane>();
        lane->config = std::move(config);
        lane->backend = makeLaneBackend(factory_, lane->config);
        state_->lanes.push_back(std::move(lane));
    }
    for (size_t i = 0; i < state_->lanes.size(); ++i) {
        state_->lanes[i]->thread =
            std::thread([this, i] { laneMain(i); });
    }
}

PortfolioSolver::~PortfolioSolver()
{
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        state_->stop = true;
    }
    state_->workCv.notify_all();
    for (auto &lane : state_->lanes) {
        if (lane->thread.joinable())
            lane->thread.join();
    }
}

size_t
PortfolioSolver::laneCount() const
{
    return state_->lanes.size();
}

const std::string &
PortfolioSolver::laneName(size_t lane) const
{
    KEQ_ASSERT(lane < state_->lanes.size(), "laneName: bad index");
    return state_->lanes[lane]->config.name;
}

void
PortfolioSolver::setTimeoutMs(unsigned timeout_ms)
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->timeoutMs = timeout_ms;
}

void
PortfolioSolver::setMemoryBudgetMb(unsigned budget_mb)
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->memoryBudgetMb = budget_mb;
}

void
PortfolioSolver::enableModelCapture(bool enabled)
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->captureModels = enabled;
}

void
PortfolioSolver::interruptQuery()
{
    // Backend interrupts are thread-safe by the Solver contract
    // (Z3_interrupt on the lane's own context); no lock needed, and the
    // outer watchdog re-fires this until checkSat returns.
    for (auto &lane : state_->lanes)
        lane->backend->interruptQuery();
}

bool
PortfolioSolver::lastModel(Assignment *out) const
{
    if (!lastModel_.has_value())
        return false;
    *out = *lastModel_;
    return true;
}

std::string
PortfolioSolver::lastUnknownReason() const
{
    return lastUnknownReason_;
}

FailureKind
PortfolioSolver::lastFailureKind() const
{
    return lastFailure_;
}

void
PortfolioSolver::laneMain(size_t lane_index)
{
    State &state = *state_;
    Lane &lane = *state.lanes[lane_index];
    std::unique_lock<std::mutex> lock(state.mutex);
    while (true) {
        state.workCv.wait(lock, [&] {
            return state.stop || lane.generation != state.generation;
        });
        if (state.stop)
            return;
        lane.generation = state.generation;
        const std::vector<Term> *work = state.work;
        unsigned timeout_ms = state.timeoutMs;
        unsigned memory_mb = state.memoryBudgetMb;
        bool capture = state.captureModels;
        lock.unlock();

        SatResult result = SatResult::Unknown;
        bool crashed = false;
        try {
            lane.backend->setTimeoutMs(timeout_ms);
            lane.backend->setMemoryBudgetMb(memory_mb);
            lane.backend->enableModelCapture(capture);
            result = lane.backend->checkSat(*work);
        } catch (const SolverCrashError &) {
            crashed = true;
        } catch (const std::exception &) {
            crashed = true;
        }

        lock.lock();
        lane.done = true;
        lane.crashed = crashed;
        lane.result = crashed ? SatResult::Unknown : result;
        ++state.doneCount;
        if (!crashed && result != SatResult::Unknown &&
            state.winner < 0) {
            state.winner = static_cast<int>(lane_index);
        }
        state.doneCv.notify_all();
    }
}

SatResult
PortfolioSolver::checkSat(const std::vector<Term> &assertions)
{
    State &state = *state_;
    const size_t lane_count = state.lanes.size();
    lastUnknownReason_.clear();
    lastFailure_ = FailureKind::None;
    lastModel_.reset();

    // Lane backends are quiescent between races, so their stats are
    // safe to snapshot here.
    std::vector<SolverStats> before(lane_count);
    for (size_t i = 0; i < lane_count; ++i)
        before[i] = state.lanes[i]->backend->stats();

    size_t losers_reaped = 0;
    {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.work = &assertions;
        state.winner = -1;
        state.doneCount = 0;
        for (auto &lane : state.lanes)
            lane->done = false;
        ++state.generation;
        state.workCv.notify_all();

        // Phase 1: wait for the first definite answer (or everyone).
        state.doneCv.wait(lock, [&] {
            return state.winner >= 0 || state.doneCount == lane_count;
        });

        // Phase 2: a winner exists but losers are still solving — reap
        // them. One interrupt is not enough: an incremental lane's
        // Unknown guardrail re-enters Z3 on a fresh fallback solver, so
        // keep re-firing until every lane has returned. checkSat must
        // not return before then (lanes read the shared term DAG).
        if (state.doneCount < lane_count) {
            for (auto &lane : state.lanes) {
                if (!lane->done)
                    ++losers_reaped;
            }
            while (state.doneCount < lane_count) {
                for (auto &lane : state.lanes) {
                    if (!lane->done)
                        lane->backend->interruptQuery();
                }
                state.doneCv.wait_for(lock, kReapPeriod);
            }
        }
    }

    // All lanes quiesced: their backends are exclusively ours again.
    for (size_t i = 0; i < lane_count; ++i) {
        foldNonVerdictStats(
            stats_, state.lanes[i]->backend->stats() - before[i]);
    }
    ++stats_.queries;
    stats_.portfolioCancellations += losers_reaped;

    // Disagreement oracle: contradictory definite verdicts mean some
    // strategy is unsound on this query — refuse to pick a side.
    bool saw_sat = false;
    bool saw_unsat = false;
    for (auto &lane : state.lanes) {
        if (lane->crashed)
            continue;
        saw_sat |= lane->result == SatResult::Sat;
        saw_unsat |= lane->result == SatResult::Unsat;
    }
    if (saw_sat && saw_unsat) {
        ++stats_.crossLaneDisagreements;
        ++stats_.unknown;
        lastFailure_ = FailureKind::PortfolioDisagreement;
        std::string verdicts;
        for (auto &lane : state.lanes) {
            verdicts += (verdicts.empty() ? "" : ", ");
            verdicts += lane->config.name + "=";
            verdicts += lane->crashed ? "crash"
                                      : satResultName(lane->result);
        }
        lastUnknownReason_ = "portfolio disagreement: " + verdicts;
        return SatResult::Unknown;
    }

    int winner = state.winner;
    if (winner >= 0) {
        Lane &lane = *state.lanes[static_cast<size_t>(winner)];
        size_t win_slot =
            std::min(static_cast<size_t>(winner),
                     SolverStats::kPortfolioMaxLanes - 1);
        ++stats_.portfolioWins[win_slot];
        if (lane.result == SatResult::Sat) {
            ++stats_.sat;
            Assignment model;
            if (lane.backend->lastModel(&model))
                lastModel_ = std::move(model);
        } else {
            ++stats_.unsat;
        }
        return lane.result;
    }

    // No definite answer anywhere. If every lane crashed, this query is
    // a crash (the guard ladder above us absorbs it); otherwise adopt
    // the first honest lane's classification.
    bool any_alive = false;
    for (auto &lane : state.lanes)
        any_alive |= !lane->crashed;
    if (!any_alive) {
        // Count it before throwing so the query is attributed.
        ++stats_.unknown;
        ++stats_.solverCrashes;
        throw SolverCrashError("portfolio: every lane crashed");
    }
    ++stats_.unknown;
    for (auto &lane : state.lanes) {
        if (lane->crashed)
            continue;
        lastFailure_ = lane->backend->lastFailureKind();
        lastUnknownReason_ = lane->backend->lastUnknownReason();
        break;
    }
    return SatResult::Unknown;
}

} // namespace keq::smt
