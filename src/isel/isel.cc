#include "src/isel/isel.h"

#include <map>
#include <optional>
#include <set>

#include "src/support/diagnostics.h"

namespace keq::isel {

using llvmir::BasicBlock;
using llvmir::Function;
using llvmir::ICmpPred;
using llvmir::Instruction;
using llvmir::Opcode;
using llvmir::Type;
using llvmir::Value;
using support::ApInt;
using support::Error;
using vx86::CondCode;
using vx86::MAddress;
using vx86::MBasicBlock;
using vx86::MFunction;
using vx86::MInst;
using vx86::MModule;
using vx86::MOpcode;
using vx86::MOperand;

namespace {

/** Machine width of an LLVM type: i1 lives in an 8-bit register (GR8). */
unsigned
machineWidth(const Type *type)
{
    if (type->isInteger() && type->bitWidth() == 1)
        return 8;
    return type->valueBits();
}

CondCode
condCodeFor(ICmpPred pred)
{
    switch (pred) {
      case ICmpPred::Eq: return CondCode::E;
      case ICmpPred::Ne: return CondCode::NE;
      case ICmpPred::Ult: return CondCode::B;
      case ICmpPred::Ule: return CondCode::BE;
      case ICmpPred::Ugt: return CondCode::A;
      case ICmpPred::Uge: return CondCode::AE;
      case ICmpPred::Slt: return CondCode::L;
      case ICmpPred::Sle: return CondCode::LE;
      case ICmpPred::Sgt: return CondCode::G;
      case ICmpPred::Sge: return CondCode::GE;
    }
    KEQ_ASSERT(false, "condCodeFor: bad predicate");
    return CondCode::E;
}

/** SysV argument registers (canonical 64-bit names), in order. */
const char *const kArgRegs[] = {"rdi", "rsi", "rdx", "rcx", "r8", "r9"};

/** The per-function lowering engine. */
class FunctionLowering
{
  public:
    FunctionLowering(const llvmir::Module &module, const Function &fn,
                     const IselOptions &options, FunctionHints &hints)
        : module_(module), fn_(fn), options_(options), hints_(hints)
    {}

    MFunction
    run()
    {
        mfn_.name = fn_.name;
        mfn_.retWidth = fn_.returnType->isVoid()
                            ? 0
                            : machineWidth(fn_.returnType);

        assignRegisters();
        findFoldableCompares();

        for (size_t i = 0; i < fn_.blocks.size(); ++i) {
            MBasicBlock mblock;
            mblock.name = ".LBB" + std::to_string(i);
            hints_.blockMap[fn_.blocks[i].name] = mblock.name;
            mfn_.blocks.push_back(std::move(mblock));
        }

        for (size_t i = 0; i < fn_.blocks.size(); ++i) {
            current_ = &mfn_.blocks[i];
            lowerBlock(fn_.blocks[i], i == 0);
        }

        // Phi-incoming constants were materialized lazily; insert the
        // pending MOVri instructions in their predecessor blocks, before
        // the trailing jump sequence.
        flushPendingMaterializations();

        if (options_.foldExtLoad)
            foldExtLoads();
        if (options_.mergeStores)
            mergeStores();

        return std::move(mfn_);
    }

  private:
    // --- virtual register management --------------------------------------

    MOperand
    freshReg(unsigned width)
    {
        return MOperand::virtReg(nextVReg_++, width);
    }

    /** Pass 0: a register for every parameter and instruction result. */
    void
    assignRegisters()
    {
        for (const llvmir::Parameter &param : fn_.params) {
            MOperand reg = freshReg(machineWidth(param.type));
            valueReg_[param.name] = reg;
            hints_.regMap[param.name] = reg.reg;
        }
        for (const BasicBlock &block : fn_.blocks) {
            for (const Instruction &inst : block.insts) {
                if (inst.result.empty())
                    continue;
                MOperand reg = freshReg(machineWidth(inst.type));
                valueReg_[inst.result] = reg;
                hints_.regMap[inst.result] = reg.reg;
            }
        }
    }

    /**
     * Finds icmp instructions whose only use is the conditional branch
     * terminating their own block; those fold into CMP + Jcc.
     */
    void
    findFoldableCompares()
    {
        std::map<std::string, unsigned> use_counts;
        auto count = [&](const Value &value) {
            if (value.isVar())
                ++use_counts[value.name];
        };
        for (const BasicBlock &block : fn_.blocks) {
            for (const Instruction &inst : block.insts) {
                for (const Value &operand : inst.operands)
                    count(operand);
                for (const llvmir::PhiIncoming &incoming : inst.incoming)
                    count(incoming.value);
            }
        }
        for (const BasicBlock &block : fn_.blocks) {
            const Instruction &term = block.terminator();
            if (term.op != Opcode::CondBr ||
                !term.operands[0].isVar()) {
                continue;
            }
            const std::string &cond = term.operands[0].name;
            if (use_counts[cond] != 1)
                continue;
            for (const Instruction &inst : block.insts) {
                if (inst.op == Opcode::ICmp && inst.result == cond) {
                    foldedCompares_.insert(cond);
                    break;
                }
            }
        }
    }

    // --- emission helpers ----------------------------------------------------

    void emit(MInst inst) { current_->insts.push_back(std::move(inst)); }

    MInst
    make(MOpcode op, unsigned width)
    {
        MInst inst;
        inst.op = op;
        inst.width = width;
        return inst;
    }

    /** Immediate for an LLVM constant at its machine width. */
    MOperand
    immFor(const Value &value)
    {
        KEQ_ASSERT(value.isConst(), "immFor: not a constant");
        unsigned width = machineWidth(value.type);
        return MOperand::immediate(value.constant.zextTo(64).truncTo(
            width >= value.constant.width() ? width
                                            : value.constant.width()));
    }

    /**
     * Materializes an LLVM value into a register, emitting MOVri for
     * constants and LEA for globals.
     */
    MOperand
    regFor(const Value &value)
    {
        switch (value.kind) {
          case Value::Kind::Var: {
            auto it = valueReg_.find(value.name);
            KEQ_ASSERT(it != valueReg_.end(),
                       "no register for " + value.name);
            return it->second;
          }
          case Value::Kind::Const: {
            MOperand reg = freshReg(machineWidth(value.type));
            MInst inst = make(MOpcode::MOVri, reg.width);
            inst.ops = {reg, immFor(value)};
            emit(inst);
            hints_.constRegs[reg.reg] =
                value.constant.zextTo(64).truncTo(reg.width);
            return reg;
          }
          case Value::Kind::Global: {
            MOperand reg = freshReg(64);
            MInst inst = make(MOpcode::LEA, 64);
            inst.ops = {reg};
            inst.addr.baseKind = MAddress::BaseKind::Global;
            inst.addr.global = value.name;
            emit(inst);
            return reg;
          }
        }
        KEQ_ASSERT(false, "regFor: bad value");
        return {};
    }

    /** Register or immediate operand (for ri instruction forms). */
    MOperand
    regOrImm(const Value &value)
    {
        return value.isConst() ? immFor(value) : regFor(value);
    }

    /** Address for an LLVM pointer operand. */
    MAddress
    addressFor(const Value &pointer)
    {
        MAddress addr;
        if (pointer.isGlobal()) {
            addr.baseKind = MAddress::BaseKind::Global;
            addr.global = pointer.name;
        } else {
            addr.baseKind = MAddress::BaseKind::Reg;
            addr.baseReg = regFor(pointer);
        }
        return addr;
    }

    // --- per-instruction lowering ------------------------------------------------

    void
    lowerBlock(const BasicBlock &block, bool is_entry)
    {
        if (is_entry) {
            // Receive arguments per the calling convention.
            if (fn_.params.size() > 6) {
                throw Error(fn_.name + ": more than 6 parameters is "
                                       "outside the supported "
                                       "fragment");
            }
            for (size_t i = 0; i < fn_.params.size(); ++i) {
                MOperand dst = valueReg_[fn_.params[i].name];
                MInst copy = make(MOpcode::COPY, dst.width);
                copy.ops = {dst,
                            MOperand::physReg(kArgRegs[i], dst.width)};
                emit(copy);
            }
        }
        for (const Instruction &inst : block.insts)
            lowerInst(block, inst);
    }

    void
    lowerInst(const BasicBlock &block, const Instruction &inst)
    {
        switch (inst.op) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::LShr:
          case Opcode::AShr:
            lowerBinOp(inst);
            return;
          case Opcode::UDiv:
          case Opcode::SDiv:
          case Opcode::URem:
          case Opcode::SRem:
            lowerDivision(inst);
            return;
          case Opcode::ICmp:
            lowerICmp(inst);
            return;
          case Opcode::ZExt:
          case Opcode::SExt:
          case Opcode::Trunc:
          case Opcode::PtrToInt:
          case Opcode::IntToPtr:
          case Opcode::Bitcast:
            lowerCast(inst);
            return;
          case Opcode::GetElementPtr:
            lowerGep(inst);
            return;
          case Opcode::Load:
            lowerLoad(inst);
            return;
          case Opcode::Store:
            lowerStore(inst);
            return;
          case Opcode::Alloca:
            lowerAlloca(inst);
            return;
          case Opcode::Phi:
            lowerPhi(block, inst);
            return;
          case Opcode::Select:
            lowerSelect(inst);
            return;
          case Opcode::Br: {
            MInst jmp = make(MOpcode::JMP, 0);
            jmp.target = hints_.blockMap[inst.target1];
            emit(jmp);
            return;
          }
          case Opcode::CondBr:
            lowerCondBr(inst);
            return;
          case Opcode::Switch:
            lowerSwitch(inst);
            return;
          case Opcode::Ret:
            lowerRet(inst);
            return;
          case Opcode::Call:
            lowerCall(inst);
            return;
          case Opcode::Unreachable:
            emit(make(MOpcode::UD2, 0));
            return;
        }
        KEQ_ASSERT(false, "lowerInst: unhandled opcode");
    }

    void
    lowerBinOp(const Instruction &inst)
    {
        MOperand dst = valueReg_[inst.result];
        MOperand lhs = regFor(inst.operands[0]);
        bool rhs_const = inst.operands[1].isConst();
        MOperand rhs = regOrImm(inst.operands[1]);
        MOpcode op;
        switch (inst.op) {
          case Opcode::Add:
            op = rhs_const ? MOpcode::ADDri : MOpcode::ADDrr;
            break;
          case Opcode::Sub:
            op = rhs_const ? MOpcode::SUBri : MOpcode::SUBrr;
            break;
          case Opcode::Mul:
            op = rhs_const ? MOpcode::IMULri : MOpcode::IMULrr;
            break;
          case Opcode::And:
            op = rhs_const ? MOpcode::ANDri : MOpcode::ANDrr;
            break;
          case Opcode::Or:
            op = rhs_const ? MOpcode::ORri : MOpcode::ORrr;
            break;
          case Opcode::Xor:
            op = rhs_const ? MOpcode::XORri : MOpcode::XORrr;
            break;
          case Opcode::Shl:
            op = rhs_const ? MOpcode::SHLri : MOpcode::SHLrr;
            break;
          case Opcode::LShr:
            op = rhs_const ? MOpcode::SHRri : MOpcode::SHRrr;
            break;
          case Opcode::AShr:
            op = rhs_const ? MOpcode::SARri : MOpcode::SARrr;
            break;
          default:
            KEQ_ASSERT(false, "lowerBinOp: bad opcode");
            return;
        }
        MInst minst = make(op, dst.width);
        minst.ops = {dst, lhs, rhs};
        emit(minst);
    }

    void
    lowerDivision(const Instruction &inst)
    {
        unsigned width = machineWidth(inst.type);
        if (width > 32) {
            throw Error(fn_.name + ": 64-bit division is outside the "
                                   "supported Virtual x86 fragment");
        }
        bool is_signed =
            inst.op == Opcode::SDiv || inst.op == Opcode::SRem;
        bool wants_remainder =
            inst.op == Opcode::URem || inst.op == Opcode::SRem;

        MOperand dividend = regFor(inst.operands[0]);
        MOperand divisor = regFor(inst.operands[1]);

        MInst to_ax = make(MOpcode::COPY, width);
        to_ax.ops = {MOperand::physReg("rax", width), dividend};
        emit(to_ax);
        if (is_signed) {
            emit(make(MOpcode::CDQ, width));
        } else {
            MInst zero = make(MOpcode::MOVri, width);
            zero.ops = {MOperand::physReg("rdx", width),
                        MOperand::immediate(ApInt(width, 0))};
            emit(zero);
        }
        MInst div = make(is_signed ? MOpcode::IDIV : MOpcode::DIV, width);
        div.ops = {divisor};
        emit(div);

        MOperand dst = valueReg_[inst.result];
        MInst out = make(MOpcode::COPY, width);
        out.ops = {dst, MOperand::physReg(
                            wants_remainder ? "rdx" : "rax", width)};
        emit(out);
    }

    void
    lowerICmp(const Instruction &inst)
    {
        if (foldedCompares_.count(inst.result)) {
            // Materialized at the branch; remember the comparison. The
            // folded value never escapes the block, so it needs no
            // machine register (and no hint entry).
            foldedCmpInfo_[inst.result] = &inst;
            hints_.regMap.erase(inst.result);
            return;
        }
        emitCompare(inst);
        MOperand dst = valueReg_[inst.result];
        MInst set = make(MOpcode::SETcc, 8);
        set.cc = condCodeFor(inst.pred);
        set.ops = {dst};
        emit(set);
    }

    /** Emits CMP for an icmp's operands (shared by SETcc and Jcc paths). */
    void
    emitCompare(const Instruction &icmp)
    {
        MOperand lhs = regFor(icmp.operands[0]);
        bool rhs_const = icmp.operands[1].isConst();
        MOperand rhs = regOrImm(icmp.operands[1]);
        MInst cmp = make(rhs_const ? MOpcode::CMPri : MOpcode::CMPrr,
                         lhs.width);
        cmp.ops = {lhs, rhs};
        emit(cmp);
    }

    void
    lowerCast(const Instruction &inst)
    {
        MOperand dst = valueReg_[inst.result];
        const Value &src_value = inst.operands[0];
        unsigned src_width = src_value.isGlobal()
                                 ? 64
                                 : machineWidth(src_value.type);

        if (inst.op == Opcode::SExt && src_value.type->isInteger() &&
            src_value.type->bitWidth() == 1) {
            throw Error(fn_.name + ": sext from i1 is outside the "
                                   "supported fragment");
        }

        MOperand src = regFor(src_value);
        if (dst.width == src_width) {
            MInst copy = make(MOpcode::COPY, dst.width);
            copy.ops = {dst, src};
            emit(copy);
            return;
        }
        if (dst.width < src_width) {
            // Truncation: narrowing sub-register COPY.
            MInst copy = make(MOpcode::COPY, dst.width);
            copy.ops = {dst, src};
            emit(copy);
            return;
        }
        // Widening: zext (zero) or sext (sign).
        bool sign = inst.op == Opcode::SExt;
        MInst ext = make(sign ? MOpcode::MOVSXrr : MOpcode::MOVZXrr,
                         src_width);
        ext.ops = {dst, src};
        emit(ext);
    }

    void
    lowerGep(const Instruction &inst)
    {
        MOperand dst = valueReg_[inst.result];
        // Accumulated address: optional dynamic base register, optional
        // global symbol, constant displacement.
        std::optional<MOperand> base;
        std::string global;
        int64_t disp = 0;

        const Value &pointer = inst.operands[0];
        if (pointer.isGlobal())
            global = pointer.name;
        else
            base = regFor(pointer);

        const Type *current = inst.sourceType;
        for (size_t i = 1; i < inst.operands.size(); ++i) {
            const Value &index = inst.operands[i];
            uint64_t elem_size;
            if (i == 1) {
                elem_size = current->sizeInBytes();
            } else if (current->isArray()) {
                elem_size = current->elementType()->sizeInBytes();
                current = current->elementType();
            } else {
                KEQ_ASSERT(current->isStruct(), "gep into scalar");
                KEQ_ASSERT(index.isConst(),
                           "struct gep index must be constant");
                uint64_t field = index.constant.zext();
                disp += static_cast<int64_t>(current->fieldOffset(
                    static_cast<unsigned>(field)));
                current = current->fields()[field];
                continue;
            }
            if (index.isConst()) {
                disp += index.constant.sext() *
                        static_cast<int64_t>(elem_size);
                continue;
            }
            // Dynamic index: widen to 64 bits, scale, add to the base.
            MOperand idx = regFor(index);
            MOperand wide = idx;
            if (idx.width < 64) {
                wide = freshReg(64);
                MInst sx = make(MOpcode::MOVSXrr, idx.width);
                sx.ops = {wide, idx};
                emit(sx);
            }
            MOperand scaled = wide;
            if (elem_size != 1) {
                scaled = freshReg(64);
                MInst mul = make(MOpcode::IMULri, 64);
                mul.ops = {scaled, wide,
                           MOperand::immediate(ApInt(64, elem_size))};
                emit(mul);
            }
            if (!base.has_value() && !global.empty()) {
                MOperand g = freshReg(64);
                MInst lea = make(MOpcode::LEA, 64);
                lea.ops = {g};
                lea.addr.baseKind = MAddress::BaseKind::Global;
                lea.addr.global = global;
                emit(lea);
                global.clear();
                base = g;
            }
            if (base.has_value()) {
                MOperand sum = freshReg(64);
                MInst add = make(MOpcode::ADDrr, 64);
                add.ops = {sum, *base, scaled};
                emit(add);
                base = sum;
            } else {
                base = scaled;
            }
        }

        MInst lea = make(MOpcode::LEA, 64);
        lea.ops = {dst};
        if (!global.empty()) {
            lea.addr.baseKind = MAddress::BaseKind::Global;
            lea.addr.global = global;
        } else if (base.has_value()) {
            lea.addr.baseKind = MAddress::BaseKind::Reg;
            lea.addr.baseReg = *base;
        } else {
            lea.addr.baseKind = MAddress::BaseKind::None;
        }
        lea.addr.disp = disp;
        emit(lea);
    }

    void
    lowerLoad(const Instruction &inst)
    {
        MOperand dst = valueReg_[inst.result];
        unsigned mem_bits =
            static_cast<unsigned>(inst.type->sizeInBytes() * 8);
        MInst load = make(MOpcode::MOVrm, mem_bits);
        load.ops = {dst};
        load.addr = addressFor(inst.operands[0]);
        emit(load);
    }

    void
    lowerStore(const Instruction &inst)
    {
        const Value &value = inst.operands[0];
        unsigned mem_bits =
            static_cast<unsigned>(inst.type->sizeInBytes() * 8);
        MInst store = make(value.isConst() ? MOpcode::MOVmi
                                           : MOpcode::MOVmr,
                           mem_bits);
        if (value.isConst()) {
            store.ops = {MOperand::immediate(
                value.constant.zextTo(64).truncTo(mem_bits))};
        } else {
            MOperand reg = regFor(value);
            // Register may be narrower than the memory width only for i1
            // (8-bit register, 8-bit memory), so widths match here.
            store.ops = {reg};
        }
        store.addr = addressFor(inst.operands[1]);
        emit(store);
    }

    void
    lowerAlloca(const Instruction &inst)
    {
        int frame_index = static_cast<int>(mfn_.frame.size());
        mfn_.frame.push_back({fn_.name + "/" + inst.result,
                              inst.sourceType->sizeInBytes()});
        MOperand dst = valueReg_[inst.result];
        MInst lea = make(MOpcode::LEA, 64);
        lea.ops = {dst};
        lea.addr.baseKind = MAddress::BaseKind::FrameIndex;
        lea.addr.frameIndex = frame_index;
        emit(lea);
    }

    void
    lowerPhi(const BasicBlock &block, const Instruction &inst)
    {
        MOperand dst = valueReg_[inst.result];
        MInst phi = make(MOpcode::PHI, dst.width);
        phi.ops = {dst};
        for (const llvmir::PhiIncoming &incoming : inst.incoming) {
            MOperand value;
            if (incoming.value.isVar()) {
                value = valueReg_[incoming.value.name];
            } else {
                // Constants (and globals) must be materialized in the
                // predecessor block; PHI operands are registers.
                value = materializeInPred(incoming.block,
                                          incoming.value, dst.width);
            }
            phi.incoming.emplace_back(value,
                                      hints_.blockMap[incoming.block]);
        }
        (void)block;
        emit(phi);
    }

    MOperand
    materializeInPred(const std::string &pred_block, const Value &value,
                      unsigned width)
    {
        MOperand reg = freshReg(value.isGlobal() ? 64 : width);
        pendingMaterializations_.push_back({pred_block, value, reg});
        if (value.isConst()) {
            hints_.constRegs[reg.reg] =
                value.constant.zextTo(64).truncTo(width);
        }
        return reg;
    }

    void
    flushPendingMaterializations()
    {
        for (const Pending &pending : pendingMaterializations_) {
            MBasicBlock *mblock = nullptr;
            for (size_t i = 0; i < fn_.blocks.size(); ++i) {
                if (fn_.blocks[i].name == pending.block)
                    mblock = &mfn_.blocks[i];
            }
            KEQ_ASSERT(mblock != nullptr, "missing predecessor block");
            // Insert before the trailing CMP/JCC/JMP/RET run so flags and
            // control flow stay adjacent.
            size_t insert_at = mblock->insts.size();
            while (insert_at > 0) {
                MOpcode op = mblock->insts[insert_at - 1].op;
                if (op == MOpcode::JMP || op == MOpcode::JCC ||
                    op == MOpcode::RET || op == MOpcode::CMPrr ||
                    op == MOpcode::CMPri || op == MOpcode::TESTrr ||
                    op == MOpcode::UD2) {
                    --insert_at;
                } else {
                    break;
                }
            }
            MInst inst;
            if (pending.value.isConst()) {
                inst = make(MOpcode::MOVri, pending.reg.width);
                inst.ops = {pending.reg,
                            MOperand::immediate(
                                pending.value.constant.zextTo(64)
                                    .truncTo(pending.reg.width))};
            } else {
                KEQ_ASSERT(pending.value.isGlobal(),
                           "unexpected pending materialization");
                inst = make(MOpcode::LEA, 64);
                inst.ops = {pending.reg};
                inst.addr.baseKind = MAddress::BaseKind::Global;
                inst.addr.global = pending.value.name;
            }
            mblock->insts.insert(
                mblock->insts.begin() + static_cast<long>(insert_at),
                std::move(inst));
        }
    }

    void
    lowerSelect(const Instruction &inst)
    {
        // Branchless select: mask = -zext(cond); r = (a & mask) | (b & ~mask).
        MOperand dst = valueReg_[inst.result];
        unsigned width = dst.width;
        MOperand cond = regFor(inst.operands[0]);
        MOperand a = regFor(inst.operands[1]);
        MOperand b = regFor(inst.operands[2]);

        MOperand wide = cond;
        if (cond.width != width) {
            wide = freshReg(width);
            MInst zx = make(MOpcode::MOVZXrr, cond.width);
            zx.ops = {wide, cond};
            emit(zx);
        }
        MOperand mask = freshReg(width);
        MInst neg = make(MOpcode::NEGr, width);
        neg.ops = {mask, wide};
        emit(neg);
        MOperand inv = freshReg(width);
        MInst not_i = make(MOpcode::NOTr, width);
        not_i.ops = {inv, mask};
        emit(not_i);
        MOperand lhs = freshReg(width);
        MInst and_a = make(MOpcode::ANDrr, width);
        and_a.ops = {lhs, a, mask};
        emit(and_a);
        MOperand rhs = freshReg(width);
        MInst and_b = make(MOpcode::ANDrr, width);
        and_b.ops = {rhs, b, inv};
        emit(and_b);
        MInst or_i = make(MOpcode::ORrr, width);
        or_i.ops = {dst, lhs, rhs};
        emit(or_i);
    }

    void
    lowerCondBr(const Instruction &inst)
    {
        const Value &cond = inst.operands[0];
        CondCode cc = CondCode::NE;
        if (cond.isVar() && foldedCompares_.count(cond.name)) {
            const Instruction *icmp = foldedCmpInfo_[cond.name];
            emitCompare(*icmp);
            cc = condCodeFor(icmp->pred);
        } else {
            MOperand reg = regFor(cond);
            MInst test = make(MOpcode::TESTrr, reg.width);
            test.ops = {reg, reg};
            emit(test);
            cc = CondCode::NE;
        }
        MInst jcc = make(MOpcode::JCC, 0);
        jcc.cc = cc;
        jcc.target = hints_.blockMap[inst.target1];
        emit(jcc);
        MInst jmp = make(MOpcode::JMP, 0);
        jmp.target = hints_.blockMap[inst.target2];
        emit(jmp);
    }

    void
    lowerSwitch(const Instruction &inst)
    {
        // Sequential compare-and-branch chain (our Virtual x86, like the
        // paper's, has no jump tables).
        MOperand selector = regFor(inst.operands[0]);
        for (const auto &[value, target] : inst.switchCases) {
            MInst cmp = make(MOpcode::CMPri, selector.width);
            cmp.ops = {selector,
                       MOperand::immediate(
                           value.zextTo(64).truncTo(selector.width))};
            emit(cmp);
            MInst je = make(MOpcode::JCC, 0);
            je.cc = CondCode::E;
            je.target = hints_.blockMap[target];
            emit(je);
        }
        MInst jmp = make(MOpcode::JMP, 0);
        jmp.target = hints_.blockMap[inst.target1];
        emit(jmp);
    }

    void
    lowerRet(const Instruction &inst)
    {
        if (!inst.operands.empty()) {
            unsigned width = mfn_.retWidth;
            const Value &value = inst.operands[0];
            if (value.isConst()) {
                MInst mov = make(MOpcode::MOVri, width);
                mov.ops = {MOperand::physReg("rax", width),
                           MOperand::immediate(
                               value.constant.zextTo(64).truncTo(width))};
                emit(mov);
            } else {
                MOperand src = regFor(value);
                MInst copy = make(MOpcode::COPY, width);
                copy.ops = {MOperand::physReg("rax", width), src};
                emit(copy);
            }
        }
        emit(make(MOpcode::RET, 0));
    }

    void
    lowerCall(const Instruction &inst)
    {
        if (inst.operands.size() > 6) {
            throw Error(fn_.name + ": more than 6 call arguments is "
                                   "outside the supported fragment");
        }
        MInst call = make(MOpcode::CALL, 0);
        for (size_t i = 0; i < inst.operands.size(); ++i) {
            const Value &arg = inst.operands[i];
            unsigned width = arg.isGlobal() ? 64
                                            : machineWidth(arg.type);
            MOperand phys = MOperand::physReg(kArgRegs[i], width);
            if (arg.isConst()) {
                MInst mov = make(MOpcode::MOVri, width);
                mov.ops = {phys, MOperand::immediate(
                                     arg.constant.zextTo(64).truncTo(
                                         width))};
                emit(mov);
            } else {
                MOperand src = regFor(arg);
                MInst copy = make(MOpcode::COPY, width);
                copy.ops = {phys, src};
                emit(copy);
            }
            call.callArgs.push_back(phys);
        }
        call.target = inst.callee;
        call.callSiteId = inst.callSiteId;
        call.retWidth =
            inst.type->isVoid() ? 0 : machineWidth(inst.type);
        emit(call);
        if (!inst.type->isVoid() && !inst.result.empty()) {
            MOperand dst = valueReg_[inst.result];
            MInst copy = make(MOpcode::COPY, dst.width);
            copy.ops = {dst, MOperand::physReg("rax", dst.width)};
            emit(copy);
        }
    }

    // --- peephole passes ----------------------------------------------------------

    /** Counts uses of a virtual register across the machine function. */
    unsigned
    countVRegUses(const std::string &reg) const
    {
        unsigned count = 0;
        auto scan_op = [&](const MOperand &op) {
            if (op.kind == MOperand::Kind::VirtReg && op.reg == reg)
                ++count;
        };
        for (const MBasicBlock &block : mfn_.blocks) {
            for (const MInst &inst : block.insts) {
                // ops[0] is a def for most opcodes but a use for
                // CMP/TEST/MOVmr/DIV/IDIV.
                bool first_is_use =
                    inst.op == MOpcode::CMPrr ||
                    inst.op == MOpcode::CMPri ||
                    inst.op == MOpcode::TESTrr ||
                    inst.op == MOpcode::MOVmr ||
                    inst.op == MOpcode::DIV || inst.op == MOpcode::IDIV;
                if (first_is_use && !inst.ops.empty())
                    scan_op(inst.ops[0]);
                for (size_t i = 1; i < inst.ops.size(); ++i)
                    scan_op(inst.ops[i]);
                if (inst.addr.baseKind == MAddress::BaseKind::Reg)
                    scan_op(inst.addr.baseReg);
                if (inst.addr.hasIndex())
                    scan_op(inst.addr.indexReg);
                for (const auto &[value, pred] : inst.incoming)
                    scan_op(value);
                for (const MOperand &arg : inst.callArgs)
                    scan_op(arg);
            }
        }
        return count;
    }

    /**
     * Folds `%a = MOVWrm [addr]; %b = MOVZX %a` into a zero-extending
     * load. Correct: MOVZX(dst)rm(W) — same W-bit access. Bug::
     * LoadWidening: MOV(dstW)rm — a *wider* access (LLVM PR4737).
     */
    void
    foldExtLoads()
    {
        for (MBasicBlock &block : mfn_.blocks) {
            for (size_t i = 0; i + 1 < block.insts.size(); ++i) {
                MInst &load = block.insts[i];
                MInst &ext = block.insts[i + 1];
                if (load.op != MOpcode::MOVrm ||
                    ext.op != MOpcode::MOVZXrr) {
                    continue;
                }
                if (ext.ops[1].kind != MOperand::Kind::VirtReg ||
                    ext.ops[1].reg != load.ops[0].reg) {
                    continue;
                }
                if (countVRegUses(load.ops[0].reg) != 1)
                    continue;
                MInst folded;
                if (options_.bug == Bug::LoadWidening) {
                    // Miscompilation: load at the *destination* width.
                    folded = make(MOpcode::MOVrm, ext.ops[0].width);
                } else {
                    folded = make(MOpcode::MOVZXrm, load.width);
                }
                folded.ops = {ext.ops[0]};
                folded.addr = load.addr;
                block.insts[i] = folded;
                block.insts.erase(block.insts.begin() +
                                  static_cast<long>(i) + 1);
            }
        }
    }

    /** Effective (global, disp) of a store address, looking through
     *  LEA/COPY chains; nullopt when not globally resolvable. */
    std::optional<std::pair<std::string, int64_t>>
    resolveGlobalAddress(const MAddress &addr) const
    {
        if (addr.hasIndex())
            return std::nullopt;
        if (addr.baseKind == MAddress::BaseKind::Global)
            return std::make_pair(addr.global, addr.disp);
        if (addr.baseKind != MAddress::BaseKind::Reg ||
            addr.baseReg.kind != MOperand::Kind::VirtReg) {
            return std::nullopt;
        }
        // Follow the SSA def chain of the base register.
        std::string reg = addr.baseReg.reg;
        int64_t disp = addr.disp;
        for (unsigned depth = 0; depth < 16; ++depth) {
            const MInst *def = nullptr;
            for (const MBasicBlock &block : mfn_.blocks) {
                for (const MInst &inst : block.insts) {
                    if (!inst.ops.empty() &&
                        inst.ops[0].kind == MOperand::Kind::VirtReg &&
                        inst.ops[0].reg == reg &&
                        (inst.op == MOpcode::LEA ||
                         inst.op == MOpcode::COPY)) {
                        def = &inst;
                    }
                }
            }
            if (def == nullptr)
                return std::nullopt;
            if (def->op == MOpcode::COPY) {
                if (def->ops[1].kind != MOperand::Kind::VirtReg)
                    return std::nullopt;
                reg = def->ops[1].reg;
                continue;
            }
            // LEA
            if (def->addr.baseKind == MAddress::BaseKind::Global &&
                !def->addr.hasIndex()) {
                return std::make_pair(def->addr.global,
                                      disp + def->addr.disp);
            }
            if (def->addr.baseKind == MAddress::BaseKind::Reg &&
                def->addr.baseReg.kind == MOperand::Kind::VirtReg &&
                !def->addr.hasIndex()) {
                disp += def->addr.disp;
                reg = def->addr.baseReg.reg;
                continue;
            }
            return std::nullopt;
        }
        return std::nullopt;
    }

    /**
     * Merges two adjacent constant stores to the same global into one
     * wider store. Correct: only when no intervening instruction may
     * touch memory, placed at the earlier position. Bug::StoreMergeWAW:
     * no intervening check, placed at the *later* position, so an
     * overlapping store between them gets reordered (LLVM PR25154).
     */
    void
    mergeStores()
    {
        for (MBasicBlock &block : mfn_.blocks) {
            bool merged = true;
            while (merged) {
                merged = false;
                struct StoreInfo
                {
                    size_t index;
                    std::string global;
                    int64_t disp;
                    unsigned width;
                };
                std::vector<StoreInfo> stores;
                for (size_t i = 0; i < block.insts.size(); ++i) {
                    const MInst &inst = block.insts[i];
                    if (inst.op != MOpcode::MOVmi)
                        continue;
                    auto resolved = resolveGlobalAddress(inst.addr);
                    if (!resolved)
                        continue;
                    stores.push_back({i, resolved->first,
                                      resolved->second, inst.width});
                }
                for (size_t x = 0; x < stores.size() && !merged; ++x) {
                    for (size_t y = x + 1; y < stores.size() && !merged;
                         ++y) {
                        const StoreInfo &a = stores[x];
                        const StoreInfo &b = stores[y];
                        if (a.global != b.global || a.width != b.width)
                            continue;
                        unsigned bytes = a.width / 8;
                        if (a.width * 2 > 64)
                            continue;
                        bool a_low =
                            a.disp + static_cast<int64_t>(bytes) ==
                            b.disp;
                        bool b_low =
                            b.disp + static_cast<int64_t>(bytes) ==
                            a.disp;
                        if (!a_low && !b_low)
                            continue;
                        if (options_.bug != Bug::StoreMergeWAW &&
                            hasInterveningMemOp(block, a.index,
                                                b.index)) {
                            continue;
                        }
                        mergePair(block, a.index, b.index, a_low);
                        merged = true;
                    }
                }
            }
        }
    }

    bool
    hasInterveningMemOp(const MBasicBlock &block, size_t i,
                        size_t j) const
    {
        for (size_t k = i + 1; k < j; ++k) {
            switch (block.insts[k].op) {
              case MOpcode::MOVrm:
              case MOpcode::MOVmr:
              case MOpcode::MOVmi:
              case MOpcode::MOVZXrm:
              case MOpcode::MOVSXrm:
              case MOpcode::CALL:
                return true;
              default:
                break;
            }
        }
        return false;
    }

    void
    mergePair(MBasicBlock &block, size_t i, size_t j, bool i_is_low)
    {
        MInst &first = block.insts[i];
        MInst &second = block.insts[j];
        const MInst &low = i_is_low ? first : second;
        const MInst &high = i_is_low ? second : first;
        unsigned width = first.width;

        uint64_t low_bits = low.ops[0].imm.zext();
        uint64_t high_bits = high.ops[0].imm.zext();
        ApInt combined(width * 2, (high_bits << width) | low_bits);

        MInst mergedInst = make(MOpcode::MOVmi, width * 2);
        mergedInst.ops = {MOperand::immediate(combined)};
        mergedInst.addr = low.addr;

        if (options_.bug == Bug::StoreMergeWAW) {
            // Buggy: the merged store replaces the *later* instruction,
            // sinking the earlier write past everything in between.
            block.insts[j] = mergedInst;
            block.insts.erase(block.insts.begin() +
                              static_cast<long>(i));
        } else {
            block.insts[i] = mergedInst;
            block.insts.erase(block.insts.begin() +
                              static_cast<long>(j));
        }
    }

    struct Pending
    {
        std::string block;
        Value value;
        MOperand reg;
    };

    const llvmir::Module &module_;
    const Function &fn_;
    const IselOptions &options_;
    FunctionHints &hints_;
    MFunction mfn_;
    MBasicBlock *current_ = nullptr;
    unsigned nextVReg_ = 0;
    std::map<std::string, MOperand> valueReg_;
    std::set<std::string> foldedCompares_;
    std::map<std::string, const Instruction *> foldedCmpInfo_;
    std::vector<Pending> pendingMaterializations_;
};

} // namespace

MFunction
lowerFunction(const llvmir::Module &module, const Function &fn,
              const IselOptions &options, FunctionHints &hints)
{
    KEQ_ASSERT(!fn.isDeclaration(), "cannot lower a declaration");
    return FunctionLowering(module, fn, options, hints).run();
}

MModule
lowerModule(const llvmir::Module &module, const IselOptions &options,
            ModuleHints &hints)
{
    MModule mmodule;
    for (const Function &fn : module.functions) {
        if (fn.isDeclaration())
            continue;
        FunctionHints fn_hints;
        mmodule.functions.push_back(
            lowerFunction(module, fn, options, fn_hints));
        hints[fn.name] = std::move(fn_hints);
    }
    return mmodule;
}

} // namespace keq::isel
