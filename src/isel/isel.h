#ifndef KEQ_ISEL_ISEL_H
#define KEQ_ISEL_ISEL_H

/**
 * @file
 * Instruction Selection: LLVM IR -> Virtual x86 (Section 4.1).
 *
 * A faithful -O0-style lowering in the spirit of LLVM's SDISel: one
 * machine block per IR block, every IR value materialized into a fresh
 * virtual register, SysV calling convention, phi preservation, and
 * cmp/jcc folding for compare-and-branch patterns. Two optional peephole
 * "optimizations" can be enabled, each in a correct and a deliberately
 * buggy variant reproducing the miscompilations of Section 5.2:
 *
 *  - Store merging: adjacent constant stores merge into one wider store.
 *    The buggy variant (LLVM PR25154) sinks the merged store to the later
 *    position without checking intervening overlapping writes, violating
 *    a write-after-write dependency.
 *  - Load narrowing of zext(load) patterns into zero-extending loads.
 *    The buggy variant (LLVM PR4737) widens the memory access instead,
 *    reading out of bounds.
 *
 * The hint generator (Section 4.5) records, per function, the block
 * correspondence, the LLVM-value-to-virtual-register map, and the
 * constants materialized into registers — the ~500-line compiler-side
 * component of the paper's TV system.
 */

#include <map>
#include <string>

#include "src/llvmir/ir.h"
#include "src/support/apint.h"
#include "src/vx86/mir.h"

namespace keq::isel {

/** Reintroducible Instruction Selection bugs (Section 5.2). */
enum class Bug : uint8_t {
    None,
    StoreMergeWAW, ///< Merged store sinks past an overlapping store.
    LoadWidening,  ///< zext(load) folds into a *wider* load (OOB).
};

/** Lowering options. */
struct IselOptions
{
    Bug bug = Bug::None;
    /** Enable the store-merging peephole (correct unless bug says so). */
    bool mergeStores = false;
    /** Enable zext(load) folding (correct unless bug says so). */
    bool foldExtLoad = false;
};

/** Compiler-generated hints for one function pair (Section 4.5). */
struct FunctionHints
{
    /** LLVM block name -> machine block name. Includes loop headers. */
    std::map<std::string, std::string> blockMap;
    /** LLVM value name (with %) -> virtual register holding it. */
    std::map<std::string, std::string> regMap;
    /** Virtual registers holding known constants (materialized values). */
    std::map<std::string, support::ApInt> constRegs;
};

/** Hints for a whole module, keyed by function name. */
using ModuleHints = std::map<std::string, FunctionHints>;

/**
 * Lowers every defined function of @p module. Returns the machine module;
 * fills @p hints. Throws support::Error on constructs outside the
 * supported fragment (e.g. 64-bit division, sext from i1).
 */
vx86::MModule lowerModule(const llvmir::Module &module,
                          const IselOptions &options, ModuleHints &hints);

/** Lowers a single function (same contract as lowerModule). */
vx86::MFunction lowerFunction(const llvmir::Module &module,
                              const llvmir::Function &fn,
                              const IselOptions &options,
                              FunctionHints &hints);

} // namespace keq::isel

#endif // KEQ_ISEL_ISEL_H
