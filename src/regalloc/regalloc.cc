#include "src/regalloc/regalloc.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/support/diagnostics.h"
#include "src/vx86/cfg_adapter.h"

namespace keq::regalloc {

using vx86::MBasicBlock;
using vx86::MFunction;
using vx86::MInst;
using vx86::MOpcode;
using vx86::MOperand;

namespace {

bool
isVirtReg(const std::string &name)
{
    return name.size() > 3 && name.substr(0, 3) == "%vr";
}

/** Allocation color pool, callee-saved first so values that live across
 *  calls color without spilling (caller-saved regs interfere with CALL
 *  defs and are skipped automatically for those values). */
const char *const kColorPool[] = {
    "rbx", "r12", "r13", "r14", "r15", "rcx", "rsi",
    "rdi", "r8",  "r9",  "r10", "r11", "rax", "rdx",
};

/** Finds the insertion point before a block's trailing jump sequence. */
size_t
beforeTerminators(const MBasicBlock &block)
{
    size_t at = block.insts.size();
    while (at > 0) {
        MOpcode op = block.insts[at - 1].op;
        if (op == MOpcode::JMP || op == MOpcode::JCC ||
            op == MOpcode::RET || op == MOpcode::UD2) {
            --at;
        } else {
            break;
        }
    }
    return at;
}

/**
 * Replaces PHIs by COPYs in the predecessor blocks, routed through fresh
 * temporaries (a full parallel-copy sequentialization: every source is
 * read into a temp before any destination is written).
 */
void
eliminatePhis(MFunction &fn, unsigned &next_vreg)
{
    for (MBasicBlock &block : fn.blocks) {
        // Collect this block's phi group.
        std::vector<MInst> phis;
        size_t i = 0;
        while (i < block.insts.size() &&
               block.insts[i].op == MOpcode::PHI) {
            phis.push_back(block.insts[i]);
            ++i;
        }
        if (phis.empty())
            continue;
        block.insts.erase(block.insts.begin(),
                          block.insts.begin() + static_cast<long>(i));

        // Per predecessor: temp copies then destination copies.
        std::set<std::string> preds;
        for (const MInst &phi : phis) {
            for (const auto &[value, pred] : phi.incoming)
                preds.insert(pred);
        }
        for (const std::string &pred_name : preds) {
            MBasicBlock *pred = nullptr;
            for (MBasicBlock &candidate : fn.blocks) {
                if (candidate.name == pred_name)
                    pred = &candidate;
            }
            KEQ_ASSERT(pred != nullptr, "phi predecessor missing");

            std::vector<MInst> reads, writes;
            for (const MInst &phi : phis) {
                const MOperand *source = nullptr;
                for (const auto &[value, from] : phi.incoming) {
                    if (from == pred_name)
                        source = &value;
                }
                KEQ_ASSERT(source != nullptr,
                           "phi lacks incoming for " + pred_name);
                MOperand temp = MOperand::virtReg(next_vreg++,
                                                  phi.ops[0].width);
                MInst read;
                read.op = MOpcode::COPY;
                read.width = temp.width;
                read.ops = {temp, *source};
                reads.push_back(read);
                MInst write;
                write.op = MOpcode::COPY;
                write.width = temp.width;
                write.ops = {phi.ops[0], temp};
                writes.push_back(write);
            }
            size_t at = beforeTerminators(*pred);
            std::vector<MInst> batch = reads;
            batch.insert(batch.end(), writes.begin(), writes.end());
            pred->insts.insert(pred->insts.begin() +
                                   static_cast<long>(at),
                               batch.begin(), batch.end());
        }
    }
}

/** Pairwise interference sets keyed by register name. */
using Interference = std::map<std::string, std::set<std::string>>;

void
addInterference(Interference &graph, const std::string &a,
                const std::string &b)
{
    if (a == b)
        return;
    graph[a].insert(b);
    graph[b].insert(a);
}

Interference
buildInterference(const MFunction &fn)
{
    analysis::Cfg cfg = vx86::buildCfg(fn);
    std::vector<analysis::BlockUseDef> facts = vx86::useDefFacts(fn, cfg);
    analysis::Liveness liveness = analysis::computeLiveness(cfg, facts);

    auto tracked = [](const std::string &name) {
        return isVirtReg(name) || vx86::isPhysReg(name);
    };

    Interference graph;
    for (const MBasicBlock &block : fn.blocks) {
        std::set<std::string> live =
            liveness.liveOut[cfg.indexOf(block.name)];
        for (size_t i = block.insts.size(); i-- > 0;) {
            std::set<std::string> use, def;
            vx86::minstUseDef(block.insts[i], fn, use, def);
            for (const std::string &defined : def) {
                if (!tracked(defined))
                    continue;
                graph.try_emplace(defined); // ensure node exists
                for (const std::string &other : live) {
                    if (tracked(other) && other != defined)
                        addInterference(graph, defined, other);
                }
            }
            for (const std::string &defined : def)
                live.erase(defined);
            for (const std::string &used : use) {
                if (tracked(used))
                    live.insert(used);
            }
        }
    }
    return graph;
}

} // namespace

AllocationResult
allocateRegisters(const MFunction &input)
{
    AllocationResult result;
    result.fn = input;
    MFunction &fn = result.fn;

    // Continue virtual register numbering past the existing maximum.
    unsigned next_vreg = 0;
    for (const MBasicBlock &block : fn.blocks) {
        for (const MInst &inst : block.insts) {
            auto bump = [&](const MOperand &op) {
                if (op.kind == MOperand::Kind::VirtReg) {
                    unsigned number = static_cast<unsigned>(std::stoul(
                        op.reg.substr(3, op.reg.rfind('_') - 3)));
                    next_vreg = std::max(next_vreg, number + 1);
                }
            };
            for (const MOperand &op : inst.ops)
                bump(op);
            for (const auto &[value, pred] : inst.incoming)
                bump(value);
        }
    }

    eliminatePhis(fn, next_vreg);
    Interference graph = buildInterference(fn);

    // Greedy coloring, highest degree first.
    std::vector<std::string> vregs;
    for (const auto &[node, neighbours] : graph) {
        if (isVirtReg(node))
            vregs.push_back(node);
    }
    std::sort(vregs.begin(), vregs.end(),
              [&](const std::string &a, const std::string &b) {
                  size_t da = graph[a].size(), db = graph[b].size();
                  return da != db ? da > db : a < b;
              });

    for (const std::string &vreg : vregs) {
        std::set<std::string> forbidden;
        for (const std::string &neighbour : graph[vreg]) {
            if (vx86::isPhysReg(neighbour)) {
                forbidden.insert(neighbour);
            } else {
                auto it = result.assignment.find(neighbour);
                if (it != result.assignment.end())
                    forbidden.insert(it->second);
            }
        }
        const char *chosen = nullptr;
        for (const char *color : kColorPool) {
            if (!forbidden.count(color)) {
                chosen = color;
                break;
            }
        }
        if (chosen == nullptr) {
            throw support::Error(
                fn.name + ": register pressure exceeds the register "
                          "file (spilling not implemented)");
        }
        result.assignment[vreg] = chosen;
    }

    // Rewrite every virtual register operand to its physical register at
    // the same access width.
    auto rewrite = [&](MOperand &op) {
        if (op.kind != MOperand::Kind::VirtReg)
            return;
        auto it = result.assignment.find(op.reg);
        KEQ_ASSERT(it != result.assignment.end(),
                   "unallocated virtual register " + op.reg);
        op = MOperand::physReg(it->second, op.width);
    };
    for (MBasicBlock &block : fn.blocks) {
        for (MInst &inst : block.insts) {
            for (MOperand &op : inst.ops)
                rewrite(op);
            if (inst.addr.baseKind == vx86::MAddress::BaseKind::Reg)
                rewrite(inst.addr.baseReg);
            if (inst.addr.hasIndex())
                rewrite(inst.addr.indexReg);
            KEQ_ASSERT(inst.op != MOpcode::PHI,
                       "phi survived elimination");
        }
    }
    return result;
}

} // namespace keq::regalloc
