#ifndef KEQ_REGALLOC_REGALLOC_H
#define KEQ_REGALLOC_REGALLOC_H

/**
 * @file
 * Register allocation for Virtual x86, plus the hints its validation
 * needs.
 *
 * The paper's Section 1 describes ongoing work applying KEQ *unchanged*
 * to LLVM's register allocation with a VC generator that treats the
 * allocator as a black box. This module reproduces that experiment:
 *
 *  1. PHI elimination: phi pseudo-instructions are replaced by COPYs in
 *     the predecessor blocks (routed through fresh temporaries, so the
 *     classic lost-copy/swap hazards of parallel copies cannot bite);
 *  2. liveness-based interference construction (per-instruction, with
 *     physical registers precolored — values live across CALLs therefore
 *     end up in callee-saved registers);
 *  3. greedy graph coloring over the general-purpose register file.
 *
 * Spilling is not implemented: functions whose pressure exceeds the
 * register file are rejected (support::Error), mirroring the unsupported
 * category of the paper's evaluation.
 *
 * The output is a phi-free machine function using physical registers
 * only, plus the vreg-to-register assignment — the black-box "hint" the
 * regalloc VC generator (src/vcgen/regalloc_vcgen.h) consumes.
 */

#include <map>
#include <string>

#include "src/vx86/mir.h"

namespace keq::regalloc {

/** Result of allocating one function. */
struct AllocationResult
{
    /** The rewritten, phi-free, physical-register-only function. */
    vx86::MFunction fn;
    /** Virtual register name -> canonical physical register name. */
    std::map<std::string, std::string> assignment;
};

/**
 * Allocates registers for @p fn. Throws support::Error when the function
 * needs more simultaneously-live values than available registers.
 */
AllocationResult allocateRegisters(const vx86::MFunction &fn);

} // namespace keq::regalloc

#endif // KEQ_REGALLOC_REGALLOC_H
