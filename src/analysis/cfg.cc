#include "src/analysis/cfg.h"

#include <algorithm>

#include "src/support/diagnostics.h"

namespace keq::analysis {

size_t
Cfg::addBlock(std::string name)
{
    size_t index = names_.size();
    KEQ_ASSERT(index_.emplace(name, index).second,
               "duplicate block " + name);
    names_.push_back(std::move(name));
    succs_.emplace_back();
    preds_.emplace_back();
    return index;
}

void
Cfg::addEdge(size_t from, size_t to)
{
    KEQ_ASSERT(from < numBlocks() && to < numBlocks(),
               "edge endpoint out of range");
    succs_[from].push_back(to);
    preds_[to].push_back(from);
}

size_t
Cfg::indexOf(const std::string &name) const
{
    auto it = index_.find(name);
    KEQ_ASSERT(it != index_.end(), "unknown block " + name);
    return it->second;
}

namespace {

/** Reverse postorder of reachable blocks. */
std::vector<size_t>
reversePostorder(const Cfg &cfg)
{
    std::vector<size_t> order;
    std::vector<uint8_t> state(cfg.numBlocks(), 0);
    std::vector<std::pair<size_t, size_t>> stack{{cfg.entry(), 0}};
    state[cfg.entry()] = 1;
    while (!stack.empty()) {
        auto [block, index] = stack.back();
        const std::vector<size_t> &succs = cfg.successors(block);
        if (index >= succs.size()) {
            order.push_back(block);
            stack.pop_back();
            continue;
        }
        ++stack.back().second;
        size_t next = succs[index];
        if (state[next] == 0) {
            state[next] = 1;
            stack.emplace_back(next, size_t{0});
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace

std::vector<size_t>
immediateDominators(const Cfg &cfg)
{
    const size_t kUndef = SIZE_MAX;
    std::vector<size_t> idom(cfg.numBlocks(), kUndef);
    std::vector<size_t> rpo = reversePostorder(cfg);
    std::vector<size_t> rpo_number(cfg.numBlocks(), kUndef);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpo_number[rpo[i]] = i;

    idom[cfg.entry()] = cfg.entry();
    auto intersect = [&](size_t a, size_t b) {
        while (a != b) {
            while (rpo_number[a] > rpo_number[b])
                a = idom[a];
            while (rpo_number[b] > rpo_number[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t block : rpo) {
            if (block == cfg.entry())
                continue;
            size_t new_idom = kUndef;
            for (size_t pred : cfg.predecessors(block)) {
                if (idom[pred] == kUndef)
                    continue; // unreachable or not yet processed
                new_idom = new_idom == kUndef
                               ? pred
                               : intersect(pred, new_idom);
            }
            if (new_idom != kUndef && idom[block] != new_idom) {
                idom[block] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::vector<size_t> &idom, size_t a, size_t b)
{
    if (idom[b] == SIZE_MAX)
        return false; // b unreachable
    size_t current = b;
    while (true) {
        if (current == a)
            return true;
        if (idom[current] == current)
            return false; // reached the entry
        current = idom[current];
    }
}

std::vector<NaturalLoop>
naturalLoops(const Cfg &cfg)
{
    std::vector<size_t> idom = immediateDominators(cfg);
    std::map<size_t, NaturalLoop> by_header;

    for (size_t tail = 0; tail < cfg.numBlocks(); ++tail) {
        if (idom[tail] == SIZE_MAX)
            continue; // unreachable
        for (size_t header : cfg.successors(tail)) {
            if (!dominates(idom, header, tail))
                continue;
            // Back edge tail -> header: collect the natural loop body.
            NaturalLoop &loop = by_header
                                    .try_emplace(header,
                                                 NaturalLoop{header, {}})
                                    .first->second;
            loop.blocks.insert(header);
            std::vector<size_t> work{tail};
            while (!work.empty()) {
                size_t block = work.back();
                work.pop_back();
                if (!loop.blocks.insert(block).second)
                    continue;
                for (size_t pred : cfg.predecessors(block))
                    work.push_back(pred);
            }
        }
    }

    std::vector<NaturalLoop> loops;
    for (auto &[header, loop] : by_header)
        loops.push_back(std::move(loop));
    return loops;
}

std::set<std::string>
Liveness::edgeLive(const Cfg &cfg, const std::vector<BlockUseDef> &facts,
                   size_t pred, size_t block) const
{
    std::set<std::string> live = liveIn[block];
    auto it = facts[block].phiUse.find(pred);
    if (it != facts[block].phiUse.end())
        live.insert(it->second.begin(), it->second.end());
    (void)cfg;
    return live;
}

Liveness
computeLiveness(const Cfg &cfg, const std::vector<BlockUseDef> &facts)
{
    KEQ_ASSERT(facts.size() == cfg.numBlocks(),
               "liveness facts size mismatch");
    Liveness result;
    result.liveIn.assign(cfg.numBlocks(), {});
    result.liveOut.assign(cfg.numBlocks(), {});

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate backwards for faster convergence.
        for (size_t i = cfg.numBlocks(); i-- > 0;) {
            std::set<std::string> out;
            for (size_t succ : cfg.successors(i)) {
                out.insert(result.liveIn[succ].begin(),
                           result.liveIn[succ].end());
                auto it = facts[succ].phiUse.find(i);
                if (it != facts[succ].phiUse.end())
                    out.insert(it->second.begin(), it->second.end());
            }
            std::set<std::string> in = facts[i].use;
            for (const std::string &name : out) {
                if (!facts[i].def.count(name))
                    in.insert(name);
            }
            if (out != result.liveOut[i] || in != result.liveIn[i]) {
                result.liveOut[i] = std::move(out);
                result.liveIn[i] = std::move(in);
                changed = true;
            }
        }
    }
    return result;
}

} // namespace keq::analysis
