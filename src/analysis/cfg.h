#ifndef KEQ_ANALYSIS_CFG_H
#define KEQ_ANALYSIS_CFG_H

/**
 * @file
 * Language-neutral control-flow graph and analyses.
 *
 * The VC generator (Section 4.5) needs loop headers (to place
 * synchronization points covering cycles) and per-edge live value sets (to
 * emit the equality constraints). Both analyses run on this generic CFG;
 * each IR provides a small adapter producing it (llvmir::buildCfg,
 * vx86::buildCfg).
 */

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace keq::analysis {

/** A CFG over dense block indices with stable names. */
class Cfg
{
  public:
    /** Adds a block; returns its index. */
    size_t addBlock(std::string name);
    /** Adds a directed edge; blocks must exist. */
    void addEdge(size_t from, size_t to);

    size_t numBlocks() const { return names_.size(); }
    size_t entry() const { return 0; }
    const std::string &name(size_t block) const { return names_[block]; }
    /** Index of a named block; asserts existence. */
    size_t indexOf(const std::string &name) const;

    const std::vector<size_t> &
    successors(size_t block) const
    {
        return succs_[block];
    }

    const std::vector<size_t> &
    predecessors(size_t block) const
    {
        return preds_[block];
    }

  private:
    std::vector<std::string> names_;
    std::vector<std::vector<size_t>> succs_;
    std::vector<std::vector<size_t>> preds_;
    std::map<std::string, size_t> index_;
};

/**
 * Immediate dominators (Cooper-Harvey-Kennedy). Unreachable blocks get
 * idom == SIZE_MAX. The entry's idom is itself.
 */
std::vector<size_t> immediateDominators(const Cfg &cfg);

/** True iff @p a dominates @p b under the given idom tree. */
bool dominates(const std::vector<size_t> &idom, size_t a, size_t b);

/** A natural loop: header plus body blocks (header included). */
struct NaturalLoop
{
    size_t header;
    std::set<size_t> blocks;
};

/**
 * Natural loops from back edges (tail -> header with header dominating
 * tail); loops sharing a header are merged.
 */
std::vector<NaturalLoop> naturalLoops(const Cfg &cfg);

/**
 * Per-block dataflow facts for SSA liveness.
 *
 * `use` holds upward-exposed non-phi uses; `def` holds all definitions
 * (including phi results); `phiUse[p]` holds the values the block's phis
 * read when entered from predecessor index p (those are live-out of the
 * edge, not live-in of the block).
 */
struct BlockUseDef
{
    std::set<std::string> use;
    std::set<std::string> def;
    std::map<size_t, std::set<std::string>> phiUse;
};

/** Liveness results. */
struct Liveness
{
    /** Live-in per block (excludes the block's own phi defs and inputs). */
    std::vector<std::set<std::string>> liveIn;
    /** Live-out per block. */
    std::vector<std::set<std::string>> liveOut;

    /**
     * Values live along the edge @p pred -> @p block: the target's live-in
     * plus the values its phis read from @p pred. This is exactly the set
     * a sync point placed on that edge must constrain.
     */
    std::set<std::string> edgeLive(const Cfg &cfg,
                                   const std::vector<BlockUseDef> &facts,
                                   size_t pred, size_t block) const;
};

/** Backward dataflow liveness over SSA with phi-aware edges. */
Liveness computeLiveness(const Cfg &cfg,
                         const std::vector<BlockUseDef> &facts);

} // namespace keq::analysis

#endif // KEQ_ANALYSIS_CFG_H
