#ifndef KEQ_FUZZ_CAMPAIGN_H
#define KEQ_FUZZ_CAMPAIGN_H

/**
 * @file
 * Fuzzing campaigns: generate -> mutate -> cross-check, in parallel,
 * deterministically.
 *
 * Each iteration i derives all of its randomness from the pure stream
 * Rng::stream(seed, i) — generation, mutation-site choice, and oracle
 * inputs each get their own split — so an iteration's result depends
 * only on (options, i), never on which worker ran it or in what order.
 * Results are merged in iteration order; the canonical summary therefore
 * matches byte-for-byte across --jobs values and across runs (asserted
 * by tests and by the fuzz_smoke CI target).
 *
 * A campaign has three phases:
 *
 *  1. calibration — every catalogue entry is applied to its own exemplar
 *     once. This deterministically guarantees each miscompile class is
 *     caught (killed) at least once per campaign, independent of what
 *     the random phase happens to hit.
 *  2. random iterations — generate a program, validate the clean
 *     lowering (baseline), pick a MirRewrite mutation, cross-check the
 *     mutant against the differential oracle.
 *  3. shrinking + persistence — failing seeds (soundness bugs and
 *     completeness gaps) are minimized under "same classification still
 *     reproduces" and written as replayable reproducer files.
 *
 * Wall-clock never influences results: --max-seconds only truncates the
 * iteration range (recorded in the summary as `truncated`), which is why
 * the determinism tests run without it.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fuzz/generator.h"
#include "src/fuzz/mutation_catalog.h"
#include "src/llvmir/coverage.h"
#include "src/fuzz/oracle.h"
#include "src/fuzz/shrinker.h"
#include "src/support/journal.h"

namespace keq::fuzz {

struct CampaignOptions
{
    uint64_t seed = 1;
    /** Worker threads; 0 = one per hardware thread. */
    unsigned jobs = 1;
    /** Random-phase iteration count. */
    size_t iterations = 50;
    /**
     * Safety cap in seconds; 0 = none. Exceeding it stops issuing new
     * iterations (already-claimed ones finish), so a capped run's
     * summary is a prefix-truncation — deterministic runs leave it 0.
     */
    double maxSeconds = 0.0;
    /** Run the per-entry exemplar calibration phase. */
    bool calibrate = true;
    /** Shrink failing seeds before reporting them. */
    bool shrinkFailures = true;
    /** Directory for reproducer files; empty = keep in memory only. */
    std::string corpusDir;
    /** Restrict the random phase to one catalogue id; empty = all. */
    std::string onlyMutation;
    /**
     * Journal finished iteration outcomes to this path (append-only,
     * crash tolerant); empty disables checkpointing. With resume set,
     * the journal is loaded first and recorded iterations are restored
     * instead of re-run — the resumed campaign's canonical summary is
     * identical to an uninterrupted run's. The journal header carries a
     * fingerprint of (seed, iterations, onlyMutation, calibrate), so
     * resuming under a different campaign identity fails loudly;
     * changing generator/oracle tuning between runs is on the caller.
     */
    std::string checkpointPath;
    /** Load checkpointPath and skip recorded iterations. */
    bool resume = false;
    /** Durability policy of the checkpoint journal (see journal.h). */
    support::FsyncPolicy checkpointFsync = support::FsyncPolicy::Off;
    GeneratorOptions generator;
    OracleOptions oracle;
    ShrinkOptions shrink;
};

/** Aggregated campaign counters (all deterministic). */
struct CampaignStats
{
    uint64_t programsGenerated = 0;
    uint64_t generatedInstructions = 0;
    /** Clean lowerings the checker validated. */
    uint64_t baselineValidated = 0;
    /** Clean lowerings the checker could not validate (VC inadequacy);
     *  these iterations skip the mutation stage. */
    uint64_t baselineUnvalidated = 0;
    /** ISel rejected the program (unsupported fragment). */
    uint64_t unsupported = 0;
    uint64_t mutantsAttempted = 0;
    /** Mutations that found an applicable site. */
    uint64_t mutantsApplied = 0;
    /** Miscompiles the checker rejected. */
    uint64_t mutantsKilled = 0;
    /** Miscompiles that were semantically neutral on this program
     *  (checker validated, executions agreed). */
    uint64_t mutantsSurvivedNeutral = 0;
    /** Benign rewrites the checker accepted. */
    uint64_t benignAccepted = 0;
    /** Checker validated + executions diverged. */
    uint64_t soundnessBugs = 0;
    /** Benign rewrite rejected although the baseline validated. */
    uint64_t completenessGaps = 0;
    /** Checker timeout/OOM/unsupported on the mutant. */
    uint64_t inconclusive = 0;
    std::map<std::string, uint64_t> appliedByMutation;
    std::map<std::string, uint64_t> killsByMutation;
    /**
     * IR-construct coverage of every module that flowed through the
     * campaign (generated programs and calibration exemplars). Carried
     * in checkpoint journals and merged commutatively, so a resumed
     * campaign reports the same ledger as an uninterrupted one; kept
     * out of canonicalSummary so golden summaries stay stable as the
     * ledger grows dimensions.
     */
    CoverageMap coverage;

    void merge(const CampaignStats &other);
};

/** One failing seed, with everything needed to replay it. */
struct Reproducer
{
    std::string fileName; ///< Basename; empty when not persisted.
    /** Replayable artifact: metadata header + module text. */
    std::string artifact;
    std::string mutationId;
    /** "soundness" or "completeness". */
    std::string classification;
    uint64_t iteration = 0;
    /** Seed of the Rng that chose the mutation site. */
    uint64_t mutationSeed = 0;
    size_t originalInstructions = 0;
    size_t shrunkInstructions = 0;
};

struct CampaignResult
{
    CampaignStats stats;
    std::vector<Reproducer> reproducers;
    /** Iterations actually run (< options.iterations when capped). */
    size_t iterationsRun = 0;
    /** Of iterationsRun, how many were restored from the checkpoint
     *  (excluded from canonicalSummary: a resumed run must render
     *  identically to an uninterrupted one). */
    size_t resumedIterations = 0;
    bool truncated = false;
    double seconds = 0.0;

    /** Every miscompile catalogue entry killed at least once? */
    bool allMiscompileClassesKilled() const;
    /** Timing-free rendering; identical across runs and jobs counts. */
    std::string canonicalSummary() const;
    /** Human-facing table (includes throughput). */
    std::string renderTable() const;
};

/** Runs a campaign with CampaignOptions::jobs workers. */
CampaignResult runCampaign(const CampaignOptions &options);

/** Outcome of replaying one reproducer artifact. */
struct ReplayResult
{
    bool reproduced = false;
    std::string classification; ///< From the artifact header.
    OracleResult oracle;
    std::string detail;
};

/**
 * Re-runs the mutation + oracle recorded in a reproducer artifact (as
 * produced by Reproducer::artifact / `keq-fuzz --replay`).
 */
ReplayResult replayReproducer(const std::string &artifact,
                              const CampaignOptions &options);

} // namespace keq::fuzz

#endif // KEQ_FUZZ_CAMPAIGN_H
