#include "src/fuzz/shrinker.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/llvmir/verifier.h"

namespace keq::fuzz {

using llvmir::BasicBlock;
using llvmir::Function;
using llvmir::Instruction;
using llvmir::Module;
using llvmir::Opcode;
using support::ApInt;

namespace {

/** Every %name used as an operand anywhere in @p fn. */
std::set<std::string>
collectUses(const Function &fn)
{
    std::set<std::string> uses;
    for (const BasicBlock &bb : fn.blocks)
        for (const Instruction &inst : bb.insts) {
            for (const llvmir::Value &value : inst.operands)
                if (value.isVar())
                    uses.insert(value.name);
            for (const llvmir::PhiIncoming &incoming : inst.incoming)
                if (incoming.value.isVar())
                    uses.insert(incoming.value.name);
        }
    return uses;
}

/**
 * Removes blocks unreachable from the entry and phi edges from blocks
 * that are no longer predecessors — the cleanup both branch-collapsing
 * passes rely on to turn one accepted edit into a whole-region deletion.
 */
void
cleanupFunction(Function &fn)
{
    if (fn.blocks.empty())
        return;
    // Reachability from the entry block.
    std::set<std::string> reachable;
    std::vector<std::string> work = {fn.blocks.front().name};
    while (!work.empty()) {
        std::string name = work.back();
        work.pop_back();
        if (!reachable.insert(name).second)
            continue;
        if (const BasicBlock *bb = fn.findBlock(name))
            for (const std::string &succ : bb->successors())
                work.push_back(succ);
    }
    std::vector<BasicBlock> kept;
    for (BasicBlock &bb : fn.blocks)
        if (reachable.count(bb.name))
            kept.push_back(std::move(bb));
    fn.blocks = std::move(kept);

    // Predecessor sets of the surviving graph.
    std::map<std::string, std::set<std::string>> preds;
    for (const BasicBlock &bb : fn.blocks)
        for (const std::string &succ : bb.successors())
            preds[succ].insert(bb.name);

    for (BasicBlock &bb : fn.blocks)
        for (Instruction &inst : bb.insts) {
            if (inst.op != Opcode::Phi)
                continue;
            std::vector<llvmir::PhiIncoming> kept_in;
            for (llvmir::PhiIncoming &incoming : inst.incoming)
                if (preds[bb.name].count(incoming.block))
                    kept_in.push_back(std::move(incoming));
            inst.incoming = std::move(kept_in);
        }
}

/** Verifies, then asks the predicate; counts the attempt. */
bool
acceptable(const Module &candidate, const FailurePredicate &still_fails,
           ShrinkStats &stats)
{
    stats.attempts++;
    if (!llvmir::verifyModule(candidate).empty())
        return false;
    return still_fails(candidate);
}

/** One accepted CondBr/Switch collapse, or false. */
bool
passCollapseBranches(Module &current, const FailurePredicate &still_fails,
                     ShrinkStats &stats)
{
    for (size_t fi = 0; fi < current.functions.size(); ++fi) {
        const Function &fn = current.functions[fi];
        if (fn.isDeclaration())
            continue;
        for (size_t bi = 0; bi < fn.blocks.size(); ++bi) {
            const Instruction &term = fn.blocks[bi].insts.back();
            std::vector<std::string> targets;
            if (term.op == Opcode::CondBr)
                targets = {term.target1, term.target2};
            else if (term.op == Opcode::Switch)
                targets = {term.target1};
            else
                continue;
            for (const std::string &target : targets) {
                Module candidate = current;
                Instruction &new_term =
                    candidate.functions[fi].blocks[bi].insts.back();
                new_term.op = Opcode::Br;
                new_term.target1 = target;
                new_term.target2.clear();
                new_term.operands.clear();
                new_term.switchCases.clear();
                cleanupFunction(candidate.functions[fi]);
                if (acceptable(candidate, still_fails, stats)) {
                    current = std::move(candidate);
                    stats.accepted++;
                    return true;
                }
            }
        }
    }
    return false;
}

/** One accepted instruction deletion, or false. */
bool
passDeleteInstructions(Module &current,
                       const FailurePredicate &still_fails,
                       ShrinkStats &stats)
{
    for (size_t fi = 0; fi < current.functions.size(); ++fi) {
        const Function &fn = current.functions[fi];
        if (fn.isDeclaration())
            continue;
        std::set<std::string> uses = collectUses(fn);
        for (size_t bi = fn.blocks.size(); bi-- > 0;) {
            const BasicBlock &bb = fn.blocks[bi];
            // Back to front: later instructions tend to use earlier
            // ones, so their deletions unlock upstream deletions.
            for (size_t ii = bb.insts.size(); ii-- > 0;) {
                const Instruction &inst = bb.insts[ii];
                if (inst.isTerminator())
                    continue;
                if (!inst.result.empty() && uses.count(inst.result))
                    continue; // a live definition
                if (bb.insts.size() == 1)
                    continue; // blocks must stay nonempty
                Module candidate = current;
                auto &insts = candidate.functions[fi].blocks[bi].insts;
                insts.erase(insts.begin() + static_cast<long>(ii));
                if (acceptable(candidate, still_fails, stats)) {
                    current = std::move(candidate);
                    stats.accepted++;
                    return true;
                }
            }
        }
    }
    return false;
}

bool
isDivisionRhs(const Instruction &inst, size_t operand_index)
{
    return (inst.op == Opcode::UDiv || inst.op == Opcode::SDiv ||
            inst.op == Opcode::URem || inst.op == Opcode::SRem) &&
           operand_index == 1;
}

/** One accepted literal simplification, or false. */
bool
passSimplifyConstants(Module &current,
                      const FailurePredicate &still_fails,
                      ShrinkStats &stats)
{
    for (size_t fi = 0; fi < current.functions.size(); ++fi) {
        const Function &fn = current.functions[fi];
        if (fn.isDeclaration())
            continue;
        for (size_t bi = 0; bi < fn.blocks.size(); ++bi) {
            const BasicBlock &bb = fn.blocks[bi];
            for (size_t ii = 0; ii < bb.insts.size(); ++ii) {
                const Instruction &inst = bb.insts[ii];
                for (size_t oi = 0; oi < inst.operands.size(); ++oi) {
                    const llvmir::Value &value = inst.operands[oi];
                    if (!value.isConst() || !value.type ||
                        !value.type->isInteger())
                        continue;
                    uint64_t simple = isDivisionRhs(inst, oi) ? 1 : 0;
                    ApInt target(value.constant.width(), simple);
                    if (value.constant.eq(target))
                        continue;
                    Module candidate = current;
                    candidate.functions[fi]
                        .blocks[bi]
                        .insts[ii]
                        .operands[oi]
                        .constant = target;
                    if (acceptable(candidate, still_fails, stats)) {
                        current = std::move(candidate);
                        stats.accepted++;
                        return true;
                    }
                }
            }
        }
    }
    return false;
}

} // namespace

size_t
moduleInstructionCount(const Module &module)
{
    size_t count = 0;
    for (const Function &fn : module.functions)
        count += fn.instructionCount();
    return count;
}

ShrinkResult
shrinkModule(const Module &module, const FailurePredicate &stillFails,
             const ShrinkOptions &options)
{
    ShrinkResult result;
    result.module = module;
    result.stats.originalInstructions = moduleInstructionCount(module);

    bool improved = true;
    while (improved && result.stats.rounds < options.maxRounds) {
        improved = false;
        result.stats.rounds++;
        while (passCollapseBranches(result.module, stillFails,
                                    result.stats))
            improved = true;
        while (passDeleteInstructions(result.module, stillFails,
                                      result.stats))
            improved = true;
        if (options.simplifyConstants)
            while (passSimplifyConstants(result.module, stillFails,
                                         result.stats))
                improved = true;
    }
    result.stats.finalInstructions =
        moduleInstructionCount(result.module);
    return result;
}

} // namespace keq::fuzz
