#ifndef KEQ_FUZZ_ORACLE_H
#define KEQ_FUZZ_ORACLE_H

/**
 * @file
 * The differential oracle: cross-checks the KEQ checker's verdict on an
 * (LLVM, Virtual x86) pair against concrete executions of both sides.
 *
 * Both interpreters run on identical random inputs (arguments, initial
 * memory bytes, external-call handler); a trial compares outcome, return
 * value, external-call trace, and the final memory image. Refinement
 * applies exactly as in the paper: an input-side trap licenses any
 * output behaviour, while an output-side trap where the input returned
 * is a divergence. The checker is then run on the same pair and the two
 * sources of truth are reconciled:
 *
 *   checker \ execution |  agrees            |  diverges
 *   --------------------+--------------------+---------------
 *   validated           |  Agree             |  SOUNDNESS BUG
 *   rejected            |  Killed            |  Killed
 *   timeout/oom/unsup.  |  Inconclusive      |  Inconclusive
 *
 * "Killed / execution agrees" is deliberately not a completeness
 * verdict on its own: random trials only sample the input space, so the
 * campaign layer derives completeness gaps from mutations that are
 * semantics-preserving *by construction* (Mutation::expectEquivalent).
 */

#include <cstdint>
#include <string>

#include "src/driver/pipeline.h"
#include "src/isel/isel.h"
#include "src/llvmir/ir.h"
#include "src/support/rng.h"
#include "src/vx86/mir.h"

namespace keq::fuzz {

/** What the execution trials observed. */
enum class ExecAgreement : uint8_t {
    Agree,        ///< All observed trials matched.
    Diverged,     ///< At least one trial differed.
    Inconclusive, ///< No trial produced comparable behaviour.
};

const char *execAgreementName(ExecAgreement agreement);

/** The reconciled verdict (matrix above). */
enum class OracleVerdict : uint8_t {
    Agree,
    Killed,
    SoundnessBug,
    Inconclusive,
};

const char *oracleVerdictName(OracleVerdict verdict);

struct OracleOptions
{
    /** Number of random input trials per pair. */
    size_t trials = 6;
    size_t llvmStepBudget = 200000;
    size_t x86StepBudget = 400000;
    /** Checker configuration for the validation side. */
    driver::PipelineOptions pipeline;
};

struct OracleResult
{
    OracleVerdict verdict = OracleVerdict::Inconclusive;
    ExecAgreement execution = ExecAgreement::Inconclusive;
    /** The checker-side report for the pair. */
    driver::FunctionReport report;
    size_t trialsRun = 0;
    /** Trials where the input side returned (so comparison had teeth). */
    size_t trialsObserved = 0;
    /** First diverging trial index, or -1. */
    int divergentTrial = -1;
    std::string detail;
};

/**
 * Runs the full cross-check on one pair. @p rng drives the trial inputs
 * only; the checker side is deterministic.
 */
OracleResult crossCheck(const llvmir::Module &module,
                        const llvmir::Function &fn,
                        const vx86::MFunction &mfn,
                        const isel::FunctionHints &hints,
                        support::Rng &rng,
                        const OracleOptions &options = {});

/**
 * Execution-only comparison (no checker): returns the agreement over
 * @p options.trials random inputs, filling the trial counters of
 * @p result. Exposed for the interpreter-vs-interpreter tests.
 */
ExecAgreement compareExecutions(const llvmir::Module &module,
                                const llvmir::Function &fn,
                                const vx86::MFunction &mfn,
                                support::Rng &rng,
                                const OracleOptions &options,
                                OracleResult &result);

} // namespace keq::fuzz

#endif // KEQ_FUZZ_ORACLE_H
