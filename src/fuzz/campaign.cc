#include "src/fuzz/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"
#include "src/support/journal.h"
#include "src/support/thread_pool.h"

namespace keq::fuzz {

using support::Rng;

namespace {

/** Salt separating the mutant-oracle stream from the baseline one. */
constexpr uint64_t kMutantOracleSalt = 0x5851f42d4c957f2dull;

uint64_t
fnvHash(std::string_view text)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : text)
        h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    return h;
}

/**
 * Round-trippable module rendering: Module::toString prints
 * declarations as body-less defines, which the parser rejects, so the
 * reproducer artifacts render them as proper `declare` lines.
 */
std::string
moduleToSource(const llvmir::Module &module)
{
    std::ostringstream out;
    for (const llvmir::GlobalVariable &global : module.globals)
        out << global.name << " = external global "
            << global.valueType->toString() << "\n";
    for (const llvmir::Function &fn : module.functions) {
        if (!fn.isDeclaration())
            continue;
        out << "declare " << fn.returnType->toString() << " " << fn.name
            << "(";
        for (size_t i = 0; i < fn.params.size(); ++i)
            out << (i ? ", " : "") << fn.params[i].type->toString();
        out << ")\n";
    }
    out << "\n";
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            out << fn.toString();
    return out.str();
}

const llvmir::Function *
firstDefinedFunction(const llvmir::Module &module)
{
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            return &fn;
    return nullptr;
}

/** The MirRewrite entries the random phase samples from. */
std::vector<const Mutation *>
randomPhaseEntries(const CampaignOptions &options)
{
    std::vector<const Mutation *> entries;
    if (!options.onlyMutation.empty()) {
        if (const Mutation *entry = findMutation(options.onlyMutation))
            entries.push_back(entry);
        return entries;
    }
    // IselBug entries need their trigger pattern (adjacent stores /
    // zext(load)), which random programs rarely contain; they are
    // covered by the calibration phase instead.
    for (const Mutation &mutation : mutationCatalog())
        if (mutation.kind == MutationKind::MirRewrite)
            entries.push_back(&mutation);
    return entries;
}

/** A failing seed captured during an iteration (pre-shrink). */
struct Failure
{
    llvmir::Module module;
    Reproducer repro;
    uint64_t oracleSeed = 0;
    bool fromCalibration = false;
};

struct IterationOutcome
{
    CampaignStats stats;
    std::optional<Failure> failure;
};

// --- Campaign checkpointing ----------------------------------------------
//
// Iterations are pure in (options, index), so a checkpoint only has to
// record *finished* outcomes; a resumed campaign replays the journal
// into the same per-index slots and recomputes the rest. Modules inside
// failures round-trip through the reproducer source rendering, which is
// already required to re-parse exactly (it is the replay format).

constexpr const char *kCampaignJournalKind = "fuzz-campaign";

/** Splits a payload on raw tabs (fields are individually escaped). */
std::vector<std::string>
splitFields(const std::string &payload)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        size_t tab = payload.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(payload.substr(start));
            return fields;
        }
        fields.push_back(payload.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseU64Field(const std::string &field, uint64_t &out)
{
    if (field.empty())
        return false;
    char *end = nullptr;
    unsigned long long value = std::strtoull(field.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    out = value;
    return true;
}

/** Campaign identity a checkpoint is bound to. */
std::string
campaignFingerprint(const CampaignOptions &options)
{
    std::ostringstream os;
    os << "seed=" << options.seed << ";iterations=" << options.iterations
       << ";only=" << options.onlyMutation
       << ";calibrate=" << (options.calibrate ? 1 : 0);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(
                      support::fnv1a64(os.str())));
    return std::string(buffer);
}

std::string
serializeOutcome(size_t index, const IterationOutcome &outcome)
{
    const CampaignStats &s = outcome.stats;
    std::ostringstream os;
    os << "iter\t" << index << '\t' << s.programsGenerated << '\t'
       << s.generatedInstructions << '\t' << s.baselineValidated << '\t'
       << s.baselineUnvalidated << '\t' << s.unsupported << '\t'
       << s.mutantsAttempted << '\t' << s.mutantsApplied << '\t'
       << s.mutantsKilled << '\t' << s.mutantsSurvivedNeutral << '\t'
       << s.benignAccepted << '\t' << s.soundnessBugs << '\t'
       << s.completenessGaps << '\t' << s.inconclusive;
    os << '\t' << s.appliedByMutation.size();
    for (const auto &[id, count] : s.appliedByMutation)
        os << '\t' << support::escapeLine(id) << '\t' << count;
    os << '\t' << s.killsByMutation.size();
    for (const auto &[id, count] : s.killsByMutation)
        os << '\t' << support::escapeLine(id) << '\t' << count;
    if (outcome.failure.has_value()) {
        const Failure &failure = *outcome.failure;
        os << "\t1\t" << support::escapeLine(failure.repro.mutationId)
           << '\t' << support::escapeLine(failure.repro.classification)
           << '\t' << failure.repro.iteration << '\t'
           << failure.repro.mutationSeed << '\t' << failure.oracleSeed
           << '\t' << (failure.fromCalibration ? 1 : 0) << '\t'
           << support::escapeLine(moduleToSource(failure.module));
    } else {
        os << "\t0";
    }
    // Coverage rides last so journals written before the ledger existed
    // still deserialize (the field is optional on the read side).
    os << '\t' << support::escapeLine(s.coverage.serialize());
    return os.str();
}

bool
deserializeOutcome(const std::string &payload, size_t &index,
                   IterationOutcome &outcome)
{
    std::vector<std::string> fields = splitFields(payload);
    size_t at = 0;
    auto next = [&](uint64_t &out) {
        return at < fields.size() && parseU64Field(fields[at++], out);
    };
    if (fields.empty() || fields[0] != "iter")
        return false;
    ++at;

    IterationOutcome result;
    CampaignStats &s = result.stats;
    uint64_t idx = 0;
    if (!next(idx) || !next(s.programsGenerated) ||
        !next(s.generatedInstructions) || !next(s.baselineValidated) ||
        !next(s.baselineUnvalidated) || !next(s.unsupported) ||
        !next(s.mutantsAttempted) || !next(s.mutantsApplied) ||
        !next(s.mutantsKilled) || !next(s.mutantsSurvivedNeutral) ||
        !next(s.benignAccepted) || !next(s.soundnessBugs) ||
        !next(s.completenessGaps) || !next(s.inconclusive)) {
        return false;
    }

    for (auto *map : {&s.appliedByMutation, &s.killsByMutation}) {
        uint64_t entries = 0;
        if (!next(entries))
            return false;
        for (uint64_t i = 0; i < entries; ++i) {
            if (at + 1 >= fields.size())
                return false;
            std::string id;
            uint64_t count = 0;
            if (!support::unescapeLine(fields[at++], id) ||
                !parseU64Field(fields[at++], count)) {
                return false;
            }
            (*map)[id] = count;
        }
    }

    uint64_t has_failure = 0;
    if (!next(has_failure) || has_failure > 1)
        return false;
    if (has_failure == 1) {
        if (at + 6 >= fields.size())
            return false;
        Failure failure;
        uint64_t iteration = 0, from_cal = 0;
        std::string source;
        if (!support::unescapeLine(fields[at],
                                   failure.repro.mutationId) ||
            !support::unescapeLine(fields[at + 1],
                                   failure.repro.classification) ||
            !parseU64Field(fields[at + 2], iteration) ||
            !parseU64Field(fields[at + 3], failure.repro.mutationSeed) ||
            !parseU64Field(fields[at + 4], failure.oracleSeed) ||
            !parseU64Field(fields[at + 5], from_cal) || from_cal > 1 ||
            !support::unescapeLine(fields[at + 6], source)) {
            return false;
        }
        at += 7;
        failure.repro.iteration = iteration;
        failure.fromCalibration = from_cal != 0;
        try {
            failure.module = llvmir::parseModule(source);
            llvmir::verifyModuleOrThrow(failure.module);
        } catch (const support::Error &) {
            return false;
        }
        result.failure = std::move(failure);
    }
    // Optional trailing coverage ledger (absent in pre-ledger journals,
    // which resume with empty coverage for restored iterations).
    if (at < fields.size()) {
        std::string ledger;
        if (!support::unescapeLine(fields[at], ledger) ||
            !CoverageMap::deserialize(ledger, s.coverage)) {
            return false;
        }
        ++at;
    }
    if (at != fields.size())
        return false;
    index = static_cast<size_t>(idx);
    outcome = std::move(result);
    return true;
}

/**
 * Classifies one mutant oracle result into the campaign counters;
 * returns the classification string when it is a validator bug.
 */
std::string
classifyMutant(const Mutation &mutation, const OracleResult &result,
               CampaignStats &stats)
{
    if (result.verdict == OracleVerdict::Inconclusive) {
        stats.inconclusive++;
        return {};
    }
    if (result.verdict == OracleVerdict::SoundnessBug) {
        stats.soundnessBugs++;
        return "soundness";
    }
    if (mutation.expectEquivalent) {
        if (result.verdict == OracleVerdict::Agree) {
            stats.benignAccepted++;
            return {};
        }
        // Killed: the rewrite preserves semantics by construction, so a
        // rejection (with a validated baseline) is a completeness gap.
        stats.completenessGaps++;
        return "completeness";
    }
    if (result.verdict == OracleVerdict::Killed) {
        stats.mutantsKilled++;
        stats.killsByMutation[mutation.id]++;
        return {};
    }
    stats.mutantsSurvivedNeutral++;
    return {};
}

IterationOutcome
runIteration(const CampaignOptions &options, size_t index)
{
    IterationOutcome outcome;
    CampaignStats &stats = outcome.stats;

    Rng iter = Rng::stream(options.seed, index);
    Rng gen_rng = iter.split();
    Rng select_rng = iter.split();
    uint64_t mut_seed = iter.next();
    uint64_t oracle_seed = iter.next();

    llvmir::Module module = generateModule(gen_rng, options.generator);
    const llvmir::Function *fn = firstDefinedFunction(module);
    stats.programsGenerated++;
    stats.generatedInstructions += fn->instructionCount();
    stats.coverage.recordModule(module);

    // Baseline: the clean lowering must validate and must agree with
    // the LLVM-side execution; otherwise the iteration carries no
    // mutant signal.
    isel::FunctionHints hints;
    vx86::MFunction clean;
    try {
        clean = isel::lowerFunction(module, *fn, {}, hints);
    } catch (const support::Error &) {
        stats.unsupported++;
        return outcome;
    }
    Rng baseline_oracle(oracle_seed);
    OracleResult baseline = crossCheck(module, *fn, clean, hints,
                                       baseline_oracle, options.oracle);
    switch (baseline.verdict) {
    case OracleVerdict::Agree:
        stats.baselineValidated++;
        break;
    case OracleVerdict::Killed:
        stats.baselineUnvalidated++;
        return outcome;
    case OracleVerdict::SoundnessBug: {
        stats.soundnessBugs++;
        Failure failure;
        failure.module = module;
        failure.repro.mutationId = "none";
        failure.repro.classification = "soundness";
        failure.repro.iteration = index;
        failure.repro.mutationSeed = mut_seed;
        failure.oracleSeed = oracle_seed;
        outcome.failure = std::move(failure);
        return outcome;
    }
    case OracleVerdict::Inconclusive:
        stats.inconclusive++;
        return outcome;
    }

    std::vector<const Mutation *> entries = randomPhaseEntries(options);
    if (entries.empty())
        return outcome;
    const Mutation &mutation =
        *entries[select_rng.below(entries.size())];

    stats.mutantsAttempted++;
    Rng mut_rng(mut_seed);
    MutantLowering mutant;
    try {
        mutant = lowerMutant(mutation, module, *fn, mut_rng);
    } catch (const support::Error &) {
        stats.unsupported++;
        return outcome;
    }
    if (!mutant.applied)
        return outcome;
    stats.mutantsApplied++;
    stats.appliedByMutation[mutation.id]++;

    Rng mutant_oracle(oracle_seed ^ kMutantOracleSalt);
    OracleResult result = crossCheck(module, *fn, mutant.mfn,
                                     mutant.hints, mutant_oracle,
                                     options.oracle);
    std::string classification = classifyMutant(mutation, result, stats);
    if (!classification.empty()) {
        Failure failure;
        failure.module = module;
        failure.repro.mutationId = mutation.id;
        failure.repro.classification = classification;
        failure.repro.iteration = index;
        failure.repro.mutationSeed = mut_seed;
        failure.oracleSeed = oracle_seed;
        outcome.failure = std::move(failure);
    }
    return outcome;
}

/**
 * Calibration: every catalogue entry once, on its own exemplar. The
 * per-entry streams are pure in (seed, id), so calibration results are
 * independent of jobs and iteration count.
 */
void
runCalibration(const CampaignOptions &options, CampaignStats &stats,
               std::vector<Failure> &failures)
{
    for (const Mutation &mutation : mutationCatalog()) {
        if (!options.onlyMutation.empty() &&
            options.onlyMutation != mutation.id)
            continue;
        llvmir::Module module = llvmir::parseModule(mutation.exemplar);
        llvmir::verifyModuleOrThrow(module);
        stats.coverage.recordModule(module);
        const llvmir::Function *fn =
            module.findFunction(mutation.exemplarFunction);
        if (fn == nullptr)
            throw support::Error(std::string("catalogue entry ") +
                                 mutation.id +
                                 ": exemplar function not found");
        uint64_t mut_seed = options.seed ^ fnvHash(mutation.id);
        uint64_t oracle_seed = fnvHash(mutation.id) * 31 ^ options.seed;

        stats.mutantsAttempted++;
        Rng mut_rng(mut_seed);
        MutantLowering mutant = lowerMutant(mutation, module, *fn,
                                            mut_rng);
        if (!mutant.applied)
            throw support::Error(
                std::string("catalogue entry ") + mutation.id +
                ": mutation does not apply to its own exemplar");
        stats.mutantsApplied++;
        stats.appliedByMutation[mutation.id]++;

        Rng oracle_rng(oracle_seed ^ kMutantOracleSalt);
        OracleResult result = crossCheck(module, *fn, mutant.mfn,
                                         mutant.hints, oracle_rng,
                                         options.oracle);
        std::string classification =
            classifyMutant(mutation, result, stats);
        if (!classification.empty()) {
            Failure failure;
            failure.module = module;
            failure.repro.mutationId = mutation.id;
            failure.repro.classification = classification;
            failure.repro.iteration = 0;
            failure.repro.mutationSeed = mut_seed;
            failure.oracleSeed = oracle_seed;
            failure.fromCalibration = true;
            failures.push_back(std::move(failure));
        }
    }
}

/**
 * The shrinker's predicate: the recorded mutation, replayed with the
 * recorded seeds, still produces the same classification (and for
 * completeness gaps the baseline still validates, so the gap stays
 * attributable to the rewrite).
 */
bool
failureReproduces(const llvmir::Module &module, const Reproducer &repro,
                  uint64_t oracle_seed, const CampaignOptions &options)
{
    const llvmir::Function *fn = firstDefinedFunction(module);
    if (fn == nullptr)
        return false;
    try {
        if (repro.mutationId == "none") {
            isel::FunctionHints hints;
            vx86::MFunction clean =
                isel::lowerFunction(module, *fn, {}, hints);
            Rng oracle_rng(oracle_seed);
            OracleResult result = crossCheck(module, *fn, clean, hints,
                                             oracle_rng, options.oracle);
            return result.verdict == OracleVerdict::SoundnessBug;
        }
        const Mutation *mutation = findMutation(repro.mutationId);
        if (mutation == nullptr)
            return false;
        if (repro.classification == "completeness") {
            isel::FunctionHints hints;
            vx86::MFunction clean =
                isel::lowerFunction(module, *fn, {}, hints);
            Rng baseline_rng(oracle_seed);
            OracleResult baseline = crossCheck(
                module, *fn, clean, hints, baseline_rng, options.oracle);
            if (baseline.verdict != OracleVerdict::Agree)
                return false;
        }
        Rng mut_rng(repro.mutationSeed);
        MutantLowering mutant =
            lowerMutant(*mutation, module, *fn, mut_rng);
        if (!mutant.applied)
            return false;
        Rng oracle_rng(oracle_seed ^ kMutantOracleSalt);
        OracleResult result = crossCheck(module, *fn, mutant.mfn,
                                         mutant.hints, oracle_rng,
                                         options.oracle);
        if (repro.classification == "soundness")
            return result.verdict == OracleVerdict::SoundnessBug;
        return result.verdict == OracleVerdict::Killed;
    } catch (const support::Error &) {
        return false;
    }
}

std::string
renderArtifact(const llvmir::Module &module, const Reproducer &repro,
               uint64_t seed, uint64_t oracle_seed)
{
    std::ostringstream out;
    out << "; keq-fuzz-repro v1\n"
        << "; mutation=" << repro.mutationId << "\n"
        << "; class=" << repro.classification << "\n"
        << "; seed=" << seed << "\n"
        << "; iteration=" << repro.iteration << "\n"
        << "; mutseed=" << repro.mutationSeed << "\n"
        << "; oracleseed=" << oracle_seed << "\n"
        << moduleToSource(module);
    return out.str();
}

/** Shrinks, renders, and (optionally) persists one failure. */
Reproducer
finalizeFailure(Failure &failure, const CampaignOptions &options,
                ShrinkStats *shrink_stats)
{
    Reproducer repro = failure.repro;
    llvmir::Module final_module = failure.module;
    repro.originalInstructions =
        moduleInstructionCount(failure.module);
    repro.shrunkInstructions = repro.originalInstructions;

    if (options.shrinkFailures) {
        FailurePredicate predicate =
            [&](const llvmir::Module &candidate) {
                return failureReproduces(candidate, repro,
                                         failure.oracleSeed, options);
            };
        // Only shrink what provably reproduces from its own source
        // (paranoia: a non-reproducing failure is itself a finding and
        // must be reported unshrunk).
        if (predicate(failure.module)) {
            ShrinkResult shrunk =
                shrinkModule(failure.module, predicate, options.shrink);
            final_module = std::move(shrunk.module);
            repro.shrunkInstructions = shrunk.stats.finalInstructions;
            if (shrink_stats != nullptr)
                *shrink_stats = shrunk.stats;
        }
    }

    repro.artifact = renderArtifact(final_module, repro, options.seed,
                                    failure.oracleSeed);
    std::string stem = failure.fromCalibration
                           ? "cal-" + repro.mutationId
                           : std::to_string(repro.iteration) + "-" +
                                 repro.mutationId;
    repro.fileName =
        "repro-" + stem + "-" + repro.classification + ".ll";
    if (!options.corpusDir.empty()) {
        std::filesystem::create_directories(options.corpusDir);
        std::ofstream out(std::filesystem::path(options.corpusDir) /
                          repro.fileName);
        out << repro.artifact;
    }
    return repro;
}

} // namespace

void
CampaignStats::merge(const CampaignStats &other)
{
    programsGenerated += other.programsGenerated;
    generatedInstructions += other.generatedInstructions;
    baselineValidated += other.baselineValidated;
    baselineUnvalidated += other.baselineUnvalidated;
    unsupported += other.unsupported;
    mutantsAttempted += other.mutantsAttempted;
    mutantsApplied += other.mutantsApplied;
    mutantsKilled += other.mutantsKilled;
    mutantsSurvivedNeutral += other.mutantsSurvivedNeutral;
    benignAccepted += other.benignAccepted;
    soundnessBugs += other.soundnessBugs;
    completenessGaps += other.completenessGaps;
    inconclusive += other.inconclusive;
    for (const auto &[id, count] : other.appliedByMutation)
        appliedByMutation[id] += count;
    for (const auto &[id, count] : other.killsByMutation)
        killsByMutation[id] += count;
    coverage.merge(other.coverage);
}

bool
CampaignResult::allMiscompileClassesKilled() const
{
    for (const Mutation &mutation : mutationCatalog()) {
        if (mutation.expectEquivalent)
            continue;
        auto it = stats.killsByMutation.find(mutation.id);
        if (it == stats.killsByMutation.end() || it->second == 0)
            return false;
    }
    return true;
}

std::string
CampaignResult::canonicalSummary() const
{
    std::ostringstream out;
    out << "iterations=" << iterationsRun
        << " truncated=" << (truncated ? 1 : 0) << "\n";
    out << "programs=" << stats.programsGenerated
        << " instructions=" << stats.generatedInstructions
        << " baseline-validated=" << stats.baselineValidated
        << " baseline-unvalidated=" << stats.baselineUnvalidated
        << " unsupported=" << stats.unsupported << "\n";
    out << "mutants attempted=" << stats.mutantsAttempted
        << " applied=" << stats.mutantsApplied
        << " killed=" << stats.mutantsKilled
        << " neutral=" << stats.mutantsSurvivedNeutral
        << " benign-accepted=" << stats.benignAccepted << "\n";
    out << "soundness-bugs=" << stats.soundnessBugs
        << " completeness-gaps=" << stats.completenessGaps
        << " inconclusive=" << stats.inconclusive << "\n";
    for (const auto &[id, count] : stats.appliedByMutation)
        out << "applied " << id << "=" << count << "\n";
    for (const auto &[id, count] : stats.killsByMutation)
        out << "killed " << id << "=" << count << "\n";
    for (const Reproducer &repro : reproducers)
        out << "repro " << repro.fileName
            << " instructions=" << repro.originalInstructions << "->"
            << repro.shrunkInstructions << "\n";
    return out.str();
}

std::string
CampaignResult::renderTable() const
{
    std::ostringstream out;
    out << canonicalSummary();
    double rate = seconds > 0.0
                      ? static_cast<double>(stats.programsGenerated) /
                            seconds
                      : 0.0;
    out << "wall-clock " << seconds << " s (" << rate
        << " programs/s)\n";
    out << (allMiscompileClassesKilled()
                ? "every miscompile class killed at least once\n"
                : "WARNING: some miscompile class was never killed\n");
    return out.str();
}

CampaignResult
runCampaign(const CampaignOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    std::vector<Failure> failures;

    // Checkpoint plumbing. Calibration is deterministic and cheap, so
    // only random-phase iterations are journaled; a resumed campaign
    // re-runs calibration and restores the recorded iterations.
    std::unordered_map<size_t, IterationOutcome> restored;
    std::unique_ptr<support::JournalWriter> journal;
    if (!options.checkpointPath.empty()) {
        std::string fingerprint = campaignFingerprint(options);
        bool meta_present = false;
        if (options.resume) {
            support::JournalLoad loaded = support::loadJournal(
                options.checkpointPath, kCampaignJournalKind);
            if (!loaded.ok)
                throw support::Error(loaded.error);
            for (size_t i = 0; i < loaded.records.size(); ++i) {
                const std::string &payload = loaded.records[i];
                if (i == 0 && payload.rfind("meta\t", 0) == 0) {
                    if (payload.substr(5) != fingerprint) {
                        throw support::Error(
                            "checkpoint '" + options.checkpointPath +
                            "' was written by a different campaign "
                            "(fingerprint mismatch); refusing to "
                            "resume");
                    }
                    meta_present = true;
                    continue;
                }
                size_t index = 0;
                IterationOutcome outcome;
                if (!deserializeOutcome(payload, index, outcome))
                    break; // schema drift: distrust the rest
                if (index < options.iterations)
                    restored[index] = std::move(outcome);
            }
            if (!restored.empty() && !meta_present) {
                throw support::Error(
                    "checkpoint '" + options.checkpointPath +
                    "' carries iterations but no campaign "
                    "fingerprint; refusing to resume");
            }
        } else {
            std::remove(options.checkpointPath.c_str());
        }
        journal = std::make_unique<support::JournalWriter>(
            options.checkpointPath, kCampaignJournalKind,
            options.checkpointFsync);
        if (!meta_present)
            journal->append("meta\t" + fingerprint);
    }

    if (options.calibrate)
        runCalibration(options, result.stats, failures);

    std::vector<std::optional<IterationOutcome>> outcomes(
        options.iterations);
    std::atomic<bool> expired{false};
    auto overBudget = [&]() {
        if (options.maxSeconds <= 0.0)
            return false;
        if (expired.load(std::memory_order_relaxed))
            return true;
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() < options.maxSeconds)
            return false;
        expired.store(true, std::memory_order_relaxed);
        return true;
    };

    support::ThreadPool pool(options.jobs);
    support::parallelFor(pool, options.iterations, [&](size_t index) {
        auto hit = restored.find(index);
        if (hit != restored.end()) {
            outcomes[index] = hit->second; // read-only map: no locking
            return;
        }
        if (overBudget())
            return; // truncation: the slot stays empty
        outcomes[index] = runIteration(options, index);
        if (journal != nullptr)
            journal->append(serializeOutcome(index, *outcomes[index]));
    });

    // Merge in iteration order: the summary is independent of worker
    // scheduling.
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].has_value())
            continue;
        result.iterationsRun++;
        if (restored.count(i) != 0)
            result.resumedIterations++;
        result.stats.merge(outcomes[i]->stats);
        if (outcomes[i]->failure.has_value())
            failures.push_back(std::move(*outcomes[i]->failure));
    }
    result.truncated = expired.load();

    // Shrink and persist serially, calibration failures first, then by
    // iteration (the order failures were pushed).
    for (Failure &failure : failures)
        result.reproducers.push_back(
            finalizeFailure(failure, options, nullptr));

    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    result.seconds = elapsed.count();
    return result;
}

ReplayResult
replayReproducer(const std::string &artifact,
                 const CampaignOptions &options)
{
    ReplayResult replay;
    Reproducer repro;
    uint64_t oracle_seed = 0;

    std::istringstream lines(artifact);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("; ", 0) != 0)
            continue;
        std::string_view view(line);
        view.remove_prefix(2);
        auto take = [&view](std::string_view key) {
            return view.rfind(key, 0) == 0
                       ? std::optional<std::string>(std::string(
                             view.substr(key.size())))
                       : std::nullopt;
        };
        // A truncated or hand-edited artifact must fail with a
        // diagnostic, not an uncaught std::invalid_argument from
        // std::stoull (which aborts the tool).
        auto parse_count = [](const std::string &text, const char *key) {
            uint64_t value = 0;
            if (!parseU64Field(text, value)) {
                throw support::Error(
                    std::string("reproducer artifact: malformed ") +
                    key + " value '" + text + "'");
            }
            return value;
        };
        if (auto v = take("mutation="))
            repro.mutationId = *v;
        else if (auto v = take("class="))
            repro.classification = *v;
        else if (auto v = take("iteration="))
            repro.iteration = parse_count(*v, "iteration");
        else if (auto v = take("mutseed="))
            repro.mutationSeed = parse_count(*v, "mutseed");
        else if (auto v = take("oracleseed="))
            oracle_seed = parse_count(*v, "oracleseed");
    }
    replay.classification = repro.classification;
    if (repro.classification.empty() || repro.mutationId.empty()) {
        replay.detail = "artifact is missing keq-fuzz-repro metadata";
        return replay;
    }

    llvmir::Module module = llvmir::parseModule(artifact);
    llvmir::verifyModuleOrThrow(module);
    const llvmir::Function *fn = firstDefinedFunction(module);
    if (fn == nullptr) {
        replay.detail = "artifact contains no defined function";
        return replay;
    }

    // Re-run the recorded scenario and capture the oracle view.
    if (repro.mutationId == "none") {
        isel::FunctionHints hints;
        vx86::MFunction clean = isel::lowerFunction(module, *fn, {},
                                                    hints);
        Rng oracle_rng(oracle_seed);
        replay.oracle = crossCheck(module, *fn, clean, hints, oracle_rng,
                                   options.oracle);
        replay.reproduced =
            replay.oracle.verdict == OracleVerdict::SoundnessBug;
        return replay;
    }
    const Mutation *mutation = findMutation(repro.mutationId);
    if (mutation == nullptr) {
        replay.detail =
            "unknown mutation id: " + repro.mutationId;
        return replay;
    }
    Rng mut_rng(repro.mutationSeed);
    MutantLowering mutant = lowerMutant(*mutation, module, *fn, mut_rng);
    if (!mutant.applied) {
        replay.detail = "mutation no longer applies to the module";
        return replay;
    }
    Rng oracle_rng(oracle_seed ^ kMutantOracleSalt);
    replay.oracle = crossCheck(module, *fn, mutant.mfn, mutant.hints,
                               oracle_rng, options.oracle);
    replay.reproduced =
        repro.classification == "soundness"
            ? replay.oracle.verdict == OracleVerdict::SoundnessBug
            : replay.oracle.verdict == OracleVerdict::Killed;
    replay.detail = replay.oracle.detail;
    return replay;
}

} // namespace keq::fuzz
