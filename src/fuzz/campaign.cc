#include "src/fuzz/campaign.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"
#include "src/support/thread_pool.h"

namespace keq::fuzz {

using support::Rng;

namespace {

/** Salt separating the mutant-oracle stream from the baseline one. */
constexpr uint64_t kMutantOracleSalt = 0x5851f42d4c957f2dull;

uint64_t
fnvHash(std::string_view text)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : text)
        h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    return h;
}

/**
 * Round-trippable module rendering: Module::toString prints
 * declarations as body-less defines, which the parser rejects, so the
 * reproducer artifacts render them as proper `declare` lines.
 */
std::string
moduleToSource(const llvmir::Module &module)
{
    std::ostringstream out;
    for (const llvmir::GlobalVariable &global : module.globals)
        out << global.name << " = external global "
            << global.valueType->toString() << "\n";
    for (const llvmir::Function &fn : module.functions) {
        if (!fn.isDeclaration())
            continue;
        out << "declare " << fn.returnType->toString() << " " << fn.name
            << "(";
        for (size_t i = 0; i < fn.params.size(); ++i)
            out << (i ? ", " : "") << fn.params[i].type->toString();
        out << ")\n";
    }
    out << "\n";
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            out << fn.toString();
    return out.str();
}

const llvmir::Function *
firstDefinedFunction(const llvmir::Module &module)
{
    for (const llvmir::Function &fn : module.functions)
        if (!fn.isDeclaration())
            return &fn;
    return nullptr;
}

/** The MirRewrite entries the random phase samples from. */
std::vector<const Mutation *>
randomPhaseEntries(const CampaignOptions &options)
{
    std::vector<const Mutation *> entries;
    if (!options.onlyMutation.empty()) {
        if (const Mutation *entry = findMutation(options.onlyMutation))
            entries.push_back(entry);
        return entries;
    }
    // IselBug entries need their trigger pattern (adjacent stores /
    // zext(load)), which random programs rarely contain; they are
    // covered by the calibration phase instead.
    for (const Mutation &mutation : mutationCatalog())
        if (mutation.kind == MutationKind::MirRewrite)
            entries.push_back(&mutation);
    return entries;
}

/** A failing seed captured during an iteration (pre-shrink). */
struct Failure
{
    llvmir::Module module;
    Reproducer repro;
    uint64_t oracleSeed = 0;
    bool fromCalibration = false;
};

struct IterationOutcome
{
    CampaignStats stats;
    std::optional<Failure> failure;
};

/**
 * Classifies one mutant oracle result into the campaign counters;
 * returns the classification string when it is a validator bug.
 */
std::string
classifyMutant(const Mutation &mutation, const OracleResult &result,
               CampaignStats &stats)
{
    if (result.verdict == OracleVerdict::Inconclusive) {
        stats.inconclusive++;
        return {};
    }
    if (result.verdict == OracleVerdict::SoundnessBug) {
        stats.soundnessBugs++;
        return "soundness";
    }
    if (mutation.expectEquivalent) {
        if (result.verdict == OracleVerdict::Agree) {
            stats.benignAccepted++;
            return {};
        }
        // Killed: the rewrite preserves semantics by construction, so a
        // rejection (with a validated baseline) is a completeness gap.
        stats.completenessGaps++;
        return "completeness";
    }
    if (result.verdict == OracleVerdict::Killed) {
        stats.mutantsKilled++;
        stats.killsByMutation[mutation.id]++;
        return {};
    }
    stats.mutantsSurvivedNeutral++;
    return {};
}

IterationOutcome
runIteration(const CampaignOptions &options, size_t index)
{
    IterationOutcome outcome;
    CampaignStats &stats = outcome.stats;

    Rng iter = Rng::stream(options.seed, index);
    Rng gen_rng = iter.split();
    Rng select_rng = iter.split();
    uint64_t mut_seed = iter.next();
    uint64_t oracle_seed = iter.next();

    llvmir::Module module = generateModule(gen_rng, options.generator);
    const llvmir::Function *fn = firstDefinedFunction(module);
    stats.programsGenerated++;
    stats.generatedInstructions += fn->instructionCount();

    // Baseline: the clean lowering must validate and must agree with
    // the LLVM-side execution; otherwise the iteration carries no
    // mutant signal.
    isel::FunctionHints hints;
    vx86::MFunction clean;
    try {
        clean = isel::lowerFunction(module, *fn, {}, hints);
    } catch (const support::Error &) {
        stats.unsupported++;
        return outcome;
    }
    Rng baseline_oracle(oracle_seed);
    OracleResult baseline = crossCheck(module, *fn, clean, hints,
                                       baseline_oracle, options.oracle);
    switch (baseline.verdict) {
    case OracleVerdict::Agree:
        stats.baselineValidated++;
        break;
    case OracleVerdict::Killed:
        stats.baselineUnvalidated++;
        return outcome;
    case OracleVerdict::SoundnessBug: {
        stats.soundnessBugs++;
        Failure failure;
        failure.module = module;
        failure.repro.mutationId = "none";
        failure.repro.classification = "soundness";
        failure.repro.iteration = index;
        failure.repro.mutationSeed = mut_seed;
        failure.oracleSeed = oracle_seed;
        outcome.failure = std::move(failure);
        return outcome;
    }
    case OracleVerdict::Inconclusive:
        stats.inconclusive++;
        return outcome;
    }

    std::vector<const Mutation *> entries = randomPhaseEntries(options);
    if (entries.empty())
        return outcome;
    const Mutation &mutation =
        *entries[select_rng.below(entries.size())];

    stats.mutantsAttempted++;
    Rng mut_rng(mut_seed);
    MutantLowering mutant;
    try {
        mutant = lowerMutant(mutation, module, *fn, mut_rng);
    } catch (const support::Error &) {
        stats.unsupported++;
        return outcome;
    }
    if (!mutant.applied)
        return outcome;
    stats.mutantsApplied++;
    stats.appliedByMutation[mutation.id]++;

    Rng mutant_oracle(oracle_seed ^ kMutantOracleSalt);
    OracleResult result = crossCheck(module, *fn, mutant.mfn,
                                     mutant.hints, mutant_oracle,
                                     options.oracle);
    std::string classification = classifyMutant(mutation, result, stats);
    if (!classification.empty()) {
        Failure failure;
        failure.module = module;
        failure.repro.mutationId = mutation.id;
        failure.repro.classification = classification;
        failure.repro.iteration = index;
        failure.repro.mutationSeed = mut_seed;
        failure.oracleSeed = oracle_seed;
        outcome.failure = std::move(failure);
    }
    return outcome;
}

/**
 * Calibration: every catalogue entry once, on its own exemplar. The
 * per-entry streams are pure in (seed, id), so calibration results are
 * independent of jobs and iteration count.
 */
void
runCalibration(const CampaignOptions &options, CampaignStats &stats,
               std::vector<Failure> &failures)
{
    for (const Mutation &mutation : mutationCatalog()) {
        if (!options.onlyMutation.empty() &&
            options.onlyMutation != mutation.id)
            continue;
        llvmir::Module module = llvmir::parseModule(mutation.exemplar);
        llvmir::verifyModuleOrThrow(module);
        const llvmir::Function *fn =
            module.findFunction(mutation.exemplarFunction);
        if (fn == nullptr)
            throw support::Error(std::string("catalogue entry ") +
                                 mutation.id +
                                 ": exemplar function not found");
        uint64_t mut_seed = options.seed ^ fnvHash(mutation.id);
        uint64_t oracle_seed = fnvHash(mutation.id) * 31 ^ options.seed;

        stats.mutantsAttempted++;
        Rng mut_rng(mut_seed);
        MutantLowering mutant = lowerMutant(mutation, module, *fn,
                                            mut_rng);
        if (!mutant.applied)
            throw support::Error(
                std::string("catalogue entry ") + mutation.id +
                ": mutation does not apply to its own exemplar");
        stats.mutantsApplied++;
        stats.appliedByMutation[mutation.id]++;

        Rng oracle_rng(oracle_seed ^ kMutantOracleSalt);
        OracleResult result = crossCheck(module, *fn, mutant.mfn,
                                         mutant.hints, oracle_rng,
                                         options.oracle);
        std::string classification =
            classifyMutant(mutation, result, stats);
        if (!classification.empty()) {
            Failure failure;
            failure.module = module;
            failure.repro.mutationId = mutation.id;
            failure.repro.classification = classification;
            failure.repro.iteration = 0;
            failure.repro.mutationSeed = mut_seed;
            failure.oracleSeed = oracle_seed;
            failure.fromCalibration = true;
            failures.push_back(std::move(failure));
        }
    }
}

/**
 * The shrinker's predicate: the recorded mutation, replayed with the
 * recorded seeds, still produces the same classification (and for
 * completeness gaps the baseline still validates, so the gap stays
 * attributable to the rewrite).
 */
bool
failureReproduces(const llvmir::Module &module, const Reproducer &repro,
                  uint64_t oracle_seed, const CampaignOptions &options)
{
    const llvmir::Function *fn = firstDefinedFunction(module);
    if (fn == nullptr)
        return false;
    try {
        if (repro.mutationId == "none") {
            isel::FunctionHints hints;
            vx86::MFunction clean =
                isel::lowerFunction(module, *fn, {}, hints);
            Rng oracle_rng(oracle_seed);
            OracleResult result = crossCheck(module, *fn, clean, hints,
                                             oracle_rng, options.oracle);
            return result.verdict == OracleVerdict::SoundnessBug;
        }
        const Mutation *mutation = findMutation(repro.mutationId);
        if (mutation == nullptr)
            return false;
        if (repro.classification == "completeness") {
            isel::FunctionHints hints;
            vx86::MFunction clean =
                isel::lowerFunction(module, *fn, {}, hints);
            Rng baseline_rng(oracle_seed);
            OracleResult baseline = crossCheck(
                module, *fn, clean, hints, baseline_rng, options.oracle);
            if (baseline.verdict != OracleVerdict::Agree)
                return false;
        }
        Rng mut_rng(repro.mutationSeed);
        MutantLowering mutant =
            lowerMutant(*mutation, module, *fn, mut_rng);
        if (!mutant.applied)
            return false;
        Rng oracle_rng(oracle_seed ^ kMutantOracleSalt);
        OracleResult result = crossCheck(module, *fn, mutant.mfn,
                                         mutant.hints, oracle_rng,
                                         options.oracle);
        if (repro.classification == "soundness")
            return result.verdict == OracleVerdict::SoundnessBug;
        return result.verdict == OracleVerdict::Killed;
    } catch (const support::Error &) {
        return false;
    }
}

std::string
renderArtifact(const llvmir::Module &module, const Reproducer &repro,
               uint64_t seed, uint64_t oracle_seed)
{
    std::ostringstream out;
    out << "; keq-fuzz-repro v1\n"
        << "; mutation=" << repro.mutationId << "\n"
        << "; class=" << repro.classification << "\n"
        << "; seed=" << seed << "\n"
        << "; iteration=" << repro.iteration << "\n"
        << "; mutseed=" << repro.mutationSeed << "\n"
        << "; oracleseed=" << oracle_seed << "\n"
        << moduleToSource(module);
    return out.str();
}

/** Shrinks, renders, and (optionally) persists one failure. */
Reproducer
finalizeFailure(Failure &failure, const CampaignOptions &options,
                ShrinkStats *shrink_stats)
{
    Reproducer repro = failure.repro;
    llvmir::Module final_module = failure.module;
    repro.originalInstructions =
        moduleInstructionCount(failure.module);
    repro.shrunkInstructions = repro.originalInstructions;

    if (options.shrinkFailures) {
        FailurePredicate predicate =
            [&](const llvmir::Module &candidate) {
                return failureReproduces(candidate, repro,
                                         failure.oracleSeed, options);
            };
        // Only shrink what provably reproduces from its own source
        // (paranoia: a non-reproducing failure is itself a finding and
        // must be reported unshrunk).
        if (predicate(failure.module)) {
            ShrinkResult shrunk =
                shrinkModule(failure.module, predicate, options.shrink);
            final_module = std::move(shrunk.module);
            repro.shrunkInstructions = shrunk.stats.finalInstructions;
            if (shrink_stats != nullptr)
                *shrink_stats = shrunk.stats;
        }
    }

    repro.artifact = renderArtifact(final_module, repro, options.seed,
                                    failure.oracleSeed);
    std::string stem = failure.fromCalibration
                           ? "cal-" + repro.mutationId
                           : std::to_string(repro.iteration) + "-" +
                                 repro.mutationId;
    repro.fileName =
        "repro-" + stem + "-" + repro.classification + ".ll";
    if (!options.corpusDir.empty()) {
        std::filesystem::create_directories(options.corpusDir);
        std::ofstream out(std::filesystem::path(options.corpusDir) /
                          repro.fileName);
        out << repro.artifact;
    }
    return repro;
}

} // namespace

void
CampaignStats::merge(const CampaignStats &other)
{
    programsGenerated += other.programsGenerated;
    generatedInstructions += other.generatedInstructions;
    baselineValidated += other.baselineValidated;
    baselineUnvalidated += other.baselineUnvalidated;
    unsupported += other.unsupported;
    mutantsAttempted += other.mutantsAttempted;
    mutantsApplied += other.mutantsApplied;
    mutantsKilled += other.mutantsKilled;
    mutantsSurvivedNeutral += other.mutantsSurvivedNeutral;
    benignAccepted += other.benignAccepted;
    soundnessBugs += other.soundnessBugs;
    completenessGaps += other.completenessGaps;
    inconclusive += other.inconclusive;
    for (const auto &[id, count] : other.appliedByMutation)
        appliedByMutation[id] += count;
    for (const auto &[id, count] : other.killsByMutation)
        killsByMutation[id] += count;
}

bool
CampaignResult::allMiscompileClassesKilled() const
{
    for (const Mutation &mutation : mutationCatalog()) {
        if (mutation.expectEquivalent)
            continue;
        auto it = stats.killsByMutation.find(mutation.id);
        if (it == stats.killsByMutation.end() || it->second == 0)
            return false;
    }
    return true;
}

std::string
CampaignResult::canonicalSummary() const
{
    std::ostringstream out;
    out << "iterations=" << iterationsRun
        << " truncated=" << (truncated ? 1 : 0) << "\n";
    out << "programs=" << stats.programsGenerated
        << " instructions=" << stats.generatedInstructions
        << " baseline-validated=" << stats.baselineValidated
        << " baseline-unvalidated=" << stats.baselineUnvalidated
        << " unsupported=" << stats.unsupported << "\n";
    out << "mutants attempted=" << stats.mutantsAttempted
        << " applied=" << stats.mutantsApplied
        << " killed=" << stats.mutantsKilled
        << " neutral=" << stats.mutantsSurvivedNeutral
        << " benign-accepted=" << stats.benignAccepted << "\n";
    out << "soundness-bugs=" << stats.soundnessBugs
        << " completeness-gaps=" << stats.completenessGaps
        << " inconclusive=" << stats.inconclusive << "\n";
    for (const auto &[id, count] : stats.appliedByMutation)
        out << "applied " << id << "=" << count << "\n";
    for (const auto &[id, count] : stats.killsByMutation)
        out << "killed " << id << "=" << count << "\n";
    for (const Reproducer &repro : reproducers)
        out << "repro " << repro.fileName
            << " instructions=" << repro.originalInstructions << "->"
            << repro.shrunkInstructions << "\n";
    return out.str();
}

std::string
CampaignResult::renderTable() const
{
    std::ostringstream out;
    out << canonicalSummary();
    double rate = seconds > 0.0
                      ? static_cast<double>(stats.programsGenerated) /
                            seconds
                      : 0.0;
    out << "wall-clock " << seconds << " s (" << rate
        << " programs/s)\n";
    out << (allMiscompileClassesKilled()
                ? "every miscompile class killed at least once\n"
                : "WARNING: some miscompile class was never killed\n");
    return out.str();
}

CampaignResult
runCampaign(const CampaignOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    std::vector<Failure> failures;

    if (options.calibrate)
        runCalibration(options, result.stats, failures);

    std::vector<std::optional<IterationOutcome>> outcomes(
        options.iterations);
    std::atomic<bool> expired{false};
    auto overBudget = [&]() {
        if (options.maxSeconds <= 0.0)
            return false;
        if (expired.load(std::memory_order_relaxed))
            return true;
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (elapsed.count() < options.maxSeconds)
            return false;
        expired.store(true, std::memory_order_relaxed);
        return true;
    };

    support::ThreadPool pool(options.jobs);
    support::parallelFor(pool, options.iterations, [&](size_t index) {
        if (overBudget())
            return; // truncation: the slot stays empty
        outcomes[index] = runIteration(options, index);
    });

    // Merge in iteration order: the summary is independent of worker
    // scheduling.
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].has_value())
            continue;
        result.iterationsRun++;
        result.stats.merge(outcomes[i]->stats);
        if (outcomes[i]->failure.has_value())
            failures.push_back(std::move(*outcomes[i]->failure));
    }
    result.truncated = expired.load();

    // Shrink and persist serially, calibration failures first, then by
    // iteration (the order failures were pushed).
    for (Failure &failure : failures)
        result.reproducers.push_back(
            finalizeFailure(failure, options, nullptr));

    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    result.seconds = elapsed.count();
    return result;
}

ReplayResult
replayReproducer(const std::string &artifact,
                 const CampaignOptions &options)
{
    ReplayResult replay;
    Reproducer repro;
    uint64_t oracle_seed = 0;

    std::istringstream lines(artifact);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("; ", 0) != 0)
            continue;
        std::string_view view(line);
        view.remove_prefix(2);
        auto take = [&view](std::string_view key) {
            return view.rfind(key, 0) == 0
                       ? std::optional<std::string>(std::string(
                             view.substr(key.size())))
                       : std::nullopt;
        };
        if (auto v = take("mutation="))
            repro.mutationId = *v;
        else if (auto v = take("class="))
            repro.classification = *v;
        else if (auto v = take("iteration="))
            repro.iteration = std::stoull(*v);
        else if (auto v = take("mutseed="))
            repro.mutationSeed = std::stoull(*v);
        else if (auto v = take("oracleseed="))
            oracle_seed = std::stoull(*v);
    }
    replay.classification = repro.classification;
    if (repro.classification.empty() || repro.mutationId.empty()) {
        replay.detail = "artifact is missing keq-fuzz-repro metadata";
        return replay;
    }

    llvmir::Module module = llvmir::parseModule(artifact);
    llvmir::verifyModuleOrThrow(module);
    const llvmir::Function *fn = firstDefinedFunction(module);
    if (fn == nullptr) {
        replay.detail = "artifact contains no defined function";
        return replay;
    }

    // Re-run the recorded scenario and capture the oracle view.
    if (repro.mutationId == "none") {
        isel::FunctionHints hints;
        vx86::MFunction clean = isel::lowerFunction(module, *fn, {},
                                                    hints);
        Rng oracle_rng(oracle_seed);
        replay.oracle = crossCheck(module, *fn, clean, hints, oracle_rng,
                                   options.oracle);
        replay.reproduced =
            replay.oracle.verdict == OracleVerdict::SoundnessBug;
        return replay;
    }
    const Mutation *mutation = findMutation(repro.mutationId);
    if (mutation == nullptr) {
        replay.detail =
            "unknown mutation id: " + repro.mutationId;
        return replay;
    }
    Rng mut_rng(repro.mutationSeed);
    MutantLowering mutant = lowerMutant(*mutation, module, *fn, mut_rng);
    if (!mutant.applied) {
        replay.detail = "mutation no longer applies to the module";
        return replay;
    }
    Rng oracle_rng(oracle_seed ^ kMutantOracleSalt);
    replay.oracle = crossCheck(module, *fn, mutant.mfn, mutant.hints,
                               oracle_rng, options.oracle);
    replay.reproduced =
        repro.classification == "soundness"
            ? replay.oracle.verdict == OracleVerdict::SoundnessBug
            : replay.oracle.verdict == OracleVerdict::Killed;
    replay.detail = replay.oracle.detail;
    return replay;
}

} // namespace keq::fuzz
