#include "src/fuzz/mutation_catalog.h"

#include <utility>

namespace keq::fuzz {

using support::ApInt;
using support::Rng;
using vx86::MFunction;
using vx86::MInst;
using vx86::MOpcode;
using vx86::MOperand;

namespace {

/** A location inside a machine function. */
struct Site
{
    size_t block = 0;
    size_t inst = 0;
    int variant = 0;
};

template <typename Pred>
std::vector<Site>
collectSites(const MFunction &mfn, Pred pred)
{
    std::vector<Site> sites;
    for (size_t b = 0; b < mfn.blocks.size(); ++b)
        for (size_t i = 0; i < mfn.blocks[b].insts.size(); ++i) {
            int variant = pred(mfn.blocks[b], i);
            if (variant >= 0)
                sites.push_back({b, i, variant});
        }
    return sites;
}

bool
isFlagSetter(MOpcode op)
{
    return op == MOpcode::CMPrr || op == MOpcode::CMPri ||
           op == MOpcode::TESTrr;
}

bool
isFlagReader(MOpcode op)
{
    return op == MOpcode::JCC || op == MOpcode::SETcc;
}

// --- miscompile rewrites ------------------------------------------------

/** Swaps the source operands of a SUBrr or the operands of a CMPrr. */
bool
applyOperandSwap(MFunction &mfn, Rng &rng)
{
    std::vector<Site> sites =
        collectSites(mfn, [](const vx86::MBasicBlock &bb, size_t i) {
            const MInst &inst = bb.insts[i];
            if (inst.op == MOpcode::SUBrr && inst.ops.size() == 3 &&
                inst.ops[1].isReg() && inst.ops[2].isReg() &&
                inst.ops[1].reg != inst.ops[2].reg)
                return 0;
            if (inst.op == MOpcode::CMPrr && inst.ops.size() == 2 &&
                inst.ops[0].isReg() && inst.ops[1].isReg() &&
                inst.ops[0].reg != inst.ops[1].reg)
                return 1;
            return -1;
        });
    if (sites.empty())
        return false;
    Site site = sites[rng.below(sites.size())];
    MInst &inst = mfn.blocks[site.block].insts[site.inst];
    if (site.variant == 0)
        std::swap(inst.ops[1], inst.ops[2]);
    else
        std::swap(inst.ops[0], inst.ops[1]);
    return true;
}

/** Inserts a TESTrr between a flag setter and its JCC/SETcc consumer. */
bool
applyFlagClobber(MFunction &mfn, Rng &rng)
{
    std::vector<Site> sites =
        collectSites(mfn, [](const vx86::MBasicBlock &bb, size_t i) {
            const MInst &inst = bb.insts[i];
            if (!isFlagSetter(inst.op) || i + 1 >= bb.insts.size() ||
                !isFlagReader(bb.insts[i + 1].op))
                return -1;
            // TEST needs a register; every flag setter's first operand
            // is one.
            return inst.ops.empty() || !inst.ops[0].isReg() ? -1 : 0;
        });
    if (sites.empty())
        return false;
    Site site = sites[rng.below(sites.size())];
    auto &insts = mfn.blocks[site.block].insts;
    const MInst &setter = insts[site.inst];
    MInst clobber;
    clobber.op = MOpcode::TESTrr;
    clobber.width = setter.width;
    clobber.ops = {setter.ops[0], setter.ops[0]};
    insts.insert(insts.begin() + site.inst + 1, clobber);
    return true;
}

/** Turns a sign-extending move into a zero-extending one. */
bool
applyDropSignExtend(MFunction &mfn, Rng &rng)
{
    std::vector<Site> sites =
        collectSites(mfn, [](const vx86::MBasicBlock &bb, size_t i) {
            MOpcode op = bb.insts[i].op;
            return op == MOpcode::MOVSXrr || op == MOpcode::MOVSXrm ? 0
                                                                    : -1;
        });
    if (sites.empty())
        return false;
    Site site = sites[rng.below(sites.size())];
    MInst &inst = mfn.blocks[site.block].insts[site.inst];
    inst.op = inst.op == MOpcode::MOVSXrr ? MOpcode::MOVZXrr
                                          : MOpcode::MOVZXrm;
    return true;
}

/**
 * Truncates an immediate to 8 bits (zero-extended back to its width), as
 * if the materialization picked the wrong operand size; when that is a
 * no-op (small constants) the sign bit is flipped instead so the mutant
 * always differs. Shift-count immediates are excluded: an oversized
 * count would probe the semantics' defined-fallback corner rather than
 * the width bug this entry models.
 */
bool
applyWrongWidthConstant(MFunction &mfn, Rng &rng)
{
    auto eligible = [](MOpcode op) {
        return op == MOpcode::MOVri || op == MOpcode::ADDri ||
               op == MOpcode::SUBri || op == MOpcode::ANDri ||
               op == MOpcode::ORri || op == MOpcode::XORri ||
               op == MOpcode::IMULri || op == MOpcode::CMPri;
    };
    std::vector<Site> sites = collectSites(
        mfn, [&eligible](const vx86::MBasicBlock &bb, size_t i) {
            const MInst &inst = bb.insts[i];
            if (!eligible(inst.op))
                return -1;
            for (size_t o = 0; o < inst.ops.size(); ++o)
                if (inst.ops[o].isImm())
                    return static_cast<int>(o);
            return -1;
        });
    if (sites.empty())
        return false;
    Site site = sites[rng.below(sites.size())];
    MOperand &operand =
        mfn.blocks[site.block].insts[site.inst].ops[site.variant];
    ApInt old = operand.imm;
    ApInt mutated = old.truncTo(8).zextTo(old.width());
    if (mutated.eq(old))
        mutated = old.xor_(ApInt::signedMin(old.width()));
    operand.imm = mutated;
    return true;
}

// --- semantics-preserving rewrites --------------------------------------

/** Swaps the source operands of a commutative ALU instruction. */
bool
applyBenignCommute(MFunction &mfn, Rng &rng)
{
    auto commutative = [](MOpcode op) {
        return op == MOpcode::ADDrr || op == MOpcode::ANDrr ||
               op == MOpcode::ORrr || op == MOpcode::XORrr ||
               op == MOpcode::IMULrr;
    };
    std::vector<Site> sites = collectSites(
        mfn, [&commutative](const vx86::MBasicBlock &bb, size_t i) {
            const MInst &inst = bb.insts[i];
            return commutative(inst.op) && inst.ops.size() == 3 &&
                           inst.ops[1].isReg() && inst.ops[2].isReg() &&
                           inst.ops[1].reg != inst.ops[2].reg
                       ? 0
                       : -1;
        });
    if (sites.empty())
        return false;
    Site site = sites[rng.below(sites.size())];
    MInst &inst = mfn.blocks[site.block].insts[site.inst];
    std::swap(inst.ops[1], inst.ops[2]);
    return true;
}

/** Largest virtual-register number used anywhere in the function. */
unsigned
maxVirtRegNumber(const MFunction &mfn)
{
    unsigned max_number = 0;
    auto scan = [&max_number](const MOperand &op) {
        if (op.kind != MOperand::Kind::VirtReg)
            return;
        // Names are "%vrN_W".
        unsigned number = 0;
        for (size_t i = 3; i < op.reg.size() && op.reg[i] != '_'; ++i)
            number = number * 10 + static_cast<unsigned>(op.reg[i] - '0');
        if (number > max_number)
            max_number = number;
    };
    for (const auto &bb : mfn.blocks)
        for (const MInst &inst : bb.insts) {
            for (const MOperand &op : inst.ops)
                scan(op);
            for (const auto &[value, block] : inst.incoming)
                scan(value);
            scan(inst.addr.baseReg);
            scan(inst.addr.indexReg);
        }
    return max_number;
}

/**
 * Inserts a MOVri to a fresh (dead) virtual register at a random legal
 * position: after a block's leading PHI group, no later than its first
 * terminator. MOVri writes no flags, so even a slot between a CMP and
 * its JCC is behaviour-preserving.
 */
bool
applyBenignDeadDef(MFunction &mfn, Rng &rng)
{
    struct Slot
    {
        size_t block;
        size_t index;
    };
    std::vector<Slot> slots;
    for (size_t b = 0; b < mfn.blocks.size(); ++b) {
        const auto &insts = mfn.blocks[b].insts;
        size_t first = 0;
        while (first < insts.size() &&
               insts[first].op == MOpcode::PHI)
            ++first;
        size_t last = first;
        while (last < insts.size() && !insts[last].isTerminator())
            ++last;
        for (size_t i = first; i <= last && i <= insts.size(); ++i)
            slots.push_back({b, i});
    }
    if (slots.empty())
        return false;
    Slot slot = slots[rng.below(slots.size())];
    MInst mov;
    mov.op = MOpcode::MOVri;
    mov.width = 32;
    mov.ops = {MOperand::virtReg(maxVirtRegNumber(mfn) + 1, 32),
               MOperand::immediate(ApInt(32, rng.next()))};
    auto &insts = mfn.blocks[slot.block].insts;
    insts.insert(insts.begin() + slot.index, mov);
    return true;
}

// --- exemplars ----------------------------------------------------------

// The Section 5.2 bug-study programs (paper Figures 8-11), shared with
// bench_bugs: a write-after-write store triple that buggy store merging
// reorders, and a zext(load) that buggy folding widens out of bounds.
const char *const kWawExemplar = R"(
@b = external global [8 x i8]
define void @foo() {
entry:
  %p2 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 2
  %p2w = bitcast i8* %p2 to i16*
  store i16 0, i16* %p2w
  %p3 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 3
  %p3w = bitcast i8* %p3 to i16*
  store i16 2, i16* %p3w
  %p0 = getelementptr inbounds [8 x i8], [8 x i8]* @b, i64 0, i64 0
  %p0w = bitcast i8* %p0 to i16*
  store i16 1, i16* %p0w
  ret void
}
)";

const char *const kLoadNarrowExemplar = R"(
@a = external global [12 x i8]
@b = external global i64
define void @narrow() {
entry:
  %p = getelementptr inbounds [12 x i8], [12 x i8]* @a, i64 0, i64 8
  %pw = bitcast i8* %p to i32*
  %v = load i32, i32* %pw
  %w = zext i32 %v to i64
  store i64 %w, i64* @b
  ret void
}
)";

const char *const kSubExemplar = R"(
define i32 @swapped(i32 %a, i32 %b) {
entry:
  %x = sub i32 %a, %b
  ret i32 %x
}
)";

const char *const kBranchExemplar = R"(
define i32 @flags(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %t, label %f
t:
  ret i32 1
f:
  ret i32 0
}
)";

const char *const kSextExemplar = R"(
define i32 @sx(i16 %a) {
entry:
  %x = sext i16 %a to i32
  ret i32 %x
}
)";

const char *const kConstExemplar = R"(
define i32 @wconst(i32 %a) {
entry:
  %x = add i32 %a, 100000
  ret i32 %x
}
)";

const char *const kAddExemplar = R"(
define i32 @commute(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  ret i32 %x
}
)";

isel::IselOptions
iselBug(isel::Bug bug, bool merge_stores, bool fold_ext_load)
{
    isel::IselOptions options;
    options.bug = bug;
    options.mergeStores = merge_stores;
    options.foldExtLoad = fold_ext_load;
    return options;
}

std::vector<Mutation>
buildCatalog()
{
    std::vector<Mutation> catalog;
    // IselBug entries: cleanOptions enable the *correct* variant of the
    // same peephole, so the comparison isolates the bug, not the
    // optimization (exactly the bench_bugs experiment rows).
    catalog.push_back({"waw-store-merge",
                       "store merging sinks a merged store past an "
                       "overlapping write (PR25154)",
                       MutationKind::IselBug, false,
                       iselBug(isel::Bug::None, true, false),
                       iselBug(isel::Bug::StoreMergeWAW, true, false),
                       kWawExemplar, "@foo", nullptr});
    catalog.push_back({"load-widening",
                       "zext(load) folds into a wider, out-of-bounds "
                       "load (PR4737)",
                       MutationKind::IselBug, false,
                       iselBug(isel::Bug::None, false, true),
                       iselBug(isel::Bug::LoadWidening, false, true),
                       kLoadNarrowExemplar, "@narrow", nullptr});
    // Injected miscompile rewrites.
    catalog.push_back({"operand-swap",
                       "swaps the operands of a SUBrr or CMPrr",
                       MutationKind::MirRewrite, false, {}, {},
                       kSubExemplar, "@swapped", applyOperandSwap});
    catalog.push_back({"flag-clobber",
                       "clobbers eflags between a compare and its "
                       "consumer",
                       MutationKind::MirRewrite, false, {}, {},
                       kBranchExemplar, "@flags", applyFlagClobber});
    catalog.push_back({"drop-sign-extend",
                       "replaces a sign-extending move with a "
                       "zero-extending one",
                       MutationKind::MirRewrite, false, {}, {},
                       kSextExemplar, "@sx", applyDropSignExtend});
    catalog.push_back({"wrong-width-constant",
                       "materializes an immediate at the wrong width",
                       MutationKind::MirRewrite, false, {}, {},
                       kConstExemplar, "@wconst",
                       applyWrongWidthConstant});
    // Semantics-preserving rewrites (completeness probes).
    catalog.push_back({"benign-commute",
                       "commutes the operands of an ADD/AND/OR/XOR/IMUL",
                       MutationKind::MirRewrite, true, {}, {},
                       kAddExemplar, "@commute", applyBenignCommute});
    catalog.push_back({"benign-dead-def",
                       "inserts a MOVri to a fresh dead register",
                       MutationKind::MirRewrite, true, {}, {},
                       kAddExemplar, "@commute", applyBenignDeadDef});
    return catalog;
}

} // namespace

const char *
mutationKindName(MutationKind kind)
{
    return kind == MutationKind::IselBug ? "isel-bug" : "mir-rewrite";
}

const std::vector<Mutation> &
mutationCatalog()
{
    static const std::vector<Mutation> catalog = buildCatalog();
    return catalog;
}

const Mutation *
findMutation(std::string_view id)
{
    for (const Mutation &mutation : mutationCatalog())
        if (id == mutation.id)
            return &mutation;
    return nullptr;
}

MutantLowering
lowerMutant(const Mutation &mutation, const llvmir::Module &module,
            const llvmir::Function &fn, Rng &rng)
{
    MutantLowering result;
    if (mutation.kind == MutationKind::IselBug) {
        isel::FunctionHints clean_hints;
        vx86::MFunction clean = isel::lowerFunction(
            module, fn, mutation.cleanOptions, clean_hints);
        result.mfn = isel::lowerFunction(module, fn,
                                         mutation.buggyOptions,
                                         result.hints);
        result.applied = clean.toString() != result.mfn.toString();
        return result;
    }
    result.mfn =
        isel::lowerFunction(module, fn, mutation.cleanOptions,
                            result.hints);
    result.applied = mutation.apply(result.mfn, rng);
    return result;
}

} // namespace keq::fuzz
