#ifndef KEQ_FUZZ_GENERATOR_H
#define KEQ_FUZZ_GENERATOR_H

/**
 * @file
 * Well-typed random LLVM IR generator for the fuzzing subsystem.
 *
 * Where the corpus generator (src/driver/corpus.h) reproduces the *shape
 * distribution* of the paper's GCC workload for benchmarking, this
 * generator manufactures adversarial-but-valid programs for the
 * differential oracle: nested control flow (diamonds, counted loops,
 * switches), mixed integer widths with explicit casts, byte- and
 * word-granular memory traffic through globals and allocas, and calls
 * into the external-function boundary — every program well-typed by
 * construction and guaranteed to pass llvmir::Verifier (asserted in
 * generateModule and property-tested across seeds).
 *
 * Determinism contract: the emitted text is a pure function of the Rng
 * stream and the options. Callers that need generation to be independent
 * of other random consumers (mutation choice, oracle inputs) hand the
 * generator its own Rng::split() stream.
 *
 * Loops are bounded by construction (literal or masked-parameter trip
 * counts), so generated programs always terminate within the oracle's
 * step budgets.
 */

#include <cstdint>
#include <string>

#include "src/llvmir/ir.h"
#include "src/support/rng.h"

namespace keq::fuzz {

/** Generator shape knobs. */
struct GeneratorOptions
{
    /** Emit counted loops (always bounded). */
    bool loops = true;
    /** Emit loads/stores against globals, buffers, and allocas. */
    bool memory = true;
    /** Emit calls to the declared external functions. */
    bool calls = true;
    /** Emit switch terminators. */
    bool switches = true;
    /** Emit udiv/sdiv/urem/srem (literal nonzero divisors). */
    bool division = true;
    /**
     * Fraction (percent) of adds/subs/muls carrying the nsw flag. Off by
     * default: UB-free programs keep the oracle's execution comparison
     * exact (an input-side trap licenses any output behaviour, which
     * weakens a trial to "no information").
     */
    unsigned nswPercent = 0;
    /**
     * Allow register divisors (division-by-zero UB paths). Off by
     * default for the same reason as nswPercent.
     */
    bool registerDivisors = false;
    /**
     * Emit getelementptr into struct/nested-array globals (with narrow
     * loads and stores through the resulting pointers). Off by default
     * so programs replayed from old campaign seeds stay byte-identical;
     * turning it on also extends the prelude with the aggregate
     * globals the GEPs address.
     */
    bool aggregateGeps = false;
    /**
     * Emit chained selects (each link feeding the next operand slot).
     * Off by default for the same seed-replay reason; single selects
     * are always in the op mix.
     */
    bool selectChains = false;
    /** Maximum control-region nesting (loop in diamond in loop...). */
    size_t maxDepth = 2;
    /** Rough arithmetic-op budget steering the program size. */
    size_t targetOps = 14;
    /** Name of the generated function (with '@'). */
    std::string functionName = "@fuzzee";
};

/**
 * The module prelude every generated program shares: external globals
 * (word and buffer allocations) and external function declarations.
 */
std::string generatorPrelude();

/**
 * Options-aware prelude: identical to generatorPrelude() for default
 * options, extended with the aggregate globals when
 * options.aggregateGeps is set.
 */
std::string generatorPrelude(const GeneratorOptions &options);

/** Generates one function definition as LLVM assembly text. */
std::string generateFunctionSource(support::Rng &rng,
                                   const GeneratorOptions &options);

/** Prelude plus one generated function: a complete module text. */
std::string generateModuleSource(support::Rng &rng,
                                 const GeneratorOptions &options);

/**
 * Generates, parses, and verifies one module. A verifier diagnostic on
 * generated output is a generator bug and throws support::Error (the
 * property tests run this across many seeds).
 */
llvmir::Module generateModule(support::Rng &rng,
                              const GeneratorOptions &options);

} // namespace keq::fuzz

#endif // KEQ_FUZZ_GENERATOR_H
