#include "src/fuzz/generator.h"

#include <map>
#include <sstream>
#include <vector>

#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/support/diagnostics.h"

namespace keq::fuzz {

using support::Rng;

namespace {

/** The integer widths generated programs compute in. */
const unsigned kWidths[] = {8, 16, 32, 64};

std::string
ty(unsigned width)
{
    return "i" + std::to_string(width);
}

/**
 * Emits one function as LLVM assembly text. Values are tracked in
 * per-width pools so every use site sees a dominating, correctly-typed
 * definition; branch arms snapshot and restore the pools (the corpus
 * generator's scoping discipline, generalised to multiple widths).
 */
class Gen
{
  public:
    Gen(Rng &rng, const GeneratorOptions &options)
        : rng_(rng), options_(options)
    {
    }

    std::string
    run()
    {
        std::ostringstream out;
        emitSignature(out);
        label("entry");
        emitSeeding();
        size_t regions = rng_.range(1, 2);
        for (size_t i = 0; i < regions; ++i)
            emitSeq(options_.maxDepth,
                    options_.targetOps / (2 * regions) + 1);
        line("ret " + ty(returnWidth_) + " " + regValue(returnWidth_));
        out << body_.str() << "}\n";
        return out.str();
    }

  private:
    // ----- text plumbing -------------------------------------------------

    std::string
    fresh()
    {
        return "%v" + std::to_string(next_++);
    }

    std::string
    freshLabel(const char *stem)
    {
        return std::string(stem) + std::to_string(nextLabel_++);
    }

    void
    line(const std::string &text)
    {
        body_ << "  " << text << "\n";
    }

    void
    label(const std::string &name)
    {
        body_ << name << ":\n";
        current_ = name;
    }

    // ----- value pools ---------------------------------------------------

    using PoolMark = std::map<unsigned, size_t>;

    PoolMark
    poolMark() const
    {
        PoolMark mark;
        for (const auto &[width, pool] : pools_)
            mark[width] = pool.size();
        return mark;
    }

    void
    poolRestore(const PoolMark &mark)
    {
        for (auto &[width, pool] : pools_) {
            auto it = mark.find(width);
            pool.resize(it == mark.end() ? 0 : it->second);
        }
    }

    void
    addToPool(unsigned width, const std::string &name)
    {
        pools_[width].push_back(name);
    }

    std::string
    regValue(unsigned width)
    {
        const auto &pool = pools_.at(width);
        return pool[rng_.below(pool.size())];
    }

    /** A literal safe for the parser (non-negative, fits in int64). */
    std::string
    literal(unsigned width)
    {
        if (rng_.chancePercent(70))
            return std::to_string(rng_.range(0, 99));
        uint64_t mask = width >= 64 ? 0x7fffffffffffffffull
                                    : ((1ull << width) - 1);
        return std::to_string(rng_.next() & mask);
    }

    std::string
    value(unsigned width)
    {
        if (rng_.chancePercent(25))
            return literal(width);
        return regValue(width);
    }

    unsigned
    pickWidth()
    {
        return kWidths[rng_.below(4)];
    }

    std::string
    pred()
    {
        static const char *const kPreds[] = {"eq",  "ne",  "ult", "ule",
                                             "ugt", "uge", "slt", "sle",
                                             "sgt", "sge"};
        return kPreds[rng_.below(10)];
    }

    // ----- function frame ------------------------------------------------

    void
    emitSignature(std::ostringstream &out)
    {
        // %p0 is always i32 (loop bounds and selectors mask it); the
        // remaining parameter widths vary.
        paramWidths_ = {32, pickWidth(), pickWidth()};
        returnWidth_ = pickWidth();
        out << "define " << ty(returnWidth_) << " "
            << options_.functionName << "(";
        for (size_t i = 0; i < paramWidths_.size(); ++i) {
            if (i)
                out << ", ";
            out << ty(paramWidths_[i]) << " %p" << i;
        }
        out << ") {\n";
    }

    /**
     * Guarantees a nonempty pool at every width before any random op
     * runs: parameters first, then casts from %p0 for missing widths.
     */
    void
    emitSeeding()
    {
        for (size_t i = 0; i < paramWidths_.size(); ++i)
            addToPool(paramWidths_[i], "%p" + std::to_string(i));
        for (unsigned width : kWidths) {
            if (!pools_[width].empty())
                continue;
            std::string name = fresh();
            if (width > 32)
                line(name + " = zext i32 %p0 to " + ty(width));
            else
                line(name + " = trunc i32 %p0 to " + ty(width));
            addToPool(width, name);
        }
        if (options_.memory) {
            line("%fzslot = alloca i32");
            line("store i32 " + regValue(32) + ", i32* %fzslot");
        }
    }

    // ----- single ops ----------------------------------------------------

    void
    arithOp()
    {
        static const char *const kOps[] = {"add", "sub", "mul", "and",
                                           "or",  "xor", "shl", "lshr",
                                           "ashr"};
        unsigned width = pickWidth();
        std::string op = kOps[rng_.below(9)];
        std::string result = fresh();
        std::string flags;
        if ((op == "add" || op == "sub" || op == "mul") &&
            rng_.chancePercent(options_.nswPercent))
            flags = " nsw";
        // Shift amounts stay literal and in-range: an oversized or
        // symbolic shift count is poison territory the oracle cannot
        // cross-check exactly.
        std::string rhs = (op == "shl" || op == "lshr" || op == "ashr")
                              ? std::to_string(rng_.range(0, width - 1))
                              : value(width);
        line(result + " = " + op + flags + " " + ty(width) + " " +
             value(width) + ", " + rhs);
        addToPool(width, result);
    }

    void
    divisionOp()
    {
        static const char *const kOps[] = {"udiv", "sdiv", "urem",
                                           "srem"};
        // 64-bit division is ISel's documented unsupported fragment;
        // stay at or below 32 bits so every generated program lowers.
        static const unsigned kDivWidths[] = {8, 16, 32};
        unsigned width = kDivWidths[rng_.below(3)];
        std::string op = kOps[rng_.below(4)];
        std::string divisor =
            (options_.registerDivisors && rng_.chancePercent(30))
                ? regValue(width)
                : std::to_string(rng_.range(1, 31));
        std::string result = fresh();
        line(result + " = " + op + " " + ty(width) + " " +
             regValue(width) + ", " + divisor);
        addToPool(width, result);
    }

    void
    castOp()
    {
        unsigned src = pickWidth();
        unsigned dst = pickWidth();
        while (dst == src)
            dst = pickWidth();
        std::string op;
        if (dst > src)
            op = rng_.chancePercent(50) ? "zext" : "sext";
        else
            op = "trunc";
        std::string result = fresh();
        line(result + " = " + op + " " + ty(src) + " " + regValue(src) +
             " to " + ty(dst));
        addToPool(dst, result);
    }

    /** icmp at a random width; returns the i1 result name. */
    std::string
    icmpOp()
    {
        unsigned width = pickWidth();
        std::string result = fresh();
        line(result + " = icmp " + pred() + " " + ty(width) + " " +
             regValue(width) + ", " + value(width));
        return result;
    }

    void
    selectOp()
    {
        std::string cond = icmpOp();
        unsigned width = pickWidth();
        std::string result = fresh();
        line(result + " = select i1 " + cond + ", " + ty(width) + " " +
             value(width) + ", " + ty(width) + " " + value(width));
        addToPool(width, result);
    }

    void
    selectChainOp()
    {
        // One condition drives the whole chain; each link's true arm is
        // the previous link, so the lowered code must thread a value
        // through consecutive cmov-shaped regions.
        std::string cond = icmpOp();
        unsigned width = pickWidth();
        std::string link = value(width);
        size_t links = rng_.range(2, 3);
        for (size_t i = 0; i < links; ++i) {
            std::string result = fresh();
            line(result + " = select i1 " + cond + ", " + ty(width) +
                 " " + link + ", " + ty(width) + " " + value(width));
            link = result;
        }
        addToPool(width, link);
    }

    /**
     * GEP into the aggregate globals (struct field, array element, or a
     * nested two-level descent), followed by a load or store through
     * the computed pointer. Struct indices are constant (the subset's
     * rule); array indices are masked in-bounds.
     */
    void
    aggregateGepOp()
    {
        std::string ptr = fresh();
        switch (rng_.below(3)) {
        case 0: { // Struct field 0 of @fz_pair: the i32 word.
            line(ptr + " = getelementptr { i32, [4 x i16] }, "
                       "{ i32, [4 x i16] }* @fz_pair, i64 0, i32 0");
            if (rng_.chancePercent(50)) {
                std::string result = fresh();
                line(result + " = load i32, i32* " + ptr);
                addToPool(32, result);
            } else {
                line("store i32 " + regValue(32) + ", i32* " + ptr);
            }
            break;
        }
        case 1: { // Nested descent: field 1, then a masked i16 slot.
            std::string idx = fresh();
            line(idx + " = and i64 " + regValue(64) + ", 3");
            line(ptr + " = getelementptr { i32, [4 x i16] }, "
                       "{ i32, [4 x i16] }* @fz_pair, i64 0, i32 1, "
                       "i64 " +
                 idx);
            if (rng_.chancePercent(50)) {
                std::string result = fresh();
                line(result + " = load i16, i16* " + ptr);
                addToPool(16, result);
            } else {
                line("store i16 " + regValue(16) + ", i16* " + ptr);
            }
            break;
        }
        default: { // Array-of-struct: element idx of @fz_grid, field 0
                   // (i8) or 1 (i32).
            std::string idx = fresh();
            line(idx + " = and i64 " + regValue(64) + ", 3");
            bool byte_field = rng_.chancePercent(50);
            line(ptr + " = getelementptr [4 x { i8, i32 }], "
                       "[4 x { i8, i32 }]* @fz_grid, i64 0, i64 " +
                 idx + ", i32 " + (byte_field ? "0" : "1"));
            unsigned width = byte_field ? 8 : 32;
            if (rng_.chancePercent(50)) {
                std::string result = fresh();
                line(result + " = load " + ty(width) + ", " + ty(width) +
                     "* " + ptr);
                addToPool(width, result);
            } else {
                line("store " + ty(width) + " " + regValue(width) +
                     ", " + ty(width) + "* " + ptr);
            }
            break;
        }
        }
    }

    void
    boolOp()
    {
        // An i1 materialised into an integer register (zext only: sext
        // from i1 is ISel's other unsupported fragment).
        std::string cond = icmpOp();
        unsigned width = pickWidth();
        std::string result = fresh();
        line(result + " = zext i1 " + cond + " to " + ty(width));
        addToPool(width, result);
    }

    void
    memoryOp()
    {
        switch (rng_.below(4)) {
        case 0: { // i32 global word.
            if (rng_.chancePercent(50)) {
                std::string result = fresh();
                line(result + " = load i32, i32* @fz_word32");
                addToPool(32, result);
            } else {
                line("store i32 " + regValue(32) + ", i32* @fz_word32");
            }
            break;
        }
        case 1: { // i64 global word.
            if (rng_.chancePercent(50)) {
                std::string result = fresh();
                line(result + " = load i64, i64* @fz_word64");
                addToPool(64, result);
            } else {
                line("store i64 " + regValue(64) + ", i64* @fz_word64");
            }
            break;
        }
        case 2: { // Byte traffic through the 64-byte buffer, in-bounds
                  // by masking.
            std::string idx = fresh();
            line(idx + " = and i64 " + regValue(64) + ", 63");
            std::string ptr = fresh();
            line(ptr + " = getelementptr [64 x i8], [64 x i8]* @fz_buf, "
                       "i64 0, i64 " +
                 idx);
            if (rng_.chancePercent(60)) {
                std::string byte = fresh();
                line(byte + " = load i8, i8* " + ptr);
                addToPool(8, byte);
            } else {
                line("store i8 " + regValue(8) + ", i8* " + ptr);
            }
            break;
        }
        default: { // The alloca slot.
            if (rng_.chancePercent(50)) {
                std::string result = fresh();
                line(result + " = load i32, i32* %fzslot");
                addToPool(32, result);
            } else {
                line("store i32 " + regValue(32) + ", i32* %fzslot");
            }
            break;
        }
        }
    }

    void
    callOp()
    {
        switch (rng_.below(3)) {
        case 0: {
            std::string result = fresh();
            line(result + " = call i32 @fz_ext0(i32 " + regValue(32) +
                 ")");
            addToPool(32, result);
            break;
        }
        case 1: {
            std::string result = fresh();
            line(result + " = call i64 @fz_ext1(i64 " + regValue(64) +
                 ", i32 " + regValue(32) + ")");
            addToPool(64, result);
            break;
        }
        default:
            line("call void @fz_sink(i32 " + regValue(32) + ")");
            break;
        }
    }

    void
    emitOp()
    {
        unsigned roll = static_cast<unsigned>(rng_.below(100));
        // The opt-in families claim rolls out of the arithmetic tail
        // (roll >= 54), so with both flags off every roll takes exactly
        // the path it always did and old seeds replay byte-identically.
        if (options_.aggregateGeps && roll >= 92) {
            aggregateGepOp();
            return;
        }
        if (options_.selectChains && roll >= 84 && roll < 92) {
            selectChainOp();
            return;
        }
        if (options_.division && roll < 6)
            divisionOp();
        else if (options_.memory && roll < 22)
            memoryOp();
        else if (options_.calls && roll < 30)
            callOp();
        else if (roll < 40)
            castOp();
        else if (roll < 48)
            selectOp();
        else if (roll < 54)
            boolOp();
        else
            arithOp();
    }

    void
    emitOps(size_t count)
    {
        for (size_t i = 0; i < count; ++i)
            emitOp();
    }

    // ----- control regions -----------------------------------------------

    /** Ops, optionally a nested control region, more ops. */
    void
    emitSeq(size_t depth, size_t ops)
    {
        emitOps(ops / 2 + 1);
        if (depth > 0) {
            switch (rng_.below(4)) {
            case 0:
                emitDiamond(depth - 1);
                break;
            case 1:
                if (options_.loops) {
                    emitLoop(depth - 1);
                    break;
                }
                [[fallthrough]];
            case 2:
                if (options_.switches) {
                    emitSwitch();
                    break;
                }
                [[fallthrough]];
            default:
                emitOps(2);
                break;
            }
        }
        emitOps(ops - ops / 2);
    }

    void
    emitDiamond(size_t depth)
    {
        std::string cond = icmpOp();
        std::string then_l = freshLabel("fzt");
        std::string else_l = freshLabel("fze");
        std::string join_l = freshLabel("fzj");
        line("br i1 " + cond + ", label %" + then_l + ", label %" +
             else_l);

        unsigned phi_width = pickWidth();
        PoolMark mark = poolMark();

        label(then_l);
        emitSeq(depth, rng_.range(1, 3));
        std::string then_val = regValue(phi_width);
        std::string then_end = current_;
        line("br label %" + join_l);
        poolRestore(mark);

        label(else_l);
        emitSeq(depth, rng_.range(1, 3));
        std::string else_val = regValue(phi_width);
        std::string else_end = current_;
        line("br label %" + join_l);
        poolRestore(mark);

        label(join_l);
        std::string merged = fresh();
        line(merged + " = phi " + ty(phi_width) + " [ " + then_val +
             ", %" + then_end + " ], [ " + else_val + ", %" + else_end +
             " ]");
        addToPool(phi_width, merged);
    }

    /**
     * Counted loop with an accumulator. The back edge always comes from
     * a dedicated latch block, so the header phis can name their
     * incoming block before the body (which may itself branch) exists.
     */
    void
    emitLoop(size_t depth)
    {
        std::string pre = current_;
        std::string head = freshLabel("fzh");
        std::string body = freshLabel("fzb");
        std::string latch = freshLabel("fzl");
        std::string exit = freshLabel("fzx");
        unsigned acc_width = pickWidth();
        std::string acc_seed = regValue(acc_width);

        // Bound: small literal, or a masked i32 register (computed in
        // the preheader so it dominates the header).
        std::string bound;
        if (rng_.chancePercent(50)) {
            bound = std::to_string(rng_.range(1, 10));
        } else {
            bound = fresh();
            line(bound + " = and i32 " + regValue(32) + ", 7");
        }
        line("br label %" + head);

        std::string iv = fresh();
        std::string iv_next = fresh();
        std::string acc = fresh();
        std::string acc_next = fresh();

        label(head);
        line(iv + " = phi i32 [ 0, %" + pre + " ], [ " + iv_next +
             ", %" + latch + " ]");
        line(acc + " = phi " + ty(acc_width) + " [ " + acc_seed + ", %" +
             pre + " ], [ " + acc_next + ", %" + latch + " ]");
        std::string cond = fresh();
        line(cond + " = icmp ult i32 " + iv + ", " + bound);
        line("br i1 " + cond + ", label %" + body + ", label %" + exit);

        PoolMark mark = poolMark();
        label(body);
        addToPool(32, iv);
        addToPool(acc_width, acc);
        emitSeq(depth, rng_.range(1, 3));
        std::string step = regValue(acc_width);
        line("br label %" + latch);

        label(latch);
        line(acc_next + " = add " + ty(acc_width) + " " + acc + ", " +
             step);
        line(iv_next + " = add i32 " + iv + ", 1");
        line("br label %" + head);
        poolRestore(mark);

        label(exit);
        // Only the accumulator phi survives the loop (it is defined in
        // the header, which dominates the exit).
        addToPool(acc_width, acc);
    }

    void
    emitSwitch()
    {
        std::string sel = fresh();
        line(sel + " = and i32 " + regValue(32) + ", 7");
        std::string dflt = freshLabel("fzd");
        std::string join = freshLabel("fzj");

        // Three distinct case values in the selector's 0..7 range.
        std::vector<int> values = {0, 1, 2, 3, 4, 5, 6, 7};
        rng_.shuffle(values);
        values.resize(3);

        std::vector<std::string> cases;
        for (int i = 0; i < 3; ++i)
            cases.push_back(freshLabel("fzc"));
        line("switch i32 " + sel + ", label %" + dflt + " [");
        for (int i = 0; i < 3; ++i)
            line("  i32 " + std::to_string(values[i]) + ", label %" +
                 cases[i]);
        line("]");

        unsigned phi_width = pickWidth();
        PoolMark mark = poolMark();
        std::vector<std::pair<std::string, std::string>> incoming;
        for (const std::string &arm : cases) {
            label(arm);
            emitOps(rng_.range(1, 2));
            incoming.emplace_back(regValue(phi_width), arm);
            line("br label %" + join);
            poolRestore(mark);
        }
        label(dflt);
        incoming.emplace_back(regValue(phi_width), dflt);
        line("br label %" + join);

        label(join);
        std::string merged = fresh();
        std::string phi = merged + " = phi " + ty(phi_width);
        for (size_t i = 0; i < incoming.size(); ++i) {
            phi += i ? ", [ " : " [ ";
            phi += incoming[i].first + ", %" + incoming[i].second + " ]";
        }
        line(phi);
        addToPool(phi_width, merged);
    }

    Rng &rng_;
    const GeneratorOptions &options_;
    std::ostringstream body_;
    std::map<unsigned, std::vector<std::string>> pools_;
    std::vector<unsigned> paramWidths_;
    unsigned returnWidth_ = 32;
    std::string current_ = "entry";
    unsigned next_ = 0;
    unsigned nextLabel_ = 0;
};

} // namespace

std::string
generatorPrelude()
{
    return "@fz_buf = external global [64 x i8]\n"
           "@fz_word32 = external global i32\n"
           "@fz_word64 = external global i64\n"
           "declare i32 @fz_ext0(i32)\n"
           "declare i64 @fz_ext1(i64, i32)\n"
           "declare void @fz_sink(i32)\n";
}

std::string
generatorPrelude(const GeneratorOptions &options)
{
    std::string prelude = generatorPrelude();
    if (options.aggregateGeps)
        prelude += "@fz_pair = external global { i32, [4 x i16] }\n"
                   "@fz_grid = external global [4 x { i8, i32 }]\n";
    return prelude;
}

std::string
generateFunctionSource(Rng &rng, const GeneratorOptions &options)
{
    return Gen(rng, options).run();
}

std::string
generateModuleSource(Rng &rng, const GeneratorOptions &options)
{
    std::ostringstream out;
    out << "; keq-fuzz generated program\n"
        << generatorPrelude(options) << "\n"
        << generateFunctionSource(rng, options);
    return out.str();
}

llvmir::Module
generateModule(Rng &rng, const GeneratorOptions &options)
{
    std::string source = generateModuleSource(rng, options);
    llvmir::Module module;
    try {
        module = llvmir::parseModule(source);
        llvmir::verifyModuleOrThrow(module);
    } catch (const support::Error &error) {
        throw support::Error(
            std::string("fuzz generator produced invalid IR (a generator "
                        "bug): ") +
            error.what() + "\n--- program ---\n" + source);
    }
    return module;
}

} // namespace keq::fuzz
