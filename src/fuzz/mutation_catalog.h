#ifndef KEQ_FUZZ_MUTATION_CATALOG_H
#define KEQ_FUZZ_MUTATION_CATALOG_H

/**
 * @file
 * The shared catalogue of compiler-bug mutations.
 *
 * One table drives three consumers: the bug-study bench (bench_bugs
 * reports the Section 5.2 experiments from the IselBug rows), the fuzz
 * campaign (random programs x random mutations x differential oracle),
 * and the kill-guarantee tests (every miscompile entry's exemplar must
 * be rejected by the checker).
 *
 * Two mutation mechanisms:
 *  - IselBug: re-lower with one of ISel's deliberately buggy peepholes
 *    enabled (the paper's PR25154 / PR4737 reintroductions). The bug
 *    triggers only on programs containing the peephole's pattern, so
 *    each entry carries an exemplar that does.
 *  - MirRewrite: run the *correct* ISel, then rewrite its Virtual x86
 *    output in place — operand swaps, flag clobbers, dropped sign
 *    extensions, wrong-width constants (a superset of the paper's bug
 *    study), plus semantics-preserving rewrites (commuting, dead code)
 *    that probe the checker's completeness instead of its soundness.
 *
 * Entries with expectEquivalent=false are injected miscompiles: the
 * checker validating one AND the differential oracle observing divergent
 * executions is a soundness bug in the validator. Entries with
 * expectEquivalent=true are benign: the checker rejecting one (when it
 * validated the unmutated lowering of the same program) is a
 * completeness gap.
 */

#include <string>
#include <string_view>
#include <vector>

#include "src/isel/isel.h"
#include "src/llvmir/ir.h"
#include "src/support/rng.h"
#include "src/vx86/mir.h"

namespace keq::fuzz {

enum class MutationKind : uint8_t {
    /** Re-lower with a buggy ISel peephole enabled. */
    IselBug,
    /** Rewrite the correct lowering's machine code in place. */
    MirRewrite,
};

const char *mutationKindName(MutationKind kind);

/** One catalogue entry. */
struct Mutation
{
    /** Stable identifier (CLI --mutation, stats keys, repro metadata). */
    const char *id;
    const char *description;
    MutationKind kind;
    /** True for semantics-preserving rewrites (completeness probes). */
    bool expectEquivalent;
    /** Lowering for the reference / correct side. */
    isel::IselOptions cleanOptions;
    /** IselBug only: the buggy lowering configuration. */
    isel::IselOptions buggyOptions;
    /** A module on which this mutation demonstrably applies. */
    const char *exemplar;
    /** Name of the mutated function inside the exemplar (with '@'). */
    const char *exemplarFunction;
    /**
     * MirRewrite only: applies the rewrite to @p mfn at an rng-chosen
     * site; returns false (leaving @p mfn unchanged) when the function
     * contains no applicable site. Site choice is the only randomness,
     * so replaying with an equal Rng state reproduces the exact mutant.
     */
    bool (*apply)(vx86::MFunction &mfn, support::Rng &rng);
};

/** The full catalogue, in stable order. */
const std::vector<Mutation> &mutationCatalog();

/** Looks up an entry by id; null when unknown. */
const Mutation *findMutation(std::string_view id);

/** Result of lowering a program through a mutation. */
struct MutantLowering
{
    vx86::MFunction mfn;
    /** Hints describing the lowering the mutant was derived from. */
    isel::FunctionHints hints;
    /** A site was found and the machine code actually changed. */
    bool applied = false;
};

/**
 * Produces the mutant machine function for @p fn: runs the entry's
 * lowering (buggy for IselBug, correct-then-rewritten for MirRewrite).
 * Throws support::Error when ISel rejects the function (unsupported
 * fragment).
 */
MutantLowering lowerMutant(const Mutation &mutation,
                           const llvmir::Module &module,
                           const llvmir::Function &fn, support::Rng &rng);

} // namespace keq::fuzz

#endif // KEQ_FUZZ_MUTATION_CATALOG_H
