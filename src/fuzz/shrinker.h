#ifndef KEQ_FUZZ_SHRINKER_H
#define KEQ_FUZZ_SHRINKER_H

/**
 * @file
 * Test-case minimization for failing fuzz seeds.
 *
 * Given a module and a failure predicate ("the interesting behaviour
 * still reproduces"), the shrinker greedily applies reduction passes and
 * keeps every candidate that (a) still verifies and (b) still satisfies
 * the predicate:
 *
 *  1. branch collapsing — a CondBr becomes an unconditional Br (either
 *     arm), a Switch jumps straight to its default; unreachable blocks
 *     and stale phi edges are cleaned up, so whole regions disappear in
 *     one accepted step;
 *  2. instruction deletion — unused definitions and side-effecting
 *     instructions (stores, calls), scanned back to front;
 *  3. constant simplification — literal operands become 0 (1 for
 *     divisors, so the candidate stays UB-free).
 *
 * Passes repeat until a full round accepts nothing (or maxRounds). The
 * predicate is typically expensive (a checker run plus oracle trials),
 * so candidates are ordered big-wins-first.
 */

#include <functional>

#include "src/llvmir/ir.h"

namespace keq::fuzz {

/** Returns true when the candidate still exhibits the failure. */
using FailurePredicate = std::function<bool(const llvmir::Module &)>;

struct ShrinkOptions
{
    /** Cap on full rounds over all passes. */
    size_t maxRounds = 8;
    bool simplifyConstants = true;
};

struct ShrinkStats
{
    size_t attempts = 0;
    size_t accepted = 0;
    size_t rounds = 0;
    size_t originalInstructions = 0;
    size_t finalInstructions = 0;

    /** Fraction of instructions removed, in [0, 1]. */
    double
    reduction() const
    {
        if (originalInstructions == 0)
            return 0.0;
        return 1.0 - static_cast<double>(finalInstructions) /
                         static_cast<double>(originalInstructions);
    }
};

struct ShrinkResult
{
    llvmir::Module module;
    ShrinkStats stats;
};

/** Total instruction count over the module's defined functions. */
size_t moduleInstructionCount(const llvmir::Module &module);

/**
 * Minimizes @p module under @p stillFails. The input module must itself
 * satisfy the predicate; the result always does.
 */
ShrinkResult shrinkModule(const llvmir::Module &module,
                          const FailurePredicate &stillFails,
                          const ShrinkOptions &options = {});

} // namespace keq::fuzz

#endif // KEQ_FUZZ_SHRINKER_H
