#include "src/fuzz/oracle.h"

#include <sstream>

#include "src/llvmir/interpreter.h"
#include "src/llvmir/layout_builder.h"
#include "src/vx86/interpreter.h"

namespace keq::fuzz {

using support::ApInt;
using support::Rng;

namespace {

/**
 * Deterministic external-call model shared by both interpreters: a pure
 * hash of the callee name and arguments (the differential tests' model).
 */
ApInt
externalModel(const std::string &callee, const std::vector<ApInt> &args)
{
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (char c : callee)
        h = (h ^ static_cast<uint64_t>(c)) * 31;
    for (const ApInt &arg : args)
        h = (h ^ arg.zext()) * 0x100000001b3ull;
    return ApInt(64, h & 0xffff);
}

std::string
describeTrial(size_t trial, const std::vector<ApInt> &args,
              const char *what)
{
    std::ostringstream out;
    out << "trial " << trial << " (args";
    for (const ApInt &arg : args)
        out << " " << arg.toString();
    out << "): " << what;
    return out.str();
}

} // namespace

const char *
execAgreementName(ExecAgreement agreement)
{
    switch (agreement) {
    case ExecAgreement::Agree:
        return "agree";
    case ExecAgreement::Diverged:
        return "diverged";
    case ExecAgreement::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

const char *
oracleVerdictName(OracleVerdict verdict)
{
    switch (verdict) {
    case OracleVerdict::Agree:
        return "agree";
    case OracleVerdict::Killed:
        return "killed";
    case OracleVerdict::SoundnessBug:
        return "SOUNDNESS-BUG";
    case OracleVerdict::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

ExecAgreement
compareExecutions(const llvmir::Module &module, const llvmir::Function &fn,
                  const vx86::MFunction &mfn, Rng &rng,
                  const OracleOptions &options, OracleResult &result)
{
    mem::MemoryLayout layout;
    llvmir::populateLayout(module, layout);

    vx86::MModule mmodule;
    mmodule.functions.push_back(mfn);

    ExecAgreement agreement = ExecAgreement::Inconclusive;
    for (size_t trial = 0; trial < options.trials; ++trial) {
        std::vector<ApInt> args;
        for (const llvmir::Parameter &param : fn.params) {
            // Mix small values (loop bounds, selectors) with full-range
            // bit patterns (sign and width corner cases).
            uint64_t bits = trial % 2 == 0 ? rng.below(40) : rng.next();
            args.push_back(ApInt(param.type->valueBits(), bits));
        }

        // Identical initial memories on both sides; the fill stream is a
        // function of the trial rng so different trials see different
        // images.
        mem::ConcreteMemory mem_a(layout);
        mem::ConcreteMemory mem_b(layout);
        uint64_t fill_seed = rng.next();
        for (const mem::MemoryObject &object : layout.objects()) {
            Rng fill(fill_seed ^ object.base);
            for (uint64_t i = 0; i < object.size; ++i) {
                uint8_t byte = static_cast<uint8_t>(fill.next());
                mem_a.poke(object.base + i, byte);
                mem_b.poke(object.base + i, byte);
            }
        }

        llvmir::Interpreter interp_a(module, mem_a);
        interp_a.setExternalHandler(externalModel);
        llvmir::ExecResult res_a =
            interp_a.run(fn, args, options.llvmStepBudget);

        vx86::Interpreter interp_b(mmodule, mem_b);
        interp_b.setExternalHandler(externalModel);
        std::vector<ApInt> margs;
        for (const ApInt &arg : args)
            margs.push_back(arg.zextTo(64));
        vx86::MExecResult res_b =
            interp_b.run(mfn, margs, options.x86StepBudget);

        result.trialsRun++;

        if (res_a.outcome == llvmir::ExecOutcome::StepLimit ||
            res_b.outcome == vx86::MExecOutcome::StepLimit)
            continue; // budget races carry no information
        if (res_a.outcome == llvmir::ExecOutcome::Trapped)
            continue; // input trap licenses any output (refinement)

        result.trialsObserved++;
        if (agreement == ExecAgreement::Inconclusive)
            agreement = ExecAgreement::Agree;

        auto diverged = [&](const char *what) {
            agreement = ExecAgreement::Diverged;
            if (result.divergentTrial < 0) {
                result.divergentTrial = static_cast<int>(trial);
                result.detail = describeTrial(trial, args, what);
            }
        };

        if (res_b.outcome == vx86::MExecOutcome::Trapped) {
            diverged("x86 side trapped where LLVM side returned");
            continue;
        }
        bool value_differs =
            !fn.returnType->isVoid() &&
            res_a.value.zextTo(64) != res_b.value.zextTo(64);
        if (value_differs) {
            diverged("return values differ");
            continue;
        }
        if (res_a.callTrace != res_b.callTrace) {
            diverged("external call traces differ");
            continue;
        }
        bool memory_differs = false;
        for (const mem::MemoryObject &object : layout.objects()) {
            for (uint64_t i = 0; i < object.size && !memory_differs; ++i)
                memory_differs =
                    mem_a.peek(object.base + i) !=
                    mem_b.peek(object.base + i);
        }
        if (memory_differs)
            diverged("final memory images differ");
    }
    return agreement;
}

OracleResult
crossCheck(const llvmir::Module &module, const llvmir::Function &fn,
           const vx86::MFunction &mfn, const isel::FunctionHints &hints,
           Rng &rng, const OracleOptions &options)
{
    OracleResult result;
    result.execution =
        compareExecutions(module, fn, mfn, rng, options, result);
    result.report = driver::validateFunctionPair(module, fn, mfn, hints,
                                                 options.pipeline);

    // A portfolio disagreement means two solver lanes returned
    // contradictory definite verdicts on the same query — some lane is
    // unsound no matter what the executions observed. Promote it to the
    // soundness report instead of letting it drown in the inconclusive
    // bucket with the honest timeouts. The stats counter matters too: a
    // guarded-solver retry can resolve the query on a later attempt and
    // overwrite the failure classification, but the disagreement still
    // happened.
    if (result.report.verdict.failure ==
            FailureKind::PortfolioDisagreement ||
        result.report.verdict.stats.solverStats.crossLaneDisagreements >
            0) {
        result.verdict = OracleVerdict::SoundnessBug;
        result.detail = result.report.verdict.reason.empty()
                            ? "solver portfolio lanes disagreed"
                            : result.report.verdict.reason;
        return result;
    }

    switch (result.report.outcome) {
    case driver::Outcome::Succeeded:
        result.verdict = result.execution == ExecAgreement::Diverged
                             ? OracleVerdict::SoundnessBug
                             : OracleVerdict::Agree;
        break;
    case driver::Outcome::Other:
        result.verdict = OracleVerdict::Killed;
        break;
    case driver::Outcome::Timeout:
    case driver::Outcome::OutOfMemory:
    case driver::Outcome::Unsupported:
        result.verdict = OracleVerdict::Inconclusive;
        break;
    }
    if (result.verdict == OracleVerdict::SoundnessBug &&
        result.detail.empty())
        result.detail = "checker validated a diverging pair";
    return result;
}

} // namespace keq::fuzz
