#ifndef KEQ_SERVICE_ENDPOINT_H
#define KEQ_SERVICE_ENDPOINT_H

/**
 * @file
 * Service endpoint addressing: `unix:PATH` and `tcp:HOST:PORT`.
 *
 * Every place the daemon or a client names a transport — keqd
 * `--listen=`, keqc `--daemon=`, ServerOptions, DaemonClientOptions —
 * speaks this one grammar:
 *
 *   unix:/run/keqd.sock        AF_UNIX stream socket
 *   tcp:127.0.0.1:7461         AF_INET
 *   tcp:[::1]:7461             AF_INET6 (bracketed, RFC 3986 style)
 *   /run/keqd.sock             legacy bare path == unix:
 *
 * A TCP listen endpoint may carry port 0 (bind an ephemeral port; the
 * bound port is reported back through Listener::endpoint()); a connect
 * endpoint with port 0 simply fails to connect.
 *
 * Parsing is strict and the errors are pointed: the CLIs turn a false
 * return into exit 64 (EX_USAGE) quoting @p error verbatim, so a typo
 * in an endpoint list names the offending element, not "usage:".
 */

#include <cstdint>
#include <string>
#include <vector>

namespace keq::service {

enum class TransportKind : uint8_t { Unix, Tcp };

const char *transportName(TransportKind kind);

struct Endpoint
{
    TransportKind kind = TransportKind::Unix;
    std::string path;   ///< unix: filesystem path
    std::string host;   ///< tcp: numeric or resolvable host
    uint16_t port = 0;  ///< tcp: 0 = ephemeral (listen only)

    bool operator==(const Endpoint &rhs) const
    {
        return kind == rhs.kind && path == rhs.path &&
               host == rhs.host && port == rhs.port;
    }
};

/** Convenience constructors. */
Endpoint unixEndpoint(std::string path);
Endpoint tcpEndpoint(std::string host, uint16_t port);

/** Canonical spelling (round-trips through parseEndpoint). */
std::string endpointToString(const Endpoint &endpoint);

/**
 * Parses one endpoint spec. False with a pointed @p error (always
 * quoting the offending spec) on anything malformed: empty spec,
 * `unix:` with no path, `tcp:` without a `HOST:PORT`, an empty host,
 * a non-numeric or out-of-range port, an unterminated `[` bracket.
 */
bool parseEndpoint(const std::string &spec, Endpoint &out,
                   std::string &error);

/**
 * Parses a comma-separated endpoint list (the keqc --daemon failover
 * form). Order is preserved — it is the client's preference order.
 * False on an empty list, an empty element, or any element failing
 * parseEndpoint.
 */
bool parseEndpointList(const std::string &spec,
                       std::vector<Endpoint> &out, std::string &error);

} // namespace keq::service

#endif // KEQ_SERVICE_ENDPOINT_H
