#ifndef KEQ_SERVICE_SOCKET_H
#define KEQ_SERVICE_SOCKET_H

/**
 * @file
 * Stream-socket transports for the validation service.
 *
 * The daemon and its clients exchange exactly the same length-prefixed
 * frames as the solver sandbox (smt/wire: u32 LE payload length +
 * payload), but over stream sockets instead of pipes. Two transports
 * implement one Listener seam: AF_UNIX (single host, filesystem
 * permissions) and AF_INET/AF_INET6 TCP (multi-host). The frame layer
 * — WireChannel — is transport-agnostic: it owns a connected fd and
 * never cares how it was made.
 *
 * Safety properties mirrored from support::Subprocess:
 *  - reads are deadline-aware (poll + read loop) so a dead peer turns
 *    into a classified Timeout/Eof, never a hung thread;
 *  - writes use MSG_NOSIGNAL so a disconnected peer surfaces as an
 *    error return instead of a SIGPIPE process death — the daemon must
 *    survive any client vanishing at any instant;
 *  - frame lengths are validated against wire::kMaxFramePayload before
 *    any allocation, so a garbage peer cannot OOM the daemon;
 *  - every read(2)/write(2)-family loop retries EINTR and resumes
 *    short transfers — frames survive arbitrary kernel fragmentation
 *    (pinned by the fragmenting fault-injection tests).
 */

#include <cstdint>
#include <memory>
#include <string>

#include "src/service/endpoint.h"
#include "src/support/subprocess.h" // support::IoStatus

namespace keq::service {

/**
 * One connected stream socket speaking wire frames. Owns the fd;
 * movable, not copyable.
 */
class WireChannel
{
  public:
    WireChannel() = default;
    explicit WireChannel(int fd) : fd_(fd) {}
    ~WireChannel();

    WireChannel(WireChannel &&rhs) noexcept;
    WireChannel &operator=(WireChannel &&rhs) noexcept;
    WireChannel(const WireChannel &) = delete;
    WireChannel &operator=(const WireChannel &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Sends one already-framed byte string (wire::frameBytes output).
     * False when the peer is gone or the write fails; never raises
     * SIGPIPE. Callers serialize sends themselves when several threads
     * share the channel (Session holds a write mutex).
     */
    bool sendFrame(const std::string &frame);

    /**
     * Receives one frame payload (the length prefix is consumed and
     * validated here). @p deadline_ms bounds the *whole* frame; 0 waits
     * forever. On Timeout/Eof partial bytes are discarded — a torn
     * frame is a broken connection, not a resumable state.
     */
    support::IoStatus recvFrame(std::string &payload,
                                unsigned deadline_ms);

    /**
     * Waits up to @p timeout_ms for the socket to become readable
     * WITHOUT consuming bytes. Ok = a frame (or EOF) is waiting, so a
     * following recvFrame will not idle; Timeout = the peer sent
     * nothing. This is the heartbeat primitive: the failover client
     * polls readability on a tick so it can inject Ping probes between
     * frames without ever tearing a partially-arrived frame (which a
     * short recvFrame deadline would).
     */
    support::IoStatus waitReadable(unsigned timeout_ms);

    /** shutdown(2) both directions: unblocks any reader immediately. */
    void shutdownBoth();

    void close();

    uint64_t bytesSent() const { return bytesSent_; }
    uint64_t bytesReceived() const { return bytesReceived_; }

  private:
    support::IoStatus readExact(std::string &out, size_t bytes,
                                unsigned deadline_ms);

    int fd_ = -1;
    uint64_t bytesSent_ = 0;
    uint64_t bytesReceived_ = 0;
};

/**
 * A daemon listening socket: the transport seam. One implementation
 * per TransportKind; the Server holds several and treats them
 * uniformly (one accept thread each, one shared FairQueue behind).
 */
class Listener
{
  public:
    virtual ~Listener() = default;

    /** Binds + listens on @p endpoint; false with @p error. */
    virtual bool listenOn(const Endpoint &endpoint,
                          std::string &error) = 0;

    /**
     * Accepts one connection, waiting up to @p timeout_ms (0 =
     * forever). Returns a CLOEXEC fd >= 0, or -1 on timeout / closed
     * listener.
     */
    virtual int acceptClient(unsigned timeout_ms) = 0;

    virtual void close() = 0;
    virtual bool listening() const = 0;

    /**
     * The endpoint actually bound. For a TCP listen on port 0 this
     * carries the kernel-assigned ephemeral port, so tests and the
     * keqd startup banner can name a connectable address.
     */
    virtual const Endpoint &endpoint() const = 0;

    TransportKind transport() const { return endpoint().kind; }
};

/**
 * AF_UNIX listener. Binds, listens, and unlinks the filesystem path on
 * close, so a cleanly stopped daemon leaves no stale socket behind. A
 * stale file from a *crashed* daemon is detected at bind time: if
 * nothing accepts connections on it, it is unlinked and the bind
 * retried.
 */
class UnixListener : public Listener
{
  public:
    UnixListener() = default;
    ~UnixListener() override;

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    bool listenOn(const Endpoint &endpoint,
                  std::string &error) override;
    /** Legacy path form (equivalent to a unix: endpoint). */
    bool listenOn(const std::string &path, std::string &error);

    int acceptClient(unsigned timeout_ms) override;
    void close() override;
    bool listening() const override { return fd_ >= 0; }
    const Endpoint &endpoint() const override { return endpoint_; }
    const std::string &path() const { return endpoint_.path; }

  private:
    int fd_ = -1;
    Endpoint endpoint_;
};

/**
 * AF_INET/AF_INET6 TCP listener. Resolves the host with getaddrinfo
 * (numeric literals and names both work), binds with SO_REUSEADDR so a
 * restarted daemon reclaims its port without waiting out TIME_WAIT,
 * and applies TCP_NODELAY to every accepted connection — wire frames
 * are small and latency-bound, so Nagle buys nothing here.
 */
class TcpListener : public Listener
{
  public:
    TcpListener() = default;
    ~TcpListener() override;

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    bool listenOn(const Endpoint &endpoint,
                  std::string &error) override;
    int acceptClient(unsigned timeout_ms) override;
    void close() override;
    bool listening() const override { return fd_ >= 0; }
    const Endpoint &endpoint() const override { return endpoint_; }

  private:
    int fd_ = -1;
    Endpoint endpoint_;
};

/** Unbound listener of the right transport for @p endpoint. */
std::unique_ptr<Listener> makeListener(const Endpoint &endpoint);

/**
 * Connects to a daemon endpoint, waiting up to @p timeout_ms for the
 * connect to complete. Unix connects retry a full backlog within the
 * budget; TCP connects are non-blocking + poll so an unreachable host
 * costs the budget, never a hung thread. On success the fd is blocking
 * and (for TCP) has TCP_NODELAY set.
 */
bool connectEndpoint(const Endpoint &endpoint, unsigned timeout_ms,
                     int &fd, std::string &error);

/** Legacy form of connectEndpoint for a unix path. */
bool connectUnix(const std::string &path, unsigned timeout_ms, int &fd,
                 std::string &error);

} // namespace keq::service

#endif // KEQ_SERVICE_SOCKET_H
