#ifndef KEQ_SERVICE_SOCKET_H
#define KEQ_SERVICE_SOCKET_H

/**
 * @file
 * Unix-domain-socket transport for the validation service.
 *
 * The daemon and its clients exchange exactly the same length-prefixed
 * frames as the solver sandbox (smt/wire: u32 LE payload length +
 * payload), but over AF_UNIX stream sockets instead of pipes. This
 * layer owns the fds and the framing; everything above it deals in
 * whole payload strings and never sees a partial read.
 *
 * Safety properties mirrored from support::Subprocess:
 *  - reads are deadline-aware (poll + read loop) so a dead peer turns
 *    into a classified Timeout/Eof, never a hung thread;
 *  - writes use MSG_NOSIGNAL so a disconnected peer surfaces as an
 *    error return instead of a SIGPIPE process death — the daemon must
 *    survive any client vanishing at any instant;
 *  - frame lengths are validated against wire::kMaxFramePayload before
 *    any allocation, so a garbage peer cannot OOM the daemon.
 */

#include <cstdint>
#include <string>

#include "src/support/subprocess.h" // support::IoStatus

namespace keq::service {

/**
 * One connected stream socket speaking wire frames. Owns the fd;
 * movable, not copyable.
 */
class WireChannel
{
  public:
    WireChannel() = default;
    explicit WireChannel(int fd) : fd_(fd) {}
    ~WireChannel();

    WireChannel(WireChannel &&rhs) noexcept;
    WireChannel &operator=(WireChannel &&rhs) noexcept;
    WireChannel(const WireChannel &) = delete;
    WireChannel &operator=(const WireChannel &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Sends one already-framed byte string (wire::frameBytes output).
     * False when the peer is gone or the write fails; never raises
     * SIGPIPE. Callers serialize sends themselves when several threads
     * share the channel (Session holds a write mutex).
     */
    bool sendFrame(const std::string &frame);

    /**
     * Receives one frame payload (the length prefix is consumed and
     * validated here). @p deadline_ms bounds the *whole* frame; 0 waits
     * forever. On Timeout/Eof partial bytes are discarded — a torn
     * frame is a broken connection, not a resumable state.
     */
    support::IoStatus recvFrame(std::string &payload,
                                unsigned deadline_ms);

    /** shutdown(2) both directions: unblocks any reader immediately. */
    void shutdownBoth();

    void close();

    uint64_t bytesSent() const { return bytesSent_; }
    uint64_t bytesReceived() const { return bytesReceived_; }

  private:
    support::IoStatus readExact(std::string &out, size_t bytes,
                                unsigned deadline_ms);

    int fd_ = -1;
    uint64_t bytesSent_ = 0;
    uint64_t bytesReceived_ = 0;
};

/**
 * The daemon's listening socket. Binds, listens, and unlinks the
 * filesystem path on close, so a cleanly stopped daemon leaves no
 * stale socket behind. A stale file from a *crashed* daemon is
 * detected at bind time: if nothing accepts connections on it, it is
 * unlinked and the bind retried.
 */
class UnixListener
{
  public:
    UnixListener() = default;
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /** Binds + listens on @p path; false with @p error on failure. */
    bool listenOn(const std::string &path, std::string &error);

    /**
     * Accepts one connection, waiting up to @p timeout_ms (0 = forever).
     * Returns a fd >= 0, or -1 on timeout / closed listener.
     */
    int acceptClient(unsigned timeout_ms);

    void close();
    bool listening() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

/**
 * Connects to a daemon socket, waiting up to @p timeout_ms for the
 * connect to complete. False with @p error when the socket is absent,
 * refuses, or the path exceeds sun_path.
 */
bool connectUnix(const std::string &path, unsigned timeout_ms, int &fd,
                 std::string &error);

} // namespace keq::service

#endif // KEQ_SERVICE_SOCKET_H
