#include "src/service/fair_queue.h"

#include <algorithm>

namespace keq::service {

void
FairQueue::push(JobWork job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t client = job.clientId;
    auto [it, inserted] = queues_.try_emplace(client);
    if (it->second.empty()) {
        // (Re-)entering the rotation: a client that drained earlier
        // rejoins at the back, keeping first-arrival fairness.
        order_.push_back(client);
    }
    it->second.push_back(std::move(job));
}

bool
FairQueue::pop(JobWork &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (order_.empty())
        return false;
    uint64_t client = order_.front();
    order_.pop_front();
    auto it = queues_.find(client);
    // order_ only lists clients with nonempty queues; dropClient
    // removes the order_ entry together with the jobs.
    std::deque<JobWork> &queue = it->second;
    out = std::move(queue.front());
    queue.pop_front();
    if (!queue.empty())
        order_.push_back(client); // rotate to the back
    else
        queues_.erase(it);
    return true;
}

size_t
FairQueue::dropClient(uint64_t clientId)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queues_.find(clientId);
    if (it == queues_.end())
        return 0;
    size_t dropped = it->second.size();
    queues_.erase(it);
    order_.remove(clientId);
    return dropped;
}

size_t
FairQueue::queued() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t total = 0;
    for (const auto &[client, queue] : queues_)
        total += queue.size();
    return total;
}

size_t
FairQueue::queuedFor(uint64_t clientId) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = queues_.find(clientId);
    return it == queues_.end() ? 0 : it->second.size();
}

} // namespace keq::service
