#include "src/service/client.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <time.h>
#include <unistd.h>

#include "src/driver/checkpoint.h"
#include "src/service/job_options.h"

namespace keq::service {

namespace wire = smt::wire;
using support::IoStatus;

namespace {

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

void
sleepMs(unsigned ms)
{
    struct timespec ts;
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
}

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/** Liveness-poll tick: bounds how late a heartbeat can fire. */
constexpr unsigned kHeartbeatTickMs = 200;

unsigned
elapsedMs(std::chrono::steady_clock::time_point since,
          std::chrono::steady_clock::time_point now)
{
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - since)
                  .count();
    return ms < 0 ? 0u : static_cast<unsigned>(ms);
}

} // namespace

DaemonClient::DaemonClient(DaemonClientOptions options)
    : options_(std::move(options))
{
    // Jitter seed: distinct per process and per client object, so
    // concurrent keqc invocations desynchronize their backoff sleeps.
    jitterState_ = static_cast<uint64_t>(::getpid()) ^
                   (reinterpret_cast<uintptr_t>(this) << 16) ^
                   static_cast<uint64_t>(
                       std::chrono::steady_clock::now()
                           .time_since_epoch()
                           .count());
}

FailureKind
DaemonClient::classify(IoStatus status) const
{
    // The daemon is the worker here: a vanished daemon is the same
    // failure mode as a killed sandbox worker, and keqc's degradation
    // path treats it identically.
    if (status == IoStatus::Timeout)
        return FailureKind::Timeout;
    return FailureKind::WorkerKilled;
}

bool
DaemonClient::connect(std::string &error)
{
    endpoints_ = options_.endpoints;
    if (endpoints_.empty() && !options_.socketPath.empty())
        endpoints_.push_back(unixEndpoint(options_.socketPath));
    if (endpoints_.empty()) {
        error = "no daemon endpoints configured";
        failure_ = FailureKind::WorkerKilled;
        return false;
    }
    std::string aggregate;
    for (size_t i = 0; i < endpoints_.size(); ++i) {
        std::string attemptError;
        if (connectTo(endpoints_[i], attemptError)) {
            activeIndex_ = i;
            failure_ = FailureKind::None;
            return true;
        }
        if (!aggregate.empty())
            aggregate += "; ";
        aggregate += endpointToString(endpoints_[i]) + ": " +
                     attemptError;
    }
    error = aggregate;
    return false;
}

bool
DaemonClient::connectTo(const Endpoint &endpoint, std::string &error)
{
    int fd = -1;
    if (!connectEndpoint(endpoint, options_.connectTimeoutMs, fd,
                         error)) {
        failure_ = FailureKind::WorkerKilled;
        return false;
    }
    channel_ = WireChannel(fd);

    wire::ClientHelloFrame hello;
    hello.clientName = options_.clientName;
    if (!channel_.sendFrame(wire::encodeClientHello(hello))) {
        error = "failed to send hello";
        failure_ = FailureKind::WorkerKilled;
        close();
        return false;
    }
    std::string payload;
    IoStatus status =
        channel_.recvFrame(payload, options_.handshakeTimeoutMs);
    if (status != IoStatus::Ok) {
        error = status == IoStatus::Timeout
                    ? "handshake timed out"
                    : "connection closed during handshake";
        failure_ = classify(status);
        close();
        return false;
    }
    wire::FrameType type{};
    std::string body;
    std::string decodeError;
    if (!wire::splitFrame(payload, type, body)) {
        error = "malformed handshake reply";
        failure_ = FailureKind::WorkerKilled;
        close();
        return false;
    }
    if (type == wire::FrameType::HelloReject) {
        wire::HelloRejectFrame reject;
        if (wire::decodeHelloReject(body, reject, decodeError)) {
            error = "daemon rejected handshake: " + reject.message +
                    " (daemon protocol version " +
                    std::to_string(reject.supportedVersion) +
                    ", client " +
                    std::to_string(wire::kProtocolVersion) + ")";
        } else {
            error = "daemon rejected handshake";
        }
        failure_ = FailureKind::WorkerKilled;
        close();
        return false;
    }
    if (type != wire::FrameType::ServerHello ||
        !wire::decodeServerHello(body, serverHello_, decodeError)) {
        error = "unexpected handshake reply: " +
                std::string(wire::frameTypeName(type));
        failure_ = FailureKind::WorkerKilled;
        close();
        return false;
    }
    failure_ = FailureKind::None;
    return true;
}

bool
DaemonClient::reconnect(std::string &error)
{
    close();
    if (endpoints_.empty()) {
        error = "no daemon endpoints configured";
        return false;
    }
    unsigned backoffMs =
        std::max(1u, options_.reconnectBackoffInitialMs);
    unsigned rounds = std::max(1u, options_.reconnectRounds);
    std::string lastError = "no endpoints tried";
    for (unsigned round = 0; round < rounds; ++round) {
        if (round > 0) {
            // Jittered doubling sleep between passes: surviving
            // daemons see a spread-out reconnect herd, not a spike.
            unsigned jittered =
                backoffMs / 2 +
                static_cast<unsigned>(splitmix64(jitterState_) %
                                      (backoffMs / 2 + 1));
            sleepMs(jittered);
            backoffMs = std::min(
                std::max(1u, options_.reconnectBackoffMaxMs),
                backoffMs * 2);
        }
        // Advance first: the endpoint that just died is each pass's
        // last resort, the configured secondary its first.
        for (size_t step = 0; step < endpoints_.size(); ++step) {
            activeIndex_ = (activeIndex_ + 1) % endpoints_.size();
            if (connectTo(endpoints_[activeIndex_], lastError))
                return true;
        }
    }
    error = "reconnect exhausted after " + std::to_string(rounds) +
            " round(s) over " + std::to_string(endpoints_.size()) +
            " endpoint(s); last: " + lastError;
    return false;
}

IoStatus
DaemonClient::recvSupervised(std::string &payload, unsigned deadlineMs)
{
    auto start = std::chrono::steady_clock::now();
    bool pingOutstanding = false;
    auto pingSentAt = start;
    // Heartbeats are a v5 frame pair; never probe an older daemon
    // (it would answer Ping with a fatal "unexpected frame" error).
    bool canPing = options_.heartbeatIntervalMs > 0 &&
                   serverHello_.protocolVersion >= 5;
    for (;;) {
        IoStatus status = channel_.waitReadable(kHeartbeatTickMs);
        if (status == IoStatus::Ok) {
            // Bytes are pending; the frame read itself only needs to
            // beat a peer that dies mid-frame, not a slow solve.
            unsigned frameBudget = options_.heartbeatTimeoutMs > 0
                                       ? options_.heartbeatTimeoutMs
                                       : deadlineMs;
            return channel_.recvFrame(payload, frameBudget);
        }
        if (status != IoStatus::Timeout)
            return status; // Eof or socket error: peer is gone
        auto now = std::chrono::steady_clock::now();
        unsigned idleMs = elapsedMs(start, now);
        if (idleMs >= deadlineMs)
            return IoStatus::Timeout;
        if (!canPing)
            continue;
        if (pingOutstanding) {
            if (elapsedMs(pingSentAt, now) >=
                options_.heartbeatTimeoutMs) {
                // Silent peer: no Pong, no FIN, no RST. Typed death
                // beats stalling out the whole verdict deadline.
                return IoStatus::Timeout;
            }
        } else if (idleMs >= options_.heartbeatIntervalMs) {
            wire::PingFrame ping;
            ping.nonce = splitmix64(jitterState_);
            if (!channel_.sendFrame(wire::encodePing(ping)))
                return IoStatus::Error;
            pingOutstanding = true;
            pingSentAt = now;
        }
    }
}

bool
DaemonClient::validateFunctions(
    const std::string &moduleText,
    const std::vector<std::string> &functions,
    const driver::PipelineOptions &options,
    std::vector<driver::FunctionReport> &reports,
    std::vector<bool> &decided, std::string &error)
{
    size_t n = functions.size();
    reports.assign(n, driver::FunctionReport{});
    decided.assign(n, false);
    if (!connected()) {
        error = "not connected";
        failure_ = FailureKind::WorkerKilled;
        return false;
    }

    wire::JobOptionsFrame jobOptions = encodeJobOptions(options);
    unsigned window = std::max(1u, options_.submitWindow);
    unsigned backoffMs = std::max(1u, options_.busyBackoffInitialMs);
    unsigned busyRounds = 0;   // consecutive all-Busy, nothing-in-flight
    bool deferSubmits = false; // Busy seen; hold resubmits until progress
    breakerTripped_ = false;

    // One deterministic fingerprint per job, computed once: the
    // idempotency key a failover resubmit rides on. Only a job that
    // has *already been sent once* claims its fingerprint on the wire
    // — a first submission carries 0, so identical jobs from distinct
    // clients still each exercise the daemon's real (cache-warm)
    // solving path rather than replaying each other's ledger entries.
    // A v4 daemon never sees the field at all (encodeSubmitJob drops
    // it for v4 layouts).
    uint32_t wireVersion = std::min(serverHello_.protocolVersion,
                                    wire::kProtocolVersion);
    std::vector<uint64_t> fingerprints(n);
    for (size_t i = 0; i < n; ++i)
        fingerprints[i] =
            jobFingerprint(moduleText, functions[i], jobOptions);
    std::vector<char> everSubmitted(n, 0);

    std::vector<std::chrono::steady_clock::time_point> submitted(n);
    std::deque<size_t> toSubmit;
    for (size_t i = 0; i < n; ++i)
        toSubmit.push_back(i);
    size_t outstanding = 0;
    size_t done = 0;

    auto submitOne = [&](size_t idx) -> bool {
        wire::SubmitJobFrame job;
        job.jobId = static_cast<uint64_t>(idx) + 1;
        job.function = functions[idx];
        job.moduleText = moduleText;
        job.options = jobOptions;
        job.fingerprint = everSubmitted[idx] ? fingerprints[idx] : 0;
        everSubmitted[idx] = 1;
        submitted[idx] = std::chrono::steady_clock::now();
        if (!channel_.sendFrame(wire::encodeSubmitJob(job,
                                                      wireVersion))) {
            error = "daemon connection lost while submitting " +
                    functions[idx];
            failure_ = FailureKind::WorkerKilled;
            return false;
        }
        ++outstanding;
        return true;
    };

    // Transport death mid-run: reconnect (cycling endpoints), put every
    // undecided function back on the submit queue, and resume. Jobs the
    // dead daemon already finished are served from its ledger by
    // fingerprint — the resubmit is idempotent, so this never
    // double-charges a quota or duplicates a journal append. Decided
    // verdicts are never touched. False = failover exhausted; the
    // caller degrades to local solving with failure_ already set.
    //
    // The no-progress budget below is what makes this terminate
    // against the nastiest peer: one that accepts connections and
    // completes handshakes but never answers a job (a wedged daemon, a
    // half-dead NAT mapping). Reconnection *succeeding* is not
    // progress — verdicts are. Failovers that decide nothing in
    // between are counted, and once every endpoint has had its chance
    // the run degrades instead of cycling forever.
    size_t doneAtLastFailover = std::numeric_limits<size_t>::max();
    unsigned fruitlessFailovers = 0;
    auto failover = [&](const std::string &why) -> bool {
        if (done == doneAtLastFailover) {
            ++fruitlessFailovers;
            if (fruitlessFailovers > endpoints_.size()) {
                error = why + "; giving up after " +
                        std::to_string(fruitlessFailovers) +
                        " failovers with no verdicts decided in "
                        "between";
                return false;
            }
        } else {
            fruitlessFailovers = 0;
        }
        doneAtLastFailover = done;
        std::string reconnectError;
        if (!reconnect(reconnectError)) {
            error = why + "; " + reconnectError;
            return false;
        }
        ++failovers_;
        resubmits_ += outstanding;
        wireVersion = std::min(serverHello_.protocolVersion,
                               wire::kProtocolVersion);
        toSubmit.clear();
        for (size_t i = 0; i < n; ++i)
            if (!decided[i])
                toSubmit.push_back(i);
        outstanding = 0;
        deferSubmits = false;
        busyRounds = 0;
        backoffMs = std::max(1u, options_.busyBackoffInitialMs);
        failure_ = FailureKind::None;
        error.clear();
        return true;
    };

    while (done < n) {
        if (deferSubmits && outstanding == 0) {
            // The whole window bounced with Busy and nothing is in
            // flight, so no frame will arrive until we resubmit: one
            // all-Busy round (a draining, wedged, or quota-starving
            // daemon). Breaker-check, back off jittered, probe again.
            ++busyRounds;
            if (options_.busyBreakerRounds > 0 &&
                busyRounds >= options_.busyBreakerRounds) {
                error = "daemon persistently busy (" +
                        std::to_string(busyRounds) +
                        " all-Busy rounds, " +
                        std::to_string(busyRetries_) +
                        " rejects); giving up on daemon";
                failure_ = FailureKind::Timeout;
                breakerTripped_ = true;
                return false;
            }
            unsigned jittered =
                backoffMs / 2 +
                static_cast<unsigned>(splitmix64(jitterState_) %
                                      (backoffMs / 2 + 1));
            sleepMs(jittered);
            backoffMs = std::max(
                1u,
                std::min(options_.busyBackoffMaxMs, backoffMs * 2));
            deferSubmits = false;
        }
        if (!deferSubmits) {
            bool sendFailed = false;
            while (outstanding < window && !toSubmit.empty()) {
                size_t idx = toSubmit.front();
                toSubmit.pop_front();
                if (!submitOne(idx)) {
                    sendFailed = true;
                    break;
                }
            }
            if (sendFailed) {
                if (!failover(error))
                    return false;
                continue;
            }
        }
        if (outstanding == 0) {
            // Nothing in flight and nothing submittable: only possible
            // on a protocol desync, not in normal operation.
            error = "daemon protocol desync (no jobs in flight)";
            failure_ = FailureKind::WorkerKilled;
            return false;
        }

        std::string payload;
        IoStatus status =
            recvSupervised(payload, options_.verdictTimeoutMs);
        if (status != IoStatus::Ok) {
            failure_ = classify(status);
            std::string why =
                status == IoStatus::Timeout
                    ? "daemon silent past the heartbeat deadline"
                    : "daemon connection lost while waiting for "
                      "a verdict";
            if (!failover(why))
                return false;
            continue;
        }
        wire::FrameType type{};
        std::string body;
        std::string decodeError;
        if (!wire::splitFrame(payload, type, body)) {
            error = "malformed frame from daemon";
            failure_ = FailureKind::WorkerKilled;
            return false;
        }
        if (type == wire::FrameType::JobVerdict) {
            wire::JobVerdictFrame verdict;
            if (!wire::decodeJobVerdict(body, verdict, decodeError)) {
                error = "bad verdict frame: " + decodeError;
                failure_ = FailureKind::WorkerKilled;
                return false;
            }
            size_t idx = static_cast<size_t>(verdict.jobId) - 1;
            if (verdict.jobId == 0 || idx >= n || decided[idx]) {
                error = "verdict for unknown job " +
                        std::to_string(verdict.jobId);
                failure_ = FailureKind::WorkerKilled;
                return false;
            }
            driver::FunctionReport report;
            if (!driver::deserializeFunctionReport(verdict.report,
                                                   report)) {
                error = "undecodable verdict payload for " +
                        functions[idx];
                failure_ = FailureKind::WorkerKilled;
                return false;
            }
            // The daemon strips wall-clock timing (it is not canonical);
            // the client-observed round trip is the honest cost here.
            report.seconds = elapsedSeconds(submitted[idx]);
            report.verdict.stats.solverStats = verdict.stats;
            reports[idx] = std::move(report);
            decided[idx] = true;
            ++done;
            --outstanding;
            // Progress: the daemon is serving us again.
            deferSubmits = false;
            busyRounds = 0;
            backoffMs = std::max(1u, options_.busyBackoffInitialMs);
        } else if (type == wire::FrameType::Busy) {
            wire::BusyFrame busy;
            if (!wire::decodeBusy(body, busy, decodeError) ||
                busy.jobId == 0 ||
                static_cast<size_t>(busy.jobId) - 1 >= n) {
                error = "bad busy frame";
                failure_ = FailureKind::WorkerKilled;
                return false;
            }
            ++busyRetries_;
            --outstanding;
            toSubmit.push_back(static_cast<size_t>(busy.jobId) - 1);
            // Resubmitting immediately would just bounce again (the
            // daemon's caps have not moved); hold further submits
            // until a verdict shows progress, or — once nothing is in
            // flight — the backed-off probe at the top of the loop.
            deferSubmits = true;
        } else if (type == wire::FrameType::Pong) {
            // Heartbeat answer: liveness already noted by the receive
            // itself (recvSupervised's idle clock restarted).
            continue;
        } else if (type == wire::FrameType::Error) {
            std::string message;
            error = wire::decodeError(body, message)
                        ? "daemon error: " + message
                        : "daemon error";
            failure_ = FailureKind::WorkerKilled;
            return false;
        } else {
            error = "unexpected frame from daemon: " +
                    std::string(wire::frameTypeName(type));
            failure_ = FailureKind::WorkerKilled;
            return false;
        }
    }
    return true;
}

bool
DaemonClient::requestShutdown(std::string &error)
{
    if (!connected()) {
        error = "not connected";
        return false;
    }
    if (!channel_.sendFrame(wire::encodeShutdown())) {
        error = "failed to send shutdown";
        return false;
    }
    return true;
}

bool
DaemonClient::queryStatus(wire::JobStatusFrame &out, std::string &error)
{
    if (!connected()) {
        error = "not connected";
        return false;
    }
    if (!channel_.sendFrame(wire::encodeJobStatus(wire::JobStatusFrame{}))) {
        error = "failed to send status probe";
        return false;
    }
    std::string payload;
    IoStatus status =
        channel_.recvFrame(payload, options_.handshakeTimeoutMs);
    if (status != IoStatus::Ok) {
        error = "no status reply";
        return false;
    }
    wire::FrameType type{};
    std::string body;
    std::string decodeError;
    if (!wire::splitFrame(payload, type, body) ||
        type != wire::FrameType::JobStatus ||
        !wire::decodeJobStatus(body, out, decodeError)) {
        error = "bad status reply";
        return false;
    }
    return true;
}

} // namespace keq::service
