#include "src/service/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include <unistd.h>

#include "src/driver/checkpoint.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/service/job_options.h"
#include "src/support/diagnostics.h"
#include "src/support/failure.h"

namespace keq::service {

namespace wire = smt::wire;

namespace {

/** Accept-loop tick: bounds shutdown latency of the accept thread. */
constexpr unsigned kAcceptTickMs = 200;

/** Parsed-module cache cap; one clear beats LRU bookkeeping here. */
constexpr size_t kMaxCachedModules = 32;

} // namespace

namespace {

VerdictStore::Options
storeOptions(const ServerOptions &options)
{
    VerdictStore::Options store;
    store.path = options.verdictJournalPath;
    store.fsync = options.journalFsync;
    store.maxBytes = options.verdictStoreMaxBytes;
    store.compactGarbageRatio = options.storeCompactGarbageRatio;
    store.compactMinRecords = options.storeCompactMinRecords;
    return store;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), store_(storeOptions(options_)),
      cancel_(support::CancellationToken::create())
{}

Server::~Server() { stop(); }

bool
Server::start(std::string &error)
{
    KEQ_ASSERT(!started_, "Server::start called twice");
    if (!store_.open(error))
        return false;
    cache_ = std::make_shared<smt::QueryCache>(
        options_.cacheShardCapacity, options_.cacheMemoryMb << 20);
    store_.attach(*cache_);
    // The legacy socketPath is just a one-element unix listen list;
    // both forms may be combined (keqd --socket plus --listen=tcp:..).
    std::vector<Endpoint> endpoints;
    if (!options_.socketPath.empty())
        endpoints.push_back(unixEndpoint(options_.socketPath));
    endpoints.insert(endpoints.end(), options_.listen.begin(),
                     options_.listen.end());
    if (endpoints.empty()) {
        error = "no listen endpoints configured";
        return false;
    }
    for (const Endpoint &endpoint : endpoints) {
        auto listener = makeListener(endpoint);
        if (!listener->listenOn(endpoint, error)) {
            for (auto &open : listeners_)
                open->close();
            listeners_.clear();
            return false;
        }
        listeners_.push_back(std::move(listener));
    }
    pool_ = std::make_unique<support::ThreadPool>(options_.jobs);
    for (auto &listener : listeners_)
        acceptThreads_.emplace_back(
            [this, l = listener.get()] { acceptLoop(*l); });
    started_ = true;
    return true;
}

std::vector<Endpoint>
Server::boundEndpoints() const
{
    std::vector<Endpoint> endpoints;
    for (const auto &listener : listeners_)
        endpoints.push_back(listener->endpoint());
    return endpoints;
}

void
Server::acceptLoop(Listener &listener)
{
    while (!stopping_.load()) {
        int fd = listener.acceptClient(kAcceptTickMs);
        if (fd < 0)
            continue;
        if (draining_.load()) {
            // A draining daemon takes no new clients: close without a
            // handshake, so the connector fails fast and degrades to
            // local solving.
            ::close(fd);
            continue;
        }
        ++accepted_;
        if (listener.transport() == TransportKind::Tcp)
            ++acceptedTcp_;
        else
            ++acceptedUnix_;
        auto session = std::make_shared<Session>(*this, nextClientId_++,
                                                 WireChannel(fd));
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            // Reap finished sessions so a long-lived daemon's session
            // list tracks live clients, not connection history.
            std::erase_if(sessions_,
                          [](const std::shared_ptr<Session> &s) {
                              return s->done();
                          });
            sessions_.push_back(session);
        }
        session->start();
    }
}

void
Server::admitJob(JobWork work)
{
    ++submitted_;
    queue_.push(std::move(work));
    pool_->submit([this] { runOneJob(); });
}

size_t
Server::dropClientJobs(uint64_t clientId)
{
    size_t dropped = queue_.dropClient(clientId);
    droppedJobs_ += dropped;
    return dropped;
}

void
Server::runOneJob()
{
    JobWork work;
    // One pool task is submitted per push, but the pop is *fair* — the
    // job executed here may belong to any client. An empty pop means
    // the pushed job was dropped by a disconnect in between.
    if (!queue_.pop(work))
        return;
    ++running_;
    try {
        executeJob(work);
    } catch (...) {
        // A job must never take down a pool worker; the failure is
        // already classified inside the report where possible.
    }
    --running_;
}

void
Server::executeJob(const JobWork &work)
{
    std::shared_ptr<Session> session = sessionFor(work.clientId);
    if (stopping_.load()) {
        ++droppedJobs_;
        if (session != nullptr)
            session->noteJobDropped();
        return;
    }
    if (session == nullptr) {
        // The client disconnected while this job sat in the queue; the
        // session teardown raced our pop. Nobody is listening — don't
        // burn solver time computing an unsendable verdict.
        ++droppedJobs_;
        return;
    }

    // Per-job wall deadline, counted from admission: time spent queued
    // eats the budget, and the remainder caps the solver watchdog. A
    // job whose budget expired entirely in the queue reports Timeout
    // without touching a solver.
    unsigned deadlineCap = 0;
    if (options_.jobDeadlineMs > 0) {
        auto waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - work.admittedAt)
                .count();
        if (waited >= static_cast<long long>(options_.jobDeadlineMs)) {
            ++expiredJobs_;
            ++completed_;
            driver::FunctionReport expired;
            expired.function = work.function;
            expired.outcome = driver::Outcome::Timeout;
            expired.verdict.kind = checker::VerdictKind::Timeout;
            expired.detail = "daemon: job deadline (" +
                             std::to_string(options_.jobDeadlineMs) +
                             " ms) expired in queue";
            wire::JobVerdictFrame frame;
            frame.jobId = work.jobId;
            frame.report = driver::serializeFunctionReport(expired);
            frame.stats = expired.verdict.stats.solverStats;
            if (!session->sendVerdict(frame))
                dropClientJobs(work.clientId);
            return;
        }
        deadlineCap = options_.jobDeadlineMs -
                      static_cast<unsigned>(waited);
    }

    driver::FunctionReport report = validateJob(work, deadlineCap);
    if (stopping_.load() ||
        report.verdict.failure == FailureKind::Cancelled) {
        // Shutdown interrupted this solve. A Cancelled verdict is not
        // definitive — sending it would make a failover client keep it
        // as decided instead of resubmitting to a live endpoint. Drop
        // it; the disconnect the client is about to observe routes the
        // job to the next endpoint (or the local fallback).
        ++droppedJobs_;
        session->noteJobDropped();
        return;
    }
    ++completed_;
    wire::JobVerdictFrame frame;
    frame.jobId = work.jobId;
    frame.report = driver::serializeFunctionReport(report);
    frame.stats = report.verdict.stats.solverStats;
    // Record before sending: if the client died mid-flight, its
    // failover resubmit of this very job must hit the ledger instead
    // of re-solving (and re-charging) it.
    ledgerRecord(work, report, frame);
    if (!session->sendVerdict(frame)) {
        // The socket died under us: the client's remaining backlog is
        // unsendable too. Drop it now instead of solving toward a dead
        // endpoint (the reader thread notices EOF and tears down).
        dropClientJobs(work.clientId);
    }
}

driver::FunctionReport
Server::validateJob(const JobWork &work, unsigned deadlineMsCap)
{
    driver::FunctionReport report;
    report.function = work.function;
    report.outcome = driver::Outcome::Unsupported;
    report.verdict.kind = checker::VerdictKind::NotValidated;

    std::string error;
    std::shared_ptr<const llvmir::Module> module =
        moduleFor(work.moduleText, error);
    if (module == nullptr) {
        // Clients parse before submitting, so this is version skew or
        // a foreign client — classified, not fatal.
        report.detail = "daemon: module rejected: " + error;
        return report;
    }
    const llvmir::Function *fn = nullptr;
    for (const llvmir::Function &candidate : module->functions) {
        if (!candidate.isDeclaration() &&
            candidate.name == work.function) {
            fn = &candidate;
            break;
        }
    }
    if (fn == nullptr) {
        report.detail =
            "daemon: no defined function " + work.function;
        return report;
    }
    try {
        return pipelineFor(work.options)
            .validateFunction(*module, *fn, deadlineMsCap);
    } catch (const support::Error &err) {
        report.outcome = driver::Outcome::Other;
        report.detail = std::string("daemon: ") + err.what();
        return report;
    }
}

driver::Pipeline &
Server::pipelineFor(const wire::JobOptionsFrame &frameOptions)
{
    std::string key = jobOptionsKey(frameOptions);
    std::lock_guard<std::mutex> lock(pipelinesMutex_);
    auto it = pipelines_.find(key);
    if (it != pipelines_.end())
        return *it->second;

    driver::PipelineOptions options = decodeJobOptions(frameOptions);
    options.checker.cancel = cancel_;
    driver::ExecutionOptions exec;
    exec.jobs = 1; // concurrency comes from the daemon pool
    exec.externalCache = cache_;
    exec.cancel = cancel_;
    exec.sandbox = options_.sandbox;
    exec.sandboxWorkers = options_.sandboxWorkers;
    exec.workerMemoryMb = options_.workerMemoryMb;
    exec.workerPath = options_.workerPath;
    if (options_.auditRate > 0.0) {
        exec.auditRate = options_.auditRate;
        exec.auditSeed = options_.auditSeed;
        exec.onAuditMismatch = [this](const std::string &key,
                                      smt::SatResult stored,
                                      smt::SatResult recheck) {
            // A journal-preloaded verdict contradicted its re-check:
            // tombstone it (so restarts never resurrect it) and count
            // it; the caching layer already fell back to fresh solving
            // for this query, so the served verdict stays identical to
            // a daemonless run.
            store_.quarantine(key);
            ++auditMismatches_;
            std::fprintf(stderr,
                         "keqd: %s: stored=%s recheck=%s key=%.16s...\n",
                         failureKindName(FailureKind::AuditMismatch),
                         smt::satResultName(stored),
                         smt::satResultName(recheck), key.c_str());
        };
    }
    auto pipeline =
        std::make_unique<driver::Pipeline>(options, std::move(exec));
    if (options_.sandbox) {
        // Resolve the supervisor eagerly: lazy creation is not safe
        // under the pool's concurrent validateFunction calls, and the
        // whole point of the daemon is a warm worker pool anyway.
        unsigned workers = options_.sandboxWorkers != 0
                               ? options_.sandboxWorkers
                               : std::max(1u, pool_->threadCount());
        pipeline->sandboxSupervisor(workers);
    }
    auto [slot, inserted] =
        pipelines_.emplace(key, std::move(pipeline));
    return *slot->second;
}

std::shared_ptr<const llvmir::Module>
Server::moduleFor(const std::string &text, std::string &error)
{
    {
        std::lock_guard<std::mutex> lock(modulesMutex_);
        auto it = modules_.find(text);
        if (it != modules_.end())
            return it->second;
    }
    // Parse outside the lock (a big module takes a while); a racing
    // duplicate parse is wasted work, not a correctness problem.
    std::shared_ptr<llvmir::Module> module;
    try {
        module = std::make_shared<llvmir::Module>(
            llvmir::parseModule(text));
        llvmir::verifyModuleOrThrow(*module);
    } catch (const support::Error &err) {
        error = err.what();
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(modulesMutex_);
    if (modules_.size() >= kMaxCachedModules)
        modules_.clear();
    auto [it, inserted] = modules_.emplace(text, std::move(module));
    return it->second;
}

bool
Server::ledgerLookup(const wire::SubmitJobFrame &job,
                     wire::JobVerdictFrame &out)
{
    if (job.fingerprint == 0 || options_.jobLedgerEntries == 0)
        return false;
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    auto it = ledger_.find(job.fingerprint);
    if (it == ledger_.end())
        return false;
    LedgerEntry &entry = it->second;
    // Full-identity confirmation: the fingerprint is necessary, never
    // sufficient. The module travels as an independent hash + length
    // because retaining whole module texts per entry would multiply
    // the ledger's footprint by the module size.
    if (entry.function != job.function ||
        entry.optionsKey != jobOptionsKey(job.options) ||
        entry.moduleLen != job.moduleText.size() ||
        entry.moduleHash != support::fnv1a64(job.moduleText))
        return false;
    ledgerLru_.splice(ledgerLru_.begin(), ledgerLru_, entry.lru);
    out.report = entry.report;
    out.stats = entry.stats;
    ++dedupHits_;
    return true;
}

void
Server::ledgerRecord(const JobWork &work,
                     const driver::FunctionReport &report,
                     const wire::JobVerdictFrame &frame)
{
    if (options_.jobLedgerEntries == 0)
        return;
    // Only deterministic verdicts are replayable identities. A Timeout
    // or an internal error might resolve differently on a retry, and a
    // dedup hit must be byte-identical to what a fresh solve of the
    // same job would produce.
    if (report.outcome == driver::Outcome::Timeout ||
        report.outcome == driver::Outcome::OutOfMemory ||
        report.outcome == driver::Outcome::Other)
        return;
    // First-time submits carry no wire fingerprint (only an actual
    // resubmission claims one), so the recording side computes the
    // same deterministic key itself — a later failover resubmit of
    // this job must find it here.
    uint64_t fingerprint =
        work.fingerprint != 0
            ? work.fingerprint
            : jobFingerprint(work.moduleText, work.function,
                             work.options);
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    auto it = ledger_.find(fingerprint);
    if (it != ledger_.end()) {
        // Either the same job completed twice (both verdicts are
        // canonical, keep the first) or a fingerprint collision (the
        // incumbent wins; the collider simply never dedups).
        ledgerLru_.splice(ledgerLru_.begin(), ledgerLru_,
                          it->second.lru);
        return;
    }
    while (ledger_.size() >= options_.jobLedgerEntries &&
           !ledgerLru_.empty()) {
        ledger_.erase(ledgerLru_.back());
        ledgerLru_.pop_back();
    }
    LedgerEntry entry;
    entry.function = work.function;
    entry.optionsKey = jobOptionsKey(work.options);
    entry.moduleHash = support::fnv1a64(work.moduleText);
    entry.moduleLen = work.moduleText.size();
    entry.report = frame.report;
    entry.stats = frame.stats;
    ledgerLru_.push_front(fingerprint);
    entry.lru = ledgerLru_.begin();
    ledger_.emplace(fingerprint, std::move(entry));
}

std::shared_ptr<Session>
Server::sessionFor(uint64_t clientId)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (const std::shared_ptr<Session> &session : sessions_) {
        if (session->clientId() == clientId && !session->done())
            return session;
    }
    return nullptr;
}

void
Server::beginDrain()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    // From here: acceptLoop closes new connections pre-handshake and
    // Session::handleSubmit answers Busy, so the admitted-job set is
    // frozen. Already-queued and in-flight jobs run to completion and
    // their verdicts flow back normally; drained() turns true once the
    // last one has replied.
}

bool
Server::drained() const
{
    if (!draining_.load())
        return false;
    return queue_.queued() == 0 && running_.load() == 0;
}

void
Server::scrubAndCompactStore()
{
    size_t rejected = store_.scrub();
    store_.compact();
    VerdictStore::Stats stats = store_.stats();
    std::fprintf(stderr,
                 "keqd: scrub rejected %llu; store: %llu entries, "
                 "%llu bytes, generation %llu\n",
                 static_cast<unsigned long long>(rejected),
                 static_cast<unsigned long long>(stats.entries),
                 static_cast<unsigned long long>(stats.bytes),
                 static_cast<unsigned long long>(stats.generation));
}

void
Server::requestShutdown()
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    shutdownRequested_ = true;
    shutdownCv_.notify_all();
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(shutdownMutex_);
    shutdownCv_.wait(lock, [this] { return shutdownRequested_; });
}

bool
Server::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    return shutdownRequested_;
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    stopping_.store(true);
    // Interrupt in-flight checks: solver watchdogs and checker budget
    // polls observe the token, so even a mid-solve job winds down in
    // bounded time (its verdict is dropped, never journaled —
    // Cancelled verdicts are not definitive).
    cancel_.cancel();
    for (std::thread &thread : acceptThreads_)
        if (thread.joinable())
            thread.join();
    acceptThreads_.clear();
    for (auto &listener : listeners_)
        listener->close();

    std::vector<std::shared_ptr<Session>> sessions;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions = sessions_;
    }
    for (const std::shared_ptr<Session> &session : sessions)
        session->shutdownChannel();
    for (const std::shared_ptr<Session> &session : sessions)
        session->join();

    // Drain the pool: remaining tasks see stopping_ and drop their
    // jobs. The pool destructor joins the workers.
    if (pool_ != nullptr) {
        try {
            pool_->wait();
        } catch (...) {
            // Task exceptions were already absorbed per job.
        }
        pool_.reset();
    }
    requestShutdown(); // wake any wait()er even on external stop paths

    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions_.clear();
    }
    pipelines_.clear();
    modules_.clear();
    {
        std::lock_guard<std::mutex> lock(ledgerMutex_);
        ledger_.clear();
        ledgerLru_.clear();
    }
    // Every verdict journaled during this run is on disk before the
    // daemon exits, whatever the configured fsync cadence was.
    store_.sync();
}

smt::wire::JobStatusFrame
Server::statusFrame() const
{
    wire::JobStatusFrame frame;
    frame.queuedJobs = queue_.queued();
    frame.runningJobs = running_.load();
    frame.completedJobs = completed_.load();
    frame.storeEntries = store_.size();
    frame.busyRejects = busyRejects_.load();
    VerdictStore::Stats storeStats = store_.stats();
    frame.storeBytes = storeStats.bytes;
    frame.storeEvictions = storeStats.evictions;
    frame.storeQuarantined = storeStats.quarantined;
    frame.auditMismatches = auditMismatches_.load();
    frame.quotaRejects = quotaRejects_.load();
    frame.draining = draining_.load() ? 1 : 0;
    frame.dedupHits = dedupHits_.load();
    frame.acceptedUnix = acceptedUnix_.load();
    frame.acceptedTcp = acceptedTcp_.load();
    uint64_t active = 0;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (const std::shared_ptr<Session> &session : sessions_)
            active += session->done() ? 0 : 1;
    }
    frame.activeClients = active;
    return frame;
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    stats.accepted = accepted_.load();
    stats.helloRejects = helloRejects_.load();
    stats.submitted = submitted_.load();
    stats.completed = completed_.load();
    stats.busyRejects = busyRejects_.load();
    stats.droppedJobs = droppedJobs_.load();
    stats.quotaRejects = quotaRejects_.load();
    stats.expiredJobs = expiredJobs_.load();
    stats.auditMismatches = auditMismatches_.load();
    stats.dedupHits = dedupHits_.load();
    stats.acceptedUnix = acceptedUnix_.load();
    stats.acceptedTcp = acceptedTcp_.load();
    return stats;
}

} // namespace keq::service
