#include "src/service/server.h"

#include <algorithm>

#include "src/driver/checkpoint.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/verifier.h"
#include "src/service/job_options.h"
#include "src/support/diagnostics.h"

namespace keq::service {

namespace wire = smt::wire;

namespace {

/** Accept-loop tick: bounds shutdown latency of the accept thread. */
constexpr unsigned kAcceptTickMs = 200;

/** Parsed-module cache cap; one clear beats LRU bookkeeping here. */
constexpr size_t kMaxCachedModules = 32;

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      store_(options_.verdictJournalPath, options_.journalFsync),
      cancel_(support::CancellationToken::create())
{}

Server::~Server() { stop(); }

bool
Server::start(std::string &error)
{
    KEQ_ASSERT(!started_, "Server::start called twice");
    if (!store_.open(error))
        return false;
    cache_ = std::make_shared<smt::QueryCache>(
        options_.cacheShardCapacity, options_.cacheMemoryMb << 20);
    store_.attach(*cache_);
    if (!listener_.listenOn(options_.socketPath, error))
        return false;
    pool_ = std::make_unique<support::ThreadPool>(options_.jobs);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    started_ = true;
    return true;
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        int fd = listener_.acceptClient(kAcceptTickMs);
        if (fd < 0)
            continue;
        ++accepted_;
        auto session = std::make_shared<Session>(*this, nextClientId_++,
                                                 WireChannel(fd));
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            // Reap finished sessions so a long-lived daemon's session
            // list tracks live clients, not connection history.
            std::erase_if(sessions_,
                          [](const std::shared_ptr<Session> &s) {
                              return s->done();
                          });
            sessions_.push_back(session);
        }
        session->start();
    }
}

void
Server::admitJob(JobWork work)
{
    ++submitted_;
    queue_.push(std::move(work));
    pool_->submit([this] { runOneJob(); });
}

size_t
Server::dropClientJobs(uint64_t clientId)
{
    size_t dropped = queue_.dropClient(clientId);
    droppedJobs_ += dropped;
    return dropped;
}

void
Server::runOneJob()
{
    JobWork work;
    // One pool task is submitted per push, but the pop is *fair* — the
    // job executed here may belong to any client. An empty pop means
    // the pushed job was dropped by a disconnect in between.
    if (!queue_.pop(work))
        return;
    ++running_;
    try {
        executeJob(work);
    } catch (...) {
        // A job must never take down a pool worker; the failure is
        // already classified inside the report where possible.
    }
    --running_;
}

void
Server::executeJob(const JobWork &work)
{
    std::shared_ptr<Session> session = sessionFor(work.clientId);
    if (stopping_.load()) {
        ++droppedJobs_;
        if (session != nullptr)
            session->noteJobDropped();
        return;
    }
    driver::FunctionReport report = validateJob(work);
    ++completed_;
    if (session == nullptr)
        return; // client vanished while we solved
    wire::JobVerdictFrame frame;
    frame.jobId = work.jobId;
    frame.report = driver::serializeFunctionReport(report);
    frame.stats = report.verdict.stats.solverStats;
    session->sendVerdict(frame);
}

driver::FunctionReport
Server::validateJob(const JobWork &work)
{
    driver::FunctionReport report;
    report.function = work.function;
    report.outcome = driver::Outcome::Unsupported;
    report.verdict.kind = checker::VerdictKind::NotValidated;

    std::string error;
    std::shared_ptr<const llvmir::Module> module =
        moduleFor(work.moduleText, error);
    if (module == nullptr) {
        // Clients parse before submitting, so this is version skew or
        // a foreign client — classified, not fatal.
        report.detail = "daemon: module rejected: " + error;
        return report;
    }
    const llvmir::Function *fn = nullptr;
    for (const llvmir::Function &candidate : module->functions) {
        if (!candidate.isDeclaration() &&
            candidate.name == work.function) {
            fn = &candidate;
            break;
        }
    }
    if (fn == nullptr) {
        report.detail =
            "daemon: no defined function " + work.function;
        return report;
    }
    try {
        return pipelineFor(work.options).validateFunction(*module, *fn);
    } catch (const support::Error &err) {
        report.outcome = driver::Outcome::Other;
        report.detail = std::string("daemon: ") + err.what();
        return report;
    }
}

driver::Pipeline &
Server::pipelineFor(const wire::JobOptionsFrame &frameOptions)
{
    std::string key = jobOptionsKey(frameOptions);
    std::lock_guard<std::mutex> lock(pipelinesMutex_);
    auto it = pipelines_.find(key);
    if (it != pipelines_.end())
        return *it->second;

    driver::PipelineOptions options = decodeJobOptions(frameOptions);
    options.checker.cancel = cancel_;
    driver::ExecutionOptions exec;
    exec.jobs = 1; // concurrency comes from the daemon pool
    exec.externalCache = cache_;
    exec.cancel = cancel_;
    exec.sandbox = options_.sandbox;
    exec.sandboxWorkers = options_.sandboxWorkers;
    exec.workerMemoryMb = options_.workerMemoryMb;
    exec.workerPath = options_.workerPath;
    auto pipeline =
        std::make_unique<driver::Pipeline>(options, std::move(exec));
    if (options_.sandbox) {
        // Resolve the supervisor eagerly: lazy creation is not safe
        // under the pool's concurrent validateFunction calls, and the
        // whole point of the daemon is a warm worker pool anyway.
        unsigned workers = options_.sandboxWorkers != 0
                               ? options_.sandboxWorkers
                               : std::max(1u, pool_->threadCount());
        pipeline->sandboxSupervisor(workers);
    }
    auto [slot, inserted] =
        pipelines_.emplace(key, std::move(pipeline));
    return *slot->second;
}

std::shared_ptr<const llvmir::Module>
Server::moduleFor(const std::string &text, std::string &error)
{
    {
        std::lock_guard<std::mutex> lock(modulesMutex_);
        auto it = modules_.find(text);
        if (it != modules_.end())
            return it->second;
    }
    // Parse outside the lock (a big module takes a while); a racing
    // duplicate parse is wasted work, not a correctness problem.
    std::shared_ptr<llvmir::Module> module;
    try {
        module = std::make_shared<llvmir::Module>(
            llvmir::parseModule(text));
        llvmir::verifyModuleOrThrow(*module);
    } catch (const support::Error &err) {
        error = err.what();
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(modulesMutex_);
    if (modules_.size() >= kMaxCachedModules)
        modules_.clear();
    auto [it, inserted] = modules_.emplace(text, std::move(module));
    return it->second;
}

std::shared_ptr<Session>
Server::sessionFor(uint64_t clientId)
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (const std::shared_ptr<Session> &session : sessions_) {
        if (session->clientId() == clientId && !session->done())
            return session;
    }
    return nullptr;
}

void
Server::requestShutdown()
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    shutdownRequested_ = true;
    shutdownCv_.notify_all();
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lock(shutdownMutex_);
    shutdownCv_.wait(lock, [this] { return shutdownRequested_; });
}

bool
Server::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    return shutdownRequested_;
}

void
Server::stop()
{
    if (!started_ || stopped_)
        return;
    stopped_ = true;
    stopping_.store(true);
    // Interrupt in-flight checks: solver watchdogs and checker budget
    // polls observe the token, so even a mid-solve job winds down in
    // bounded time (its verdict is dropped, never journaled —
    // Cancelled verdicts are not definitive).
    cancel_.cancel();
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.close();

    std::vector<std::shared_ptr<Session>> sessions;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions = sessions_;
    }
    for (const std::shared_ptr<Session> &session : sessions)
        session->shutdownChannel();
    for (const std::shared_ptr<Session> &session : sessions)
        session->join();

    // Drain the pool: remaining tasks see stopping_ and drop their
    // jobs. The pool destructor joins the workers.
    if (pool_ != nullptr) {
        try {
            pool_->wait();
        } catch (...) {
            // Task exceptions were already absorbed per job.
        }
        pool_.reset();
    }
    requestShutdown(); // wake any wait()er even on external stop paths

    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions_.clear();
    }
    pipelines_.clear();
    modules_.clear();
}

smt::wire::JobStatusFrame
Server::statusFrame() const
{
    wire::JobStatusFrame frame;
    frame.queuedJobs = queue_.queued();
    frame.runningJobs = running_.load();
    frame.completedJobs = completed_.load();
    frame.storeEntries = store_.size();
    frame.busyRejects = busyRejects_.load();
    uint64_t active = 0;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        for (const std::shared_ptr<Session> &session : sessions_)
            active += session->done() ? 0 : 1;
    }
    frame.activeClients = active;
    return frame;
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    stats.accepted = accepted_.load();
    stats.helloRejects = helloRejects_.load();
    stats.submitted = submitted_.load();
    stats.completed = completed_.load();
    stats.busyRejects = busyRejects_.load();
    stats.droppedJobs = droppedJobs_.load();
    return stats;
}

} // namespace keq::service
