#include "src/service/session.h"

#include <algorithm>

#include <unistd.h>

#include "src/service/server.h"

namespace keq::service {

namespace wire = smt::wire;
using support::IoStatus;

namespace {

/** Reader-loop tick: bounds how stale a stop check can get. */
constexpr unsigned kReadTickMs = 200;

} // namespace

Session::Session(Server &server, uint64_t clientId, WireChannel channel)
    : server_(server), clientId_(clientId), channel_(std::move(channel)),
      rateTokens_(server.options().clientBurst),
      rateRefillAt_(std::chrono::steady_clock::now())
{}

Session::~Session() { join(); }

void
Session::start()
{
    thread_ = std::thread([this] { run(); });
}

void
Session::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
Session::shutdownChannel()
{
    channel_.shutdownBoth();
}

bool
Session::sendLocked(const std::string &frame)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    return channel_.sendFrame(frame);
}

bool
Session::sendVerdict(const wire::JobVerdictFrame &frame)
{
    bool sent = sendLocked(wire::encodeJobVerdict(frame));
    // The job left the in-flight window whether or not the client is
    // still there to hear about it.
    --inFlight_;
    return sent;
}

void
Session::noteJobDropped()
{
    --inFlight_;
}

bool
Session::handshake()
{
    std::string payload;
    IoStatus status = channel_.recvFrame(
        payload, server_.options().handshakeTimeoutMs);
    wire::FrameType type{};
    std::string body;
    wire::ClientHelloFrame hello;
    std::string error;
    wire::HelloRejectFrame reject;
    if (status != IoStatus::Ok) {
        // Silent or dead connector: nothing to negotiate with.
        return false;
    }
    if (!wire::splitFrame(payload, type, body) ||
        type != wire::FrameType::ClientHello ||
        !wire::decodeClientHello(body, hello, error)) {
        reject.message = "malformed hello frame" +
                         (error.empty() ? "" : ": " + error);
        sendLocked(wire::encodeHelloReject(reject));
        return false;
    }
    if (hello.magic != wire::kServiceMagic) {
        reject.message = "bad service magic";
        sendLocked(wire::encodeHelloReject(reject));
        return false;
    }
    if (hello.protocolVersion < wire::kMinServiceProtocolVersion ||
        hello.protocolVersion > wire::kProtocolVersion) {
        reject.message =
            "unsupported protocol version " +
            std::to_string(hello.protocolVersion) + " (daemon speaks " +
            std::to_string(wire::kMinServiceProtocolVersion) + ".." +
            std::to_string(wire::kProtocolVersion) + ")";
        sendLocked(wire::encodeHelloReject(reject));
        return false;
    }
    // Negotiate down to the client's version: every frame this session
    // sends from here on uses the client's layout.
    protocolVersion_ = hello.protocolVersion;
    wire::ServerHelloFrame ack;
    ack.protocolVersion = protocolVersion_;
    ack.pid = static_cast<uint64_t>(::getpid());
    return sendLocked(wire::encodeServerHello(ack));
}

void
Session::sendBusy(uint64_t jobId)
{
    wire::BusyFrame busy;
    busy.jobId = jobId;
    busy.inFlightLimit = server_.options().maxInFlightPerClient;
    sendLocked(wire::encodeBusy(busy));
}

bool
Session::takeRateToken()
{
    double rate = server_.options().clientRatePerSec;
    if (rate <= 0.0)
        return true;
    double burst = std::max(1.0,
                            double(server_.options().clientBurst));
    auto now = std::chrono::steady_clock::now();
    double elapsed =
        std::chrono::duration<double>(now - rateRefillAt_).count();
    rateRefillAt_ = now;
    rateTokens_ = std::min(burst, rateTokens_ + elapsed * rate);
    if (rateTokens_ < 1.0)
        return false;
    rateTokens_ -= 1.0;
    return true;
}

void
Session::handleSubmit(const std::string &body)
{
    wire::SubmitJobFrame job;
    std::string error;
    if (!wire::decodeSubmitJob(body, job, error)) {
        sendLocked(wire::encodeError("bad SubmitJob: " + error));
        return;
    }
    // Idempotent resubmission (wire v5): a fingerprinted job the
    // daemon already completed — typically resubmitted by a failover
    // client whose previous connection died before the verdict arrived
    // — is answered straight from the completed ledger. This runs
    // BEFORE every admission layer on purpose: a resubmit consumes no
    // in-flight slot, no queue slot and no rate token (never
    // double-charged), runs no solver, and appends nothing to the
    // journal. It is also served during drain — replaying a decided
    // verdict does not grow the admitted-job set.
    if (job.fingerprint != 0) {
        wire::JobVerdictFrame hit;
        if (server_.ledgerLookup(job, hit)) {
            hit.jobId = job.jobId;
            sendLocked(wire::encodeJobVerdict(hit));
            return;
        }
    }
    // Admission control, layered: every reject is a typed Busy, which
    // the client answers by backing off or degrading to local solving
    // — never a dropped frame or an unbounded queue.
    if (server_.draining()) {
        // The admitted-job set is frozen during drain.
        ++server_.busyRejects_;
        sendBusy(job.jobId);
        return;
    }
    unsigned limit = server_.options().maxInFlightPerClient;
    // The increment is done optimistically by the only thread that
    // ever increments (this reader), so the cap cannot be raced past.
    if (limit > 0 && inFlight_.load() >= limit) {
        ++server_.busyRejects_;
        sendBusy(job.jobId);
        return;
    }
    unsigned queuedCap = server_.options().maxQueuedPerClient;
    if (queuedCap > 0 &&
        server_.queue_.queuedFor(clientId_) >= queuedCap) {
        ++server_.quotaRejects_;
        sendBusy(job.jobId);
        return;
    }
    if (!takeRateToken()) {
        ++server_.quotaRejects_;
        sendBusy(job.jobId);
        return;
    }
    ++inFlight_;
    JobWork work;
    work.clientId = clientId_;
    work.jobId = job.jobId;
    work.function = std::move(job.function);
    work.moduleText = std::move(job.moduleText);
    work.options = job.options;
    work.fingerprint = job.fingerprint;
    work.admittedAt = std::chrono::steady_clock::now();
    server_.admitJob(std::move(work));
}

void
Session::handleStatus()
{
    sendLocked(wire::encodeJobStatus(server_.statusFrame(),
                                     protocolVersion_));
}

void
Session::run()
{
    if (!handshake()) {
        ++server_.helloRejects_;
        channel_.close();
        done_.store(true);
        return;
    }

    std::string payload;
    while (!server_.stopping()) {
        IoStatus status = channel_.recvFrame(payload, kReadTickMs);
        if (status == IoStatus::Timeout)
            continue;
        if (status != IoStatus::Ok)
            break; // client gone (Eof) or socket error
        wire::FrameType type{};
        std::string body;
        if (!wire::splitFrame(payload, type, body)) {
            sendLocked(wire::encodeError("unknown frame"));
            break;
        }
        if (type == wire::FrameType::SubmitJob) {
            handleSubmit(body);
        } else if (type == wire::FrameType::JobStatus) {
            handleStatus();
        } else if (type == wire::FrameType::Ping) {
            // Heartbeat: answered inline by the reader thread so a
            // client behind a long solve can still tell a live daemon
            // from a dead TCP peer.
            wire::PingFrame ping;
            std::string pingError;
            if (!wire::decodePing(body, ping, pingError)) {
                sendLocked(wire::encodeError("bad ping: " + pingError));
                break;
            }
            wire::PongFrame pong;
            pong.nonce = ping.nonce;
            sendLocked(wire::encodePong(pong));
        } else if (type == wire::FrameType::Shutdown) {
            server_.requestShutdown();
            break;
        } else {
            sendLocked(wire::encodeError(
                std::string("unexpected frame: ") +
                wire::frameTypeName(type)));
            break;
        }
    }

    // Queued-but-unstarted jobs of a vanished client are wasted work;
    // drop them. Running ones finish and their verdicts no-op on send.
    server_.dropClientJobs(clientId_);
    channel_.shutdownBoth();
    done_.store(true);
}

} // namespace keq::service
