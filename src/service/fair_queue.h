#ifndef KEQ_SERVICE_FAIR_QUEUE_H
#define KEQ_SERVICE_FAIR_QUEUE_H

/**
 * @file
 * Per-client round-robin fair queue for validation jobs.
 *
 * The daemon serves many concurrent clients from one
 * support::ThreadPool. A single FIFO would let one client's 500-function
 * module starve everyone behind it; this queue keeps one FIFO *per
 * client* and rotates between clients on every pop, so a client
 * submitting one function waits for at most (#clients - 1) jobs, never
 * for another client's whole backlog.
 *
 * The scheduling contract, pinned by tests/service/fair_queue_test.cc:
 *  - jobs of one client pop in submission order (per-client FIFO);
 *  - successive pops cycle through the distinct clients that have
 *    queued jobs (round-robin), in first-arrival order;
 *  - dropClient removes a disconnected client's *queued* jobs (running
 *    ones finish and their replies are dropped by the session layer).
 *
 * Admission control (the bounded in-flight cap and the Busy reply)
 * lives in the Session, not here: by the time a job is pushed it has
 * been admitted.
 */

#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/smt/wire.h"

namespace keq::service {

/** One admitted, not-yet-executed validation job. */
struct JobWork
{
    uint64_t clientId = 0; ///< session identity (not the wire jobId)
    uint64_t jobId = 0;    ///< client-chosen id echoed on the verdict
    std::string function;
    std::string moduleText;
    smt::wire::JobOptionsFrame options;
    /** Wire v5 job identity (0 = none); completed-ledger key. */
    uint64_t fingerprint = 0;
    /** Admission time; the per-job wall deadline counts from here, so
     *  queueing delay eats the same budget solving does. */
    std::chrono::steady_clock::time_point admittedAt{};
};

class FairQueue
{
  public:
    /** Enqueues @p job on its client's FIFO. Thread safe. */
    void push(JobWork job);

    /**
     * Pops the next job round-robin across clients. Returns false when
     * the queue is empty (never blocks — the thread pool only calls
     * this after a push, so "empty" means the job was dropped by
     * dropClient in between).
     */
    bool pop(JobWork &out);

    /** Discards every queued job of @p clientId; returns the count. */
    size_t dropClient(uint64_t clientId);

    size_t queued() const;
    size_t queuedFor(uint64_t clientId) const;

  private:
    mutable std::mutex mutex_;
    /** Clients with at least one queued job, in round-robin order. */
    std::list<uint64_t> order_;
    std::unordered_map<uint64_t, std::deque<JobWork>> queues_;
};

} // namespace keq::service

#endif // KEQ_SERVICE_FAIR_QUEUE_H
