#include "src/service/verdict_store.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "src/support/diagnostics.h"

namespace keq::service {

using smt::SatResult;

namespace {

/**
 * Journal record layouts (escaping and line checksums are the journal
 * layer's job; keys are opaque bytes here):
 *
 *   's' <key> / 'u' <key>          -- legacy verdict (generation 0)
 *   'g' <gen> ':' 's'|'u' <key>    -- generation-stamped verdict
 *   'q' <key>                      -- quarantine tombstone
 *
 * Replay is strictly in file order: a tombstone kills the resident
 * entry recorded before it; a later verdict record resurrects the key
 * (the audit's fresh solve re-records it).
 */
std::string
recordPayload(const std::string &key, SatResult verdict,
              uint64_t generation)
{
    std::string payload;
    payload.reserve(key.size() + 24);
    payload.push_back('g');
    payload.append(std::to_string(generation));
    payload.push_back(':');
    payload.push_back(verdict == SatResult::Sat ? 's' : 'u');
    payload.append(key);
    return payload;
}

std::string
tombstonePayload(const std::string &key)
{
    std::string payload;
    payload.reserve(key.size() + 1);
    payload.push_back('q');
    payload.append(key);
    return payload;
}

struct ParsedRecord
{
    enum Kind { Verdict, Tombstone } kind = Verdict;
    std::string key;
    SatResult verdict = SatResult::Unknown;
    uint64_t generation = 0;
};

bool
parseRecord(const std::string &payload, ParsedRecord &out)
{
    if (payload.empty())
        return false;
    size_t cursor = 0;
    out.generation = 0;
    if (payload[0] == 'g') {
        size_t colon = payload.find(':', 1);
        if (colon == std::string::npos || colon == 1 ||
            colon + 1 >= payload.size())
            return false;
        uint64_t generation = 0;
        for (size_t i = 1; i < colon; ++i) {
            char c = payload[i];
            if (c < '0' || c > '9')
                return false;
            generation = generation * 10 + static_cast<uint64_t>(c - '0');
        }
        out.generation = generation;
        cursor = colon + 1;
    }
    char tag = payload[cursor];
    if (tag == 'q' && cursor == 0) {
        out.kind = ParsedRecord::Tombstone;
        out.key.assign(payload, 1, payload.size() - 1);
        return true;
    }
    if (tag == 's')
        out.verdict = SatResult::Sat;
    else if (tag == 'u')
        out.verdict = SatResult::Unsat;
    else
        return false;
    out.kind = ParsedRecord::Verdict;
    out.key.assign(payload, cursor + 1, payload.size() - cursor - 1);
    return true;
}

} // namespace

VerdictStore::VerdictStore(Options options)
    : options_(std::move(options)),
      hash_(options_.hasher ? options_.hasher : [](const std::string &key) {
          return support::fnv1a64(key);
      })
{}

VerdictStore::VerdictStore(std::string path, support::FsyncPolicy fsync,
                           Hasher hasher)
    : VerdictStore([&] {
          Options options;
          options.path = std::move(path);
          options.fsync = fsync;
          options.hasher = std::move(hasher);
          return options;
      }())
{}

uint64_t
VerdictStore::entryChecksum(const std::string &key, SatResult verdict)
{
    std::string bytes;
    bytes.reserve(key.size() + 1);
    bytes.push_back(verdict == SatResult::Sat ? 's' : 'u');
    bytes.append(key);
    return support::fnv1a64(bytes);
}

uint64_t
VerdictStore::entryCost(const std::string &key)
{
    return key.size() + kEntryOverheadBytes;
}

bool
VerdictStore::open(std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    bytes_ = 0;
    generation_ = 1;
    stats_ = Stats();
    writer_.reset();
    if (options_.path.empty())
        return true; // memory-only store

    // Skip-corrupt scan: a bit-flipped record fails its line checksum
    // and is dropped *alone* — entries after it still load. A torn
    // tail still only loses the torn record.
    support::JournalLoad load =
        support::loadJournal(options_.path, kKind,
                             support::JournalScan::SkipCorruptRecords);
    if (!load.ok) {
        error = load.error;
        return false;
    }
    stats_.droppedRecords = load.truncatedRecords;
    stats_.garbageRecords = load.truncatedRecords;
    uint64_t maxGeneration = 1;
    for (const std::string &payload : load.records) {
        ParsedRecord record;
        if (!parseRecord(payload, record)) {
            // An intact-checksum record with a bad shape means schema
            // skew, not corruption; count and skip rather than abort.
            ++stats_.droppedRecords;
            ++stats_.garbageRecords;
            continue;
        }
        maxGeneration = std::max(maxGeneration, record.generation);
        uint64_t hash = hash_(record.key);
        auto it = findLocked(hash, record.key);
        if (record.kind == ParsedRecord::Tombstone) {
            if (it != lru_.end()) {
                removeLocked(it);
                // The tombstone and the record it killed are both dead
                // weight now.
                stats_.garbageRecords += 2;
            } else {
                ++stats_.garbageRecords;
            }
            continue;
        }
        if (it != lru_.end()) {
            ++stats_.duplicates;
            ++stats_.garbageRecords;
            continue;
        }
        insertLocked(std::move(record.key), record.verdict,
                     record.generation);
        ++stats_.loaded;
        enforceCapLocked();
    }
    generation_ = maxGeneration;

    if (stats_.droppedRecords > 0) {
        // Corrupt bytes must not stay in an append-only file — and a
        // torn tail would make post-recovery appends unreachable on
        // the next open. Compact: rewrite from the surviving entries
        // so the journal is clean and appendable again.
        compactLocked();
    } else {
        maybeCompactLocked();
    }
    if (writer_ == nullptr) {
        writer_ = std::make_unique<support::JournalWriter>(
            options_.path, kKind, options_.fsync);
    }
    return true;
}

VerdictStore::EntryList::iterator
VerdictStore::findLocked(uint64_t hash, const std::string &key)
{
    auto it = index_.find(hash);
    if (it == index_.end())
        return lru_.end();
    for (EntryList::iterator slot : it->second) {
        if (slot->key == key)
            return slot;
        // Same hash, different key: a real collision the byte compare
        // just defused.
        ++stats_.collisions;
    }
    return lru_.end();
}

void
VerdictStore::removeLocked(EntryList::iterator it)
{
    uint64_t hash = hash_(it->key);
    auto chain = index_.find(hash);
    KEQ_ASSERT(chain != index_.end(),
               "VerdictStore: entry missing from index");
    auto &slots = chain->second;
    slots.erase(std::remove(slots.begin(), slots.end(), it),
                slots.end());
    if (slots.empty())
        index_.erase(chain);
    bytes_ -= entryCost(it->key);
    lru_.erase(it);
}

void
VerdictStore::insertLocked(std::string key, SatResult verdict,
                           uint64_t generation)
{
    uint64_t hash = hash_(key);
    uint64_t checksum = entryChecksum(key, verdict);
    bytes_ += entryCost(key);
    lru_.push_front(Entry{std::move(key), verdict, generation, checksum});
    index_[hash].push_back(lru_.begin());
}

void
VerdictStore::enforceCapLocked()
{
    // Evict cold entries until the cap holds, always keeping the entry
    // just inserted. Evicted entries are not tombstoned — eviction is
    // a residency decision, not a truth decision — but their journal
    // records become garbage the next compaction reclaims.
    while (options_.maxBytes > 0 && bytes_ > options_.maxBytes &&
           lru_.size() > 1) {
        removeLocked(std::prev(lru_.end()));
        ++stats_.evictions;
        ++stats_.garbageRecords;
    }
}

std::optional<SatResult>
VerdictStore::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    EntryList::iterator it = findLocked(hash_(key), key);
    if (it == lru_.end())
        return std::nullopt;
    if (entryChecksum(it->key, it->verdict) != it->checksum) {
        // Integrity scrub on the serve path: a rotten entry is never
        // served — drop it and let the query re-solve.
        removeLocked(it);
        ++stats_.scrubRejected;
        ++stats_.garbageRecords;
        return std::nullopt;
    }
    // Touch: a hit moves to the LRU front (splice keeps iterators in
    // the index valid).
    lru_.splice(lru_.begin(), lru_, it);
    ++stats_.hits;
    return it->verdict;
}

bool
VerdictStore::record(const std::string &key, SatResult verdict)
{
    KEQ_ASSERT(verdict != SatResult::Unknown,
               "VerdictStore: Unknown verdicts must not be stored");
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t hash = hash_(key);
    EntryList::iterator it = findLocked(hash, key);
    if (it != lru_.end()) {
        ++stats_.duplicates;
        lru_.splice(lru_.begin(), lru_, it);
        return false;
    }
    insertLocked(key, verdict, generation_);
    if (writer_ != nullptr) {
        writer_->append(recordPayload(key, verdict, generation_));
        ++stats_.appended;
    }
    enforceCapLocked();
    maybeCompactLocked();
    return true;
}

bool
VerdictStore::quarantine(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    EntryList::iterator it = findLocked(hash_(key), key);
    bool resident = it != lru_.end();
    if (resident)
        removeLocked(it);
    if (writer_ != nullptr) {
        writer_->append(tombstonePayload(key));
        // The tombstone itself plus the record it kills are both dead
        // weight until the next compaction.
        stats_.garbageRecords += resident ? 2 : 1;
    }
    ++stats_.quarantined;
    maybeCompactLocked();
    return resident;
}

size_t
VerdictStore::scrub()
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t rejected = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
        auto next = std::next(it);
        if (entryChecksum(it->key, it->verdict) != it->checksum) {
            removeLocked(it);
            ++rejected;
            ++stats_.scrubRejected;
            ++stats_.garbageRecords;
        }
        it = next;
    }
    maybeCompactLocked();
    return rejected;
}

void
VerdictStore::compact()
{
    std::lock_guard<std::mutex> lock(mutex_);
    compactLocked();
}

void
VerdictStore::sync()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (writer_ != nullptr)
        writer_->sync();
}

void
VerdictStore::maybeCompactLocked()
{
    if (options_.compactGarbageRatio <= 0.0 || options_.path.empty())
        return;
    uint64_t total = stats_.garbageRecords + lru_.size();
    if (total < options_.compactMinRecords)
        return;
    if (static_cast<double>(stats_.garbageRecords) <
        options_.compactGarbageRatio * static_cast<double>(total))
        return;
    compactLocked();
}

void
VerdictStore::compactLocked()
{
    if (options_.path.empty()) {
        stats_.garbageRecords = 0;
        return;
    }
    // A new generation: every surviving entry is re-stamped and
    // rewritten oldest-first (so reload reconstructs the same LRU
    // order), then the rewrite atomically replaces the journal. Crash
    // at any instant leaves either the old file or the new one —
    // never a mix.
    ++generation_;
    std::string temp = options_.path + ".compact";
    std::remove(temp.c_str());
    if (lru_.empty()) {
        std::remove(options_.path.c_str());
    } else {
        {
            support::JournalWriter rewrite(temp, kKind,
                                           support::FsyncPolicy::Off);
            for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
                it->generation = generation_;
                rewrite.append(
                    recordPayload(it->key, it->verdict, generation_));
            }
            rewrite.sync(); // one fsync for the whole rewrite
        }
        if (std::rename(temp.c_str(), options_.path.c_str()) != 0)
            support::fatal("verdict-store compaction: cannot rename " +
                           temp + " over " + options_.path);
    }
    writer_ = std::make_unique<support::JournalWriter>(
        options_.path, kKind, options_.fsync);
    stats_.garbageRecords = 0;
    ++stats_.compactions;
}

void
VerdictStore::attach(smt::QueryCache &cache)
{
    // Preload: every verdict the journal remembers becomes a warm
    // cache entry before the first client connects — flagged
    // *unaudited*, so the trust-but-verify sampler rechecks them
    // before they are blindly trusted. Preloaded inserts never fire
    // the listener, and record() dedups, so nothing double-appends.
    std::vector<std::pair<std::string, SatResult>> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot.reserve(lru_.size());
        for (const Entry &entry : lru_)
            snapshot.emplace_back(entry.key, entry.verdict);
    }
    for (const auto &[key, verdict] : snapshot)
        cache.insertPreloaded(key, verdict);
    cache.setInsertListener(
        [this](const std::string &key, SatResult verdict) {
            record(key, verdict);
        });
}

size_t
VerdictStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

VerdictStore::Stats
VerdictStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats snapshot = stats_;
    snapshot.entries = lru_.size();
    snapshot.bytes = bytes_;
    snapshot.generation = generation_;
    return snapshot;
}

bool
VerdictStore::corruptResidentEntryForTest(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    EntryList::iterator it = findLocked(hash_(key), key);
    if (it == lru_.end())
        return false;
    // Flip the verdict without refreshing the checksum: the scariest
    // form of rot (a wrong answer with a healthy-looking entry), which
    // the integrity check must catch before it is served.
    it->verdict = it->verdict == SatResult::Sat ? SatResult::Unsat
                                                : SatResult::Sat;
    return true;
}

} // namespace keq::service
