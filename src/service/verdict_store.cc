#include "src/service/verdict_store.h"

#include <cstdint>
#include <cstdio>

#include "src/support/diagnostics.h"

namespace keq::service {

using smt::SatResult;

namespace {

/**
 * Journal record layout: one verdict byte ('s' = Sat, 'u' = Unsat)
 * followed by the raw canonical key. Escaping and checksumming are the
 * journal layer's job; the key is opaque bytes here.
 */
std::string
recordPayload(const std::string &key, SatResult verdict)
{
    std::string payload;
    payload.reserve(key.size() + 1);
    payload.push_back(verdict == SatResult::Sat ? 's' : 'u');
    payload.append(key);
    return payload;
}

bool
parseRecord(const std::string &payload, std::string &key,
            SatResult &verdict)
{
    if (payload.empty())
        return false;
    if (payload[0] == 's')
        verdict = SatResult::Sat;
    else if (payload[0] == 'u')
        verdict = SatResult::Unsat;
    else
        return false;
    key.assign(payload, 1, payload.size() - 1);
    return true;
}

} // namespace

VerdictStore::VerdictStore(std::string path, support::FsyncPolicy fsync,
                           Hasher hasher)
    : path_(std::move(path)), fsync_(fsync),
      hash_(hasher ? std::move(hasher) : [](const std::string &key) {
          return support::fnv1a64(key);
      })
{}

bool
VerdictStore::open(std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
    stats_ = Stats();
    if (path_.empty())
        return true; // memory-only store

    support::JournalLoad load = support::loadJournal(path_, kKind);
    if (!load.ok) {
        error = load.error;
        return false;
    }
    stats_.droppedRecords = load.truncatedRecords;
    for (const std::string &payload : load.records) {
        std::string key;
        SatResult verdict = SatResult::Unknown;
        if (!parseRecord(payload, key, verdict)) {
            // An intact-checksum record with a bad shape means schema
            // skew, not corruption; count and skip rather than abort.
            ++stats_.droppedRecords;
            continue;
        }
        uint64_t hash = hash_(key);
        if (findLocked(hash, key) != SIZE_MAX) {
            ++stats_.duplicates;
            continue;
        }
        index_[hash].push_back(static_cast<uint32_t>(entries_.size()));
        entries_.push_back({std::move(key), verdict});
        ++stats_.loaded;
    }
    stats_.entries = entries_.size();
    if (stats_.droppedRecords > 0) {
        // A torn or corrupt tail stops the journal scan dead, and the
        // writer appends *after* those bytes — so anything recorded
        // post-recovery would be unreachable on the next open. Compact:
        // rewrite the file from the surviving entries so the journal is
        // appendable again.
        std::remove(path_.c_str());
        support::JournalWriter compactor(path_, kKind, fsync_);
        for (const Entry &entry : entries_)
            compactor.append(recordPayload(entry.key, entry.verdict));
        compactor.sync();
    }
    writer_ = std::make_unique<support::JournalWriter>(path_, kKind,
                                                       fsync_);
    return true;
}

size_t
VerdictStore::findLocked(uint64_t hash, const std::string &key) const
{
    auto it = index_.find(hash);
    if (it == index_.end())
        return SIZE_MAX;
    for (uint32_t slot : it->second) {
        if (entries_[slot].key == key)
            return slot;
        // Same hash, different key: a real collision the byte compare
        // just defused.
        ++const_cast<Stats &>(stats_).collisions;
    }
    return SIZE_MAX;
}

std::optional<SatResult>
VerdictStore::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    size_t slot = findLocked(hash_(key), key);
    if (slot == SIZE_MAX)
        return std::nullopt;
    ++stats_.hits;
    return entries_[slot].verdict;
}

bool
VerdictStore::record(const std::string &key, SatResult verdict)
{
    KEQ_ASSERT(verdict != SatResult::Unknown,
               "VerdictStore: Unknown verdicts must not be stored");
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t hash = hash_(key);
    if (findLocked(hash, key) != SIZE_MAX) {
        ++stats_.duplicates;
        return false;
    }
    index_[hash].push_back(static_cast<uint32_t>(entries_.size()));
    entries_.push_back({key, verdict});
    stats_.entries = entries_.size();
    if (writer_ != nullptr) {
        writer_->append(recordPayload(key, verdict));
        ++stats_.appended;
    }
    return true;
}

void
VerdictStore::attach(smt::QueryCache &cache)
{
    // Preload: every verdict the journal remembers becomes a warm
    // cache entry before the first client connects. Re-inserting is
    // idempotent store-side (record() dedups), so the listener below
    // never double-appends preloaded keys.
    std::vector<Entry> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot = entries_;
    }
    for (const Entry &entry : snapshot)
        cache.insert(entry.key, entry.verdict);
    cache.setInsertListener(
        [this](const std::string &key, SatResult verdict) {
            record(key, verdict);
        });
}

size_t
VerdictStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

VerdictStore::Stats
VerdictStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace keq::service
