#include "src/service/endpoint.h"

namespace keq::service {

const char *
transportName(TransportKind kind)
{
    switch (kind) {
    case TransportKind::Unix:
        return "unix";
    case TransportKind::Tcp:
        return "tcp";
    }
    return "?";
}

Endpoint
unixEndpoint(std::string path)
{
    Endpoint endpoint;
    endpoint.kind = TransportKind::Unix;
    endpoint.path = std::move(path);
    return endpoint;
}

Endpoint
tcpEndpoint(std::string host, uint16_t port)
{
    Endpoint endpoint;
    endpoint.kind = TransportKind::Tcp;
    endpoint.host = std::move(host);
    endpoint.port = port;
    return endpoint;
}

std::string
endpointToString(const Endpoint &endpoint)
{
    if (endpoint.kind == TransportKind::Unix)
        return "unix:" + endpoint.path;
    // Re-bracket IPv6 literals so the string parses back.
    bool v6 = endpoint.host.find(':') != std::string::npos;
    return "tcp:" + (v6 ? "[" + endpoint.host + "]" : endpoint.host) +
           ":" + std::to_string(endpoint.port);
}

namespace {

bool
parsePort(const std::string &spec, const std::string &text,
          uint16_t &out, std::string &error)
{
    if (text.empty()) {
        error = "endpoint '" + spec + "': missing port";
        return false;
    }
    unsigned long value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            error = "endpoint '" + spec + "': port '" + text +
                    "' is not a number";
            return false;
        }
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > 65535) {
            error = "endpoint '" + spec + "': port '" + text +
                    "' exceeds 65535";
            return false;
        }
    }
    out = static_cast<uint16_t>(value);
    return true;
}

bool
parseTcp(const std::string &spec, const std::string &rest,
         Endpoint &out, std::string &error)
{
    out.kind = TransportKind::Tcp;
    std::string portText;
    if (!rest.empty() && rest[0] == '[') {
        // Bracketed IPv6 literal: tcp:[::1]:7461.
        size_t close = rest.find(']');
        if (close == std::string::npos) {
            error = "endpoint '" + spec + "': unterminated '['";
            return false;
        }
        out.host = rest.substr(1, close - 1);
        if (close + 1 >= rest.size() || rest[close + 1] != ':') {
            error = "endpoint '" + spec +
                    "': expected ':PORT' after ']'";
            return false;
        }
        portText = rest.substr(close + 2);
    } else {
        size_t colon = rest.rfind(':');
        if (colon == std::string::npos) {
            error = "endpoint '" + spec +
                    "': tcp endpoints are tcp:HOST:PORT";
            return false;
        }
        out.host = rest.substr(0, colon);
        if (out.host.find(':') != std::string::npos) {
            error = "endpoint '" + spec +
                    "': IPv6 hosts must be bracketed ([::1])";
            return false;
        }
        portText = rest.substr(colon + 1);
    }
    if (out.host.empty()) {
        error = "endpoint '" + spec + "': missing host";
        return false;
    }
    return parsePort(spec, portText, out.port, error);
}

} // namespace

bool
parseEndpoint(const std::string &spec, Endpoint &out,
              std::string &error)
{
    out = Endpoint{};
    if (spec.empty()) {
        error = "empty endpoint";
        return false;
    }
    if (spec.rfind("unix:", 0) == 0) {
        out.kind = TransportKind::Unix;
        out.path = spec.substr(5);
        if (out.path.empty()) {
            error = "endpoint '" + spec + "': missing socket path";
            return false;
        }
        return true;
    }
    if (spec.rfind("tcp:", 0) == 0)
        return parseTcp(spec, spec.substr(4), out, error);
    // Any other scheme-looking prefix is a typo, not a legacy path: a
    // bare unix path on these platforms never contains "scheme:" before
    // its first '/'.
    size_t colon = spec.find(':');
    if (colon != std::string::npos &&
        spec.find('/') > colon) {
        error = "endpoint '" + spec + "': unknown scheme '" +
                spec.substr(0, colon) + ":' (use unix: or tcp:)";
        return false;
    }
    out.kind = TransportKind::Unix;
    out.path = spec; // legacy bare path
    return true;
}

bool
parseEndpointList(const std::string &spec, std::vector<Endpoint> &out,
                  std::string &error)
{
    out.clear();
    if (spec.empty()) {
        error = "empty endpoint list";
        return false;
    }
    size_t start = 0;
    while (start <= spec.size()) {
        size_t comma = spec.find(',', start);
        std::string item =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (item.empty()) {
            error = "endpoint list '" + spec +
                    "': empty element";
            return false;
        }
        Endpoint endpoint;
        if (!parseEndpoint(item, endpoint, error))
            return false;
        out.push_back(std::move(endpoint));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (out.empty()) {
        error = "empty endpoint list";
        return false;
    }
    return true;
}

} // namespace keq::service
