#include "src/service/job_options.h"

#include <cstdio>

namespace keq::service {

using smt::wire::JobOptionsFrame;

JobOptionsFrame
encodeJobOptions(const driver::PipelineOptions &options)
{
    JobOptionsFrame frame;
    frame.mergeStores = options.isel.mergeStores ? 1 : 0;
    frame.foldExtLoad = options.isel.foldExtLoad ? 1 : 0;
    switch (options.isel.bug) {
    case isel::Bug::None:
        frame.bug = 0;
        break;
    case isel::Bug::StoreMergeWAW:
        frame.bug = 1;
        break;
    case isel::Bug::LoadWidening:
        frame.bug = 2;
        break;
    }
    frame.refinementOnly = options.checker.refinementOnly ? 1 : 0;
    frame.positiveForm = options.checker.positiveFormOpt ? 1 : 0;
    frame.crudeLiveness =
        options.vc.precision == vcgen::LivenessPrecision::BlockLocal
            ? 1
            : 0;
    frame.batchDischarge = options.checker.batchDischarge ? 1 : 0;
    frame.smtTimeoutMs = options.checker.solverTimeoutMs;
    frame.wallBudgetSeconds = options.checker.wallBudgetSeconds;
    frame.specSizeBudget = options.specSizeBudget;
    return frame;
}

driver::PipelineOptions
decodeJobOptions(const JobOptionsFrame &frame)
{
    driver::PipelineOptions options;
    options.isel.mergeStores = frame.mergeStores != 0;
    options.isel.foldExtLoad = frame.foldExtLoad != 0;
    options.isel.bug = frame.bug == 1   ? isel::Bug::StoreMergeWAW
                       : frame.bug == 2 ? isel::Bug::LoadWidening
                                        : isel::Bug::None;
    options.checker.refinementOnly = frame.refinementOnly != 0;
    options.checker.positiveFormOpt = frame.positiveForm != 0;
    options.vc.precision = frame.crudeLiveness != 0
                               ? vcgen::LivenessPrecision::BlockLocal
                               : vcgen::LivenessPrecision::Full;
    options.checker.batchDischarge = frame.batchDischarge != 0;
    options.checker.solverTimeoutMs = frame.smtTimeoutMs;
    options.checker.wallBudgetSeconds = frame.wallBudgetSeconds;
    options.specSizeBudget =
        static_cast<size_t>(frame.specSizeBudget);
    return options;
}

std::string
jobOptionsKey(const JobOptionsFrame &frame)
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "%u%u%u%u%u%u%u|%u|%.17g|%llu",
                  frame.mergeStores, frame.foldExtLoad, frame.bug,
                  frame.refinementOnly, frame.positiveForm,
                  frame.crudeLiveness, frame.batchDischarge,
                  frame.smtTimeoutMs, frame.wallBudgetSeconds,
                  static_cast<unsigned long long>(
                      frame.specSizeBudget));
    return buf;
}

namespace {

void
fnv1aUpdate(uint64_t &hash, const std::string &bytes)
{
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    // Field separator: keeps ("ab","c") distinct from ("a","bc").
    hash ^= 0xff;
    hash *= 1099511628211ULL;
}

} // namespace

uint64_t
jobFingerprint(const std::string &moduleText,
               const std::string &function,
               const smt::wire::JobOptionsFrame &options)
{
    uint64_t hash = 14695981039346656037ULL; // FNV-1a offset basis
    fnv1aUpdate(hash, jobOptionsKey(options));
    fnv1aUpdate(hash, function);
    fnv1aUpdate(hash, moduleText);
    return hash == 0 ? 1 : hash;
}

} // namespace keq::service
