#include "src/service/job_options.h"

#include <cstdio>

namespace keq::service {

using smt::wire::JobOptionsFrame;

JobOptionsFrame
encodeJobOptions(const driver::PipelineOptions &options)
{
    JobOptionsFrame frame;
    frame.mergeStores = options.isel.mergeStores ? 1 : 0;
    frame.foldExtLoad = options.isel.foldExtLoad ? 1 : 0;
    switch (options.isel.bug) {
    case isel::Bug::None:
        frame.bug = 0;
        break;
    case isel::Bug::StoreMergeWAW:
        frame.bug = 1;
        break;
    case isel::Bug::LoadWidening:
        frame.bug = 2;
        break;
    }
    frame.refinementOnly = options.checker.refinementOnly ? 1 : 0;
    frame.positiveForm = options.checker.positiveFormOpt ? 1 : 0;
    frame.crudeLiveness =
        options.vc.precision == vcgen::LivenessPrecision::BlockLocal
            ? 1
            : 0;
    frame.batchDischarge = options.checker.batchDischarge ? 1 : 0;
    frame.smtTimeoutMs = options.checker.solverTimeoutMs;
    frame.wallBudgetSeconds = options.checker.wallBudgetSeconds;
    frame.specSizeBudget = options.specSizeBudget;
    return frame;
}

driver::PipelineOptions
decodeJobOptions(const JobOptionsFrame &frame)
{
    driver::PipelineOptions options;
    options.isel.mergeStores = frame.mergeStores != 0;
    options.isel.foldExtLoad = frame.foldExtLoad != 0;
    options.isel.bug = frame.bug == 1   ? isel::Bug::StoreMergeWAW
                       : frame.bug == 2 ? isel::Bug::LoadWidening
                                        : isel::Bug::None;
    options.checker.refinementOnly = frame.refinementOnly != 0;
    options.checker.positiveFormOpt = frame.positiveForm != 0;
    options.vc.precision = frame.crudeLiveness != 0
                               ? vcgen::LivenessPrecision::BlockLocal
                               : vcgen::LivenessPrecision::Full;
    options.checker.batchDischarge = frame.batchDischarge != 0;
    options.checker.solverTimeoutMs = frame.smtTimeoutMs;
    options.checker.wallBudgetSeconds = frame.wallBudgetSeconds;
    options.specSizeBudget =
        static_cast<size_t>(frame.specSizeBudget);
    return options;
}

std::string
jobOptionsKey(const JobOptionsFrame &frame)
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "%u%u%u%u%u%u%u|%u|%.17g|%llu",
                  frame.mergeStores, frame.foldExtLoad, frame.bug,
                  frame.refinementOnly, frame.positiveForm,
                  frame.crudeLiveness, frame.batchDischarge,
                  frame.smtTimeoutMs, frame.wallBudgetSeconds,
                  static_cast<unsigned long long>(
                      frame.specSizeBudget));
    return buf;
}

} // namespace keq::service
