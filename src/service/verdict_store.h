#ifndef KEQ_SERVICE_VERDICT_STORE_H
#define KEQ_SERVICE_VERDICT_STORE_H

/**
 * @file
 * Cross-run verdict store: the daemon's persistent solver memory.
 *
 * The in-memory smt::QueryCache already memoizes Sat/Unsat verdicts
 * under canonical alpha-renamed query fingerprints, but it dies with
 * the process. The VerdictStore gives those verdicts a disk life
 * through the PR 4 journal layer (support::Journal: checksummed,
 * escaped, torn-tail tolerant), so two clients validating the same
 * function pair — today or next week — pay for one solve.
 *
 * Data flow inside the daemon:
 *
 *   startup:  open() loads every intact journal record into memory;
 *   attach(): preloads them into the daemon's shared QueryCache (as
 *             *unaudited* entries — they are month-old claims until
 *             the trust-but-verify audit confirms them) and subscribes
 *             to its insert listener;
 *   runtime:  every *fresh* cache insert (a verdict the backend just
 *             earned) is appended to the journal, once.
 *
 * Month-scale lifecycle (PR 9):
 *  - the resident set is a byte-capped LRU (`--verdict-store-mb`):
 *    recording past the cap evicts the coldest entries, whose journal
 *    records become garbage;
 *  - records are generation-stamped; each compaction opens a new
 *    generation and rewrites the journal from the resident set, so
 *    garbage (duplicates, evicted entries, tombstones, corrupt lines)
 *    is reclaimed. Compaction runs on open when the journal carried
 *    corruption, whenever the garbage ratio crosses the configured
 *    threshold, or on demand (the daemon wires SIGHUP to it);
 *  - every resident entry carries an integrity checksum that lookup()
 *    re-verifies before serving; scrub() sweeps the whole set. A
 *    checksum mismatch drops the entry — a corrupt verdict is never
 *    served, merely re-solved;
 *  - quarantine() removes an entry whose audit recheck contradicted it
 *    and appends a tombstone record, so the rotten verdict stays dead
 *    across restarts.
 *
 * Soundness guards:
 *  - Unknown is never stored (same contract as QueryCache);
 *  - lookups compare the *full key*, not just its hash — the index is
 *    hash -> candidate list, and a hit requires byte equality, so a
 *    fingerprint collision costs a probe, never a wrong verdict
 *    (pinned by the collision test with a degenerate hasher);
 *  - the journal is scanned in skip-corrupt mode: a bit-flipped record
 *    fails its line checksum and is dropped alone — entries after it
 *    still load (a torn *tail* still only loses the torn record).
 */

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/caching_solver.h"
#include "src/smt/solver.h"
#include "src/support/journal.h"

namespace keq::service {

class VerdictStore
{
  public:
    /** Journal schema tag (support::Journal header). */
    static constexpr const char *kKind = "verdict-store";

    /** Accounting charge per resident entry on top of the key bytes. */
    static constexpr uint64_t kEntryOverheadBytes = 64;

    struct Stats
    {
        uint64_t entries = 0;   ///< resident verdicts
        uint64_t bytes = 0;     ///< accounted size of the resident set
        uint64_t loaded = 0;    ///< entries restored from the journal
        uint64_t appended = 0;  ///< fresh verdicts journaled this run
        uint64_t duplicates = 0;///< records already resident (ignored)
        uint64_t collisions = 0;///< hash collisions resolved by compare
        uint64_t droppedRecords = 0; ///< corrupt/torn journal records
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t evictions = 0;   ///< entries evicted by the byte cap
        uint64_t quarantined = 0; ///< entries tombstoned by audits
        uint64_t scrubRejected = 0; ///< entries failing their checksum
        uint64_t compactions = 0; ///< journal rewrites this run
        uint64_t garbageRecords = 0; ///< dead journal records right now
        uint64_t generation = 0;  ///< current compaction generation
    };

    /** Hash used for the in-memory index; injectable for the
     *  collision-safety test (a degenerate hash must still be sound,
     *  just slower). */
    using Hasher = std::function<uint64_t(const std::string &)>;

    struct Options
    {
        /** Journal file; empty = memory-only store (tests). */
        std::string path;
        /** Durability policy for appended verdicts. */
        support::FsyncPolicy fsync = support::FsyncPolicy::Off;
        /**
         * Byte cap on the resident set (0 = unbounded). Recording past
         * it evicts least-recently-used entries; the newest entry is
         * never evicted, so one oversized key still records.
         */
        uint64_t maxBytes = 0;
        /**
         * Auto-compaction threshold: when dead journal records exceed
         * this fraction of all records (and the floor below is met),
         * the journal is rewritten in place. <= 0 disables.
         */
        double compactGarbageRatio = 0.5;
        /** Minimum total records before auto-compaction bothers. */
        uint64_t compactMinRecords = 1024;
        Hasher hasher;
    };

    explicit VerdictStore(Options options);

    /** Legacy convenience constructor (unbounded, default ratios). */
    explicit VerdictStore(std::string path,
                          support::FsyncPolicy fsync =
                              support::FsyncPolicy::Off,
                          Hasher hasher = nullptr);

    /**
     * Loads the journal (missing file = fresh store). False with
     * @p error when the file exists but carries the wrong journal kind
     * — pointing the daemon at a checkpoint file is a user error.
     * Corrupt records are skipped (counted in droppedRecords) and
     * compacted away before the store goes live.
     */
    bool open(std::string &error);

    /**
     * Full-key lookup (hash index + byte compare). Verifies the
     * entry's integrity checksum before serving: a corrupt entry is
     * dropped and the lookup misses. Thread safe.
     */
    std::optional<smt::SatResult> lookup(const std::string &key);

    /**
     * Stores a definitive verdict; appends to the journal only when
     * the key is new, evicting past the byte cap. Unknown is rejected
     * by contract. Thread safe.
     * @return true when the verdict was fresh (journal grew).
     */
    bool record(const std::string &key, smt::SatResult verdict);

    /**
     * Removes @p key (if resident) and appends a tombstone record, so
     * the verdict stays dead across restarts. Called when an audit
     * recheck contradicts a stored verdict. Thread safe.
     * @return true when the key was resident.
     */
    bool quarantine(const std::string &key);

    /**
     * Integrity sweep: re-verifies every resident entry's checksum and
     * drops (never serves) any that fail. Thread safe.
     * @return Number of entries rejected.
     */
    size_t scrub();

    /**
     * Rewrites the journal from the resident set under a new
     * generation, reclaiming garbage records. Safe against concurrent
     * record()/lookup() (they serialize behind the store mutex). The
     * daemon wires SIGHUP to scrub() + compact(). Thread safe.
     */
    void compact();

    /** Flushes the journal to stable storage (drain path). */
    void sync();

    /**
     * Wires this store to the daemon's shared cache: preloads every
     * resident verdict as *unaudited* (so clients hit from the first
     * query, but month-old claims get audited before being trusted)
     * and subscribes to fresh inserts (so every new verdict persists).
     * Call once, before the cache is shared across sessions.
     */
    void attach(smt::QueryCache &cache);

    size_t size() const;
    Stats stats() const;

    /**
     * Test hook: flips one byte of a resident entry's key *without*
     * updating its checksum, simulating in-memory rot so the scrub
     * path is testable. Returns false when the key is not resident.
     */
    bool corruptResidentEntryForTest(const std::string &key);

  private:
    struct Entry
    {
        std::string key;
        smt::SatResult verdict;
        uint64_t generation = 0;
        uint64_t checksum = 0; ///< integrity over key + verdict byte
    };

    using EntryList = std::list<Entry>;

    static uint64_t entryChecksum(const std::string &key,
                                  smt::SatResult verdict);
    static uint64_t entryCost(const std::string &key);

    /** Resident-entry scan; returns lru_.end() when absent. */
    EntryList::iterator findLocked(uint64_t hash, const std::string &key);

    /** Detaches @p it from the LRU list and the hash index. */
    void removeLocked(EntryList::iterator it);

    /** Inserts at the LRU front; no cap enforcement, no journaling. */
    void insertLocked(std::string key, smt::SatResult verdict,
                      uint64_t generation);

    /** Evicts LRU-tail entries until the byte cap holds again. */
    void enforceCapLocked();

    /** Auto-compacts when the garbage ratio crosses the threshold. */
    void maybeCompactLocked();
    void compactLocked();

    Options options_;
    Hasher hash_;
    std::unique_ptr<support::JournalWriter> writer_;

    mutable std::mutex mutex_;
    /** LRU order, front = most recently used. */
    EntryList lru_;
    /** hash -> entries with that hash (collision chain). */
    std::unordered_map<uint64_t, std::vector<EntryList::iterator>>
        index_;
    uint64_t bytes_ = 0;
    uint64_t generation_ = 1;
    Stats stats_;
};

} // namespace keq::service

#endif // KEQ_SERVICE_VERDICT_STORE_H
