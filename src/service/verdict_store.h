#ifndef KEQ_SERVICE_VERDICT_STORE_H
#define KEQ_SERVICE_VERDICT_STORE_H

/**
 * @file
 * Cross-run verdict store: the daemon's persistent solver memory.
 *
 * The in-memory smt::QueryCache already memoizes Sat/Unsat verdicts
 * under canonical alpha-renamed query fingerprints, but it dies with
 * the process. The VerdictStore gives those verdicts a disk life
 * through the PR 4 journal layer (support::Journal: checksummed,
 * escaped, torn-tail tolerant), so two clients validating the same
 * function pair — today or next week — pay for one solve.
 *
 * Data flow inside the daemon:
 *
 *   startup:  open() loads every intact journal record into memory;
 *   attach(): preloads them into the daemon's shared QueryCache and
 *             subscribes to its insert listener;
 *   runtime:  every *fresh* cache insert (a verdict the backend just
 *             earned) is appended to the journal, once.
 *
 * Soundness guards:
 *  - Unknown is never stored (same contract as QueryCache);
 *  - lookups compare the *full key*, not just its hash — the index is
 *    hash -> candidate list, and a hit requires byte equality, so a
 *    fingerprint collision costs a probe, never a wrong verdict
 *    (pinned by the collision test with a degenerate hasher);
 *  - a corrupt or torn journal tail is dropped by the journal layer;
 *    everything before it is served (kill/resume pattern).
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/smt/caching_solver.h"
#include "src/smt/solver.h"
#include "src/support/journal.h"

namespace keq::service {

class VerdictStore
{
  public:
    /** Journal schema tag (support::Journal header). */
    static constexpr const char *kKind = "verdict-store";

    struct Stats
    {
        uint64_t entries = 0;   ///< resident verdicts
        uint64_t loaded = 0;    ///< entries restored from the journal
        uint64_t appended = 0;  ///< fresh verdicts journaled this run
        uint64_t duplicates = 0;///< records already resident (ignored)
        uint64_t collisions = 0;///< hash collisions resolved by compare
        uint64_t droppedRecords = 0; ///< torn/corrupt tail records
        uint64_t lookups = 0;
        uint64_t hits = 0;
    };

    /** Hash used for the in-memory index; injectable for the
     *  collision-safety test (a degenerate hash must still be sound,
     *  just slower). */
    using Hasher = std::function<uint64_t(const std::string &)>;

    /**
     * @param path  Journal file; empty = memory-only store (tests).
     * @param fsync Durability policy for appended verdicts.
     */
    explicit VerdictStore(std::string path,
                          support::FsyncPolicy fsync =
                              support::FsyncPolicy::Off,
                          Hasher hasher = nullptr);

    /**
     * Loads the journal (missing file = fresh store). False with
     * @p error when the file exists but carries the wrong journal kind
     * — pointing the daemon at a checkpoint file is a user error.
     */
    bool open(std::string &error);

    /** Full-key lookup (hash index + byte compare). Thread safe. */
    std::optional<smt::SatResult> lookup(const std::string &key);

    /**
     * Stores a definitive verdict; appends to the journal only when
     * the key is new. Unknown is rejected by contract. Thread safe.
     * @return true when the verdict was fresh (journal grew).
     */
    bool record(const std::string &key, smt::SatResult verdict);

    /**
     * Wires this store to the daemon's shared cache: preloads every
     * resident verdict (so clients hit from the first query) and
     * subscribes to fresh inserts (so every new verdict persists).
     * Call once, before the cache is shared across sessions.
     */
    void attach(smt::QueryCache &cache);

    size_t size() const;
    Stats stats() const;

  private:
    struct Entry
    {
        std::string key;
        smt::SatResult verdict;
    };

    /** Resident-entry scan; returns the entry index or SIZE_MAX. */
    size_t findLocked(uint64_t hash, const std::string &key) const;

    std::string path_;
    support::FsyncPolicy fsync_;
    Hasher hash_;
    std::unique_ptr<support::JournalWriter> writer_;

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
    /** hash -> indices into entries_ (collision chain). */
    std::unordered_map<uint64_t, std::vector<uint32_t>> index_;
    Stats stats_;
};

} // namespace keq::service

#endif // KEQ_SERVICE_VERDICT_STORE_H
