#ifndef KEQ_SERVICE_SERVER_H
#define KEQ_SERVICE_SERVER_H

/**
 * @file
 * The validation daemon core (keqd without the CLI).
 *
 * One Server owns every warm resource the batch pipeline pays for on
 * each invocation:
 *
 *  - a shared smt::QueryCache wired to the persistent VerdictStore
 *    (loaded at start, appended on every fresh verdict), so verdicts
 *    survive across clients *and* across daemon restarts;
 *  - a pool of warm driver::Pipelines keyed by the job's deterministic
 *    options (jobOptionsKey) — Z3 contexts, sandbox worker pools and
 *    portfolio lanes persist across jobs instead of cold-starting;
 *  - a support::ThreadPool executing jobs picked from the per-client
 *    round-robin FairQueue, so no client's backlog starves another;
 *  - a bounded parsed-module cache, since a client submits one job per
 *    function of the same module text.
 *
 * Threading model: one accept thread per listener (a daemon may serve
 * AF_UNIX and TCP endpoints at once), one reader thread per session,
 * N pool workers. Sessions push admitted jobs into the FairQueue and
 * submit one "run one job" task per push; workers pop *fairly* (the
 * popped job need not be the pushed one). Verdicts go back through the
 * owning session's write mutex. Shutdown cancels in-flight checks via
 * the shared cancellation token, so stop() is prompt even mid-solve.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/service/fair_queue.h"
#include "src/service/session.h"
#include "src/service/socket.h"
#include "src/service/verdict_store.h"
#include "src/support/cancellation.h"
#include "src/support/journal.h"
#include "src/support/thread_pool.h"

namespace keq::service {

struct ServerOptions
{
    /** Legacy single unix socket; folded into listen at start(). */
    std::string socketPath;
    /**
     * Transport endpoints to serve (keqd --listen, repeatable): any
     * mix of unix: and tcp: listeners. All listeners feed the same
     * FairQueue, verdict store and pipeline pool — the transport is
     * an accept-side detail, never a scheduling domain.
     */
    std::vector<Endpoint> listen;
    /** Pool worker threads; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Admission cap: queued+running jobs per client before Busy. */
    unsigned maxInFlightPerClient = 32;
    /** Verdict-store journal; empty = no cross-restart persistence. */
    std::string verdictJournalPath;
    support::FsyncPolicy journalFsync = support::FsyncPolicy::Off;
    /** Verdict-store byte cap (LRU eviction); 0 = unbounded. */
    uint64_t verdictStoreMaxBytes = 0;
    /** Store auto-compaction garbage-ratio threshold (<=0 disables). */
    double storeCompactGarbageRatio = 0.5;
    /** Minimum journal records before auto-compaction bothers. */
    uint64_t storeCompactMinRecords = 1024;
    /**
     * Trust-but-verify sample of warm (journal-preloaded) verdict
     * hits: each sampled hit is independently re-checked before being
     * served, and a contradiction quarantines the entry (tombstoned in
     * the journal) and re-solves fresh. 0 = off, 1 = audit every
     * unaudited hit once.
     */
    double auditRate = 0.0;
    uint64_t auditSeed = 0;
    /**
     * Per-job wall deadline in ms, counted from admission. Time spent
     * queued eats the budget; the remainder caps GuardedSolver's
     * watchdog, so a slow client cannot pin a worker indefinitely.
     * 0 = none.
     */
    unsigned jobDeadlineMs = 0;
    /** Max *queued* jobs per client before Busy (0 = no extra cap). */
    unsigned maxQueuedPerClient = 0;
    /**
     * Token-bucket admission rate: sustained submits/sec per client
     * (0 = unlimited). Bursts up to clientBurst are admitted at full
     * speed; beyond that, submits get typed Busy replies.
     */
    double clientRatePerSec = 0.0;
    unsigned clientBurst = 64;
    /** Shared query-cache budget (same semantics as keqc). */
    size_t cacheMemoryMb = 512;
    size_t cacheShardCapacity = 1 << 16;
    /** Handshake deadline; a silent connector is dropped after this. */
    unsigned handshakeTimeoutMs = 5000;
    /**
     * Completed-job ledger entries kept for idempotent resubmission
     * (wire v5 fingerprints). A job resubmitted after a client
     * failover is answered from here: no re-solve, no quota charge,
     * no journal append. LRU-bounded; 0 disables dedup entirely.
     */
    size_t jobLedgerEntries = 4096;
    /** Sandboxed solving (shared warm worker pool across clients). */
    bool sandbox = false;
    unsigned sandboxWorkers = 0;
    unsigned workerMemoryMb = 0;
    std::string workerPath;
};

struct ServerStats
{
    uint64_t accepted = 0;
    uint64_t helloRejects = 0;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t busyRejects = 0;
    uint64_t droppedJobs = 0;
    uint64_t quotaRejects = 0;  ///< Busy replies from quota/queue caps
    uint64_t expiredJobs = 0;   ///< deadlines that expired in queue
    uint64_t auditMismatches = 0; ///< quarantined + re-solved verdicts
    uint64_t dedupHits = 0;     ///< jobs served from the completed ledger
    uint64_t acceptedUnix = 0;  ///< per-transport accept counters
    uint64_t acceptedTcp = 0;
};

class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Opens the verdict store, binds the socket, starts the pool and
     * accept thread. False with @p error on any failure (daemon
     * already running on the path, unreadable journal, ...).
     */
    bool start(std::string &error);

    /** Asks the daemon to stop (Shutdown frame, SIGTERM). Unblocks
     *  wait(); actual teardown happens in stop(). */
    void requestShutdown();

    /**
     * Graceful drain (SIGTERM): stop accepting connections and new
     * submissions (clients get Busy and degrade to local solving),
     * finish every admitted job, then flush the journal. Poll
     * drained() to learn when teardown via stop() is lossless.
     * Idempotent.
     */
    void beginDrain();
    bool draining() const { return draining_.load(); }
    /** True once every admitted job has executed and replied. */
    bool drained() const;

    /**
     * SIGHUP maintenance: integrity-scrub the verdict store and
     * compact its journal. Safe while serving (store operations
     * serialize internally).
     */
    void scrubAndCompactStore();

    /** Blocks until requestShutdown is called. */
    void wait();

    /** Poll form of wait() — keqd's signal loop checks this. */
    bool shutdownRequested() const;

    /**
     * Full teardown: stops accepting, unblocks and joins sessions,
     * cancels in-flight checks, drains the pool, syncs the journal.
     * Idempotent.
     */
    void stop();

    bool stopping() const { return stopping_.load(); }

    /** Daemon-wide counters for a JobStatus reply. */
    smt::wire::JobStatusFrame statusFrame() const;

    ServerStats stats() const;
    VerdictStore &store() { return store_; }
    const ServerOptions &options() const { return options_; }

    /**
     * Endpoints actually bound (TCP port-0 listens carry the resolved
     * ephemeral port). Valid after start().
     */
    std::vector<Endpoint> boundEndpoints() const;

    /**
     * Completed-job ledger probe (wire v5 idempotency). True when
     * @p fingerprint names a completed job whose full identity
     * (function, options key, module hash+length) matches the submit
     * — the recorded verdict lands in @p out (jobId left untouched).
     * The fingerprint alone is never trusted: a 64-bit collision must
     * not substitute one job's verdict for another's.
     */
    bool ledgerLookup(const smt::wire::SubmitJobFrame &job,
                      smt::wire::JobVerdictFrame &out);

  private:
    friend class Session;

    void acceptLoop(Listener &listener);
    /** Records a completed job for future idempotent resubmits. */
    void ledgerRecord(const JobWork &work,
                      const driver::FunctionReport &report,
                      const smt::wire::JobVerdictFrame &frame);
    /** Pool task: pop one job fairly and execute it. */
    void runOneJob();
    void executeJob(const JobWork &work);
    driver::FunctionReport validateJob(const JobWork &work,
                                       unsigned deadlineMsCap);
    driver::Pipeline &pipelineFor(const smt::wire::JobOptionsFrame &o);
    std::shared_ptr<const llvmir::Module>
    moduleFor(const std::string &text, std::string &error);
    std::shared_ptr<Session> sessionFor(uint64_t clientId);

    // Session-facing hooks (called from reader threads).
    void admitJob(JobWork work);
    size_t dropClientJobs(uint64_t clientId);

    /** One completed job, keyed by fingerprint with full-identity
     *  confirmation (two independent hashes + lengths + exact function
     *  and options-key compare; the module text itself is too large to
     *  retain per entry). */
    struct LedgerEntry
    {
        std::string function;
        std::string optionsKey;
        uint64_t moduleHash = 0;
        uint64_t moduleLen = 0;
        std::string report;
        smt::SolverStats stats;
        std::list<uint64_t>::iterator lru;
    };

    ServerOptions options_;
    VerdictStore store_;
    std::shared_ptr<smt::QueryCache> cache_;
    support::CancellationToken cancel_;
    std::vector<std::unique_ptr<Listener>> listeners_;
    std::unique_ptr<support::ThreadPool> pool_;
    FairQueue queue_;
    std::vector<std::thread> acceptThreads_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};
    bool started_ = false;
    bool stopped_ = false;

    mutable std::mutex sessionsMutex_;
    std::vector<std::shared_ptr<Session>> sessions_;
    uint64_t nextClientId_ = 1;

    std::mutex pipelinesMutex_;
    std::unordered_map<std::string, std::unique_ptr<driver::Pipeline>>
        pipelines_;

    std::mutex modulesMutex_;
    std::unordered_map<std::string,
                       std::shared_ptr<const llvmir::Module>>
        modules_;

    mutable std::mutex ledgerMutex_;
    std::unordered_map<uint64_t, LedgerEntry> ledger_;
    std::list<uint64_t> ledgerLru_; ///< front = most recently used

    mutable std::mutex shutdownMutex_;
    std::condition_variable shutdownCv_;
    bool shutdownRequested_ = false;

    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> helloRejects_{0};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> busyRejects_{0};
    std::atomic<uint64_t> droppedJobs_{0};
    std::atomic<uint64_t> running_{0};
    std::atomic<uint64_t> quotaRejects_{0};
    std::atomic<uint64_t> expiredJobs_{0};
    std::atomic<uint64_t> auditMismatches_{0};
    std::atomic<uint64_t> dedupHits_{0};
    std::atomic<uint64_t> acceptedUnix_{0};
    std::atomic<uint64_t> acceptedTcp_{0};
};

} // namespace keq::service

#endif // KEQ_SERVICE_SERVER_H
