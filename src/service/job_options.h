#ifndef KEQ_SERVICE_JOB_OPTIONS_H
#define KEQ_SERVICE_JOB_OPTIONS_H

/**
 * @file
 * Mapping between driver::PipelineOptions and the wire JobOptionsFrame.
 *
 * A job carries exactly the knobs that change *verdicts* (canonical
 * summaries): ISel toggles and reintroducible bugs, checker options,
 * liveness precision, budgets and timeouts. Execution policy — jobs,
 * caching, sandboxing, portfolio lanes — deliberately does NOT travel:
 * the daemon owns scheduling and isolation so every client shares the
 * warm pools, and verdicts are invariant under those choices anyway
 * (the byte-identity tests across serial/parallel/sandboxed stacks are
 * what license this split).
 *
 * encode/decode are exact inverses on the carried subset; the daemon
 * keys its Pipeline pool by jobOptionsKey so two clients with the same
 * knobs share one warm Pipeline (and its TermFactory-independent
 * query cache).
 */

#include <string>

#include "src/driver/pipeline.h"
#include "src/smt/wire.h"

namespace keq::service {

/** Extracts the wire-travelling subset of @p options. */
smt::wire::JobOptionsFrame
encodeJobOptions(const driver::PipelineOptions &options);

/** Rebuilds PipelineOptions from a frame (non-carried knobs default). */
driver::PipelineOptions
decodeJobOptions(const smt::wire::JobOptionsFrame &frame);

/** Stable identity of a frame; the daemon's Pipeline-pool key. */
std::string jobOptionsKey(const smt::wire::JobOptionsFrame &frame);

/**
 * Deterministic identity of one validation job: a stable 64-bit hash
 * over (jobOptionsKey, function, moduleText). This is the wire v5
 * SubmitJob fingerprint — a client resubmitting a job to a failover
 * daemon after a mid-flight disconnect computes the identical value,
 * which is what makes resubmission idempotent (the daemon's completed
 * ledger dedups on it). Never 0: 0 is the wire sentinel for "no
 * fingerprint".
 */
uint64_t jobFingerprint(const std::string &moduleText,
                        const std::string &function,
                        const smt::wire::JobOptionsFrame &options);

} // namespace keq::service

#endif // KEQ_SERVICE_JOB_OPTIONS_H
