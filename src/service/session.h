#ifndef KEQ_SERVICE_SESSION_H
#define KEQ_SERVICE_SESSION_H

/**
 * @file
 * One connected client of the validation daemon.
 *
 * A Session owns the client's WireChannel and reader thread. Its
 * lifecycle:
 *
 *  1. handshake — the first frame must be a well-formed ClientHello
 *     with the service magic and a protocol version in the daemon's
 *     supported window (kMinServiceProtocolVersion..kProtocolVersion;
 *     v4 clients are still served, v5-only frame forms are simply
 *     never sent to them); anything else gets a typed HelloReject
 *     (carrying the supported version) and the connection is closed.
 *     Negotiation failures are *answers*, never undefined decode
 *     behavior.
 *  2. frame loop — SubmitJob frames first consult the server's
 *     completed-job ledger (a v5 fingerprint resubmitted after a
 *     client failover is answered immediately: no admission, no quota
 *     charge, no solve), then pass admission control (the per-client
 *     in-flight cap; over-cap jobs get a typed Busy reply, the daemon
 *     never queues unboundedly per client) and land in the server's
 *     fair queue; JobStatus is answered inline; Ping gets a Pong from
 *     the reader thread (the client's liveness probe must not queue
 *     behind solves); Shutdown asks the server to stop.
 *  3. teardown — on EOF/error the session drops its queued jobs
 *     (running ones finish; their verdicts are discarded here).
 *
 * Verdicts are sent by pool worker threads while the reader thread may
 * be replying to a status probe, so every send goes through one write
 * mutex — frames never interleave on the socket.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/service/socket.h"
#include "src/smt/wire.h"

namespace keq::service {

class Server;

class Session
{
  public:
    Session(Server &server, uint64_t clientId, WireChannel channel);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Spawns the reader thread. */
    void start();

    /** Joins the reader thread (idempotent). */
    void join();

    /** True once the reader thread has finished. */
    bool done() const { return done_.load(); }

    uint64_t clientId() const { return clientId_; }

    /** Negotiated wire version (valid after the handshake). */
    uint32_t protocolVersion() const { return protocolVersion_; }

    /**
     * Sends one finished job's verdict (worker threads). Decrements
     * the in-flight count even when the client is already gone.
     */
    bool sendVerdict(const smt::wire::JobVerdictFrame &frame);

    /** A queued job was dropped unexecuted (daemon stopping). */
    void noteJobDropped();

    /** Unblocks the reader immediately (server shutdown). */
    void shutdownChannel();

  private:
    void run();
    bool handshake();
    void handleSubmit(const std::string &body);
    void handleStatus();
    bool sendLocked(const std::string &frame);
    void sendBusy(uint64_t jobId);
    /** Token-bucket check (clientRatePerSec/clientBurst); reader-thread
     *  only, so the bucket needs no lock. */
    bool takeRateToken();

    Server &server_;
    uint64_t clientId_;
    uint32_t protocolVersion_ = smt::wire::kProtocolVersion;
    WireChannel channel_;
    std::mutex writeMutex_;
    std::thread thread_;
    std::atomic<unsigned> inFlight_{0};
    std::atomic<bool> done_{false};
    double rateTokens_ = 0.0;
    std::chrono::steady_clock::time_point rateRefillAt_{};
};

} // namespace keq::service

#endif // KEQ_SERVICE_SESSION_H
