#ifndef KEQ_SERVICE_CLIENT_H
#define KEQ_SERVICE_CLIENT_H

/**
 * @file
 * Thin client of the validation daemon (the keqc --daemon path).
 *
 * The client ships the module text plus one SubmitJob per function and
 * collects JobVerdict frames, windowed so several jobs are in flight
 * at once (the daemon's fair queue interleaves clients; the window
 * just hides the round-trip). Busy replies — the daemon's typed
 * admission backpressure — put the job back on the resubmit list; the
 * client drains a verdict first, so the protocol can never livelock.
 *
 * Degradation contract (mirrors the sandbox pattern): any connect or
 * mid-run transport failure is classified into a FailureKind and
 * reported via failure(); the caller (keqc) warns once and validates
 * the remaining functions locally. A daemon dying mid-job must never
 * hang the client — every receive carries a deadline.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/service/socket.h"
#include "src/smt/wire.h"
#include "src/support/failure.h"

namespace keq::service {

struct DaemonClientOptions
{
    std::string socketPath;
    std::string clientName = "keqc";
    unsigned connectTimeoutMs = 2000;
    unsigned handshakeTimeoutMs = 5000;
    /**
     * Ceiling on one verdict wait. Generous by design — it only has
     * to beat a *dead* daemon, not a slow solve (the daemon enforces
     * real solver budgets job-side).
     */
    unsigned verdictTimeoutMs = 600000;
    /** Max unacknowledged SubmitJobs (<= daemon's in-flight cap). */
    unsigned submitWindow = 8;
    /**
     * Busy backoff: after a Busy the client stops resubmitting until a
     * verdict shows progress; once *nothing* is in flight (the whole
     * window bounced), it sleeps a jittered interval before probing
     * again and doubles it (capped) on each further all-Busy round, so
     * a herd of keqc processes does not hammer a saturated daemon in
     * lockstep. Any verdict resets the backoff to the initial value.
     */
    unsigned busyBackoffInitialMs = 10;
    unsigned busyBackoffMaxMs = 2000;
    /**
     * Circuit breaker: after this many *consecutive* all-Busy rounds
     * (every submit bounced, nothing in flight, no verdict in between
     * — a draining, wedged, or quota-starving daemon), the client
     * stops retrying, reports a Timeout-classified transport failure,
     * and the caller degrades to local solving (keeping verdicts
     * already decided). 0 disables.
     */
    unsigned busyBreakerRounds = 10;
};

class DaemonClient
{
  public:
    explicit DaemonClient(DaemonClientOptions options);

    /**
     * Connects and negotiates (ClientHello/ServerHello). False with
     * @p error on an absent socket, a HelloReject (version skew; the
     * daemon's supported version lands in the message), or a
     * handshake timeout.
     */
    bool connect(std::string &error);

    bool connected() const { return channel_.valid(); }

    /**
     * Submits one job per entry of @p functions (names as in
     * llvmir::Function::name, e.g. "@max") and collects verdicts.
     * @p reports / @p decided are resized to functions.size();
     * decided[i] is true when reports[i] holds the daemon's verdict
     * (stats folded in, seconds = round-trip wall time).
     *
     * @return true when every function was decided. False on a
     * transport failure: decided verdicts are kept, failure() is set,
     * and the caller finishes the rest locally.
     */
    bool validateFunctions(const std::string &moduleText,
                           const std::vector<std::string> &functions,
                           const driver::PipelineOptions &options,
                           std::vector<driver::FunctionReport> &reports,
                           std::vector<bool> &decided,
                           std::string &error);

    /** Classification of the last transport failure (None if fine). */
    FailureKind failure() const { return failure_; }

    /** Busy replies absorbed (resubmitted) across validateFunctions. */
    uint64_t busyRetries() const { return busyRetries_; }

    /** True when the last failure was the Busy circuit breaker. */
    bool busyBreakerTripped() const { return breakerTripped_; }

    /** Sends a Shutdown frame (keqd --stop). */
    bool requestShutdown(std::string &error);

    /** Round-trips a JobStatus probe (keqd --status). */
    bool queryStatus(smt::wire::JobStatusFrame &out, std::string &error);

    const smt::wire::ServerHelloFrame &serverHello() const
    {
        return serverHello_;
    }

    void close() { channel_.close(); }

  private:
    FailureKind classify(support::IoStatus status) const;

    DaemonClientOptions options_;
    WireChannel channel_;
    smt::wire::ServerHelloFrame serverHello_;
    FailureKind failure_ = FailureKind::None;
    uint64_t busyRetries_ = 0;
    bool breakerTripped_ = false;
    uint64_t jitterState_ = 0; ///< cheap PRNG for backoff jitter
};

} // namespace keq::service

#endif // KEQ_SERVICE_CLIENT_H
