#ifndef KEQ_SERVICE_CLIENT_H
#define KEQ_SERVICE_CLIENT_H

/**
 * @file
 * Thin client of the validation daemon (the keqc --daemon path).
 *
 * The client ships the module text plus one SubmitJob per function and
 * collects JobVerdict frames, windowed so several jobs are in flight
 * at once (the daemon's fair queue interleaves clients; the window
 * just hides the round-trip). Busy replies — the daemon's typed
 * admission backpressure — put the job back on the resubmit list; the
 * client drains a verdict first, so the protocol can never livelock.
 *
 * Failover (wire v5): the client holds an ordered endpoint list
 * (keqc --daemon=unix:A,tcp:B:P,...). A mid-run transport failure —
 * send failure, EOF, socket error, or a heartbeat-detected silent TCP
 * peer — triggers the failover state machine: close, reconnect (cycling
 * endpoints with jittered capped backoff), rebuild the submit queue
 * from every still-undecided function, and resume. Each SubmitJob
 * carries a deterministic fingerprint, so a job the dead daemon already
 * completed is answered from its ledger on resubmit — idempotent, never
 * double-charged against quotas.
 *
 * Degradation contract (mirrors the sandbox pattern): when failover is
 * exhausted too, the failure is classified into a FailureKind and
 * reported via failure(); the caller (keqc) warns once and validates
 * the remaining functions locally, keeping every verdict already
 * decided. A daemon dying mid-job must never hang the client — every
 * receive carries a deadline, and on TCP an idle connection is
 * heartbeat-probed so a silent peer becomes a *typed* Timeout, not a
 * ten-minute stall.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/service/socket.h"
#include "src/smt/wire.h"
#include "src/support/failure.h"

namespace keq::service {

struct DaemonClientOptions
{
    /** Legacy single unix socket; used when endpoints is empty. */
    std::string socketPath;
    /**
     * Failover list, tried in order on connect; on a mid-run transport
     * failure the client cycles to the *next* endpoint first (the one
     * that just died is the last resort of each reconnect round).
     */
    std::vector<Endpoint> endpoints;
    std::string clientName = "keqc";
    unsigned connectTimeoutMs = 2000;
    unsigned handshakeTimeoutMs = 5000;
    /**
     * Ceiling on one verdict wait. Generous by design — it only has
     * to beat a *dead* daemon, not a slow solve (the daemon enforces
     * real solver budgets job-side).
     */
    unsigned verdictTimeoutMs = 600000;
    /** Max unacknowledged SubmitJobs (<= daemon's in-flight cap). */
    unsigned submitWindow = 8;
    /**
     * Busy backoff: after a Busy the client stops resubmitting until a
     * verdict shows progress; once *nothing* is in flight (the whole
     * window bounced), it sleeps a jittered interval before probing
     * again and doubles it (capped) on each further all-Busy round, so
     * a herd of keqc processes does not hammer a saturated daemon in
     * lockstep. Any verdict resets the backoff to the initial value.
     */
    unsigned busyBackoffInitialMs = 10;
    unsigned busyBackoffMaxMs = 2000;
    /**
     * Circuit breaker: after this many *consecutive* all-Busy rounds
     * (every submit bounced, nothing in flight, no verdict in between
     * — a draining, wedged, or quota-starving daemon), the client
     * stops retrying, reports a Timeout-classified transport failure,
     * and the caller degrades to local solving (keeping verdicts
     * already decided). 0 disables.
     */
    unsigned busyBreakerRounds = 10;
    /**
     * Connection heartbeat (wire v5 daemons only): after this much
     * receive silence the client sends a Ping; a peer that answers
     * nothing for heartbeatTimeoutMs more is declared dead — the
     * typed Timeout that makes a silent TCP peer (power loss, cable
     * pull: no FIN, no RST) indistinguishable from a killed daemon
     * instead of a verdictTimeoutMs stall. 0 disables probing.
     */
    unsigned heartbeatIntervalMs = 10000;
    unsigned heartbeatTimeoutMs = 30000;
    /**
     * Failover budget: passes over the endpoint list per reconnect
     * attempt, with a jittered doubling sleep between passes (same
     * splitmix64 jitter the Busy backoff uses, so a herd of failing-
     * over clients does not stampede the surviving daemon).
     */
    unsigned reconnectRounds = 3;
    unsigned reconnectBackoffInitialMs = 50;
    unsigned reconnectBackoffMaxMs = 2000;
};

class DaemonClient
{
  public:
    explicit DaemonClient(DaemonClientOptions options);

    /**
     * Connects and negotiates (ClientHello/ServerHello), trying each
     * configured endpoint in order until one answers. False with
     * @p error (every endpoint's failure, aggregated) when none does:
     * absent socket, HelloReject (version skew; the daemon's supported
     * version lands in the message), or a handshake timeout.
     */
    bool connect(std::string &error);

    bool connected() const { return channel_.valid(); }

    /**
     * Submits one job per entry of @p functions (names as in
     * llvmir::Function::name, e.g. "@max") and collects verdicts.
     * @p reports / @p decided are resized to functions.size();
     * decided[i] is true when reports[i] holds the daemon's verdict
     * (stats folded in, seconds = round-trip wall time).
     *
     * @return true when every function was decided. False on a
     * transport failure: decided verdicts are kept, failure() is set,
     * and the caller finishes the rest locally. Mid-run transport
     * deaths fail over across the endpoint list with idempotent
     * resubmission; failovers that decide no verdicts in between are
     * budgeted (one chance per endpoint), so a peer that accepts
     * connections but never answers degrades in bounded time instead
     * of cycling forever.
     */
    bool validateFunctions(const std::string &moduleText,
                           const std::vector<std::string> &functions,
                           const driver::PipelineOptions &options,
                           std::vector<driver::FunctionReport> &reports,
                           std::vector<bool> &decided,
                           std::string &error);

    /** Classification of the last transport failure (None if fine). */
    FailureKind failure() const { return failure_; }

    /** Busy replies absorbed (resubmitted) across validateFunctions. */
    uint64_t busyRetries() const { return busyRetries_; }

    /** True when the last failure was the Busy circuit breaker. */
    bool busyBreakerTripped() const { return breakerTripped_; }

    /** Successful mid-run failovers (reconnects that resumed work). */
    uint64_t failovers() const { return failovers_; }

    /** In-flight jobs resubmitted after a failover (each carries its
     *  fingerprint, so the daemon side dedups ones already done). */
    uint64_t resubmittedJobs() const { return resubmits_; }

    /** Endpoint of the live connection (valid while connected()). */
    const Endpoint &activeEndpoint() const
    {
        return endpoints_[activeIndex_];
    }

    /** Sends a Shutdown frame (keqd --stop). */
    bool requestShutdown(std::string &error);

    /** Round-trips a JobStatus probe (keqd --status). */
    bool queryStatus(smt::wire::JobStatusFrame &out, std::string &error);

    const smt::wire::ServerHelloFrame &serverHello() const
    {
        return serverHello_;
    }

    void close() { channel_.close(); }

  private:
    FailureKind classify(support::IoStatus status) const;
    /** One endpoint: socket connect + hello/ack negotiation. */
    bool connectTo(const Endpoint &endpoint, std::string &error);
    /** Failover reconnect: cycles endpoints with jittered backoff. */
    bool reconnect(std::string &error);
    /**
     * Receive with liveness supervision: polls readability in short
     * ticks (never tearing a partially-arrived frame), Pings an idle
     * v5 connection, and turns a silent peer into IoStatus::Timeout
     * after heartbeatTimeoutMs instead of stalling to the verdict
     * deadline. Pong frames are passed through to the caller.
     */
    support::IoStatus recvSupervised(std::string &payload,
                                     unsigned deadlineMs);

    DaemonClientOptions options_;
    std::vector<Endpoint> endpoints_; ///< normalized failover list
    size_t activeIndex_ = 0;
    WireChannel channel_;
    smt::wire::ServerHelloFrame serverHello_;
    FailureKind failure_ = FailureKind::None;
    uint64_t busyRetries_ = 0;
    uint64_t failovers_ = 0;
    uint64_t resubmits_ = 0;
    bool breakerTripped_ = false;
    uint64_t jitterState_ = 0; ///< cheap PRNG for backoff jitter
};

} // namespace keq::service

#endif // KEQ_SERVICE_CLIENT_H
