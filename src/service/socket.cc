#include "src/service/socket.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/smt/wire.h"

namespace keq::service {

using support::IoStatus;

namespace {

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Remaining budget for a deadline that started at @p start. */
int
remainingMs(int64_t start, unsigned deadline_ms)
{
    if (deadline_ms == 0)
        return -1; // poll: wait forever
    int64_t elapsed = nowMs() - start;
    int64_t left = static_cast<int64_t>(deadline_ms) - elapsed;
    return left <= 0 ? 0 : static_cast<int>(left);
}

bool
fillSockaddr(const std::string &path, sockaddr_un &addr,
             std::string &error)
{
    if (path.empty()) {
        error = "empty socket path";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        error = "socket path longer than sun_path (" + path + ")";
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

// --- WireChannel ---------------------------------------------------------

WireChannel::~WireChannel() { close(); }

WireChannel::WireChannel(WireChannel &&rhs) noexcept
    : fd_(rhs.fd_), bytesSent_(rhs.bytesSent_),
      bytesReceived_(rhs.bytesReceived_)
{
    rhs.fd_ = -1;
}

WireChannel &
WireChannel::operator=(WireChannel &&rhs) noexcept
{
    if (this != &rhs) {
        close();
        fd_ = rhs.fd_;
        bytesSent_ = rhs.bytesSent_;
        bytesReceived_ = rhs.bytesReceived_;
        rhs.fd_ = -1;
    }
    return *this;
}

void
WireChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
WireChannel::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

bool
WireChannel::sendFrame(const std::string &frame)
{
    if (fd_ < 0)
        return false;
    size_t off = 0;
    while (off < frame.size()) {
        ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    bytesSent_ += frame.size();
    return true;
}

IoStatus
WireChannel::readExact(std::string &out, size_t bytes,
                       unsigned deadline_ms)
{
    int64_t start = nowMs();
    size_t got = 0;
    while (got < bytes) {
        pollfd pfd{fd_, POLLIN, 0};
        int wait = remainingMs(start, deadline_ms);
        if (deadline_ms != 0 && wait == 0)
            return IoStatus::Timeout;
        int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (ready == 0)
            return IoStatus::Timeout;
        char buf[4096];
        size_t want = std::min(bytes - got, sizeof buf);
        ssize_t n = ::recv(fd_, buf, want, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (n == 0)
            return IoStatus::Eof;
        out.append(buf, static_cast<size_t>(n));
        got += static_cast<size_t>(n);
    }
    return IoStatus::Ok;
}

IoStatus
WireChannel::recvFrame(std::string &payload, unsigned deadline_ms)
{
    if (fd_ < 0)
        return IoStatus::Error;
    std::string header;
    IoStatus status = readExact(header, 4, deadline_ms);
    if (status != IoStatus::Ok)
        return status;
    uint32_t length = 0;
    for (int i = 3; i >= 0; --i)
        length = (length << 8) | static_cast<uint8_t>(header[i]);
    if (length == 0 || length > smt::wire::kMaxFramePayload)
        return IoStatus::Error;
    payload.clear();
    payload.reserve(length);
    status = readExact(payload, length, deadline_ms);
    if (status == IoStatus::Ok)
        bytesReceived_ += 4 + static_cast<uint64_t>(length);
    return status;
}

// --- UnixListener --------------------------------------------------------

UnixListener::~UnixListener() { close(); }

bool
UnixListener::listenOn(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    if (!fillSockaddr(path, addr, error))
        return false;

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (errno == EADDRINUSE) {
            // A previous daemon may have crashed without unlinking. If
            // nothing answers on the socket, it is stale: remove and
            // retry once. A *live* daemon accepts the probe and we
            // refuse to steal its address.
            int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
            bool alive =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0;
            if (probe >= 0)
                ::close(probe);
            if (alive) {
                error = "address in use: a daemon is already "
                        "listening on " +
                        path;
                ::close(fd);
                return false;
            }
            ::unlink(path.c_str());
            if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr) != 0) {
                error = std::string("bind: ") + std::strerror(errno);
                ::close(fd);
                return false;
            }
        } else {
            error = std::string("bind: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
    }
    if (::listen(fd, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        ::unlink(path.c_str());
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

int
UnixListener::acceptClient(unsigned timeout_ms)
{
    if (fd_ < 0)
        return -1;
    pollfd pfd{fd_, POLLIN, 0};
    int ready =
        ::poll(&pfd, 1, timeout_ms == 0 ? -1 : static_cast<int>(timeout_ms));
    if (ready <= 0)
        return -1;
    int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    return client;
}

void
UnixListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (!path_.empty())
            ::unlink(path_.c_str());
        path_.clear();
    }
}

// --- connectUnix ---------------------------------------------------------

bool
connectUnix(const std::string &path, unsigned timeout_ms, int &fd,
            std::string &error)
{
    sockaddr_un addr{};
    if (!fillSockaddr(path, addr, error))
        return false;
    int sock = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (sock < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // AF_UNIX connects complete or fail immediately (the backlog is the
    // only wait), so a plain blocking connect with a retry loop on
    // EAGAIN is enough; timeout_ms bounds the backlog wait.
    int64_t start = nowMs();
    for (;;) {
        if (::connect(sock, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0) {
            fd = sock;
            return true;
        }
        if (errno != EAGAIN && errno != EINTR &&
            errno != ECONNREFUSED) {
            break;
        }
        if (errno == ECONNREFUSED || errno == EAGAIN) {
            // Full backlog (or the daemon is mid-start). Retry within
            // the budget.
            if (timeout_ms == 0 ||
                nowMs() - start >= static_cast<int64_t>(timeout_ms))
                break;
            struct timespec ts{0, 10 * 1000 * 1000}; // 10 ms
            ::nanosleep(&ts, nullptr);
        }
    }
    error = std::string("connect ") + path + ": " + std::strerror(errno);
    ::close(sock);
    return false;
}

} // namespace keq::service
