#include "src/service/socket.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/smt/wire.h"

namespace keq::service {

using support::IoStatus;

namespace {

int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Remaining budget for a deadline that started at @p start. */
int
remainingMs(int64_t start, unsigned deadline_ms)
{
    if (deadline_ms == 0)
        return -1; // poll: wait forever
    int64_t elapsed = nowMs() - start;
    int64_t left = static_cast<int64_t>(deadline_ms) - elapsed;
    return left <= 0 ? 0 : static_cast<int>(left);
}

bool
fillSockaddr(const std::string &path, sockaddr_un &addr,
             std::string &error)
{
    if (path.empty()) {
        error = "empty socket path";
        return false;
    }
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        error = "socket path longer than sun_path (" + path + ")";
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

/** Latency beats throughput for small request/verdict frames. */
void
tuneTcpFd(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/** Shared poll+accept4 loop for both listeners. */
int
acceptOn(int listenFd, unsigned timeout_ms)
{
    if (listenFd < 0)
        return -1;
    pollfd pfd{listenFd, POLLIN, 0};
    int ready = ::poll(&pfd, 1,
                       timeout_ms == 0 ? -1
                                       : static_cast<int>(timeout_ms));
    if (ready <= 0)
        return -1;
    return ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
}

} // namespace

// --- WireChannel ---------------------------------------------------------

WireChannel::~WireChannel() { close(); }

WireChannel::WireChannel(WireChannel &&rhs) noexcept
    : fd_(rhs.fd_), bytesSent_(rhs.bytesSent_),
      bytesReceived_(rhs.bytesReceived_)
{
    rhs.fd_ = -1;
}

WireChannel &
WireChannel::operator=(WireChannel &&rhs) noexcept
{
    if (this != &rhs) {
        close();
        fd_ = rhs.fd_;
        bytesSent_ = rhs.bytesSent_;
        bytesReceived_ = rhs.bytesReceived_;
        rhs.fd_ = -1;
    }
    return *this;
}

void
WireChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
WireChannel::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

bool
WireChannel::sendFrame(const std::string &frame)
{
    if (fd_ < 0)
        return false;
    // Short writes resume from the offset; EINTR retries. A TCP socket
    // under pressure routinely accepts only part of a frame per send.
    size_t off = 0;
    while (off < frame.size()) {
        ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    bytesSent_ += frame.size();
    return true;
}

IoStatus
WireChannel::readExact(std::string &out, size_t bytes,
                       unsigned deadline_ms)
{
    int64_t start = nowMs();
    size_t got = 0;
    while (got < bytes) {
        pollfd pfd{fd_, POLLIN, 0};
        int wait = remainingMs(start, deadline_ms);
        if (deadline_ms != 0 && wait == 0)
            return IoStatus::Timeout;
        int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (ready == 0)
            return IoStatus::Timeout;
        char buf[4096];
        size_t want = std::min(bytes - got, sizeof buf);
        ssize_t n = ::recv(fd_, buf, want, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (n == 0)
            return IoStatus::Eof;
        out.append(buf, static_cast<size_t>(n));
        got += static_cast<size_t>(n);
    }
    return IoStatus::Ok;
}

IoStatus
WireChannel::recvFrame(std::string &payload, unsigned deadline_ms)
{
    if (fd_ < 0)
        return IoStatus::Error;
    std::string header;
    IoStatus status = readExact(header, 4, deadline_ms);
    if (status != IoStatus::Ok)
        return status;
    uint32_t length = 0;
    for (int i = 3; i >= 0; --i)
        length = (length << 8) | static_cast<uint8_t>(header[i]);
    if (length == 0 || length > smt::wire::kMaxFramePayload)
        return IoStatus::Error;
    payload.clear();
    payload.reserve(length);
    status = readExact(payload, length, deadline_ms);
    if (status == IoStatus::Ok)
        bytesReceived_ += 4 + static_cast<uint64_t>(length);
    return status;
}

IoStatus
WireChannel::waitReadable(unsigned timeout_ms)
{
    if (fd_ < 0)
        return IoStatus::Error;
    int64_t start = nowMs();
    for (;;) {
        pollfd pfd{fd_, POLLIN, 0};
        int wait = remainingMs(start, timeout_ms);
        if (timeout_ms != 0 && wait == 0)
            return IoStatus::Timeout;
        int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (ready == 0)
            return IoStatus::Timeout;
        return IoStatus::Ok; // readable (possibly EOF; recv decides)
    }
}

// --- UnixListener --------------------------------------------------------

UnixListener::~UnixListener() { close(); }

bool
UnixListener::listenOn(const std::string &path, std::string &error)
{
    return listenOn(unixEndpoint(path), error);
}

bool
UnixListener::listenOn(const Endpoint &endpoint, std::string &error)
{
    if (endpoint.kind != TransportKind::Unix) {
        error = "UnixListener given a non-unix endpoint";
        return false;
    }
    const std::string &path = endpoint.path;
    sockaddr_un addr{};
    if (!fillSockaddr(path, addr, error))
        return false;

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (errno == EADDRINUSE) {
            // A previous daemon may have crashed without unlinking. If
            // nothing answers on the socket, it is stale: remove and
            // retry once. A *live* daemon accepts the probe and we
            // refuse to steal its address.
            int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
            bool alive =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                          sizeof addr) == 0;
            if (probe >= 0)
                ::close(probe);
            if (alive) {
                error = "address in use: a daemon is already "
                        "listening on " +
                        path;
                ::close(fd);
                return false;
            }
            ::unlink(path.c_str());
            if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr) != 0) {
                error = std::string("bind: ") + std::strerror(errno);
                ::close(fd);
                return false;
            }
        } else {
            error = std::string("bind: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
    }
    if (::listen(fd, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        ::unlink(path.c_str());
        return false;
    }
    fd_ = fd;
    endpoint_ = endpoint;
    return true;
}

int
UnixListener::acceptClient(unsigned timeout_ms)
{
    return acceptOn(fd_, timeout_ms);
}

void
UnixListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        if (!endpoint_.path.empty())
            ::unlink(endpoint_.path.c_str());
        endpoint_ = Endpoint{};
    }
}

// --- TcpListener ---------------------------------------------------------

TcpListener::~TcpListener() { close(); }

bool
TcpListener::listenOn(const Endpoint &endpoint, std::string &error)
{
    if (endpoint.kind != TransportKind::Tcp) {
        error = "TcpListener given a non-tcp endpoint";
        return false;
    }
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
    addrinfo *results = nullptr;
    std::string service = std::to_string(endpoint.port);
    int rc = ::getaddrinfo(endpoint.host.c_str(), service.c_str(),
                           &hints, &results);
    if (rc != 0) {
        error = "resolve " + endpointToString(endpoint) + ": " +
                ::gai_strerror(rc);
        return false;
    }
    std::string lastError = "no addresses";
    for (addrinfo *ai = results; ai != nullptr; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family,
                          ai->ai_socktype | SOCK_CLOEXEC,
                          ai->ai_protocol);
        if (fd < 0) {
            lastError = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 64) != 0) {
            lastError = std::string(errno == EADDRINUSE
                                        ? "address in use: "
                                        : "bind/listen: ") +
                        std::strerror(errno);
            ::close(fd);
            continue;
        }
        fd_ = fd;
        endpoint_ = endpoint;
        // Report the kernel-assigned port for an ephemeral (:0) bind.
        sockaddr_storage bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0) {
            if (bound.ss_family == AF_INET)
                endpoint_.port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&bound)->sin_port);
            else if (bound.ss_family == AF_INET6)
                endpoint_.port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&bound)
                        ->sin6_port);
        }
        ::freeaddrinfo(results);
        return true;
    }
    ::freeaddrinfo(results);
    error = "listen " + endpointToString(endpoint) + ": " + lastError;
    return false;
}

int
TcpListener::acceptClient(unsigned timeout_ms)
{
    int client = acceptOn(fd_, timeout_ms);
    if (client >= 0)
        tuneTcpFd(client);
    return client;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        endpoint_ = Endpoint{};
    }
}

std::unique_ptr<Listener>
makeListener(const Endpoint &endpoint)
{
    if (endpoint.kind == TransportKind::Tcp)
        return std::make_unique<TcpListener>();
    return std::make_unique<UnixListener>();
}

// --- connectEndpoint -----------------------------------------------------

namespace {

bool
connectUnixImpl(const std::string &path, unsigned timeout_ms, int &fd,
                std::string &error)
{
    sockaddr_un addr{};
    if (!fillSockaddr(path, addr, error))
        return false;
    int sock = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (sock < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // AF_UNIX connects complete or fail immediately (the backlog is the
    // only wait), so a plain blocking connect with a retry loop on
    // EAGAIN is enough; timeout_ms bounds the backlog wait.
    int64_t start = nowMs();
    for (;;) {
        if (::connect(sock, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0) {
            fd = sock;
            return true;
        }
        if (errno != EAGAIN && errno != EINTR &&
            errno != ECONNREFUSED) {
            break;
        }
        if (errno == ECONNREFUSED || errno == EAGAIN) {
            // Full backlog (or the daemon is mid-start). Retry within
            // the budget.
            if (timeout_ms == 0 ||
                nowMs() - start >= static_cast<int64_t>(timeout_ms))
                break;
            struct timespec ts{0, 10 * 1000 * 1000}; // 10 ms
            ::nanosleep(&ts, nullptr);
        }
    }
    error = std::string("connect ") + path + ": " + std::strerror(errno);
    ::close(sock);
    return false;
}

/**
 * One non-blocking TCP connect attempt with a poll deadline. Returns
 * the connected blocking fd, or -1 with errno describing the failure.
 */
int
connectTcpOnce(const addrinfo *ai, int deadlineLeftMs)
{
    int sock = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                        ai->ai_protocol);
    if (sock < 0)
        return -1;
    int flags = ::fcntl(sock, F_GETFL, 0);
    ::fcntl(sock, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(sock, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
        int saved = errno;
        ::close(sock);
        errno = saved;
        return -1;
    }
    if (rc != 0) {
        pollfd pfd{sock, POLLOUT, 0};
        int64_t start = nowMs();
        for (;;) {
            int wait = deadlineLeftMs < 0
                           ? -1
                           : std::max<int>(
                                 0, deadlineLeftMs -
                                        static_cast<int>(nowMs() -
                                                         start));
            int ready = ::poll(&pfd, 1, wait);
            if (ready < 0 && errno == EINTR)
                continue;
            if (ready <= 0) {
                ::close(sock);
                errno = ETIMEDOUT;
                return -1;
            }
            break;
        }
        int soError = 0;
        socklen_t len = sizeof soError;
        if (::getsockopt(sock, SOL_SOCKET, SO_ERROR, &soError,
                         &len) != 0 ||
            soError != 0) {
            ::close(sock);
            errno = soError != 0 ? soError : ECONNREFUSED;
            return -1;
        }
    }
    ::fcntl(sock, F_SETFL, flags);
    tuneTcpFd(sock);
    return sock;
}

bool
connectTcp(const Endpoint &endpoint, unsigned timeout_ms, int &fd,
           std::string &error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV;
    addrinfo *results = nullptr;
    std::string service = std::to_string(endpoint.port);
    int rc = ::getaddrinfo(endpoint.host.c_str(), service.c_str(),
                           &hints, &results);
    if (rc != 0) {
        error = "resolve " + endpointToString(endpoint) + ": " +
                ::gai_strerror(rc);
        return false;
    }
    int64_t start = nowMs();
    int lastErrno = ECONNREFUSED;
    // A refused connect (daemon mid-start, backlog full) retries within
    // the budget, mirroring the unix transport's behavior so warm-up
    // races resolve identically on both.
    for (;;) {
        for (addrinfo *ai = results; ai != nullptr; ai = ai->ai_next) {
            int left = remainingMs(start, timeout_ms);
            if (timeout_ms != 0 && left == 0)
                break;
            int sock = connectTcpOnce(ai, left);
            if (sock >= 0) {
                ::freeaddrinfo(results);
                fd = sock;
                return true;
            }
            lastErrno = errno;
        }
        if (lastErrno != ECONNREFUSED || timeout_ms == 0 ||
            nowMs() - start >= static_cast<int64_t>(timeout_ms))
            break;
        struct timespec ts{0, 10 * 1000 * 1000}; // 10 ms
        ::nanosleep(&ts, nullptr);
    }
    ::freeaddrinfo(results);
    error = "connect " + endpointToString(endpoint) + ": " +
            std::strerror(lastErrno);
    return false;
}

} // namespace

bool
connectEndpoint(const Endpoint &endpoint, unsigned timeout_ms, int &fd,
                std::string &error)
{
    if (endpoint.kind == TransportKind::Tcp)
        return connectTcp(endpoint, timeout_ms, fd, error);
    return connectUnixImpl(endpoint.path, timeout_ms, fd, error);
}

bool
connectUnix(const std::string &path, unsigned timeout_ms, int &fd,
            std::string &error)
{
    return connectUnixImpl(path, timeout_ms, fd, error);
}

} // namespace keq::service
