#ifndef KEQ_CORE_TRANSITION_SYSTEM_H
#define KEQ_CORE_TRANSITION_SYSTEM_H

/**
 * @file
 * Explicit (finite, concrete) cut transition systems.
 *
 * Direct implementation of Section 7 of the paper: a transition system
 * T = (S, xi, ->) plus a distinguished cut set C, forming the cut
 * transition system (S, xi, ->, C) of Definition 7.1. This concrete
 * representation backs the verbatim Algorithm 1 (src/core/algorithm1.h),
 * the reference fixpoint procedure used in property tests, and the toy
 * language examples. The production checker (src/keq) runs the *symbolic*
 * variant over language semantics instead.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace keq::core {

/** Dense state identifier within one ExplicitTransitionSystem. */
using StateId = uint32_t;

/**
 * A finite transition system with a designated initial state and cut set.
 *
 * States carry a free-form label used by acceptability relations in tests
 * and examples (e.g. the observable portion of the state).
 */
class ExplicitTransitionSystem
{
  public:
    /** Adds a state; returns its id. */
    StateId addState(std::string label = "", bool is_cut = false);

    /** Adds a transition @p from -> @p to. Parallel edges are deduped. */
    void addTransition(StateId from, StateId to);

    void setInitial(StateId state);
    void setCut(StateId state, bool is_cut);

    size_t numStates() const { return successors_.size(); }
    size_t numTransitions() const;
    StateId initial() const { return initial_; }
    bool isCut(StateId state) const { return cut_[state]; }
    const std::string &label(StateId state) const { return labels_[state]; }
    const std::vector<StateId> &
    successors(StateId state) const
    {
        return successors_[state];
    }

    /** All states currently in the cut set. */
    std::vector<StateId> cutStates() const;

    /** Result of checking Definition 7.1 on this system. */
    struct CutValidation
    {
        bool valid = true;
        std::string reason;
    };

    /**
     * Checks that the cut set is a cut for the system (Definition 7.1):
     * the initial state is a cut state and, from every cut state, every
     * complete trace revisits the cut (no terminal non-cut states, no
     * cycles through non-cut states only).
     *
     * Convention: a cut state with no successors is final and satisfies
     * the condition vacuously, matching Algorithm 1 where next_i of a
     * final state is empty and check() succeeds trivially.
     */
    CutValidation validateCut() const;

  private:
    std::vector<std::vector<StateId>> successors_;
    std::vector<std::string> labels_;
    std::vector<bool> cut_;
    StateId initial_ = 0;
};

/** Outcome of computing cut-successors (Definition 7.3 / Algorithm 1). */
struct CutSuccessorResult
{
    /** The set { n' | n ~> n' }, deduplicated, in discovery order. */
    std::vector<StateId> successors;
    /**
     * True when the walk found a terminal non-cut state or a cycle of
     * non-cut states, i.e. the cut property is violated below @p state.
     * (The paper's Algorithm 1 would diverge here; we detect and report.)
     */
    bool cutViolation = false;
};

/**
 * Computes the cut-successors of @p state: the cut states reachable via a
 * nonempty path whose intermediate states are all non-cut. This is the
 * worklist loop of Algorithm 1, function next_i (lines 15-25).
 */
CutSuccessorResult cutSuccessors(const ExplicitTransitionSystem &ts,
                                 StateId state);

} // namespace keq::core

#endif // KEQ_CORE_TRANSITION_SYSTEM_H
