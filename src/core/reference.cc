#include "src/core/reference.h"

#include <map>
#include <set>

#include "src/support/diagnostics.h"

namespace keq::core {

bool
labelEquality(const ExplicitTransitionSystem &t1, StateId s1,
              const ExplicitTransitionSystem &t2, StateId s2)
{
    return t1.label(s1) == t2.label(s2);
}

PairRelation
largestCutBisimulation(const ExplicitTransitionSystem &t1,
                       const ExplicitTransitionSystem &t2,
                       const Acceptability &acceptable, CheckMode mode)
{
    std::vector<StateId> cuts1 = t1.cutStates();
    std::vector<StateId> cuts2 = t2.cutStates();

    // Precompute cut-successor sets once per cut state.
    std::map<StateId, std::vector<StateId>> succ1, succ2;
    for (StateId c : cuts1) {
        CutSuccessorResult r = cutSuccessors(t1, c);
        KEQ_ASSERT(!r.cutViolation, "largestCutBisimulation: invalid cut");
        succ1[c] = r.successors;
    }
    for (StateId c : cuts2) {
        CutSuccessorResult r = cutSuccessors(t2, c);
        KEQ_ASSERT(!r.cutViolation, "largestCutBisimulation: invalid cut");
        succ2[c] = r.successors;
    }

    // Greatest fixpoint: start from all acceptable pairs, repeatedly drop
    // pairs whose successor obligations fail against the current relation.
    std::set<std::pair<StateId, StateId>> current;
    for (StateId c1 : cuts1) {
        for (StateId c2 : cuts2) {
            if (acceptable(t1, c1, t2, c2))
                current.insert({c1, c2});
        }
    }

    auto related = [&current](StateId a, StateId b) {
        return current.count({a, b}) != 0;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = current.begin(); it != current.end();) {
            auto [c1, c2] = *it;
            bool ok = true;
            for (StateId n1 : succ1[c1]) {
                bool matched = false;
                for (StateId n2 : succ2[c2]) {
                    if (related(n1, n2)) {
                        matched = true;
                        break;
                    }
                }
                if (!matched) {
                    ok = false;
                    break;
                }
            }
            if (ok && mode == CheckMode::Bisimulation) {
                for (StateId n2 : succ2[c2]) {
                    bool matched = false;
                    for (StateId n1 : succ1[c1]) {
                        if (related(n1, n2)) {
                            matched = true;
                            break;
                        }
                    }
                    if (!matched) {
                        ok = false;
                        break;
                    }
                }
            }
            if (!ok) {
                it = current.erase(it);
                changed = true;
            } else {
                ++it;
            }
        }
    }

    PairRelation relation;
    for (const auto &[c1, c2] : current)
        relation.add(c1, c2);
    return relation;
}

bool
cutBisimilar(const ExplicitTransitionSystem &t1,
             const ExplicitTransitionSystem &t2,
             const Acceptability &acceptable, CheckMode mode)
{
    PairRelation largest =
        largestCutBisimulation(t1, t2, acceptable, mode);
    return largest.contains(t1.initial(), t2.initial());
}

} // namespace keq::core
