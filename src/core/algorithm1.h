#ifndef KEQ_CORE_ALGORITHM1_H
#define KEQ_CORE_ALGORITHM1_H

/**
 * @file
 * The paper's Algorithm 1 (concrete variant), verbatim.
 *
 * Given two cut transition systems and a candidate relation P between
 * their cut states, checks whether P is a cut-bisimulation (or a
 * cut-simulation in refinement mode). Theorem 8.1: if the check succeeds
 * and (xi1, xi2) is in P with P contained in the acceptability relation,
 * the two systems are cut-bisimilar w.r.t. that relation.
 */

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/core/transition_system.h"

namespace keq::core {

/** Whether to check a bisimulation (equivalence) or simulation (refinement). */
enum class CheckMode : uint8_t {
    Bisimulation, ///< Both projections must be covered (line 11 as given).
    Simulation,   ///< Only N1 must be covered (the footnote variant).
};

/** A finite relation between states of two transition systems. */
class PairRelation
{
  public:
    void
    add(StateId s1, StateId s2)
    {
        if (set_.insert(key(s1, s2)).second)
            pairs_.emplace_back(s1, s2);
    }

    bool
    contains(StateId s1, StateId s2) const
    {
        return set_.count(key(s1, s2)) != 0;
    }

    const std::vector<std::pair<StateId, StateId>> &
    pairs() const
    {
        return pairs_;
    }

    size_t size() const { return pairs_.size(); }
    bool empty() const { return pairs_.empty(); }

  private:
    static uint64_t
    key(StateId s1, StateId s2)
    {
        return (static_cast<uint64_t>(s1) << 32) | s2;
    }

    std::vector<std::pair<StateId, StateId>> pairs_;
    std::unordered_set<uint64_t> set_;
};

/** Diagnostic payload when a pair fails the check. */
struct CheckFailure
{
    StateId p1; ///< The pair whose successors could not be matched.
    StateId p2;
    /** Cut-successors of p1 left "red" (unmatched) after marking. */
    std::vector<StateId> unmatched1;
    /** Cut-successors of p2 left "red"; empty in Simulation mode. */
    std::vector<StateId> unmatched2;
    /** True when next_i detected a cut-property violation. */
    bool cutViolation = false;
};

/** Result of Algorithm 1. */
struct CheckOutcome
{
    bool holds = false;
    std::optional<CheckFailure> failure;
};

/**
 * Algorithm 1, function main: checks that @p relation is a
 * cut-bisimulation (or cut-simulation) between @p t1 and @p t2.
 *
 * All pairs in the relation must relate cut states; this is asserted.
 * Returns the first failing pair with its unmatched successors, which the
 * TV system surfaces as the counterexample location.
 */
CheckOutcome checkCutBisimulation(const ExplicitTransitionSystem &t1,
                                  const ExplicitTransitionSystem &t2,
                                  const PairRelation &relation,
                                  CheckMode mode = CheckMode::Bisimulation);

} // namespace keq::core

#endif // KEQ_CORE_ALGORITHM1_H
