#ifndef KEQ_CORE_REFERENCE_H
#define KEQ_CORE_REFERENCE_H

/**
 * @file
 * Reference decision procedures for cut-bisimilarity on finite systems.
 *
 * These compute the *largest* cut-(bi)simulation contained in a given
 * acceptability relation by greatest-fixpoint iteration (Definition 7.8:
 * the union of all cut-bisimulations within A is itself one, so the
 * greatest fixpoint is well defined). They exist to property-test
 * Algorithm 1 — any relation Algorithm 1 accepts must be contained in the
 * largest one, and the systems are cut-bisimilar w.r.t. A iff the largest
 * relation contains the initial pair.
 */

#include <functional>

#include "src/core/algorithm1.h"
#include "src/core/transition_system.h"

namespace keq::core {

/** Acceptability predicate over concrete state pairs (Definition 7.8). */
using Acceptability = std::function<bool(const ExplicitTransitionSystem &,
                                         StateId,
                                         const ExplicitTransitionSystem &,
                                         StateId)>;

/** Acceptability requiring equal state labels. */
bool labelEquality(const ExplicitTransitionSystem &t1, StateId s1,
                   const ExplicitTransitionSystem &t2, StateId s2);

/**
 * Computes the largest cut-bisimulation (or cut-simulation) between the
 * cut states of @p t1 and @p t2 contained in @p acceptable.
 *
 * Precondition: both systems' cut sets validate (Definition 7.1).
 */
PairRelation largestCutBisimulation(const ExplicitTransitionSystem &t1,
                                    const ExplicitTransitionSystem &t2,
                                    const Acceptability &acceptable,
                                    CheckMode mode = CheckMode::Bisimulation);

/**
 * Decides T1 ~_A T2 (or T1 <=_A T2 in Simulation mode): true iff the
 * largest relation contains (xi1, xi2).
 */
bool cutBisimilar(const ExplicitTransitionSystem &t1,
                  const ExplicitTransitionSystem &t2,
                  const Acceptability &acceptable,
                  CheckMode mode = CheckMode::Bisimulation);

} // namespace keq::core

#endif // KEQ_CORE_REFERENCE_H
