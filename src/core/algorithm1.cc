#include "src/core/algorithm1.h"

#include "src/support/diagnostics.h"

namespace keq::core {

namespace {

/**
 * Algorithm 1, function check(p1, p2): computes cut-successor sets N1 and
 * N2, marks pairs found in P black, and succeeds when every required
 * successor ended up black.
 */
bool
checkPair(const ExplicitTransitionSystem &t1,
          const ExplicitTransitionSystem &t2, const PairRelation &relation,
          CheckMode mode, StateId p1, StateId p2, CheckFailure &failure)
{
    CutSuccessorResult n1 = cutSuccessors(t1, p1); // line 7
    CutSuccessorResult n2 = cutSuccessors(t2, p2);
    if (n1.cutViolation || n2.cutViolation) {
        failure = {p1, p2, {}, {}, true};
        return false;
    }

    std::vector<bool> black1(n1.successors.size(), false); // line 22: red
    std::vector<bool> black2(n2.successors.size(), false);

    // Lines 8-10: mark related successor pairs black.
    for (size_t i = 0; i < n1.successors.size(); ++i) {
        for (size_t j = 0; j < n2.successors.size(); ++j) {
            if (relation.contains(n1.successors[i], n2.successors[j])) {
                black1[i] = true;
                black2[j] = true;
            }
        }
    }

    // Line 11: all of N1 (and N2 in bisimulation mode) must be black.
    CheckFailure candidate{p1, p2, {}, {}, false};
    for (size_t i = 0; i < n1.successors.size(); ++i) {
        if (!black1[i])
            candidate.unmatched1.push_back(n1.successors[i]);
    }
    if (mode == CheckMode::Bisimulation) {
        for (size_t j = 0; j < n2.successors.size(); ++j) {
            if (!black2[j])
                candidate.unmatched2.push_back(n2.successors[j]);
        }
    }
    if (candidate.unmatched1.empty() && candidate.unmatched2.empty())
        return true; // line 12
    failure = candidate;
    return false; // line 13
}

} // namespace

CheckOutcome
checkCutBisimulation(const ExplicitTransitionSystem &t1,
                     const ExplicitTransitionSystem &t2,
                     const PairRelation &relation, CheckMode mode)
{
    // Lines 2-4: every pair of the candidate relation must check out.
    for (const auto &[p1, p2] : relation.pairs()) {
        KEQ_ASSERT(t1.isCut(p1) && t2.isCut(p2),
                   "relation relates non-cut states");
        CheckFailure failure{};
        if (!checkPair(t1, t2, relation, mode, p1, p2, failure))
            return {false, failure};
    }
    return {true, std::nullopt}; // line 5
}

} // namespace keq::core
