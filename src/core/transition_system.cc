#include "src/core/transition_system.h"

#include <algorithm>
#include <deque>

#include "src/support/diagnostics.h"

namespace keq::core {

StateId
ExplicitTransitionSystem::addState(std::string label, bool is_cut)
{
    StateId id = static_cast<StateId>(successors_.size());
    successors_.emplace_back();
    labels_.push_back(std::move(label));
    cut_.push_back(is_cut);
    return id;
}

void
ExplicitTransitionSystem::addTransition(StateId from, StateId to)
{
    KEQ_ASSERT(from < numStates() && to < numStates(),
               "addTransition: state out of range");
    std::vector<StateId> &succs = successors_[from];
    if (std::find(succs.begin(), succs.end(), to) == succs.end())
        succs.push_back(to);
}

void
ExplicitTransitionSystem::setInitial(StateId state)
{
    KEQ_ASSERT(state < numStates(), "setInitial: state out of range");
    initial_ = state;
}

void
ExplicitTransitionSystem::setCut(StateId state, bool is_cut)
{
    KEQ_ASSERT(state < numStates(), "setCut: state out of range");
    cut_[state] = is_cut;
}

size_t
ExplicitTransitionSystem::numTransitions() const
{
    size_t count = 0;
    for (const auto &succs : successors_)
        count += succs.size();
    return count;
}

std::vector<StateId>
ExplicitTransitionSystem::cutStates() const
{
    std::vector<StateId> states;
    for (StateId s = 0; s < numStates(); ++s) {
        if (cut_[s])
            states.push_back(s);
    }
    return states;
}

ExplicitTransitionSystem::CutValidation
ExplicitTransitionSystem::validateCut() const
{
    if (numStates() == 0)
        return {false, "empty transition system"};
    if (!cut_[initial_])
        return {false, "initial state is not a cut state"};
    for (StateId s = 0; s < numStates(); ++s) {
        if (!cut_[s])
            continue;
        CutSuccessorResult result = cutSuccessors(*this, s);
        if (result.cutViolation) {
            return {false, "cut property violated below cut state " +
                               std::to_string(s)};
        }
    }
    return {true, ""};
}

CutSuccessorResult
cutSuccessors(const ExplicitTransitionSystem &ts, StateId state)
{
    // Algorithm 1, next_i: worklist of states reached via non-cut states.
    // We additionally track visited states so the walk terminates even if
    // the cut property is violated (the paper's algorithm would diverge on
    // a non-cut cycle); violations are detected and reported afterwards.
    CutSuccessorResult result;
    std::vector<bool> enqueued(ts.numStates(), false);
    std::vector<bool> emitted(ts.numStates(), false);
    std::deque<StateId> worklist{state};
    std::vector<StateId> visited_non_cut;

    while (!worklist.empty()) {
        StateId n = worklist.front();
        worklist.pop_front();
        const std::vector<StateId> &succs = ts.successors(n);
        if (succs.empty() && !ts.isCut(n)) {
            // A complete trace terminates outside the cut: Definition
            // 2.1(b) is violated.
            result.cutViolation = true;
        }
        for (StateId next : succs) {
            if (ts.isCut(next)) {
                if (!emitted[next]) {
                    emitted[next] = true;
                    result.successors.push_back(next);
                }
            } else if (!enqueued[next]) {
                enqueued[next] = true;
                visited_non_cut.push_back(next);
                worklist.push_back(next);
            }
        }
    }

    // An infinite execution avoiding the cut exists iff the subgraph
    // induced by the reachable non-cut states has a cycle. Detect with an
    // iterative DFS using three colors (0 = white, 1 = on stack, 2 = done).
    std::vector<uint8_t> color(ts.numStates(), 0);
    for (StateId root : visited_non_cut) {
        if (color[root] != 0)
            continue;
        std::vector<std::pair<StateId, size_t>> stack{{root, 0}};
        color[root] = 1;
        while (!stack.empty()) {
            auto [node, index] = stack.back();
            const std::vector<StateId> &succs = ts.successors(node);
            if (index >= succs.size()) {
                color[node] = 2;
                stack.pop_back();
                continue;
            }
            ++stack.back().second;
            StateId next = succs[index];
            if (ts.isCut(next) || !enqueued[next])
                continue;
            if (color[next] == 1) {
                result.cutViolation = true;
            } else if (color[next] == 0) {
                color[next] = 1;
                stack.emplace_back(next, size_t{0});
            }
        }
    }
    return result;
}

} // namespace keq::core
