#ifndef KEQ_DRIVER_CHECKPOINT_H
#define KEQ_DRIVER_CHECKPOINT_H

/**
 * @file
 * Crash-safe campaign checkpointing for the validation pipeline.
 *
 * A long corpus run (hours of Z3 time) must survive a crash or SIGKILL
 * without losing finished verdicts. The CheckpointJournal records one
 * append-only journal record per decided function (support::Journal
 * gives the torn-tail tolerance); a resumed run loads the journal,
 * skips every decided function, and recomputes only the rest — the
 * merged report is required to be canonically identical to an
 * uninterrupted run's (asserted by the chaos suite's kill-and-resume
 * test).
 *
 * Two rules keep resume sound:
 *  - The journal header record carries a fingerprint of the module's
 *    defined-function set. Resuming against a different module (or a
 *    journal of a different kind) is rejected loudly instead of
 *    silently splicing stale verdicts.
 *  - Cancelled verdicts are never journaled: cancellation is an
 *    artifact of the interrupted run, not a property of the function,
 *    so a resumed run must recompute those entries.
 */

#include <memory>
#include <string>
#include <unordered_map>

#include "src/driver/pipeline.h"
#include "src/support/journal.h"

namespace keq::driver {

/**
 * Serializes the deterministic fields of a FunctionReport (everything
 * canonicalSummary renders; wall-clock timing is excluded) as one
 * journal payload. deserializeFunctionReport is the exact inverse and
 * returns false on any malformed payload.
 */
std::string serializeFunctionReport(const FunctionReport &report);
bool deserializeFunctionReport(const std::string &payload,
                               FunctionReport &report);

/** Per-function verdict journal with module-identity checking. */
class CheckpointJournal
{
  public:
    /** Journal schema tag (support::Journal header). */
    static constexpr const char *kKind = "pipeline-checkpoint";

    /** Result of loading an existing checkpoint for resume. */
    struct Load
    {
        bool ok = true;
        std::string error;
        /** Decided verdicts keyed by function name. */
        std::unordered_map<std::string, FunctionReport> decided;
        /** True when the meta (fingerprint) record was present. */
        bool hasMeta = false;
        /** Torn/corrupt records dropped by the journal layer. */
        size_t truncatedRecords = 0;
    };

    /**
     * Loads every intact verdict from @p path. A missing file is a
     * fresh campaign (ok, empty). A journal of the wrong kind or with
     * a fingerprint that does not match @p fingerprint fails with
     * ok=false — resuming against the wrong module is a user error.
     */
    static Load load(const std::string &path,
                     const std::string &fingerprint);

    /**
     * @param path        Journal file, appended to.
     * @param fingerprint Module identity (moduleFingerprint).
     * @param metaPresent True when resuming a journal that already
     *                    carries its meta record.
     * @param fsync       Durability policy for appended records.
     */
    CheckpointJournal(std::string path, std::string fingerprint,
                      bool metaPresent,
                      support::FsyncPolicy fsync =
                          support::FsyncPolicy::Off);

    /**
     * Appends one decided verdict (meta record first, lazily). Thread
     * safe. Cancelled verdicts are ignored by contract.
     */
    void record(const FunctionReport &report);

  private:
    support::JournalWriter writer_;
    std::string fingerprint_;
    std::mutex metaMutex_;
    bool metaWritten_;
};

/**
 * Identity of a module's defined-function set: order, names and
 * instruction counts. Checkpoints are only portable across runs that
 * agree on it.
 */
std::string moduleFingerprint(const llvmir::Module &module);

} // namespace keq::driver

#endif // KEQ_DRIVER_CHECKPOINT_H
