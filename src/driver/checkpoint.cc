#include "src/driver/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::driver {

namespace {

/** Splits a payload on raw tabs (fields are individually escaped). */
std::vector<std::string>
splitFields(const std::string &payload)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (;;) {
        size_t tab = payload.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(payload.substr(start));
            return fields;
        }
        fields.push_back(payload.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseU64(const std::string &field, uint64_t &out)
{
    if (field.empty())
        return false;
    char *end = nullptr;
    unsigned long long value = std::strtoull(field.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    out = value;
    return true;
}

constexpr size_t kVerdictFields = 16;

} // namespace

std::string
serializeFunctionReport(const FunctionReport &report)
{
    std::ostringstream os;
    os << "verdict"
       << '\t' << support::escapeLine(report.function)
       << '\t' << static_cast<unsigned>(report.outcome)
       << '\t' << static_cast<unsigned>(report.verdict.kind)
       << '\t' << failureKindName(report.verdict.failure)
       << '\t' << (report.verdict.usedRefinementFallback ? 1 : 0)
       << '\t' << report.llvmInstructions
       << '\t' << report.x86Instructions
       << '\t' << report.syncPointCount
       << '\t' << report.specTextSize
       << '\t' << report.verdict.stats.solverQueries
       << '\t' << report.verdict.stats.pointsChecked
       << '\t' << report.verdict.stats.symbolicSteps
       << '\t' << report.verdict.stats.pairsExamined
       << '\t' << support::escapeLine(report.verdict.reason)
       << '\t' << support::escapeLine(report.detail);
    return os.str();
}

bool
deserializeFunctionReport(const std::string &payload,
                          FunctionReport &report)
{
    std::vector<std::string> fields = splitFields(payload);
    if (fields.size() != kVerdictFields || fields[0] != "verdict")
        return false;

    FunctionReport out;
    if (!support::unescapeLine(fields[1], out.function))
        return false;
    uint64_t outcome = 0;
    uint64_t kind = 0;
    uint64_t refine = 0;
    if (!parseU64(fields[2], outcome) || outcome > 4 ||
        !parseU64(fields[3], kind) || kind > 4 ||
        !failureKindFromName(fields[4].c_str(), out.verdict.failure) ||
        !parseU64(fields[5], refine) || refine > 1) {
        return false;
    }
    out.outcome = static_cast<Outcome>(outcome);
    out.verdict.kind = static_cast<checker::VerdictKind>(kind);
    out.verdict.usedRefinementFallback = refine != 0;

    uint64_t llvm = 0, x86 = 0, sync = 0, spec = 0;
    if (!parseU64(fields[6], llvm) || !parseU64(fields[7], x86) ||
        !parseU64(fields[8], sync) || !parseU64(fields[9], spec) ||
        !parseU64(fields[10], out.verdict.stats.solverQueries) ||
        !parseU64(fields[11], out.verdict.stats.pointsChecked) ||
        !parseU64(fields[12], out.verdict.stats.symbolicSteps) ||
        !parseU64(fields[13], out.verdict.stats.pairsExamined)) {
        return false;
    }
    out.llvmInstructions = static_cast<size_t>(llvm);
    out.x86Instructions = static_cast<size_t>(x86);
    out.syncPointCount = static_cast<size_t>(sync);
    out.specTextSize = static_cast<size_t>(spec);

    if (!support::unescapeLine(fields[14], out.verdict.reason) ||
        !support::unescapeLine(fields[15], out.detail)) {
        return false;
    }
    report = std::move(out);
    return true;
}

CheckpointJournal::Load
CheckpointJournal::load(const std::string &path,
                        const std::string &fingerprint)
{
    Load result;
    support::JournalLoad journal = support::loadJournal(path, kKind);
    if (!journal.ok) {
        result.ok = false;
        result.error = journal.error;
        return result;
    }
    result.truncatedRecords = journal.truncatedRecords;

    for (size_t i = 0; i < journal.records.size(); ++i) {
        const std::string &payload = journal.records[i];
        if (i == 0 && payload.rfind("meta\t", 0) == 0) {
            std::string recorded;
            if (!support::unescapeLine(payload.substr(5), recorded)) {
                result.ok = false;
                result.error = "checkpoint '" + path +
                               "': corrupt meta record";
                return result;
            }
            if (recorded != fingerprint) {
                result.ok = false;
                result.error =
                    "checkpoint '" + path +
                    "' was written for a different module "
                    "(fingerprint mismatch); refusing to resume";
                return result;
            }
            result.hasMeta = true;
            continue;
        }
        FunctionReport report;
        if (!deserializeFunctionReport(payload, report)) {
            // An intact-checksum record that fails to parse means the
            // schema changed underneath the journal; treat everything
            // from here on as untrusted, like a torn tail.
            result.truncatedRecords = journal.truncatedRecords +
                                      (journal.records.size() - i);
            break;
        }
        // Later records win: a rerun may legitimately re-decide a
        // function (e.g. one whose verdict was recomputed after a
        // cancelled run).
        result.decided[report.function] = std::move(report);
    }
    if (!result.decided.empty() && !result.hasMeta) {
        result.ok = false;
        result.error = "checkpoint '" + path +
                       "' carries verdicts but no module fingerprint; "
                       "refusing to resume";
        return result;
    }
    return result;
}

CheckpointJournal::CheckpointJournal(std::string path,
                                     std::string fingerprint,
                                     bool metaPresent,
                                     support::FsyncPolicy fsync)
    : writer_(std::move(path), kKind, fsync),
      fingerprint_(std::move(fingerprint)), metaWritten_(metaPresent)
{}

void
CheckpointJournal::record(const FunctionReport &report)
{
    if (report.verdict.failure == FailureKind::Cancelled)
        return; // cancellation is a property of the run, not the fn
    {
        std::lock_guard<std::mutex> lock(metaMutex_);
        if (!metaWritten_) {
            writer_.append("meta\t" + support::escapeLine(fingerprint_));
            metaWritten_ = true;
        }
    }
    writer_.append(serializeFunctionReport(report));
}

std::string
moduleFingerprint(const llvmir::Module &module)
{
    std::ostringstream os;
    for (const llvmir::Function &fn : module.functions) {
        if (fn.isDeclaration())
            continue;
        os << fn.name << ':' << fn.instructionCount() << ';';
    }
    std::string summary = os.str();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(
                      support::fnv1a64(summary)));
    return std::string(buffer);
}

} // namespace keq::driver
