#ifndef KEQ_DRIVER_CORPUS_H
#define KEQ_DRIVER_CORPUS_H

/**
 * @file
 * Deterministic synthetic workload generator (the SPEC 2006 GCC stand-in).
 *
 * The paper evaluates on 4732 C functions from GCC compiled at -O0
 * (Section 5.1). That source corpus is not redistributable here, so the
 * evaluation harness generates a corpus of LLVM IR functions with a
 * comparable *shape* distribution: mostly small straight-line and
 * single-loop functions, a long tail of larger functions mixing loops,
 * memory traffic through globals and allocas, calls, comparisons,
 * divisions and selects. Generation is deterministic in the seed, so
 * every benchmark run sees the identical corpus.
 */

#include <cstdint>
#include <string>

namespace keq::driver {

/** Corpus shape knobs. */
struct CorpusOptions
{
    uint64_t seed = 0x5eed;
    size_t functionCount = 200;
    bool includeLoops = true;
    bool includeMemory = true;
    bool includeCalls = true;
    bool includeDivision = true;
    /** Fraction (percent) of signed adds carrying the nsw UB flag. */
    unsigned nswPercent = 25;
    /** Scale factor for the size tail (1 = paper-like shape, scaled). */
    unsigned sizeScale = 1;
};

/** Generates a module of @p options.functionCount functions as LLVM IR
 *  assembly text (parse with llvmir::parseModule). */
std::string generateCorpusSource(const CorpusOptions &options);

} // namespace keq::driver

#endif // KEQ_DRIVER_CORPUS_H
