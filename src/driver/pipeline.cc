#include "src/driver/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "src/driver/checkpoint.h"
#include "src/llvmir/layout_builder.h"
#include "src/llvmir/parser.h"
#include "src/llvmir/symbolic_semantics.h"
#include "src/llvmir/verifier.h"
#include "src/memory/layout.h"
#include "src/smt/guarded_solver.h"
#include "src/smt/incremental_z3_solver.h"
#include "src/smt/portfolio_solver.h"
#include "src/smt/term_factory.h"
#include "src/smt/z3_solver.h"
#include "src/support/diagnostics.h"
#include "src/support/journal.h"
#include "src/support/stopwatch.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/regalloc/regalloc.h"
#include "src/vcgen/regalloc_vcgen.h"
#include "src/vx86/symbolic_semantics.h"

namespace keq::driver {

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Succeeded: return "Succeeded";
      case Outcome::Timeout: return "Failed due to timeout";
      case Outcome::OutOfMemory: return "Failed due to out-of-memory";
      case Outcome::Other: return "Other";
      case Outcome::Unsupported: return "Unsupported";
    }
    return "?";
}

std::string
FunctionReport::canonicalSummary() const
{
    std::ostringstream os;
    os << function << " | " << outcomeName(outcome) << " | "
       << checker::verdictKindName(verdict.kind)
       << " | fail=" << failureKindName(verdict.failure)
       << " | refine=" << (verdict.usedRefinementFallback ? 1 : 0)
       << " | queries=" << verdict.stats.solverQueries
       << " points=" << verdict.stats.pointsChecked
       << " steps=" << verdict.stats.symbolicSteps
       << " pairs=" << verdict.stats.pairsExamined
       << " | llvm=" << llvmInstructions << " x86=" << x86Instructions
       << " sync=" << syncPointCount << " spec=" << specTextSize
       << " | " << detail;
    return os.str();
}

size_t
ModuleReport::countOutcome(Outcome outcome) const
{
    size_t count = 0;
    for (const FunctionReport &report : functions) {
        if (report.outcome == outcome)
            ++count;
    }
    return count;
}

std::string
ModuleReport::renderTable() const
{
    size_t unsupported = countOutcome(Outcome::Unsupported);
    size_t total = functions.size() - unsupported;
    std::ostringstream os;
    os << "Result                       | #Functions\n";
    os << "-----------------------------+-----------\n";
    auto row = [&](Outcome outcome) {
        os << outcomeName(outcome);
        for (size_t i = std::string(outcomeName(outcome)).size(); i < 29;
             ++i) {
            os << ' ';
        }
        os << "| " << countOutcome(outcome) << "\n";
    };
    row(Outcome::Succeeded);
    row(Outcome::Timeout);
    row(Outcome::OutOfMemory);
    row(Outcome::Other);
    os << "Total                        | " << total << "\n";
    if (unsupported > 0) {
        os << "(excluded: " << unsupported
           << " functions outside the supported fragment)\n";
    }
    return os.str();
}

std::string
ModuleReport::canonicalSummary() const
{
    std::ostringstream os;
    for (const FunctionReport &report : functions)
        os << report.canonicalSummary() << "\n";
    return os.str();
}

namespace {

/**
 * VC generation + KEQ checking for one (LLVM, Virtual x86) pair whose
 * machine side has already been produced — by this pipeline's ISel, or
 * by the fuzz mutation engine. Creates every non-thread-safe component
 * (factory, semantics, Z3) locally so concurrent invocations share
 * nothing but the optional query cache.
 *
 * @param exec Solver-stack configuration; nullptr selects the plain
 *             cold-start Z3 backend with no preprocessing (the free
 *             validateFunction entry points, used as the unoptimized
 *             reference stack by tests and benches).
 * @param sandbox Non-null routes every query to the out-of-process
 *             worker pool: the backend becomes a SandboxSolver, the
 *             cache front stays in the parent, and the in-process
 *             injector/guard layers are skipped (the worker runs its
 *             own guard; the supervisor enforces heartbeat deadlines
 *             and classifies worker death).
 */
FunctionReport
validatePairImpl(const llvmir::Module &module, const llvmir::Function &fn,
                 vx86::MFunction mfn, const isel::FunctionHints &hints,
                 const PipelineOptions &options,
                 const std::shared_ptr<smt::QueryCache> &cache,
                 const ExecutionOptions *exec,
                 smt::WorkerSupervisor *sandbox,
                 smt::SolverStats *solver_stats)
{
    FunctionReport report;
    report.function = fn.name;
    report.llvmInstructions = fn.instructionCount();
    support::Stopwatch watch;

    try {
        report.x86Instructions = mfn.instructionCount();

        // 2. Verification condition generation.
        vcgen::VcResult vc =
            vcgen::generateSyncPoints(fn, mfn, hints, options.vc);
        report.syncPointCount = vc.points.points.size();
        report.specTextSize = vc.points.specTextSize();
        if (options.specSizeBudget > 0 &&
            report.specTextSize > options.specSizeBudget) {
            report.outcome = Outcome::OutOfMemory;
            report.detail = "sync-point specification exceeds the parse "
                            "memory budget (" +
                            std::to_string(report.specTextSize) +
                            " chars)";
            report.seconds = watch.seconds();
            return report;
        }

        // 3. KEQ equivalence checking.
        smt::TermFactory factory;
        mem::MemoryLayout layout;
        llvmir::populateLayout(module, layout);
        llvmir::SymbolicSemantics sem_a(module, factory, layout);
        vx86::MModule mmodule;
        mmodule.functions.push_back(std::move(mfn));
        vx86::SymbolicSemantics sem_b(mmodule, factory, layout);
        // Portfolio lane roster: an explicit spec wins, then the lane
        // count; a single default lane keeps the pre-portfolio stack
        // byte-identical. A malformed spec throws support::Error and
        // lands in the Unsupported catch below.
        std::vector<smt::LaneConfig> lanes;
        if (exec != nullptr) {
            if (!exec->portfolioLaneSpec.empty()) {
                std::string laneError;
                if (!smt::parsePortfolioLanes(exec->portfolioLaneSpec,
                                              lanes, laneError)) {
                    throw support::Error("invalid portfolio lane spec: " +
                                         laneError);
                }
            } else if (exec->portfolioLanes > 1) {
                lanes = smt::defaultPortfolioLanes(exec->portfolioLanes);
            }
        }

        std::unique_ptr<smt::Solver> backend;
        if (sandbox != nullptr) {
            // Sandboxed portfolio: one worker per lane, raced by the
            // supervisor; lane entries travel as ResetFrame strategies.
            std::vector<std::string> laneSpecs;
            if (exec != nullptr && !exec->portfolioLaneSpec.empty())
                laneSpecs =
                    support::split(exec->portfolioLaneSpec, ',');
            else
                for (const smt::LaneConfig &lane : lanes)
                    laneSpecs.push_back(lane.name);
            backend = std::make_unique<smt::SandboxSolver>(
                factory, *sandbox, std::move(laneSpecs));
            if (exec != nullptr && exec->deadlineMs > 0)
                backend->setTimeoutMs(exec->deadlineMs);
        } else if (lanes.size() > 1) {
            backend = std::make_unique<smt::PortfolioSolver>(
                factory, std::move(lanes));
        } else if (lanes.size() == 1) {
            // One explicit lane: no race, but honor its tuning.
            backend = smt::makeLaneBackend(factory, lanes.front());
        } else if (exec != nullptr && exec->incrementalSolver) {
            backend = std::make_unique<smt::IncrementalZ3Solver>(factory);
        } else {
            backend = std::make_unique<smt::Z3Solver>(factory);
        }
        std::optional<smt::CachingSolver> caching;
        smt::Solver *solver = backend.get();
        if (cache != nullptr) {
            smt::CachingSolver::Options stack;
            stack.simplify = exec != nullptr && exec->simplifyQueries;
            stack.slice = exec != nullptr && exec->sliceQueries;
            if (exec != nullptr && exec->auditRate > 0.0) {
                // Trust-but-verify: sample journal-preloaded hits and
                // recheck them against a pristine solver before
                // serving. The pristine rung mirrors GuardedSolver's
                // terminal rung — a fresh cold Z3 with no preprocessing
                // shared with the stack under audit.
                stack.auditRate = exec->auditRate;
                stack.auditSeed = exec->auditSeed;
                stack.auditSolverFactory =
                    [](smt::TermFactory &f) -> std::unique_ptr<smt::Solver> {
                    return std::make_unique<smt::Z3Solver>(f);
                };
                stack.onAuditMismatch = exec->onAuditMismatch;
            }
            caching.emplace(factory, *backend, cache, stack);
            solver = &*caching;
        }

        // Chaos testing: the injector sits *above* the optimized stack
        // (and below the guard), so injected misbehavior exercises the
        // retry/escalation machinery without ever reaching the cache's
        // stored verdicts. The per-function plan is derived from the
        // function name, not the scheduling order, so serial and
        // parallel chaos runs draw identical fault schedules.
        smt::FaultPlan plan;
        if (exec != nullptr && sandbox == nullptr)
            plan = exec->faults.derive(support::fnv1a64(fn.name));
        std::optional<smt::FaultInjectingSolver> injector;
        if (plan.enabled()) {
            injector.emplace(factory, *solver, plan);
            solver = &*injector;
        }

        // Fault-tolerant front: watchdog deadline + escalation ladder.
        // Rung 1 is a fresh cold solver on the raw (unpreprocessed)
        // query — still fault-injected under chaos; rung 2 is pristine,
        // which is what makes chaos verdicts converge to clean ones.
        // In sandbox mode the guard lives inside the worker process
        // (watchdog + escalation next to the solver it protects), so the
        // parent adds no second guard — the supervisor's heartbeat
        // deadline and death classification are the parent-side
        // containment.
        std::optional<smt::GuardedSolver> guarded;
        if (exec != nullptr && sandbox == nullptr) {
            smt::GuardedSolverOptions guard;
            guard.deadlineMs = exec->deadlineMs;
            guard.retries = exec->solverRetries;
            guard.cancel = exec->cancel;
            smt::FaultPlan rung1_plan = plan.derive(1);
            std::vector<smt::GuardedSolver::RungFactory> rungs;
            rungs.push_back(
                [&factory, rung1_plan]() -> std::unique_ptr<smt::Solver> {
                    std::unique_ptr<smt::Solver> fresh =
                        std::make_unique<smt::Z3Solver>(factory);
                    if (rung1_plan.enabled()) {
                        return std::make_unique<
                            smt::FaultInjectingSolver>(
                            factory, std::move(fresh), rung1_plan);
                    }
                    return fresh;
                });
            rungs.push_back(
                [&factory]() -> std::unique_ptr<smt::Solver> {
                    return std::make_unique<smt::Z3Solver>(factory);
                });
            guarded.emplace(factory, *solver, std::move(rungs), guard);
            solver = &*guarded;
            if (exec->solverMemoryMb > 0)
                solver->setMemoryBudgetMb(exec->solverMemoryMb);
        }

        checker::CheckerConfig checker_config = options.checker;
        if (exec != nullptr && exec->cancel.valid())
            checker_config.cancel = exec->cancel;
        sem::IselAcceptability acceptability;
        checker::Checker checker(sem_a, sem_b, acceptability, *solver,
                                 checker_config);
        report.verdict = checker.check(fn.name, fn.name, vc.points);
        if (solver_stats != nullptr) {
            *solver_stats = solver->stats();
            // Batching is attributed by the checker (no solver layer
            // can see which queries shared a session), so the module
            // aggregate picks it up from the verdict delta.
            solver_stats->batchedQueries =
                report.verdict.stats.solverStats.batchedQueries;
        }

        switch (report.verdict.kind) {
          case checker::VerdictKind::Equivalent:
          case checker::VerdictKind::Refines:
            report.outcome = Outcome::Succeeded;
            break;
          case checker::VerdictKind::Timeout:
            report.outcome = Outcome::Timeout;
            break;
          case checker::VerdictKind::OutOfMemory:
            report.outcome = Outcome::OutOfMemory;
            break;
          case checker::VerdictKind::NotValidated:
            report.outcome = Outcome::Other;
            break;
        }
        report.detail = report.verdict.reason;
        if (!vc.adequate && report.outcome == Outcome::Other) {
            report.detail +=
                " [VC generator warnings: " +
                std::to_string(vc.warnings.size()) + "]";
        }
    } catch (const support::Error &error) {
        report.outcome = Outcome::Unsupported;
        report.detail = error.what();
    }

    report.seconds = watch.seconds();
    return report;
}

/**
 * The per-function unit of work including the ISel stage: lower, then
 * validate the resulting pair.
 */
FunctionReport
validateFunctionImpl(const llvmir::Module &module,
                     const llvmir::Function &fn,
                     const PipelineOptions &options,
                     const std::shared_ptr<smt::QueryCache> &cache,
                     const ExecutionOptions *exec,
                     smt::WorkerSupervisor *sandbox,
                     smt::SolverStats *solver_stats)
{
    // 1. Instruction Selection with hint generation. Unsupported
    // constructs surface here, before any pair exists.
    isel::FunctionHints hints;
    vx86::MFunction mfn;
    try {
        mfn = isel::lowerFunction(module, fn, options.isel, hints);
    } catch (const support::Error &error) {
        FunctionReport report;
        report.function = fn.name;
        report.llvmInstructions = fn.instructionCount();
        report.outcome = Outcome::Unsupported;
        report.detail = error.what();
        return report;
    }
    return validatePairImpl(module, fn, std::move(mfn), hints, options,
                            cache, exec, sandbox, solver_stats);
}

std::vector<const llvmir::Function *>
definedFunctions(const llvmir::Module &module)
{
    std::vector<const llvmir::Function *> functions;
    for (const llvmir::Function &fn : module.functions) {
        if (!fn.isDeclaration())
            functions.push_back(&fn);
    }
    return functions;
}

} // namespace

FunctionReport
validateFunction(const llvmir::Module &module, const llvmir::Function &fn,
                 const PipelineOptions &options)
{
    return validateFunctionImpl(module, fn, options, nullptr, nullptr,
                                nullptr, nullptr);
}

FunctionReport
validateFunctionPair(const llvmir::Module &module,
                     const llvmir::Function &fn, vx86::MFunction mfn,
                     const isel::FunctionHints &hints,
                     const PipelineOptions &options)
{
    return validatePairImpl(module, fn, std::move(mfn), hints, options,
                            nullptr, nullptr, nullptr, nullptr);
}

FunctionReport
validateRegAlloc(const llvmir::Module &module, const llvmir::Function &fn,
                 const PipelineOptions &options)
{
    FunctionReport report;
    report.function = fn.name;
    report.llvmInstructions = fn.instructionCount();
    support::Stopwatch watch;

    try {
        isel::FunctionHints hints;
        vx86::MFunction pre =
            isel::lowerFunction(module, fn, options.isel, hints);
        regalloc::AllocationResult allocation =
            regalloc::allocateRegisters(pre);
        report.x86Instructions = allocation.fn.instructionCount();

        vcgen::VcResult vc =
            vcgen::generateRegAllocSyncPoints(pre, allocation);
        report.syncPointCount = vc.points.points.size();
        report.specTextSize = vc.points.specTextSize();

        smt::TermFactory factory;
        mem::MemoryLayout layout;
        llvmir::populateLayout(module, layout);
        vx86::MModule pre_module;
        pre_module.functions.push_back(std::move(pre));
        vx86::MModule post_module;
        post_module.functions.push_back(std::move(allocation.fn));
        vx86::SymbolicSemantics sem_a(pre_module, factory, layout);
        vx86::SymbolicSemantics sem_b(post_module, factory, layout);
        smt::Z3Solver solver(factory);
        sem::IselAcceptability acceptability;
        checker::Checker checker(sem_a, sem_b, acceptability, solver,
                                 options.checker);
        report.verdict = checker.check(fn.name, fn.name, vc.points);

        switch (report.verdict.kind) {
          case checker::VerdictKind::Equivalent:
          case checker::VerdictKind::Refines:
            report.outcome = Outcome::Succeeded;
            break;
          case checker::VerdictKind::Timeout:
            report.outcome = Outcome::Timeout;
            break;
          case checker::VerdictKind::OutOfMemory:
            report.outcome = Outcome::OutOfMemory;
            break;
          case checker::VerdictKind::NotValidated:
            report.outcome = Outcome::Other;
            break;
        }
        report.detail = report.verdict.reason;
    } catch (const support::Error &error) {
        report.outcome = Outcome::Unsupported;
        report.detail = error.what();
    }

    report.seconds = watch.seconds();
    return report;
}

// --- Pipeline ------------------------------------------------------------

namespace {

/** The configured verdict store: entry cap + byte budget (LRU). */
std::shared_ptr<smt::QueryCache>
makeQueryCache(const ExecutionOptions &exec)
{
    return std::make_shared<smt::QueryCache>(
        exec.cacheShardCapacity, exec.cacheMemoryMb << 20);
}

} // namespace

Pipeline::Pipeline(PipelineOptions options, ExecutionOptions exec)
    : options_(std::move(options)), exec_(std::move(exec))
{
    if (exec_.externalCache != nullptr)
        cache_ = exec_.externalCache;
    else if (exec_.solverCache && exec_.sharedCache)
        cache_ = makeQueryCache(exec_);
}

FunctionReport
Pipeline::validateFunction(const llvmir::Module &module,
                           const llvmir::Function &fn)
{
    std::shared_ptr<smt::QueryCache> cache = cache_;
    if (exec_.externalCache == nullptr && exec_.solverCache &&
        !exec_.sharedCache)
        cache = makeQueryCache(exec_);
    smt::SolverStats stats;
    FunctionReport report =
        validateFunctionImpl(module, fn, options_, cache, &exec_,
                             sandboxSupervisor(1), &stats);
    return report;
}

FunctionReport
Pipeline::validateFunction(const llvmir::Module &module,
                           const llvmir::Function &fn,
                           unsigned deadlineMsCap)
{
    // Effective deadline = the tighter of the configured one and the
    // caller's cap (the daemon passes each job's *remaining* wall
    // budget here). Equal-or-looser caps take the plain path so the
    // common case stays zero-copy.
    unsigned effective = exec_.deadlineMs;
    if (deadlineMsCap > 0 &&
        (effective == 0 || deadlineMsCap < effective))
        effective = deadlineMsCap;
    if (effective == exec_.deadlineMs)
        return validateFunction(module, fn);

    std::shared_ptr<smt::QueryCache> cache = cache_;
    if (exec_.externalCache == nullptr && exec_.solverCache &&
        !exec_.sharedCache)
        cache = makeQueryCache(exec_);
    ExecutionOptions exec = exec_;
    exec.deadlineMs = effective;
    smt::SolverStats stats;
    return validateFunctionImpl(module, fn, options_, cache, &exec,
                                sandboxSupervisor(1), &stats);
}

smt::WorkerSupervisor *
Pipeline::sandboxSupervisor(unsigned workers)
{
    if (!exec_.sandbox || sandboxDegraded_)
        return nullptr;
    if (supervisor_ != nullptr && supervisor_->started())
        return supervisor_.get();

    // Each concurrent function validation leases one worker per
    // portfolio lane (solveGroup's atomic multi-slot lease), so the
    // default pool is jobs x lanes; an undersized explicit pool still
    // works — the race just degrades to fewer lanes.
    unsigned lanes = 1;
    if (!exec_.portfolioLaneSpec.empty()) {
        std::vector<smt::LaneConfig> configs;
        std::string laneError;
        if (smt::parsePortfolioLanes(exec_.portfolioLaneSpec, configs,
                                     laneError))
            lanes = static_cast<unsigned>(configs.size());
    } else if (exec_.portfolioLanes > 1) {
        lanes = std::min<unsigned>(
            exec_.portfolioLanes,
            static_cast<unsigned>(smt::SolverStats::kPortfolioMaxLanes));
    }
    smt::SandboxOptions sandbox;
    sandbox.workerPath = exec_.workerPath;
    sandbox.workers =
        exec_.sandboxWorkers > 0
            ? exec_.sandboxWorkers
            : std::max<unsigned>(workers, 1) * std::max(lanes, 1u);
    sandbox.workerMemoryMb = exec_.workerMemoryMb;
    sandbox.memoryBudgetMb = exec_.solverMemoryMb;
    sandbox.chaosKillRate = exec_.sandboxChaosKillRate;
    sandbox.chaosSeed = exec_.sandboxChaosSeed;
    sandbox.cancel = exec_.cancel;
    supervisor_ = std::make_unique<smt::WorkerSupervisor>(sandbox);
    std::string error;
    if (!supervisor_->start(error)) {
        // Graceful degradation: a missing or broken worker binary must
        // not fail the run — warn once and keep the in-process stack.
        std::fprintf(stderr,
                     "keq: solver sandbox disabled: %s "
                     "(falling back to in-process solving)\n",
                     error.c_str());
        supervisor_.reset();
        sandboxDegraded_ = true;
        return nullptr;
    }
    return supervisor_.get();
}

ModuleReport
Pipeline::run(const llvmir::Module &module)
{
    return runWithJobs(module, 1);
}

ModuleReport
Pipeline::runParallel(const llvmir::Module &module)
{
    return runWithJobs(module, exec_.jobs);
}

ModuleReport
Pipeline::runParallel(const llvmir::Module &module, unsigned jobs)
{
    return runWithJobs(module, jobs);
}

ModuleReport
Pipeline::runWithJobs(const llvmir::Module &module, unsigned jobs)
{
    std::vector<const llvmir::Function *> functions =
        definedFunctions(module);

    ModuleReport report;
    report.functions.resize(functions.size());
    std::vector<smt::SolverStats> per_function(functions.size());

    // Crash-safe checkpointing: restore decided verdicts up front, then
    // journal each fresh verdict as it lands. The decided map is frozen
    // before the parallel phase, so workers read it without locking.
    std::unordered_map<std::string, FunctionReport> decided;
    std::unique_ptr<CheckpointJournal> journal;
    if (!exec_.checkpointPath.empty()) {
        std::string fingerprint = moduleFingerprint(module);
        bool meta_present = false;
        if (exec_.resume) {
            CheckpointJournal::Load loaded = CheckpointJournal::load(
                exec_.checkpointPath, fingerprint);
            if (!loaded.ok)
                throw support::Error(loaded.error);
            decided = std::move(loaded.decided);
            meta_present = loaded.hasMeta;
            report.droppedCheckpointRecords = loaded.truncatedRecords;
        } else {
            // Fresh campaign: a stale checkpoint at this path would
            // poison a later --resume, so drop it now.
            std::remove(exec_.checkpointPath.c_str());
        }
        journal = std::make_unique<CheckpointJournal>(
            exec_.checkpointPath, fingerprint, meta_present,
            exec_.checkpointFsync);
    }

    smt::CacheStats cache_before;
    if (cache_ != nullptr)
        cache_before = cache_->stats();

    // Validation is CPU-bound, so oversubscribing cores only adds
    // contention (Z3's allocator locks, context switches): clamp the
    // worker count to the host parallelism and the amount of work.
    // jobs == 0 means "one worker per core".
    unsigned workers = jobs == 0 ? support::ThreadPool::hardwareThreads()
                                 : jobs;
    workers = std::min<unsigned>(
        {workers, support::ThreadPool::hardwareThreads(),
         static_cast<unsigned>(
             std::max<size_t>(functions.size(), 1))});

    // Resolve the sandbox before fanning out so the degradation warning
    // prints once, not once per task.
    smt::WorkerSupervisor *sandbox = sandboxSupervisor(workers);

    auto validate_one = [&](size_t index) {
        const llvmir::Function &fn = *functions[index];
        auto hit = decided.find(fn.name);
        if (hit != decided.end()) {
            report.functions[index] = hit->second;
            return;
        }
        if (exec_.cancel.cancelled()) {
            // Don't even start ISel/VC generation: produce the same
            // cancelled verdict the checker would, just sooner. Never
            // journaled, so a resumed run recomputes it.
            FunctionReport &out = report.functions[index];
            out.function = fn.name;
            out.llvmInstructions = fn.instructionCount();
            out.outcome = Outcome::Timeout;
            out.verdict.kind = checker::VerdictKind::Timeout;
            out.verdict.failure = FailureKind::Cancelled;
            out.verdict.reason = "cancelled";
            out.detail = "cancelled";
            return;
        }
        std::shared_ptr<smt::QueryCache> cache = cache_;
        if (exec_.externalCache == nullptr && exec_.solverCache &&
            !exec_.sharedCache)
            cache = makeQueryCache(exec_);
        report.functions[index] =
            validateFunctionImpl(module, fn, options_, cache, &exec_,
                                 sandbox, &per_function[index]);
        if (journal != nullptr)
            journal->record(report.functions[index]);
    };

    if (workers <= 1) {
        for (size_t i = 0; i < functions.size(); ++i)
            validate_one(i);
    } else {
        support::ThreadPool pool(workers);
        support::parallelFor(pool, functions.size(), validate_one);
    }

    // Merge in deterministic input order (not completion order).
    for (const smt::SolverStats &stats : per_function)
        report.solverStats += stats;
    report.resumedFunctions = 0;
    for (const llvmir::Function *fn : functions) {
        if (decided.count(fn->name) != 0)
            ++report.resumedFunctions;
    }
    if (cache_ != nullptr) {
        smt::CacheStats after = cache_->stats();
        report.cacheStats.hits = after.hits - cache_before.hits;
        report.cacheStats.misses = after.misses - cache_before.misses;
        report.cacheStats.modelHits =
            after.modelHits - cache_before.modelHits;
        report.cacheStats.evictions =
            after.evictions - cache_before.evictions;
        report.cacheStats.entries = after.entries;
    } else {
        report.cacheStats.hits = report.solverStats.cacheHits;
        report.cacheStats.misses = report.solverStats.cacheMisses;
        report.cacheStats.evictions = report.solverStats.cacheEvictions;
    }
    return report;
}

ModuleReport
validateModule(const llvmir::Module &module,
               const PipelineOptions &options)
{
    ModuleReport report;
    for (const llvmir::Function &fn : module.functions) {
        if (fn.isDeclaration())
            continue;
        report.functions.push_back(
            validateFunction(module, fn, options));
    }
    return report;
}

ModuleReport
validateSource(const std::string &llvm_source,
               const PipelineOptions &options)
{
    llvmir::Module module = llvmir::parseModule(llvm_source);
    llvmir::verifyModuleOrThrow(module);
    return validateModule(module, options);
}

} // namespace keq::driver
