#include "src/driver/corpus.h"

#include <sstream>
#include <vector>

#include "src/support/rng.h"

namespace keq::driver {

using support::Rng;

namespace {

/** Incrementally builds one function's body text. */
class FunctionBuilder
{
  public:
    FunctionBuilder(Rng &rng, const CorpusOptions &options)
        : rng_(rng), options_(options)
    {
        pool_ = {"%p0", "%p1", "%p2"};
    }

    std::string
    fresh()
    {
        return "%t" + std::to_string(next_++);
    }

    void
    line(const std::string &text)
    {
        body_ << "  " << text << "\n";
    }

    void
    label(const std::string &name)
    {
        body_ << name << ":\n";
    }

    /** A random available i32 value or a small literal. */
    std::string
    value()
    {
        if (rng_.chancePercent(25))
            return std::to_string(rng_.range(0, 99));
        return pool_[rng_.below(pool_.size())];
    }

    /** A random available i32 value (never a literal). */
    std::string
    regValue()
    {
        return pool_[rng_.below(pool_.size())];
    }

    void addToPool(const std::string &name) { pool_.push_back(name); }

    /** Emits one random i32 arithmetic/bitwise op; returns its name. */
    std::string
    arithOp()
    {
        static const char *const kOps[] = {"add", "sub", "mul", "and",
                                           "or",  "xor", "shl", "lshr",
                                           "ashr"};
        std::string op = kOps[rng_.below(6 + (rng_.chancePercent(50)
                                                  ? 3
                                                  : 0))];
        std::string result = fresh();
        std::string flags;
        if (op == "add" && rng_.chancePercent(options_.nswPercent))
            flags = " nsw";
        std::string rhs = (op == "shl" || op == "lshr" || op == "ashr")
                              ? std::to_string(rng_.range(0, 7))
                              : value();
        line(result + " = " + op + flags + " i32 " + value() + ", " +
             rhs);
        addToPool(result);
        return result;
    }

    /** Emits a chain of @p count random ops. */
    void
    arithChain(size_t count)
    {
        for (size_t i = 0; i < count; ++i) {
            if (options_.includeDivision && rng_.chancePercent(6)) {
                divisionOp();
            } else if (rng_.chancePercent(8)) {
                selectOp();
            } else {
                arithOp();
            }
        }
    }

    void
    divisionOp()
    {
        static const char *const kOps[] = {"udiv", "sdiv", "urem",
                                           "srem"};
        std::string op = kOps[rng_.below(4)];
        std::string result = fresh();
        // Divisor: a nonzero literal most of the time, occasionally a
        // register (exercising the UB error paths and the refinement
        // fallback).
        std::string divisor = rng_.chancePercent(70)
                                  ? std::to_string(rng_.range(1, 31))
                                  : regValue();
        line(result + " = " + op + " i32 " + regValue() + ", " +
             divisor);
        addToPool(result);
    }

    void
    selectOp()
    {
        std::string cmp = fresh();
        line(cmp + " = icmp " + pred() + " i32 " + value() + ", " +
             value());
        std::string result = fresh();
        line(result + " = select i1 " + cmp + ", i32 " + value() +
             ", i32 " + value());
        addToPool(result);
    }

    std::string
    pred()
    {
        static const char *const kPreds[] = {"eq",  "ne",  "ult", "ule",
                                             "ugt", "uge", "slt", "sle",
                                             "sgt", "sge"};
        return kPreds[rng_.below(10)];
    }

    std::string text() const { return body_.str(); }

    /** Value-scope management: values defined in one branch arm must not
     *  leak into the other (SSA dominance). */
    size_t poolMark() const { return pool_.size(); }
    void poolRestore(size_t mark) { pool_.resize(mark); }

    Rng &rng_;
    const CorpusOptions &options_;
    std::ostringstream body_;
    std::vector<std::string> pool_;
    unsigned next_ = 0;
};

/** Straight-line function: a chain of arithmetic, one exit. */
std::string
genStraightLine(Rng &rng, const CorpusOptions &options,
                const std::string &name, size_t ops)
{
    FunctionBuilder b(rng, options);
    std::ostringstream out;
    out << "define i32 " << name << "(i32 %p0, i32 %p1, i32 %p2) {\n";
    b.label("entry");
    b.arithChain(ops);
    b.line("ret i32 " + b.regValue());
    out << b.text() << "}\n";
    return out.str();
}

/** Two-armed diamond with a phi merge. */
std::string
genDiamond(Rng &rng, const CorpusOptions &options,
           const std::string &name, size_t ops)
{
    FunctionBuilder b(rng, options);
    std::ostringstream out;
    out << "define i32 " << name << "(i32 %p0, i32 %p1, i32 %p2) {\n";
    b.label("entry");
    b.arithChain(ops / 3 + 1);
    std::string cmp = b.fresh();
    b.line(cmp + " = icmp " + b.pred() + " i32 " + b.regValue() + ", " +
           b.value());
    b.line("br i1 " + cmp + ", label %then, label %else");
    size_t entry_scope = b.poolMark();
    b.label("then");
    b.arithChain(ops / 3 + 1);
    std::string then_val = b.regValue();
    b.line("br label %join");
    b.poolRestore(entry_scope);
    b.label("else");
    b.arithChain(ops / 3 + 1);
    std::string else_val = b.regValue();
    b.line("br label %join");
    b.poolRestore(entry_scope);
    b.label("join");
    std::string merged = b.fresh();
    b.line(merged + " = phi i32 [ " + then_val + ", %then ], [ " +
           else_val + ", %else ]");
    b.addToPool(merged);
    std::string result = b.fresh();
    b.line(result + " = add i32 " + merged + ", " + b.value());
    out << b.text() << "  ret i32 " << result << "\n}\n";
    return out.str();
}

/** Counted loop with accumulators (the Figure 1 shape). */
std::string
genLoop(Rng &rng, const CorpusOptions &options, const std::string &name,
        size_t body_ops, bool with_memory)
{
    FunctionBuilder b(rng, options);
    std::ostringstream out;
    out << "define i32 " << name << "(i32 %p0, i32 %p1, i32 %p2) {\n";
    b.label("entry");
    b.arithChain(2);
    std::string seed_acc = b.regValue();
    b.line("br label %head");

    b.label("head");
    b.line("%i = phi i32 [ 0, %entry ], [ %inext, %body ]");
    b.line("%acc = phi i32 [ " + seed_acc +
           ", %entry ], [ %accnext, %body ]");
    std::string bound =
        rng.chancePercent(60) ? "%p2" : std::to_string(rng.range(1, 40));
    b.line("%cond = icmp ult i32 %i, " + bound);
    b.line("br i1 %cond, label %body, label %exit");

    b.label("body");
    b.addToPool("%i");
    b.addToPool("%acc");
    if (with_memory) {
        b.line("%idx = zext i32 %i to i64");
        std::string masked = b.fresh();
        // Keep indices in-bounds for the 64-byte buffer.
        b.line(masked + " = and i64 %idx, 63");
        std::string ptr = b.fresh();
        b.line(ptr + " = getelementptr [64 x i8], [64 x i8]* @buf0, "
                     "i64 0, i64 " +
               masked);
        std::string byte = b.fresh();
        b.line(byte + " = load i8, i8* " + ptr);
        std::string wide = b.fresh();
        b.line(wide + " = zext i8 " + byte + " to i32");
        b.addToPool(wide);
        if (rng.chancePercent(50)) {
            std::string narrowed = b.fresh();
            b.line(narrowed + " = trunc i32 %acc to i8");
            b.line("store i8 " + narrowed + ", i8* " + ptr);
        }
    }
    b.arithChain(body_ops);
    b.line("%accnext = add i32 %acc, " + b.regValue());
    b.line("%inext = add i32 %i, 1");
    b.line("br label %head");

    b.label("exit");
    b.line("ret i32 %acc");
    out << b.text() << "}\n";
    return out.str();
}

/** Calls to external functions mixed with arithmetic. */
std::string
genCalls(Rng &rng, const CorpusOptions &options, const std::string &name,
         size_t ops)
{
    FunctionBuilder b(rng, options);
    std::ostringstream out;
    out << "define i32 " << name << "(i32 %p0, i32 %p1, i32 %p2) {\n";
    b.label("entry");
    b.arithChain(ops / 2 + 1);
    std::string r1 = b.fresh();
    b.line(r1 + " = call i32 @ext0(i32 " + b.regValue() + ")");
    b.addToPool(r1);
    b.arithChain(ops / 2 + 1);
    std::string r2 = b.fresh();
    b.line(r2 + " = call i32 @ext1(i32 " + b.regValue() + ", i32 " + r1 +
           ")");
    b.addToPool(r2);
    if (rng.chancePercent(50))
        b.line("call void @sink(i32 " + b.regValue() + ")");
    std::string result = b.fresh();
    b.line(result + " = add i32 " + r1 + ", " + r2);
    out << b.text() << "  ret i32 " << result << "\n}\n";
    return out.str();
}

/** Stack locals through alloca + load/store. */
std::string
genLocals(Rng &rng, const CorpusOptions &options, const std::string &name,
          size_t ops)
{
    FunctionBuilder b(rng, options);
    std::ostringstream out;
    out << "define i32 " << name << "(i32 %p0, i32 %p1, i32 %p2) {\n";
    b.label("entry");
    b.line("%slot = alloca i32");
    b.line("store i32 %p0, i32* %slot");
    b.arithChain(ops);
    b.line("store i32 " + b.regValue() + ", i32* %slot");
    b.line("%ld = load i32, i32* %slot");
    b.addToPool("%ld");
    std::string result = b.fresh();
    b.line(result + " = xor i32 %ld, " + b.value());
    out << b.text() << "  ret i32 " << result << "\n}\n";
    return out.str();
}

/** Global word traffic (load-modify-store on i32/i64 globals). */
std::string
genGlobals(Rng &rng, const CorpusOptions &options, const std::string &name,
           size_t ops)
{
    FunctionBuilder b(rng, options);
    std::ostringstream out;
    out << "define i32 " << name << "(i32 %p0, i32 %p1, i32 %p2) {\n";
    b.label("entry");
    b.line("%w = load i32, i32* @word0");
    b.addToPool("%w");
    b.arithChain(ops);
    b.line("store i32 " + b.regValue() + ", i32* @word0");
    std::string result = b.fresh();
    b.line(result + " = add i32 %w, " + b.regValue());
    out << b.text() << "  ret i32 " << result << "\n}\n";
    return out.str();
}

/** A switch over a computed selector with three cases plus default. */
std::string
genSwitch(Rng &rng, const CorpusOptions &options, const std::string &name,
          size_t ops)
{
    FunctionBuilder b(rng, options);
    std::ostringstream out;
    out << "define i32 " << name << "(i32 %p0, i32 %p1, i32 %p2) {\n";
    b.label("entry");
    b.arithChain(ops / 2 + 1);
    std::string selector = b.fresh();
    b.line(selector + " = and i32 " + b.regValue() + ", 7");
    b.line("switch i32 " + selector + ", label %dflt [");
    b.line("  i32 0, label %c0");
    b.line("  i32 3, label %c1");
    b.line("  i32 5, label %c2");
    b.line("]");
    size_t scope = b.poolMark();
    b.label("c0");
    b.arithChain(2);
    std::string v0 = b.regValue();
    b.line("br label %join");
    b.poolRestore(scope);
    b.label("c1");
    b.arithChain(2);
    std::string v1 = b.regValue();
    b.line("br label %join");
    b.poolRestore(scope);
    b.label("c2");
    b.arithChain(2);
    std::string v2 = b.regValue();
    b.line("br label %join");
    b.poolRestore(scope);
    b.label("dflt");
    std::string v3 = b.regValue();
    b.line("br label %join");
    b.label("join");
    std::string merged = b.fresh();
    b.line(merged + " = phi i32 [ " + v0 + ", %c0 ], [ " + v1 +
           ", %c1 ], [ " + v2 + ", %c2 ], [ " + v3 + ", %dflt ]");
    out << b.text() << "  ret i32 " << merged << "\n}\n";
    return out.str();
}

} // namespace

std::string
generateCorpusSource(const CorpusOptions &options)
{
    Rng rng(options.seed);
    std::ostringstream out;
    out << "; Synthetic GCC-shaped corpus, seed "
        << options.seed << "\n";
    out << "@buf0 = external global [64 x i8]\n";
    out << "@word0 = external global i32\n";
    out << "@word1 = external global i64\n";
    out << "declare i32 @ext0(i32)\n";
    out << "declare i32 @ext1(i32, i32)\n";
    out << "declare void @sink(i32)\n\n";

    for (size_t i = 0; i < options.functionCount; ++i) {
        std::string name = "@fn" + std::to_string(i);
        // Size distribution: mostly small, occasional large bodies
        // (log-ish tail like the paper's Figure 7 right panel).
        size_t ops = rng.range(2, 12);
        if (rng.chancePercent(25))
            ops = rng.range(10, 40) * options.sizeScale;
        if (rng.chancePercent(5))
            ops = rng.range(40, 120) * options.sizeScale;

        unsigned which = static_cast<unsigned>(rng.below(100));
        std::string fn;
        if (options.includeLoops && which < 22) {
            fn = genLoop(rng, options, name, rng.range(1, 5),
                         options.includeMemory && rng.chancePercent(50));
        } else if (options.includeCalls && which < 38) {
            fn = genCalls(rng, options, name, ops);
        } else if (options.includeMemory && which < 50) {
            fn = rng.chancePercent(50)
                     ? genLocals(rng, options, name, ops)
                     : genGlobals(rng, options, name, ops);
        } else if (which < 60) {
            fn = genSwitch(rng, options, name, ops);
        } else if (which < 75) {
            fn = genDiamond(rng, options, name, ops);
        } else {
            fn = genStraightLine(rng, options, name, ops);
        }
        out << fn << "\n";
    }
    return out.str();
}

} // namespace keq::driver
