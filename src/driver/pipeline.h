#ifndef KEQ_DRIVER_PIPELINE_H
#define KEQ_DRIVER_PIPELINE_H

/**
 * @file
 * The end-to-end Translation Validation pipeline (paper Figure 5):
 *
 *   LLVM IR --ISel+hints--> Virtual x86
 *        \                     /
 *         --> VC generator -->  sync points --> KEQ --> verdict
 *
 * One Pipeline validates a module function by function (function
 * granularity per Section 4.5), producing a report with the same outcome
 * categories as the paper's Figure 6: Succeeded / timeout / out-of-memory
 * / other.
 */

#include <string>
#include <vector>

#include "src/isel/isel.h"
#include "src/keq/checker.h"
#include "src/llvmir/ir.h"
#include "src/sem/sync_point.h"
#include "src/vcgen/vcgen.h"
#include "src/vx86/mir.h"

namespace keq::driver {

/** Figure 6 outcome categories (plus Unsupported, the paper's excluded
 *  840 functions). */
enum class Outcome : uint8_t {
    Succeeded,
    Timeout,
    OutOfMemory,
    Other,
    Unsupported,
};

const char *outcomeName(Outcome outcome);

/** Pipeline configuration. */
struct PipelineOptions
{
    isel::IselOptions isel;
    vcgen::VcOptions vc;
    checker::CheckerConfig checker;
    /**
     * Cap (characters) on the textual sync-point specification; exceeding
     * it aborts with OutOfMemory before checking, emulating the K
     * parser's memory blow-up on large VC specs (Section 5.1).
     * 0 = unlimited.
     */
    size_t specSizeBudget = 0;
};

/** Per-function validation report. */
struct FunctionReport
{
    std::string function;
    Outcome outcome = Outcome::Other;
    checker::Verdict verdict;
    std::string detail;
    double seconds = 0.0;
    size_t llvmInstructions = 0;
    size_t x86Instructions = 0;
    size_t syncPointCount = 0;
    size_t specTextSize = 0;
};

/** Whole-module validation report (one Figure 6 table worth of data). */
struct ModuleReport
{
    std::vector<FunctionReport> functions;

    size_t countOutcome(Outcome outcome) const;
    /** Figure 6-style table. */
    std::string renderTable() const;
};

/** Validates every defined function of an LLVM module. */
ModuleReport validateModule(const llvmir::Module &module,
                            const PipelineOptions &options);

/** Parses, verifies and validates LLVM assembly text. */
ModuleReport validateSource(const std::string &llvm_source,
                            const PipelineOptions &options);

/**
 * Validates a single function pair end-to-end; exposed for tests,
 * examples, and the bug-study benches. The machine function is produced
 * by ISel internally (with the configured bug, if any).
 */
FunctionReport validateFunction(const llvmir::Module &module,
                                const llvmir::Function &fn,
                                const PipelineOptions &options);

/**
 * Validates the *register allocation* of one function: lowers with ISel,
 * allocates registers (src/regalloc), and runs the very same KEQ over
 * the pre-RA/post-RA Virtual x86 pair — the paper's "ongoing work"
 * experiment, with the allocator treated as a black box.
 */
FunctionReport validateRegAlloc(const llvmir::Module &module,
                                const llvmir::Function &fn,
                                const PipelineOptions &options);

} // namespace keq::driver

#endif // KEQ_DRIVER_PIPELINE_H
