#ifndef KEQ_DRIVER_PIPELINE_H
#define KEQ_DRIVER_PIPELINE_H

/**
 * @file
 * The end-to-end Translation Validation pipeline (paper Figure 5):
 *
 *   LLVM IR --ISel+hints--> Virtual x86
 *        \                     /
 *         --> VC generator -->  sync points --> KEQ --> verdict
 *
 * One Pipeline validates a module function by function (function
 * granularity per Section 4.5), producing a report with the same outcome
 * categories as the paper's Figure 6: Succeeded / timeout / out-of-memory
 * / other.
 *
 * Function granularity makes validation embarrassingly parallel:
 * Pipeline::runParallel fans the functions out over a fixed thread pool.
 * Thread-ownership model: every per-function validation creates its own
 * TermFactory, semantics, and Z3 backend (hash-consing stays
 * thread-local; no locks on the hot path); the only shared state is the
 * memoizing smt::QueryCache, which is sharded and mutex-guarded.
 * Reports are merged back in deterministic input order, so serial and
 * parallel runs produce identical ordered verdicts.
 */

#include <memory>
#include <string>
#include <vector>

#include "src/isel/isel.h"
#include "src/keq/checker.h"
#include "src/llvmir/ir.h"
#include "src/sem/sync_point.h"
#include "src/smt/caching_solver.h"
#include "src/smt/fault_injection.h"
#include "src/smt/sandbox.h"
#include "src/support/cancellation.h"
#include "src/support/journal.h"
#include "src/vcgen/vcgen.h"
#include "src/vx86/mir.h"

namespace keq::driver {

/** Figure 6 outcome categories (plus Unsupported, the paper's excluded
 *  840 functions). */
enum class Outcome : uint8_t {
    Succeeded,
    Timeout,
    OutOfMemory,
    Other,
    Unsupported,
};

const char *outcomeName(Outcome outcome);

/** Pipeline configuration. */
struct PipelineOptions
{
    isel::IselOptions isel;
    vcgen::VcOptions vc;
    checker::CheckerConfig checker;
    /**
     * Cap (characters) on the textual sync-point specification; exceeding
     * it aborts with OutOfMemory before checking, emulating the K
     * parser's memory blow-up on large VC specs (Section 5.1).
     * 0 = unlimited.
     */
    size_t specSizeBudget = 0;
};

/** How a Pipeline executes and memoizes (orthogonal to what it checks). */
struct ExecutionOptions
{
    /**
     * Worker threads for runParallel; 0 = one per hardware thread.
     * Validation is CPU-bound, so the effective worker count is capped
     * at the host's hardware parallelism (and at the function count).
     */
    unsigned jobs = 1;
    /** Memoize solver verdicts across sync points and functions. */
    bool solverCache = true;
    /**
     * Share one QueryCache across all workers (sharded, mutex-guarded).
     * When false each function task gets a private cache, so memoization
     * only spans the sync points of one function.
     */
    bool sharedCache = true;
    /** Per-shard entry cap before eviction (0 = unlimited). */
    size_t cacheShardCapacity = 1 << 16;
    /**
     * Run the rewrite engine (simplify) and cone-of-influence slicer in
     * front of the cache, and back the stack with the incremental Z3
     * solver instead of a cold-start-per-query one. All three preserve
     * verdicts bit-for-bit (asserted by the differential tests), so they
     * default on; flags exist to measure each stage's contribution and
     * to pin the PR 1 behaviour in regression baselines.
     */
    bool simplifyQueries = true;
    /** Enable cone-of-influence slicing (see simplifyQueries). */
    bool sliceQueries = true;
    /** Use IncrementalZ3Solver as the per-worker backend. */
    bool incrementalSolver = true;

    // --- Fault tolerance (smt::GuardedSolver front) ------------------

    /**
     * Hard per-query wall deadline in ms enforced by the watchdog
     * thread (Z3's soft timeout is best-effort; this one interrupts).
     * 0 disables the deadline; the watchdog still serves cancellation.
     */
    unsigned deadlineMs = 0;
    /** Extra same-rung attempts before escalating a failed query. */
    unsigned solverRetries = 1;
    /** Per-query Z3 memory budget in MB; 0 = unlimited. */
    unsigned solverMemoryMb = 0;
    /** Query-cache byte budget in MB (LRU eviction); 0 = unlimited. */
    size_t cacheMemoryMb = 512;
    /**
     * Fault-injection plan for chaos testing; disabled by default.
     * Injection wraps the optimized rungs only — the terminal pristine
     * rung never misbehaves, which is what lets a chaos run converge
     * to the clean run's exact verdicts.
     */
    smt::FaultPlan faults;
    /** Cooperative cancellation for the whole run (SIGINT). */
    support::CancellationToken cancel;

    // --- Trust-but-verify auditing (smt::CachingSolver) --------------

    /**
     * Fraction of *unaudited* cache hits (verdicts preloaded from a
     * persisted journal) to independently re-check before serving:
     * stored Sat by Evaluator model replay, stored Unsat by a pristine
     * solver. 0 (default) disables; the daemon's --audit-rate sets it.
     * A mismatch quarantines the entry and the query re-solves fresh,
     * so enabling audits never changes a verdict.
     */
    double auditRate = 0.0;
    /** Salt for the deterministic per-key audit sample. */
    uint64_t auditSeed = 0;
    /**
     * Invoked when an audit contradicts a stored verdict (after the
     * quarantine, before the fresh solve). The daemon hooks journal
     * tombstoning and typed AuditMismatch logging here.
     */
    std::function<void(const std::string &key, smt::SatResult stored,
                       smt::SatResult recheck)>
        onAuditMismatch;
    /**
     * Externally-owned verdict cache to validate through. When set it
     * overrides solverCache/sharedCache/cacheShardCapacity — the
     * validation daemon hands every Pipeline the one store-backed
     * cache so verdicts are shared across clients and runs.
     */
    std::shared_ptr<smt::QueryCache> externalCache;
    /**
     * Journal per-function verdicts to this path as they are decided
     * (append-only, crash tolerant). Empty disables checkpointing.
     */
    std::string checkpointPath;
    /**
     * Load checkpointPath first and skip every decided function. The
     * journal must match the module (fingerprint check) or the run
     * fails loudly. Without this flag an existing checkpoint file is
     * overwritten.
     */
    bool resume = false;
    /**
     * Durability policy of the checkpoint journal: Off (default)
     * flushes into the kernel per record (crash-of-this-process safe),
     * Batch fsyncs every JournalWriter::kDefaultBatchInterval records,
     * Record fsyncs every record (power-loss safe, slowest).
     */
    support::FsyncPolicy checkpointFsync = support::FsyncPolicy::Off;

    // --- Process isolation (smt::SandboxSolver) ----------------------

    /**
     * Run every solver query in a sandboxed keq-solver-worker child
     * process under hard rlimits. When the worker binary cannot be
     * found the pipeline warns once and degrades to the in-process
     * stack rather than failing the run.
     */
    bool sandbox = false;
    /** Worker pool size; 0 sizes the pool to the job count. */
    unsigned sandboxWorkers = 0;
    /** Hard RLIMIT_AS per worker in MB; 0 = uncapped. */
    unsigned workerMemoryMb = 0;
    /** Explicit worker binary; empty = discoverWorkerBinary(). */
    std::string workerPath;
    /**
     * Chaos monkey: per-tick probability that each busy worker gets a
     * real SIGKILL/SIGSEGV (sandbox integration tests). 0 disables.
     */
    double sandboxChaosKillRate = 0.0;
    uint64_t sandboxChaosSeed = 0x5eed;

    // --- Portfolio racing (smt::PortfolioSolver / solveGroup) --------

    /**
     * Strategy lanes raced per solver query. 1 (default) disables the
     * portfolio entirely — the stack is byte-identical to the
     * pre-portfolio pipeline. Clamped to
     * smt::SolverStats::kPortfolioMaxLanes. In-process runs race lane
     * threads (PortfolioSolver); sandboxed runs race one worker per
     * lane (WorkerSupervisor::solveGroup).
     */
    unsigned portfolioLanes = 1;
    /**
     * Explicit lane roster ("default,int2bv,cold:random_seed=3");
     * overrides portfolioLanes when nonempty. Entries follow
     * smt::parsePortfolioLanes syntax; an invalid spec fails every
     * function with an Unsupported report rather than being ignored.
     */
    std::string portfolioLaneSpec;
};

/** Per-function validation report. */
struct FunctionReport
{
    std::string function;
    Outcome outcome = Outcome::Other;
    checker::Verdict verdict;
    std::string detail;
    double seconds = 0.0;
    size_t llvmInstructions = 0;
    size_t x86Instructions = 0;
    size_t syncPointCount = 0;
    size_t specTextSize = 0;

    /**
     * Timing-free rendering of everything deterministic in this report.
     * Serial and parallel runs of the same module must produce identical
     * canonical summaries (asserted in tests); wall-clock fields
     * (seconds, solver seconds) are excluded because they legitimately
     * vary run to run.
     */
    std::string canonicalSummary() const;
};

/** Whole-module validation report (one Figure 6 table worth of data). */
struct ModuleReport
{
    std::vector<FunctionReport> functions;
    /** Solver statistics aggregated over all functions in input order. */
    smt::SolverStats solverStats;
    /** Query-cache counters (all zero when caching is disabled). */
    smt::CacheStats cacheStats;
    /** Functions restored from a checkpoint instead of recomputed. */
    size_t resumedFunctions = 0;
    /** Torn/corrupt checkpoint records dropped during resume. */
    size_t droppedCheckpointRecords = 0;

    size_t countOutcome(Outcome outcome) const;
    /** Figure 6-style table. */
    std::string renderTable() const;
    /** Concatenated FunctionReport::canonicalSummary lines. */
    std::string canonicalSummary() const;
};

/**
 * The validation engine: owns the configuration and the (optional)
 * memoizing solver cache, and runs a module either serially or fanned
 * out over a thread pool. The cache persists across run calls, so
 * revalidating a module (or validating similar modules) through one
 * Pipeline gets warm-cache behaviour.
 */
class Pipeline
{
  public:
    explicit Pipeline(PipelineOptions options = {},
                      ExecutionOptions exec = {});

    /** Validates every defined function serially, in module order. */
    ModuleReport run(const llvmir::Module &module);

    /**
     * Validates every defined function on @p jobs worker threads
     * (defaults to ExecutionOptions::jobs). Reports come back in module
     * order regardless of completion order, and verdicts are identical
     * to a serial run's.
     */
    ModuleReport runParallel(const llvmir::Module &module);
    ModuleReport runParallel(const llvmir::Module &module, unsigned jobs);

    /** Validates one function through this Pipeline's cache. */
    FunctionReport validateFunction(const llvmir::Module &module,
                                    const llvmir::Function &fn);

    /**
     * Same, but with a per-call wall-deadline cap in milliseconds: the
     * effective watchdog deadline is the tighter of @p deadlineMsCap
     * and the configured ExecutionOptions::deadlineMs (0 = no cap).
     * The daemon uses this to propagate each job's *remaining* wall
     * budget into GuardedSolver, so a slow client cannot pin a worker
     * past its deadline.
     */
    FunctionReport validateFunction(const llvmir::Module &module,
                                    const llvmir::Function &fn,
                                    unsigned deadlineMsCap);

    const PipelineOptions &options() const { return options_; }
    const ExecutionOptions &execution() const { return exec_; }

    /** The shared cache; null when caching is disabled or per-function. */
    const std::shared_ptr<smt::QueryCache> &cache() const
    {
        return cache_;
    }

    /**
     * The worker-pool supervisor backing --sandbox; created lazily on
     * the first run and reused afterwards (workers stay warm across
     * run calls). Null when the sandbox is off or degraded.
     */
    smt::WorkerSupervisor *sandboxSupervisor(unsigned workers);

  private:
    ModuleReport runWithJobs(const llvmir::Module &module, unsigned jobs);

    PipelineOptions options_;
    ExecutionOptions exec_;
    std::shared_ptr<smt::QueryCache> cache_;
    std::unique_ptr<smt::WorkerSupervisor> supervisor_;
    bool sandboxDegraded_ = false;
};

/** Validates every defined function of an LLVM module. */
ModuleReport validateModule(const llvmir::Module &module,
                            const PipelineOptions &options);

/** Parses, verifies and validates LLVM assembly text. */
ModuleReport validateSource(const std::string &llvm_source,
                            const PipelineOptions &options);

/**
 * Validates a single function pair end-to-end; exposed for tests,
 * examples, and the bug-study benches. The machine function is produced
 * by ISel internally (with the configured bug, if any).
 */
FunctionReport validateFunction(const llvmir::Module &module,
                                const llvmir::Function &fn,
                                const PipelineOptions &options);

/**
 * Validates a *given* (LLVM, Virtual x86) function pair: VC generation
 * and KEQ checking only, no ISel. The machine function may come from
 * anywhere — in particular from the fuzz mutation engine, which runs the
 * real ISel and then rewrites its output; @p hints must describe the
 * lowering the machine function was derived from. options.isel is
 * ignored (the machine side is already fixed).
 */
FunctionReport validateFunctionPair(const llvmir::Module &module,
                                    const llvmir::Function &fn,
                                    vx86::MFunction mfn,
                                    const isel::FunctionHints &hints,
                                    const PipelineOptions &options);

/**
 * Validates the *register allocation* of one function: lowers with ISel,
 * allocates registers (src/regalloc), and runs the very same KEQ over
 * the pre-RA/post-RA Virtual x86 pair — the paper's "ongoing work"
 * experiment, with the allocator treated as a black box.
 */
FunctionReport validateRegAlloc(const llvmir::Module &module,
                                const llvmir::Function &fn,
                                const PipelineOptions &options);

} // namespace keq::driver

#endif // KEQ_DRIVER_PIPELINE_H
