#include "src/llvmir/layout_builder.h"

namespace keq::llvmir {

void
populateLayout(const Module &module, mem::MemoryLayout &layout)
{
    for (const GlobalVariable &global : module.globals)
        layout.addGlobal(global.name, global.valueType->sizeInBytes());
    for (const Function &fn : module.functions) {
        for (const BasicBlock &block : fn.blocks) {
            for (const Instruction &inst : block.insts) {
                if (inst.op == Opcode::Alloca) {
                    layout.addStackSlot(fn.name, inst.result,
                                        inst.sourceType->sizeInBytes());
                }
            }
        }
    }
}

} // namespace keq::llvmir
