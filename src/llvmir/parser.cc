#include "src/llvmir/parser.h"

#include <cctype>
#include <optional>
#include <string>
#include <vector>

#include "src/support/diagnostics.h"

namespace keq::llvmir {

namespace {

using support::ApInt;
using support::Error;

/** Token kinds of the LLVM assembly lexer. */
enum class Tok : uint8_t {
    Word,      // add, i32, label, define, ...
    LocalVar,  // %name
    GlobalVar, // @name
    Number,    // 123, -7
    LabelDef,  // name:
    Punct,     // ( ) { } [ ] , = *
    End,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    int line = 0;
    int col = 0;
};

class Lexer
{
  public:
    explicit Lexer(std::string_view source) : source_(source) { advance(); }

    const Token &peek() const { return current_; }

    Token
    next()
    {
        Token token = current_;
        advance();
        return token;
    }

    [[noreturn]] void
    error(const std::string &message) const
    {
        errorAt(current_.line, current_.col, message, current_.text);
    }

    /**
     * Positioned diagnostic: every parse error carries line *and*
     * column, so editors and the malformed-input tests can anchor the
     * failure precisely even on long lines.
     */
    [[noreturn]] static void
    errorAt(int line, int col, const std::string &message,
            const std::string &near)
    {
        std::string where = "llvm parse error (line " +
                            std::to_string(line) + ", col " +
                            std::to_string(col) + "): " + message;
        if (!near.empty())
            where += " near '" + near + "'";
        throw Error(where);
    }

  private:
    static bool
    isIdentChar(char c)
    {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '.' || c == '-';
    }

    void
    advance()
    {
        skipSpace();
        int col = column();
        current_.line = line_;
        current_.col = col;
        if (pos_ >= source_.size()) {
            current_ = {Tok::End, "", line_, col};
            return;
        }
        char c = source_[pos_];
        if (c == '%' || c == '@') {
            size_t start = pos_++;
            while (pos_ < source_.size() && isIdentChar(source_[pos_]))
                ++pos_;
            current_ = {c == '%' ? Tok::LocalVar : Tok::GlobalVar,
                        std::string(source_.substr(start, pos_ - start)),
                        line_, col};
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && pos_ + 1 < source_.size() &&
             std::isdigit(static_cast<unsigned char>(source_[pos_ + 1])))) {
            size_t start = pos_++;
            while (pos_ < source_.size() &&
                   std::isdigit(static_cast<unsigned char>(source_[pos_]))) {
                ++pos_;
            }
            current_ = {Tok::Number,
                        std::string(source_.substr(start, pos_ - start)),
                        line_, col};
            return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.') {
            size_t start = pos_++;
            while (pos_ < source_.size() && isIdentChar(source_[pos_]))
                ++pos_;
            std::string text(source_.substr(start, pos_ - start));
            if (pos_ < source_.size() && source_[pos_] == ':') {
                ++pos_;
                current_ = {Tok::LabelDef, std::move(text), line_, col};
            } else {
                current_ = {Tok::Word, std::move(text), line_, col};
            }
            return;
        }
        static const std::string punct = "(){}[],=*";
        if (punct.find(c) != std::string::npos) {
            ++pos_;
            current_ = {Tok::Punct, std::string(1, c), line_, col};
            return;
        }
        errorAt(line_, col, "unexpected character", std::string(1, c));
    }

    void
    skipSpace()
    {
        while (pos_ < source_.size()) {
            char c = source_[pos_];
            if (c == ';') {
                while (pos_ < source_.size() && source_[pos_] != '\n')
                    ++pos_;
            } else if (c == '\n') {
                ++line_;
                ++pos_;
                lineStart_ = pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++pos_;
            } else {
                break;
            }
        }
    }

    /** 1-based column of pos_ on the current line. */
    int
    column() const
    {
        return static_cast<int>(pos_ - lineStart_) + 1;
    }

    std::string_view source_;
    size_t pos_ = 0;
    size_t lineStart_ = 0;
    int line_ = 1;
    Token current_;
};

class Parser
{
  public:
    explicit Parser(std::string_view source) : lexer_(source) {}

    Module
    parse()
    {
        Module module;
        types_ = module.types.get();
        while (lexer_.peek().kind != Tok::End) {
            const Token &token = lexer_.peek();
            if (token.kind == Tok::GlobalVar) {
                parseGlobal(module);
            } else if (token.kind == Tok::Word &&
                       token.text == "declare") {
                parseDeclare(module);
            } else if (token.kind == Tok::Word && token.text == "define") {
                parseDefine(module);
            } else {
                lexer_.error("expected global, declare or define");
            }
        }
        return module;
    }

  private:
    // --- token helpers ----------------------------------------------------

    Token
    expect(Tok kind, const std::string &what)
    {
        if (lexer_.peek().kind != kind)
            lexer_.error("expected " + what);
        return lexer_.next();
    }

    void
    expectWord(const std::string &word)
    {
        Token token = expect(Tok::Word, "'" + word + "'");
        if (token.text != word)
            lexer_.error("expected '" + word + "', got '" + token.text +
                         "'");
    }

    void
    expectPunct(const std::string &punct)
    {
        Token token = expect(Tok::Punct, "'" + punct + "'");
        if (token.text != punct)
            lexer_.error("expected '" + punct + "'");
    }

    bool
    acceptWord(const std::string &word)
    {
        if (lexer_.peek().kind == Tok::Word && lexer_.peek().text == word) {
            lexer_.next();
            return true;
        }
        return false;
    }

    bool
    acceptPunct(const std::string &punct)
    {
        if (lexer_.peek().kind == Tok::Punct &&
            lexer_.peek().text == punct) {
            lexer_.next();
            return true;
        }
        return false;
    }

    uint64_t
    parseNumber()
    {
        Token token = expect(Tok::Number, "number");
        try {
            return static_cast<uint64_t>(std::stoll(token.text));
        } catch (const std::out_of_range &) {
            lexer_.errorAt(token.line, token.col,
                           "integer literal out of range", token.text);
        }
    }

    // --- types --------------------------------------------------------------

    const Type *
    parseType()
    {
        const Type *base = parseBaseType();
        while (acceptPunct("*"))
            base = types_->pointerTo(base);
        return base;
    }

    const Type *
    parseBaseType()
    {
        const Token &token = lexer_.peek();
        if (token.kind == Tok::Word) {
            if (token.text == "void") {
                lexer_.next();
                return types_->voidType();
            }
            if (token.text.size() > 1 && token.text[0] == 'i') {
                std::string digits = token.text.substr(1);
                bool numeric = !digits.empty();
                for (char c : digits) {
                    if (!std::isdigit(static_cast<unsigned char>(c)))
                        numeric = false;
                }
                if (numeric) {
                    Token typeTok = lexer_.next();
                    unsigned long bits = 0;
                    try {
                        bits = std::stoul(digits);
                    } catch (const std::out_of_range &) {
                        bits = 0; // reported as unsupported below
                    }
                    if (bits != 1 && bits != 8 && bits != 16 &&
                        bits != 32 && bits != 64) {
                        lexer_.errorAt(typeTok.line, typeTok.col,
                                       "unsupported type",
                                       typeTok.text);
                    }
                    return types_->intType(
                        static_cast<unsigned>(bits));
                }
            }
        }
        if (token.kind == Tok::Punct && token.text == "[") {
            lexer_.next();
            uint64_t length = parseNumber();
            expectWord("x");
            const Type *element = parseType();
            expectPunct("]");
            return types_->arrayOf(element, length);
        }
        if (token.kind == Tok::Punct && token.text == "{") {
            lexer_.next();
            std::vector<const Type *> fields;
            if (!acceptPunct("}")) {
                fields.push_back(parseType());
                while (acceptPunct(","))
                    fields.push_back(parseType());
                expectPunct("}");
            }
            return types_->structOf(std::move(fields));
        }
        lexer_.error("expected type");
    }

    // --- values ---------------------------------------------------------------

    Value
    parseValue(const Type *type)
    {
        const Token &token = lexer_.peek();
        if (token.kind == Tok::Number) {
            Token num = lexer_.next();
            uint64_t bits = 0;
            try {
                bits = static_cast<uint64_t>(std::stoll(num.text));
            } catch (const std::out_of_range &) {
                lexer_.errorAt(num.line, num.col,
                               "integer literal out of range",
                               num.text);
            }
            if (!type->isFirstClass())
                lexer_.error("literal of non-integer type");
            return Value::makeConst(type, ApInt(type->valueBits(), bits));
        }
        if (token.kind == Tok::Word && token.text == "true") {
            lexer_.next();
            return Value::makeConst(type, ApInt(1, 1));
        }
        if (token.kind == Tok::Word && token.text == "false") {
            lexer_.next();
            return Value::makeConst(type, ApInt(1, 0));
        }
        if (token.kind == Tok::Word && token.text == "null") {
            lexer_.next();
            return Value::makeConst(type, ApInt(64, 0));
        }
        if (token.kind == Tok::LocalVar)
            return Value::makeVar(type, lexer_.next().text);
        if (token.kind == Tok::GlobalVar)
            return Value::makeGlobal(type, lexer_.next().text);
        lexer_.error("expected value");
    }

    /** Parses "<type> <value>". */
    Value
    parseTypedValue()
    {
        const Type *type = parseType();
        return parseValue(type);
    }

    // --- top-level entities ------------------------------------------------------

    void
    parseGlobal(Module &module)
    {
        Token name = expect(Tok::GlobalVar, "global name");
        expectPunct("=");
        acceptWord("external");
        expectWord("global");
        const Type *type = parseType();
        // Optional ", align N" is accepted and ignored (our memory model
        // is alignment-free; Section 4.2).
        if (acceptPunct(","))
            skipAlign();
        module.globals.push_back({name.text, type});
    }

    void
    skipAlign()
    {
        expectWord("align");
        parseNumber();
    }

    void
    parseSignature(Function &fn)
    {
        fn.returnType = parseType();
        Token name = expect(Tok::GlobalVar, "function name");
        fn.name = name.text;
        expectPunct("(");
        if (!acceptPunct(")")) {
            do {
                Parameter param;
                param.type = parseType();
                Token pname = expect(Tok::LocalVar, "parameter name");
                param.name = pname.text;
                fn.params.push_back(param);
            } while (acceptPunct(","));
            expectPunct(")");
        }
    }

    void
    parseDeclare(Module &module)
    {
        expectWord("declare");
        Function fn;
        fn.returnType = parseType();
        Token name = expect(Tok::GlobalVar, "function name");
        fn.name = name.text;
        expectPunct("(");
        if (!acceptPunct(")")) {
            do {
                Parameter param;
                param.type = parseType();
                if (lexer_.peek().kind == Tok::LocalVar)
                    param.name = lexer_.next().text;
                fn.params.push_back(param);
            } while (acceptPunct(","));
            expectPunct(")");
        }
        module.functions.push_back(std::move(fn));
    }

    void
    parseDefine(Module &module)
    {
        expectWord("define");
        Function fn;
        parseSignature(fn);
        expectPunct("{");
        callSites_ = 0;
        while (!acceptPunct("}")) {
            BasicBlock block;
            if (lexer_.peek().kind == Tok::LabelDef) {
                block.name = lexer_.next().text;
            } else if (fn.blocks.empty()) {
                block.name = "entry";
            } else {
                lexer_.error("expected block label");
            }
            while (lexer_.peek().kind != Tok::LabelDef &&
                   !(lexer_.peek().kind == Tok::Punct &&
                     lexer_.peek().text == "}")) {
                block.insts.push_back(parseInstruction());
            }
            if (block.insts.empty())
                lexer_.error("empty basic block %" + block.name);
            fn.blocks.push_back(std::move(block));
        }
        if (fn.blocks.empty())
            lexer_.error("function body without blocks");
        module.functions.push_back(std::move(fn));
    }

    // --- instructions ---------------------------------------------------------------

    Instruction
    parseInstruction()
    {
        const Token &token = lexer_.peek();
        if (token.kind == Tok::LocalVar) {
            std::string result = lexer_.next().text;
            expectPunct("=");
            Instruction inst = parseRhs();
            inst.result = std::move(result);
            return inst;
        }
        if (token.kind == Tok::Word) {
            if (token.text == "store")
                return parseStore();
            if (token.text == "br")
                return parseBr();
            if (token.text == "switch")
                return parseSwitch();
            if (token.text == "ret")
                return parseRet();
            if (token.text == "call") {
                Instruction inst = parseCall();
                return inst;
            }
            if (token.text == "unreachable") {
                lexer_.next();
                Instruction inst;
                inst.op = Opcode::Unreachable;
                return inst;
            }
        }
        lexer_.error("expected instruction");
    }

    std::optional<Opcode>
    binOpcode(const std::string &word) const
    {
        if (word == "add") return Opcode::Add;
        if (word == "sub") return Opcode::Sub;
        if (word == "mul") return Opcode::Mul;
        if (word == "udiv") return Opcode::UDiv;
        if (word == "sdiv") return Opcode::SDiv;
        if (word == "urem") return Opcode::URem;
        if (word == "srem") return Opcode::SRem;
        if (word == "and") return Opcode::And;
        if (word == "or") return Opcode::Or;
        if (word == "xor") return Opcode::Xor;
        if (word == "shl") return Opcode::Shl;
        if (word == "lshr") return Opcode::LShr;
        if (word == "ashr") return Opcode::AShr;
        return std::nullopt;
    }

    std::optional<Opcode>
    castOpcode(const std::string &word) const
    {
        if (word == "zext") return Opcode::ZExt;
        if (word == "sext") return Opcode::SExt;
        if (word == "trunc") return Opcode::Trunc;
        if (word == "ptrtoint") return Opcode::PtrToInt;
        if (word == "inttoptr") return Opcode::IntToPtr;
        if (word == "bitcast") return Opcode::Bitcast;
        return std::nullopt;
    }

    Instruction
    parseRhs()
    {
        Token opTok = expect(Tok::Word, "opcode");
        const std::string &word = opTok.text;
        Instruction inst;

        if (auto bin = binOpcode(word)) {
            inst.op = *bin;
            // Flags (order-insensitive).
            while (true) {
                if (acceptWord("nuw")) {
                    inst.nuw = true;
                } else if (acceptWord("nsw")) {
                    inst.nsw = true;
                } else if (acceptWord("exact")) {
                    // accepted, no semantic effect in our subset
                } else {
                    break;
                }
            }
            inst.type = parseType();
            inst.operands.push_back(parseValue(inst.type));
            expectPunct(",");
            inst.operands.push_back(parseValue(inst.type));
            return inst;
        }
        if (word == "icmp") {
            inst.op = Opcode::ICmp;
            inst.pred = parsePred();
            const Type *type = parseType();
            inst.type = types_->intType(1);
            inst.operands.push_back(parseValue(type));
            expectPunct(",");
            inst.operands.push_back(parseValue(type));
            return inst;
        }
        if (auto cast = castOpcode(word)) {
            inst.op = *cast;
            const Type *from = parseType();
            inst.operands.push_back(parseValue(from));
            expectWord("to");
            inst.type = parseType();
            return inst;
        }
        if (word == "getelementptr") {
            inst.op = Opcode::GetElementPtr;
            acceptWord("inbounds");
            inst.sourceType = parseType();
            expectPunct(",");
            const Type *ptrType = parseType();
            inst.operands.push_back(parseValue(ptrType));
            while (acceptPunct(",")) {
                const Type *idxType = parseType();
                inst.operands.push_back(parseValue(idxType));
            }
            inst.type = types_->pointerTo(resultOfGep(inst));
            return inst;
        }
        if (word == "load") {
            inst.op = Opcode::Load;
            inst.type = parseType();
            inst.sourceType = inst.type;
            expectPunct(",");
            const Type *ptrType = parseType();
            inst.operands.push_back(parseValue(ptrType));
            if (acceptPunct(","))
                skipAlign();
            return inst;
        }
        if (word == "alloca") {
            inst.op = Opcode::Alloca;
            inst.sourceType = parseType();
            inst.type = types_->pointerTo(inst.sourceType);
            if (acceptPunct(","))
                skipAlign();
            return inst;
        }
        if (word == "phi") {
            inst.op = Opcode::Phi;
            inst.type = parseType();
            do {
                expectPunct("[");
                PhiIncoming incoming;
                incoming.value = parseValue(inst.type);
                expectPunct(",");
                Token block = expect(Tok::LocalVar, "predecessor label");
                incoming.block = block.text.substr(1);
                expectPunct("]");
                inst.incoming.push_back(std::move(incoming));
            } while (acceptPunct(","));
            return inst;
        }
        if (word == "select") {
            inst.op = Opcode::Select;
            const Type *condType = parseType();
            inst.operands.push_back(parseValue(condType));
            expectPunct(",");
            inst.type = parseType();
            inst.operands.push_back(parseValue(inst.type));
            expectPunct(",");
            const Type *elseType = parseType();
            inst.operands.push_back(parseValue(elseType));
            return inst;
        }
        if (word == "call")
            return parseCallRest();
        lexer_.errorAt(opTok.line, opTok.col, "unsupported opcode",
                       opTok.text);
    }

    ICmpPred
    parsePred()
    {
        Token token = expect(Tok::Word, "icmp predicate");
        const std::string &p = token.text;
        if (p == "eq") return ICmpPred::Eq;
        if (p == "ne") return ICmpPred::Ne;
        if (p == "ult") return ICmpPred::Ult;
        if (p == "ule") return ICmpPred::Ule;
        if (p == "ugt") return ICmpPred::Ugt;
        if (p == "uge") return ICmpPred::Uge;
        if (p == "slt") return ICmpPred::Slt;
        if (p == "sle") return ICmpPred::Sle;
        if (p == "sgt") return ICmpPred::Sgt;
        if (p == "sge") return ICmpPred::Sge;
        lexer_.errorAt(token.line, token.col, "unknown icmp predicate",
                       token.text);
    }

    /** GEP result element type: descend per index list. */
    const Type *
    resultOfGep(const Instruction &inst)
    {
        const Type *ptrType = inst.operands[0].type;
        if (!ptrType->isPointer())
            lexer_.error("getelementptr base is not a pointer");
        const Type *current = inst.sourceType;
        // First index steps over the base pointer, keeping the type.
        for (size_t i = 2; i < inst.operands.size(); ++i) {
            if (current->isArray()) {
                current = current->elementType();
            } else if (current->isStruct()) {
                const Value &index = inst.operands[i];
                if (!index.isConst())
                    lexer_.error("struct GEP index must be constant");
                uint64_t field = index.constant.zext();
                if (field >= current->fields().size())
                    lexer_.error("struct GEP index out of range");
                current = current->fields()[field];
            } else {
                lexer_.error("getelementptr into non-aggregate");
            }
        }
        return current;
    }

    Instruction
    parseStore()
    {
        expectWord("store");
        Instruction inst;
        inst.op = Opcode::Store;
        const Type *valueType = parseType();
        inst.type = valueType;
        inst.operands.push_back(parseValue(valueType));
        expectPunct(",");
        const Type *ptrType = parseType();
        inst.operands.push_back(parseValue(ptrType));
        if (acceptPunct(","))
            skipAlign();
        return inst;
    }

    Instruction
    parseBr()
    {
        expectWord("br");
        Instruction inst;
        if (acceptWord("label")) {
            inst.op = Opcode::Br;
            Token target = expect(Tok::LocalVar, "branch target");
            inst.target1 = target.text.substr(1);
            return inst;
        }
        inst.op = Opcode::CondBr;
        const Type *condType = parseType();
        inst.operands.push_back(parseValue(condType));
        expectPunct(",");
        expectWord("label");
        Token t1 = expect(Tok::LocalVar, "true target");
        inst.target1 = t1.text.substr(1);
        expectPunct(",");
        expectWord("label");
        Token t2 = expect(Tok::LocalVar, "false target");
        inst.target2 = t2.text.substr(1);
        return inst;
    }

    Instruction
    parseSwitch()
    {
        expectWord("switch");
        Instruction inst;
        inst.op = Opcode::Switch;
        const Type *type = parseType();
        inst.operands.push_back(parseValue(type));
        expectPunct(",");
        expectWord("label");
        Token def = expect(Tok::LocalVar, "default label");
        inst.target1 = def.text.substr(1);
        expectPunct("[");
        while (!acceptPunct("]")) {
            const Type *case_type = parseType();
            Value case_value = parseValue(case_type);
            if (!case_value.isConst())
                lexer_.error("switch case value must be constant");
            expectPunct(",");
            expectWord("label");
            Token target = expect(Tok::LocalVar, "case label");
            inst.switchCases.emplace_back(case_value.constant,
                                          target.text.substr(1));
        }
        return inst;
    }

    Instruction
    parseRet()
    {
        expectWord("ret");
        Instruction inst;
        inst.op = Opcode::Ret;
        if (acceptWord("void"))
            return inst;
        const Type *type = parseType();
        inst.operands.push_back(parseValue(type));
        return inst;
    }

    Instruction
    parseCall()
    {
        expectWord("call");
        return parseCallRest();
    }

    Instruction
    parseCallRest()
    {
        Instruction inst;
        inst.op = Opcode::Call;
        inst.type = parseType();
        Token callee = expect(Tok::GlobalVar, "callee");
        inst.callee = callee.text;
        expectPunct("(");
        if (!acceptPunct(")")) {
            do {
                inst.operands.push_back(parseTypedValue());
            } while (acceptPunct(","));
            expectPunct(")");
        }
        inst.callSiteId = "cs" + std::to_string(callSites_++);
        return inst;
    }

    Lexer lexer_;
    TypeContext *types_ = nullptr;
    unsigned callSites_ = 0;
};

} // namespace

Module
parseModule(std::string_view source)
{
    return Parser(source).parse();
}

} // namespace keq::llvmir
