#ifndef KEQ_LLVMIR_SYMBOLIC_SEMANTICS_H
#define KEQ_LLVMIR_SYMBOLIC_SEMANTICS_H

/**
 * @file
 * Symbolic operational semantics of the LLVM IR subset (Section 4.2).
 *
 * This is the C++ analogue of the paper's K definition of LLVM IR: it
 * implements the language-parametric sem::Semantics interface by stepping
 * sem::SymbolicState values. Undefined behaviour (out-of-bounds accesses,
 * nsw/nuw overflow, division by zero) branches into marked error states
 * per Section 4.6.
 */

#include "src/llvmir/ir.h"
#include "src/memory/symbolic_memory.h"
#include "src/sem/semantics.h"

namespace keq::llvmir {

/** Symbolic semantics of one LLVM module. */
class SymbolicSemantics : public sem::Semantics
{
  public:
    /**
     * @param module Verified module; must outlive the semantics.
     * @param factory Term factory shared with the checker and the other
     *                language's semantics.
     * @param layout Common memory layout already populated from the module.
     */
    SymbolicSemantics(const Module &module, smt::TermFactory &factory,
                      const mem::MemoryLayout &layout);

    std::string name() const override { return "LLVM"; }
    std::vector<sem::SymbolicState>
    step(const sem::SymbolicState &state) override;
    sem::SymbolicState makeState(const sem::StateSeed &seed,
                                 std::map<std::string, smt::Term> env,
                                 smt::Term memory,
                                 smt::Term path_cond) override;
    unsigned registerWidth(const std::string &function,
                           const std::string &reg) const override;
    void bindRegister(sem::SymbolicState &state,
                      const std::string &function, const std::string &reg,
                      smt::Term value) override;
    smt::Term readRegister(sem::SymbolicState &state,
                           const std::string &function,
                           const std::string &reg) override;
    smt::TermFactory &factory() override { return factory_; }

  private:
    smt::Term evalValue(sem::SymbolicState &state, const std::string &fn,
                        const Value &value);
    const Instruction &currentInst(const sem::SymbolicState &state) const;
    const Function &function(const std::string &name) const;

    const Module &module_;
    smt::TermFactory &factory_;
    mem::SymbolicMemory symMem_;
};

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_SYMBOLIC_SEMANTICS_H
