#include "src/llvmir/verifier.h"

#include <map>
#include <set>

#include "src/support/diagnostics.h"
#include "src/support/strings.h"

namespace keq::llvmir {

namespace {

void
verifyFunction(const Module &module, const Function &fn,
               std::vector<std::string> &problems)
{
    auto complain = [&](const std::string &what) {
        problems.push_back(fn.name + ": " + what);
    };

    std::set<std::string> block_names;
    std::map<std::string, std::vector<std::string>> preds;
    for (const BasicBlock &block : fn.blocks) {
        if (!block_names.insert(block.name).second)
            complain("duplicate block %" + block.name);
    }
    for (const BasicBlock &block : fn.blocks) {
        for (const std::string &succ : block.successors()) {
            if (!block_names.count(succ)) {
                complain("branch to unknown block %" + succ + " from %" +
                         block.name);
            } else {
                preds[succ].push_back(block.name);
            }
        }
    }

    // SSA definitions: params + instruction results, unique.
    std::set<std::string> defs;
    for (const Parameter &param : fn.params)
        defs.insert(param.name);
    for (const BasicBlock &block : fn.blocks) {
        for (const Instruction &inst : block.insts) {
            if (!inst.result.empty() && !defs.insert(inst.result).second)
                complain("multiple definitions of " + inst.result);
        }
    }

    for (const BasicBlock &block : fn.blocks) {
        if (block.insts.empty()) {
            complain("empty block %" + block.name);
            continue;
        }
        for (size_t i = 0; i < block.insts.size(); ++i) {
            const Instruction &inst = block.insts[i];
            bool is_last = i + 1 == block.insts.size();
            if (inst.isTerminator() != is_last) {
                complain(std::string(is_last ? "missing" : "misplaced") +
                         " terminator in %" + block.name);
            }
            if (inst.op == Opcode::Phi && i > 0 &&
                block.insts[i - 1].op != Opcode::Phi) {
                complain("phi not at head of %" + block.name);
            }
            // Operand resolution.
            for (const Value &value : inst.operands) {
                if (value.isVar() && !defs.count(value.name))
                    complain("use of undefined value " + value.name);
                if (value.isGlobal() && !module.findGlobal(value.name))
                    complain("use of unknown global " + value.name);
            }
            if (inst.op == Opcode::Phi) {
                std::set<std::string> incoming_blocks;
                for (const PhiIncoming &incoming : inst.incoming) {
                    incoming_blocks.insert(incoming.block);
                    if (incoming.value.isVar() &&
                        !defs.count(incoming.value.name)) {
                        complain("phi uses undefined value " +
                                 incoming.value.name);
                    }
                }
                std::set<std::string> actual(preds[block.name].begin(),
                                             preds[block.name].end());
                if (incoming_blocks != actual) {
                    complain("phi incoming blocks disagree with "
                             "predecessors of %" +
                             block.name);
                }
            }
            if (inst.op == Opcode::Switch) {
                std::set<uint64_t> case_values;
                for (const auto &[value, target] : inst.switchCases) {
                    if (!case_values.insert(value.zext()).second) {
                        complain("duplicate switch case value " +
                                 value.toString());
                    }
                }
            }
            if (inst.op == Opcode::Call) {
                // Callee may be external (missing), matching the paper's
                // treatment of unknown callees; nothing to check beyond
                // syntax.
            }
        }
    }
}

} // namespace

std::vector<std::string>
verifyModule(const Module &module)
{
    std::vector<std::string> problems;
    std::set<std::string> fn_names;
    for (const Function &fn : module.functions) {
        if (!fn_names.insert(fn.name).second)
            problems.push_back("duplicate function " + fn.name);
        if (!fn.isDeclaration())
            verifyFunction(module, fn, problems);
    }
    return problems;
}

void
verifyModuleOrThrow(const Module &module)
{
    std::vector<std::string> problems = verifyModule(module);
    if (!problems.empty()) {
        support::fatal("llvm verifier: " +
                       support::join(problems, "; "));
    }
}

} // namespace keq::llvmir
