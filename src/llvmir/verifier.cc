#include "src/llvmir/verifier.h"

#include <map>
#include <set>

#include "src/support/diagnostics.h"
#include "src/support/strings.h"

namespace keq::llvmir {

namespace {

/**
 * Type-consistency checks. The parser records the *written* type on every
 * operand, so a use site can disagree with its definition (or a pointer
 * can be dereferenced at the wrong pointee type) while still parsing
 * fine. The symbolic semantics and ISel assume these invariants; the
 * random program generator (src/fuzz) leans on the verifier to prove its
 * output well-typed by construction, so every violated invariant must be
 * a diagnostic here rather than an assertion failure further down.
 */
void
typeCheckInstruction(const Module &module, const Function &fn,
                     const Instruction &inst,
                     const std::map<std::string, const Type *> &def_types,
                     std::vector<std::string> &problems)
{
    auto complain = [&](const std::string &what) {
        problems.push_back(fn.name + ": " + what);
    };

    // Use-site type must match the definition-site type. Skip operands
    // whose definition is unknown (already reported) to avoid cascades.
    auto check_use = [&](const Value &value, const char *where) {
        if (value.type == nullptr) {
            complain(std::string("untyped operand in ") + where);
            return false;
        }
        if (value.isVar()) {
            auto it = def_types.find(value.name);
            if (it != def_types.end() && it->second != nullptr &&
                it->second != value.type) {
                complain("use of " + value.name + " at type " +
                         value.type->toString() + " but defined as " +
                         it->second->toString() + " (in " + where + ")");
                return false;
            }
        } else if (value.isGlobal()) {
            const GlobalVariable *global = module.findGlobal(value.name);
            if (global != nullptr && !value.type->isPointer()) {
                complain("global " + value.name +
                         " used at non-pointer type " +
                         value.type->toString());
                return false;
            }
        } else if (!value.type->isFirstClass()) {
            complain(std::string("literal of non-first-class type in ") +
                     where);
            return false;
        }
        return true;
    };
    for (const Value &value : inst.operands)
        check_use(value, opcodeName(inst.op));
    for (const PhiIncoming &incoming : inst.incoming)
        check_use(incoming.value, "phi");

    auto is_int = [](const Type *type) {
        return type != nullptr && type->isInteger();
    };

    switch (inst.op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::UDiv: case Opcode::SDiv: case Opcode::URem:
      case Opcode::SRem: case Opcode::And: case Opcode::Or:
      case Opcode::Xor: case Opcode::Shl: case Opcode::LShr:
      case Opcode::AShr:
        if (!is_int(inst.type)) {
            complain(std::string(opcodeName(inst.op)) +
                     " on non-integer type");
            break;
        }
        for (const Value &value : inst.operands) {
            if (value.type != inst.type)
                complain(std::string(opcodeName(inst.op)) +
                         " operand type differs from result type");
        }
        break;
      case Opcode::ICmp:
        if (inst.operands.size() == 2 &&
            inst.operands[0].type != inst.operands[1].type) {
            complain("icmp operand types disagree");
        }
        for (const Value &value : inst.operands) {
            if (value.type != nullptr && !value.type->isFirstClass())
                complain("icmp on non-first-class type");
        }
        break;
      case Opcode::ZExt: case Opcode::SExt:
        if (!is_int(inst.type) || inst.operands.empty() ||
            !is_int(inst.operands[0].type)) {
            complain(std::string(opcodeName(inst.op)) +
                     " requires integer types");
        } else if (inst.operands[0].type->bitWidth() >=
                   inst.type->bitWidth()) {
            complain(std::string(opcodeName(inst.op)) +
                     " must widen (" +
                     inst.operands[0].type->toString() + " to " +
                     inst.type->toString() + ")");
        }
        break;
      case Opcode::Trunc:
        if (!is_int(inst.type) || inst.operands.empty() ||
            !is_int(inst.operands[0].type)) {
            complain("trunc requires integer types");
        } else if (inst.operands[0].type->bitWidth() <=
                   inst.type->bitWidth()) {
            complain("trunc must narrow (" +
                     inst.operands[0].type->toString() + " to " +
                     inst.type->toString() + ")");
        }
        break;
      case Opcode::PtrToInt:
        if (inst.operands.empty() || inst.operands[0].type == nullptr ||
            !inst.operands[0].type->isPointer() || !is_int(inst.type)) {
            complain("ptrtoint requires pointer-to-integer types");
        }
        break;
      case Opcode::IntToPtr:
        if (inst.operands.empty() || !is_int(inst.operands[0].type) ||
            inst.type == nullptr || !inst.type->isPointer()) {
            complain("inttoptr requires integer-to-pointer types");
        }
        break;
      case Opcode::Bitcast:
        if (inst.operands.empty() || inst.operands[0].type == nullptr ||
            inst.type == nullptr ||
            !inst.operands[0].type->isPointer() ||
            !inst.type->isPointer()) {
            complain("bitcast outside the pointer-to-pointer subset");
        }
        break;
      case Opcode::Load:
        if (inst.operands.empty() || inst.operands[0].type == nullptr ||
            !inst.operands[0].type->isPointer()) {
            complain("load from non-pointer operand");
        } else if (inst.operands[0].type->pointee() != inst.type) {
            complain("load result type " +
                     (inst.type ? inst.type->toString() : "?") +
                     " disagrees with pointer operand " +
                     inst.operands[0].type->toString());
        }
        break;
      case Opcode::Store:
        if (inst.operands.size() < 2 ||
            inst.operands[1].type == nullptr ||
            !inst.operands[1].type->isPointer()) {
            complain("store to non-pointer operand");
        } else if (inst.operands[1].type->pointee() != inst.type) {
            complain("stored value type " +
                     (inst.type ? inst.type->toString() : "?") +
                     " disagrees with pointer operand " +
                     inst.operands[1].type->toString());
        }
        break;
      case Opcode::GetElementPtr:
        if (inst.operands.empty() || inst.operands[0].type == nullptr ||
            !inst.operands[0].type->isPointer()) {
            complain("getelementptr base is not a pointer");
        } else if (inst.sourceType != nullptr &&
                   inst.operands[0].type->pointee() != inst.sourceType) {
            complain("getelementptr source type disagrees with base "
                     "pointer");
        }
        for (size_t i = 1; i < inst.operands.size(); ++i) {
            if (!is_int(inst.operands[i].type))
                complain("getelementptr index is not an integer");
        }
        break;
      case Opcode::Phi:
        for (const PhiIncoming &incoming : inst.incoming) {
            if (incoming.value.type != nullptr &&
                incoming.value.type != inst.type) {
                complain("phi incoming type " +
                         incoming.value.type->toString() +
                         " disagrees with phi type");
            }
        }
        break;
      case Opcode::Select:
        if (inst.operands.size() == 3) {
            const Type *cond = inst.operands[0].type;
            if (!is_int(cond) || cond->bitWidth() != 1)
                complain("select condition is not i1");
            if (inst.operands[1].type != inst.type ||
                inst.operands[2].type != inst.type) {
                complain("select arm types disagree with result type");
            }
        }
        break;
      case Opcode::CondBr:
        if (inst.operands.empty() || !is_int(inst.operands[0].type) ||
            inst.operands[0].type->bitWidth() != 1) {
            complain("conditional branch condition is not i1");
        }
        break;
      case Opcode::Switch:
        if (inst.operands.empty() || !is_int(inst.operands[0].type)) {
            complain("switch selector is not an integer");
        } else {
            unsigned width = inst.operands[0].type->bitWidth();
            for (const auto &[value, target] : inst.switchCases) {
                if (value.width() != width)
                    complain("switch case width " +
                             std::to_string(value.width()) +
                             " disagrees with selector width " +
                             std::to_string(width));
            }
        }
        break;
      case Opcode::Ret:
        if (fn.returnType != nullptr && fn.returnType->isVoid()) {
            if (!inst.operands.empty())
                complain("ret with a value in a void function");
        } else if (inst.operands.empty()) {
            complain("ret void in a non-void function");
        } else if (inst.operands[0].type != fn.returnType) {
            complain("ret type disagrees with function return type");
        }
        break;
      case Opcode::Alloca:
        if (inst.type == nullptr || !inst.type->isPointer() ||
            (inst.sourceType != nullptr &&
             inst.type->pointee() != inst.sourceType)) {
            complain("alloca result is not a pointer to the allocated "
                     "type");
        }
        break;
      case Opcode::Br: case Opcode::Call: case Opcode::Unreachable:
        break;
    }
}

void
verifyFunction(const Module &module, const Function &fn,
               std::vector<std::string> &problems)
{
    auto complain = [&](const std::string &what) {
        problems.push_back(fn.name + ": " + what);
    };

    std::set<std::string> block_names;
    std::map<std::string, std::vector<std::string>> preds;
    for (const BasicBlock &block : fn.blocks) {
        if (!block_names.insert(block.name).second)
            complain("duplicate block %" + block.name);
    }
    for (const BasicBlock &block : fn.blocks) {
        for (const std::string &succ : block.successors()) {
            if (!block_names.count(succ)) {
                complain("branch to unknown block %" + succ + " from %" +
                         block.name);
            } else {
                preds[succ].push_back(block.name);
            }
        }
    }

    // SSA definitions: params + instruction results, unique. The
    // definition-site types feed the use-site consistency checks.
    std::set<std::string> defs;
    std::map<std::string, const Type *> def_types;
    for (const Parameter &param : fn.params) {
        defs.insert(param.name);
        def_types[param.name] = param.type;
    }
    for (const BasicBlock &block : fn.blocks) {
        for (const Instruction &inst : block.insts) {
            if (inst.result.empty())
                continue;
            if (!defs.insert(inst.result).second)
                complain("multiple definitions of " + inst.result);
            else
                def_types[inst.result] = inst.type;
        }
    }

    for (const BasicBlock &block : fn.blocks) {
        if (block.insts.empty()) {
            complain("empty block %" + block.name);
            continue;
        }
        for (size_t i = 0; i < block.insts.size(); ++i) {
            const Instruction &inst = block.insts[i];
            bool is_last = i + 1 == block.insts.size();
            if (inst.isTerminator() != is_last) {
                complain(std::string(is_last ? "missing" : "misplaced") +
                         " terminator in %" + block.name);
            }
            if (inst.op == Opcode::Phi && i > 0 &&
                block.insts[i - 1].op != Opcode::Phi) {
                complain("phi not at head of %" + block.name);
            }
            // Operand resolution.
            for (const Value &value : inst.operands) {
                if (value.isVar() && !defs.count(value.name))
                    complain("use of undefined value " + value.name);
                if (value.isGlobal() && !module.findGlobal(value.name))
                    complain("use of unknown global " + value.name);
            }
            if (inst.op == Opcode::Phi) {
                std::set<std::string> incoming_blocks;
                for (const PhiIncoming &incoming : inst.incoming) {
                    incoming_blocks.insert(incoming.block);
                    if (incoming.value.isVar() &&
                        !defs.count(incoming.value.name)) {
                        complain("phi uses undefined value " +
                                 incoming.value.name);
                    }
                }
                std::set<std::string> actual(preds[block.name].begin(),
                                             preds[block.name].end());
                if (incoming_blocks != actual) {
                    complain("phi incoming blocks disagree with "
                             "predecessors of %" +
                             block.name);
                }
            }
            if (inst.op == Opcode::Switch) {
                std::set<uint64_t> case_values;
                for (const auto &[value, target] : inst.switchCases) {
                    if (!case_values.insert(value.zext()).second) {
                        complain("duplicate switch case value " +
                                 value.toString());
                    }
                }
            }
            if (inst.op == Opcode::Call) {
                // Callee may be external (missing), matching the paper's
                // treatment of unknown callees; nothing to check beyond
                // syntax.
            }
            typeCheckInstruction(module, fn, inst, def_types, problems);
        }
    }
}

} // namespace

std::vector<std::string>
verifyModule(const Module &module)
{
    std::vector<std::string> problems;
    std::set<std::string> fn_names;
    for (const Function &fn : module.functions) {
        if (!fn_names.insert(fn.name).second)
            problems.push_back("duplicate function " + fn.name);
        if (!fn.isDeclaration())
            verifyFunction(module, fn, problems);
    }
    return problems;
}

void
verifyModuleOrThrow(const Module &module)
{
    std::vector<std::string> problems = verifyModule(module);
    if (!problems.empty()) {
        support::fatal("llvm verifier: " +
                       support::join(problems, "; "));
    }
}

} // namespace keq::llvmir
