#include "src/llvmir/interpreter.h"

#include <map>
#include <sstream>

#include "src/support/diagnostics.h"

namespace keq::llvmir {

using sem::ErrorKind;
using support::ApInt;

struct Interpreter::Frame
{
    const Function *fn = nullptr;
    std::map<std::string, ApInt> env;
    const BasicBlock *block = nullptr;
    std::string cameFrom;
    size_t index = 0;
};

Interpreter::Interpreter(const Module &module, mem::ConcreteMemory &memory)
    : module_(module), memory_(memory)
{
    external_ = [](const std::string &,
                   const std::vector<ApInt> &) { return ApInt(64, 0); };
}

void
Interpreter::setExternalHandler(ExternalCallHandler handler)
{
    external_ = std::move(handler);
}

ApInt
Interpreter::evalValue(const Frame &frame, const Value &value) const
{
    switch (value.kind) {
      case Value::Kind::Const:
        return value.constant;
      case Value::Kind::Var: {
        auto it = frame.env.find(value.name);
        KEQ_ASSERT(it != frame.env.end(),
                   "use of unbound value " + value.name);
        return it->second;
      }
      case Value::Kind::Global: {
        const mem::MemoryObject *object =
            memory_.layout().find(value.name);
        KEQ_ASSERT(object != nullptr, "unknown global " + value.name);
        return ApInt(64, object->base);
      }
    }
    KEQ_ASSERT(false, "evalValue: bad kind");
    return {};
}

ExecResult
Interpreter::run(const Function &fn, const std::vector<ApInt> &args,
                 size_t max_steps)
{
    size_t budget = max_steps;
    std::vector<std::string> call_trace;
    ExecResult result = runInternal(fn, args, budget, call_trace);
    result.callTrace = std::move(call_trace);
    result.steps = max_steps - budget;
    return result;
}

namespace {

ApInt
evalICmp(ICmpPred pred, ApInt a, ApInt b)
{
    bool r = false;
    switch (pred) {
      case ICmpPred::Eq: r = a.eq(b); break;
      case ICmpPred::Ne: r = a.ne(b); break;
      case ICmpPred::Ult: r = a.ult(b); break;
      case ICmpPred::Ule: r = a.ule(b); break;
      case ICmpPred::Ugt: r = a.ugt(b); break;
      case ICmpPred::Uge: r = a.uge(b); break;
      case ICmpPred::Slt: r = a.slt(b); break;
      case ICmpPred::Sle: r = a.sle(b); break;
      case ICmpPred::Sgt: r = a.sgt(b); break;
      case ICmpPred::Sge: r = a.sge(b); break;
    }
    return ApInt(1, r ? 1 : 0);
}

} // namespace

ExecResult
Interpreter::runInternal(const Function &fn, const std::vector<ApInt> &args,
                         size_t &budget,
                         std::vector<std::string> &call_trace)
{
    KEQ_ASSERT(args.size() == fn.params.size(),
               "argument count mismatch calling " + fn.name);
    Frame frame;
    frame.fn = &fn;
    frame.block = &fn.entry();
    for (size_t i = 0; i < args.size(); ++i)
        frame.env[fn.params[i].name] =
            args[i].truncTo(fn.params[i].type->valueBits());

    auto trap = [](ErrorKind kind) {
        ExecResult r;
        r.outcome = ExecOutcome::Trapped;
        r.error = kind;
        return r;
    };

    while (true) {
        if (budget == 0)
            return {};
        --budget;
        KEQ_ASSERT(frame.index < frame.block->insts.size(),
                   "fell off block %" + frame.block->name);
        const Instruction &inst = frame.block->insts[frame.index];

        switch (inst.op) {
          case Opcode::Phi: {
            // All phis of the block read their inputs simultaneously.
            std::map<std::string, ApInt> updates;
            size_t i = frame.index;
            for (; i < frame.block->insts.size() &&
                   frame.block->insts[i].op == Opcode::Phi;
                 ++i) {
                const Instruction &phi = frame.block->insts[i];
                bool found = false;
                for (const PhiIncoming &incoming : phi.incoming) {
                    if (incoming.block == frame.cameFrom) {
                        updates[phi.result] =
                            evalValue(frame, incoming.value);
                        found = true;
                        break;
                    }
                }
                KEQ_ASSERT(found, "phi without incoming for %" +
                                      frame.cameFrom);
            }
            for (auto &[name, value] : updates)
                frame.env[name] = value;
            frame.index = i;
            continue;
          }
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul: {
            ApInt a = evalValue(frame, inst.operands[0]);
            ApInt b = evalValue(frame, inst.operands[1]);
            bool sovf = false, uovf = false;
            ApInt r(a.width(), 0);
            if (inst.op == Opcode::Add) {
                r = a.add(b);
                sovf = a.addOverflowSigned(b);
                uovf = a.addOverflowUnsigned(b);
            } else if (inst.op == Opcode::Sub) {
                r = a.sub(b);
                sovf = a.subOverflowSigned(b);
                uovf = a.subOverflowUnsigned(b);
            } else {
                r = a.mul(b);
                sovf = a.mulOverflowSigned(b);
                uovf = a.mulOverflowUnsigned(b);
            }
            if ((inst.nsw && sovf) || (inst.nuw && uovf))
                return trap(ErrorKind::SignedOverflow);
            frame.env[inst.result] = r;
            break;
          }
          case Opcode::UDiv:
          case Opcode::SDiv:
          case Opcode::URem:
          case Opcode::SRem: {
            ApInt a = evalValue(frame, inst.operands[0]);
            ApInt b = evalValue(frame, inst.operands[1]);
            if (b.isZero())
                return trap(ErrorKind::DivByZero);
            bool is_signed =
                inst.op == Opcode::SDiv || inst.op == Opcode::SRem;
            if (is_signed && a == ApInt::signedMin(a.width()) &&
                b.isAllOnes()) {
                return trap(ErrorKind::SignedOverflow);
            }
            ApInt r = inst.op == Opcode::UDiv   ? a.udiv(b)
                      : inst.op == Opcode::SDiv ? a.sdiv(b)
                      : inst.op == Opcode::URem ? a.urem(b)
                                                : a.srem(b);
            frame.env[inst.result] = r;
            break;
          }
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::LShr:
          case Opcode::AShr: {
            ApInt a = evalValue(frame, inst.operands[0]);
            ApInt b = evalValue(frame, inst.operands[1]);
            ApInt r = inst.op == Opcode::And   ? a.and_(b)
                      : inst.op == Opcode::Or  ? a.or_(b)
                      : inst.op == Opcode::Xor ? a.xor_(b)
                      : inst.op == Opcode::Shl ? a.shl(b)
                      : inst.op == Opcode::LShr ? a.lshr(b)
                                                : a.ashr(b);
            frame.env[inst.result] = r;
            break;
          }
          case Opcode::ICmp: {
            ApInt a = evalValue(frame, inst.operands[0]);
            ApInt b = evalValue(frame, inst.operands[1]);
            frame.env[inst.result] = evalICmp(inst.pred, a, b);
            break;
          }
          case Opcode::ZExt:
            frame.env[inst.result] =
                evalValue(frame, inst.operands[0])
                    .zextTo(inst.type->valueBits());
            break;
          case Opcode::SExt:
            frame.env[inst.result] =
                evalValue(frame, inst.operands[0])
                    .sextTo(inst.type->valueBits());
            break;
          case Opcode::Trunc:
            frame.env[inst.result] =
                evalValue(frame, inst.operands[0])
                    .truncTo(inst.type->valueBits());
            break;
          case Opcode::PtrToInt: {
            ApInt p = evalValue(frame, inst.operands[0]);
            unsigned bits = inst.type->valueBits();
            frame.env[inst.result] =
                bits <= p.width() ? p.truncTo(bits) : p.zextTo(bits);
            break;
          }
          case Opcode::IntToPtr: {
            ApInt v = evalValue(frame, inst.operands[0]);
            frame.env[inst.result] =
                v.width() <= 64 ? v.zextTo(64) : v;
            break;
          }
          case Opcode::Bitcast:
            frame.env[inst.result] = evalValue(frame, inst.operands[0]);
            break;
          case Opcode::GetElementPtr: {
            uint64_t address = evalValue(frame, inst.operands[0]).zext();
            const Type *current = inst.sourceType;
            for (size_t i = 1; i < inst.operands.size(); ++i) {
                int64_t index =
                    evalValue(frame, inst.operands[i]).sext();
                if (i == 1) {
                    address += static_cast<uint64_t>(
                        index *
                        static_cast<int64_t>(current->sizeInBytes()));
                } else if (current->isArray()) {
                    address += static_cast<uint64_t>(
                        index * static_cast<int64_t>(
                                    current->elementType()
                                        ->sizeInBytes()));
                    current = current->elementType();
                } else {
                    KEQ_ASSERT(current->isStruct(), "gep into scalar");
                    address += current->fieldOffset(
                        static_cast<unsigned>(index));
                    current =
                        current->fields()[static_cast<size_t>(index)];
                }
            }
            frame.env[inst.result] = ApInt(64, address);
            break;
          }
          case Opcode::Load: {
            uint64_t address = evalValue(frame, inst.operands[0]).zext();
            unsigned size =
                static_cast<unsigned>(inst.type->sizeInBytes());
            mem::ConcreteAccess access = memory_.read(address, size);
            if (!access.ok)
                return trap(ErrorKind::OutOfBounds);
            frame.env[inst.result] =
                access.value.truncTo(inst.type->valueBits());
            break;
          }
          case Opcode::Store: {
            ApInt value = evalValue(frame, inst.operands[0]);
            uint64_t address = evalValue(frame, inst.operands[1]).zext();
            unsigned mem_bits = static_cast<unsigned>(
                inst.type->sizeInBytes() * 8);
            if (!memory_.write(address, value.zextTo(mem_bits)))
                return trap(ErrorKind::OutOfBounds);
            break;
          }
          case Opcode::Alloca: {
            const mem::MemoryObject *object = memory_.layout().find(
                fn.name + "/" + inst.result);
            KEQ_ASSERT(object != nullptr,
                       "alloca slot missing from layout: " + inst.result);
            frame.env[inst.result] = ApInt(64, object->base);
            break;
          }
          case Opcode::Select: {
            ApInt cond = evalValue(frame, inst.operands[0]);
            frame.env[inst.result] = evalValue(
                frame, cond.isZero() ? inst.operands[2]
                                     : inst.operands[1]);
            break;
          }
          case Opcode::Br:
          case Opcode::CondBr:
          case Opcode::Switch: {
            std::string target = inst.target1;
            if (inst.op == Opcode::CondBr &&
                evalValue(frame, inst.operands[0]).isZero()) {
                target = inst.target2;
            }
            if (inst.op == Opcode::Switch) {
                ApInt selector = evalValue(frame, inst.operands[0]);
                for (const auto &[value, case_target] :
                     inst.switchCases) {
                    if (selector == value) {
                        target = case_target;
                        break;
                    }
                }
            }
            frame.cameFrom = frame.block->name;
            frame.block = fn.findBlock(target);
            KEQ_ASSERT(frame.block != nullptr, "missing block " + target);
            frame.index = 0;
            continue;
          }
          case Opcode::Ret: {
            ExecResult result;
            result.outcome = ExecOutcome::Returned;
            if (!inst.operands.empty())
                result.value = evalValue(frame, inst.operands[0]);
            return result;
          }
          case Opcode::Call: {
            std::vector<ApInt> call_args;
            for (const Value &operand : inst.operands)
                call_args.push_back(evalValue(frame, operand));
            const Function *callee = module_.findFunction(inst.callee);
            ApInt ret;
            if (callee != nullptr && !callee->isDeclaration()) {
                ExecResult inner =
                    runInternal(*callee, call_args, budget, call_trace);
                if (inner.outcome != ExecOutcome::Returned)
                    return inner;
                ret = inner.value;
            } else {
                ret = external_(inst.callee, call_args);
                std::ostringstream os;
                os << inst.callee << "(";
                for (size_t i = 0; i < call_args.size(); ++i) {
                    if (i > 0)
                        os << ",";
                    os << call_args[i].toString();
                }
                os << ")=" << ret.toString();
                call_trace.push_back(os.str());
            }
            if (!inst.type->isVoid()) {
                frame.env[inst.result] =
                    ret.truncTo(inst.type->valueBits());
            }
            break;
          }
          case Opcode::Unreachable:
            return trap(ErrorKind::Unreachable);
        }
        ++frame.index;
    }
}

} // namespace keq::llvmir
