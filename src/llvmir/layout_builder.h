#ifndef KEQ_LLVMIR_LAYOUT_BUILDER_H
#define KEQ_LLVMIR_LAYOUT_BUILDER_H

/**
 * @file
 * Populates the common memory layout (Section 4.4) from an LLVM module.
 *
 * Globals become global objects; every alloca becomes a stack slot named
 * "function/%result". The Virtual x86 side addresses the same slots
 * through frame indexes that ISel derives from the same allocas, so both
 * semantics agree on every allocation's base address by construction —
 * the essence of the common memory model.
 */

#include "src/llvmir/ir.h"
#include "src/memory/layout.h"

namespace keq::llvmir {

/** Registers all globals and allocas of @p module into @p layout. */
void populateLayout(const Module &module, mem::MemoryLayout &layout);

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_LAYOUT_BUILDER_H
