#ifndef KEQ_LLVMIR_PARSER_H
#define KEQ_LLVMIR_PARSER_H

/**
 * @file
 * Parser for the textual form of the LLVM IR subset.
 *
 * Accepts the standard LLVM assembly syntax for the supported constructs
 * (see src/llvmir/ir.h); `; ...` comments are ignored. Unsupported
 * constructs raise keq::support::Error with a line number, which the
 * evaluation driver reports as "unsupported function" — the paper's
 * category for the 840 SPEC functions outside the modelled fragment.
 */

#include <string_view>

#include "src/llvmir/ir.h"

namespace keq::llvmir {

/** Parses a module; throws support::Error on malformed input. */
Module parseModule(std::string_view source);

} // namespace keq::llvmir

#endif // KEQ_LLVMIR_PARSER_H
